//! Refresh policies (Section 5.3) over a simulated clock.
//!
//! A *policy* decides when the Figure-3 refresh functions actually run.
//! Policies 1 and 2 are the paper's named policies for the `INV_C`
//! scenario; `PeriodicRefresh`, `OnDemand`, and `OnQuery` cover the other
//! variants discussed in Section 5.
//!
//! Time is a discrete tick counter so experiments are deterministic and
//! Example 5.4's "propagate hourly, refresh daily" runs in microseconds
//! (1 tick = 1 simulated minute there).

use crate::database::Database;
use crate::error::{CoreError, Result};
use crate::view::Scenario;
use dvm_obs::EventKind;

/// When maintenance operations fire for one view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshPolicy {
    /// Refresh only when the user calls [`Database::refresh`] directly.
    OnDemand,
    /// Refresh before every read (see [`PolicyDriver::query`]).
    OnQuery,
    /// `refresh_*` every `every` ticks (any deferred scenario).
    PeriodicRefresh {
        /// Refresh period in ticks.
        every: u64,
    },
    /// **Policy 1**: `propagate_C` every `k` ticks, full `refresh_C` every
    /// `m` ticks (`m > k`). Low downtime: most incremental work has already
    /// been propagated when the refresh runs.
    Policy1 {
        /// Propagation period `k`.
        k: u64,
        /// Refresh period `m`.
        m: u64,
    },
    /// **Policy 2**: `propagate_C` every `k` ticks, `partial_refresh_C`
    /// every `m` ticks. *Minimal* downtime — the refresh only applies
    /// precomputed differential tables — at the price of the view being up
    /// to `k` ticks stale after a refresh.
    Policy2 {
        /// Propagation period `k`.
        k: u64,
        /// Partial-refresh period `m`.
        m: u64,
    },
}

impl RefreshPolicy {
    /// Whether this policy can drive a view maintained under `scenario`.
    pub fn compatible_with(&self, scenario: Scenario) -> bool {
        match self {
            RefreshPolicy::OnDemand => true,
            RefreshPolicy::OnQuery | RefreshPolicy::PeriodicRefresh { .. } => {
                scenario != Scenario::Immediate
            }
            RefreshPolicy::Policy1 { .. } | RefreshPolicy::Policy2 { .. } => {
                scenario == Scenario::Combined
            }
        }
    }
}

/// What a tick executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TickActions {
    /// Number of `propagate_C` operations run.
    pub propagates: usize,
    /// Number of full refreshes run.
    pub refreshes: usize,
    /// Number of partial refreshes run.
    pub partial_refreshes: usize,
}

/// Drives per-view policies against a database on a shared tick counter.
pub struct PolicyDriver<'a> {
    db: &'a Database,
    entries: Vec<(String, RefreshPolicy)>,
    tick: u64,
}

impl<'a> PolicyDriver<'a> {
    /// A driver starting at tick 0.
    pub fn new(db: &'a Database) -> Self {
        PolicyDriver {
            db,
            entries: Vec::new(),
            tick: 0,
        }
    }

    /// Register a view under a policy; validated against its scenario.
    pub fn add_view(&mut self, name: impl Into<String>, policy: RefreshPolicy) -> Result<()> {
        let name = name.into();
        let scenario = self.db.view(&name)?.scenario();
        if !policy.compatible_with(scenario) {
            return Err(CoreError::WrongScenario {
                view: name,
                op: "policy registration",
            });
        }
        self.entries.push((name, policy));
        Ok(())
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Advance one tick, running whatever is due. When both a propagate and
    /// a refresh are due on the same tick, the propagate runs first (so the
    /// refresh applies the freshest differential tables).
    ///
    /// All due propagates run as one batch through
    /// [`Database::propagate_many`], so independent views propagate in
    /// parallel; refreshes then run in registration order.
    pub fn tick(&mut self) -> Result<TickActions> {
        self.tick += 1;
        let t = self.tick;
        let mut actions = TickActions::default();
        let due_propagates: Vec<String> = self
            .entries
            .iter()
            .filter_map(|(name, policy)| match *policy {
                RefreshPolicy::Policy1 { k, m }
                    if t.is_multiple_of(k) && !t.is_multiple_of(m) =>
                {
                    Some(name.clone())
                }
                RefreshPolicy::Policy2 { k, .. } if t.is_multiple_of(k) => Some(name.clone()),
                _ => None,
            })
            .collect();
        actions.propagates = due_propagates.len();
        let trace = self.db.tracer();
        if trace.is_enabled() {
            for name in &due_propagates {
                trace.event(EventKind::Policy, &format!("t{t}: propagate {name} due"), None);
            }
        }
        self.db.propagate_many(&due_propagates)?;
        for (name, policy) in &self.entries {
            match *policy {
                RefreshPolicy::OnDemand | RefreshPolicy::OnQuery => {}
                RefreshPolicy::PeriodicRefresh { every } => {
                    if t.is_multiple_of(every) {
                        if trace.is_enabled() {
                            trace.event(
                                EventKind::Policy,
                                &format!("t{t}: refresh {name} (periodic, every {every})"),
                                None,
                            );
                        }
                        self.db.refresh(name)?;
                        actions.refreshes += 1;
                    }
                }
                RefreshPolicy::Policy1 { m, .. } => {
                    if t.is_multiple_of(m) {
                        if trace.is_enabled() {
                            trace.event(
                                EventKind::Policy,
                                &format!("t{t}: refresh {name} (policy 1, m={m})"),
                                None,
                            );
                        }
                        // refresh_C = propagate ; partial_refresh
                        self.db.refresh(name)?;
                        actions.refreshes += 1;
                    }
                }
                RefreshPolicy::Policy2 { m, .. } => {
                    if t.is_multiple_of(m) {
                        if trace.is_enabled() {
                            trace.event(
                                EventKind::Policy,
                                &format!("t{t}: partial refresh {name} (policy 2, m={m})"),
                                None,
                            );
                        }
                        self.db.partial_refresh(name)?;
                        actions.partial_refreshes += 1;
                    }
                }
            }
        }
        // One staleness sample per tick, after the tick's maintenance — the
        // time-series recorder turns this into per-view staleness/backlog
        // curves (`\profile show`, `exp_profile`).
        self.db.sample_staleness_series();
        Ok(actions)
    }

    /// Advance `n` ticks.
    pub fn run(&mut self, n: u64) -> Result<TickActions> {
        let mut total = TickActions::default();
        for _ in 0..n {
            let a = self.tick()?;
            total.propagates += a.propagates;
            total.refreshes += a.refreshes;
            total.partial_refreshes += a.partial_refreshes;
        }
        Ok(total)
    }

    /// Read a view under its policy: `OnQuery` views are refreshed first.
    pub fn query(&self, name: &str) -> Result<dvm_storage::Bag> {
        if let Some((_, policy)) = self.entries.iter().find(|(n, _)| n == name) {
            if matches!(policy, RefreshPolicy::OnQuery) {
                self.db.refresh(name)?;
            }
        }
        self.db.query_view(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_algebra::Expr;
    use dvm_delta::Transaction;
    use dvm_storage::{tuple, Schema, ValueType};

    fn db() -> Database {
        let d = Database::new();
        d.create_table("r", Schema::from_pairs(&[("a", ValueType::Int)]))
            .unwrap();
        d
    }

    #[test]
    fn policy_compatibility() {
        assert!(RefreshPolicy::OnDemand.compatible_with(Scenario::Immediate));
        assert!(!RefreshPolicy::PeriodicRefresh { every: 5 }.compatible_with(Scenario::Immediate));
        assert!(RefreshPolicy::Policy1 { k: 1, m: 24 }.compatible_with(Scenario::Combined));
        assert!(!RefreshPolicy::Policy1 { k: 1, m: 24 }.compatible_with(Scenario::BaseLog));
        assert!(RefreshPolicy::Policy2 { k: 1, m: 24 }.compatible_with(Scenario::Combined));
        assert!(RefreshPolicy::OnQuery.compatible_with(Scenario::BaseLog));
    }

    #[test]
    fn incompatible_registration_rejected() {
        let d = db();
        d.create_view("v", Expr::table("r"), Scenario::BaseLog)
            .unwrap();
        let mut driver = PolicyDriver::new(&d);
        assert!(driver
            .add_view("v", RefreshPolicy::Policy2 { k: 1, m: 4 })
            .is_err());
        assert!(driver
            .add_view("v", RefreshPolicy::PeriodicRefresh { every: 3 })
            .is_ok());
    }

    #[test]
    fn periodic_refresh_fires_on_schedule() {
        let d = db();
        d.create_view("v", Expr::table("r"), Scenario::BaseLog)
            .unwrap();
        let mut driver = PolicyDriver::new(&d);
        driver
            .add_view("v", RefreshPolicy::PeriodicRefresh { every: 3 })
            .unwrap();
        d.execute(&Transaction::new().insert_tuple("r", tuple![1]))
            .unwrap();
        assert_eq!(driver.run(2).unwrap().refreshes, 0);
        assert!(d.query_view("v").unwrap().is_empty(), "still stale");
        assert_eq!(driver.tick().unwrap().refreshes, 1);
        assert_eq!(d.query_view("v").unwrap().len(), 1);
        assert_eq!(driver.now(), 3);
    }

    #[test]
    fn policy1_propagates_k_refreshes_m() {
        let d = db();
        d.create_view("v", Expr::table("r"), Scenario::Combined)
            .unwrap();
        let mut driver = PolicyDriver::new(&d);
        driver
            .add_view("v", RefreshPolicy::Policy1 { k: 2, m: 6 })
            .unwrap();
        d.execute(&Transaction::new().insert_tuple("r", tuple![1]))
            .unwrap();
        let total = driver.run(6).unwrap();
        // propagate at t=2,4 (t=6 is folded into refresh), refresh at t=6
        assert_eq!(total.propagates, 2);
        assert_eq!(total.refreshes, 1);
        assert_eq!(d.query_view("v").unwrap().len(), 1);
    }

    #[test]
    fn policy2_partial_refresh_stays_one_interval_stale() {
        let d = db();
        d.create_view("v", Expr::table("r"), Scenario::Combined)
            .unwrap();
        let mut driver = PolicyDriver::new(&d);
        driver
            .add_view("v", RefreshPolicy::Policy2 { k: 1, m: 4 })
            .unwrap();
        // insert on every tick; at t=4 the partial refresh applies
        // everything propagated through t=4's propagate (k=1 propagates
        // first), so staleness ≤ k ticks.
        for i in 0..4i64 {
            d.execute(&Transaction::new().insert_tuple("r", tuple![i]))
                .unwrap();
            driver.tick().unwrap();
        }
        let v = d.query_view("v").unwrap();
        assert_eq!(v.len(), 4, "partial refresh at t=4 saw all 4 inserts");
        assert!(d.check_invariant("v").unwrap().ok());
    }

    #[test]
    fn on_query_refreshes_before_read() {
        let d = db();
        d.create_view("v", Expr::table("r"), Scenario::BaseLog)
            .unwrap();
        let mut driver = PolicyDriver::new(&d);
        driver.add_view("v", RefreshPolicy::OnQuery).unwrap();
        d.execute(&Transaction::new().insert_tuple("r", tuple![1]))
            .unwrap();
        assert_eq!(d.query_view("v").unwrap().len(), 0, "stale via raw read");
        assert_eq!(driver.query("v").unwrap().len(), 1, "fresh via policy read");
    }
}
