//! Concurrency benchmarks: parallel `propagate_all` / `refresh_all` against
//! the equivalent serial per-view loops, and multi-stream `execute`
//! throughput through the commit protocol.
//!
//! Same harness conventions as `micro.rs`: under `cargo bench` it samples,
//! prints a table, and writes `results/BENCH_concurrent.json`; under
//! `cargo test` (cargo passes `--test`) it smoke-runs every body once.
//! Worker counts are set explicitly with `set_maintenance_threads`, so the
//! serial/parallel comparison is meaningful regardless of host core count
//! (on a single-core host the parallel rows measure fan-out overhead).

use dvm_algebra::{col, lit, Expr, Predicate};
use dvm_bench::report::{summary_table, write_json_with_host};
use dvm_bench::retail_db;
use dvm_core::{Database, Minimality, Scenario};
use dvm_delta::Transaction;
use dvm_storage::{tuple, Bag, Schema, ValueType};
use dvm_testkit::bench::{Bench, Summary};
use dvm_workload::runner::run_stream_concurrent;
use dvm_workload::view_expr;

const VIEWS: usize = 6;
const BACKLOG_TXS: usize = 40;
const LARGE_BACKLOG_TXS: i64 = 10;

/// A retail database with `VIEWS` Combined views over the same base tables
/// and a deferred backlog on every log, ready to propagate or refresh.
fn multi_view_backlog(seed: u64) -> Database {
    let (db, mut gen) = retail_db(500, 2_000, Scenario::Combined, Minimality::Weak, seed);
    for i in 1..VIEWS {
        db.create_view(format!("V{i}"), view_expr(), Scenario::Combined)
            .unwrap();
    }
    for _ in 0..BACKLOG_TXS {
        db.execute(&gen.sales_batch(10)).unwrap();
    }
    db
}

fn combined_view_names() -> Vec<String> {
    let mut names = vec!["V".to_string()];
    names.extend((1..VIEWS).map(|i| format!("V{i}")));
    names
}

fn bench_propagate_all(b: &Bench, out: &mut Vec<Summary>) {
    let b = b.clone().samples(10);
    out.push(b.run_batched(
        format!("propagate_all/serial_loop/{VIEWS}views"),
        || multi_view_backlog(21),
        |db| {
            for name in combined_view_names() {
                db.propagate(&name).unwrap();
            }
        },
    ));
    for workers in [2usize, 4] {
        out.push(b.run_batched(
            format!("propagate_all/parallel_{workers}w/{VIEWS}views"),
            || {
                let db = multi_view_backlog(21);
                db.set_maintenance_threads(workers);
                db
            },
            |db| {
                let done = db.propagate_all().unwrap();
                assert_eq!(done.len(), VIEWS);
            },
        ));
    }
}

fn bench_refresh_all(b: &Bench, out: &mut Vec<Summary>) {
    let b = b.clone().samples(10);
    out.push(b.run_batched(
        format!("refresh_all/serial_loop/{VIEWS}views"),
        || multi_view_backlog(22),
        |db| {
            for name in combined_view_names() {
                db.refresh(&name).unwrap();
            }
        },
    ));
    for workers in [2usize, 4] {
        out.push(b.run_batched(
            format!("refresh_all/parallel_{workers}w/{VIEWS}views"),
            || {
                let db = multi_view_backlog(22);
                db.set_maintenance_threads(workers);
                db
            },
            |db| db.refresh_all().unwrap(),
        ));
    }
}

/// One Combined view over a ~1.2M-row fact table — far past
/// `Bag::PROMOTE_DISTINCT`, so the MV and differential tables are
/// hash-sharded — with a 50k-row logged backlog. This is the scenario
/// where a single view's propagate dominates and only *intra-view*
/// per-shard parallelism can help; inter-view fan-out has nothing to
/// split. Quick mode scales the table down but stays sharded.
fn large_view_backlog(quick: bool, workers: usize) -> Database {
    let rows: i64 = if quick { 20_000 } else { 1_200_000 };
    let per: i64 = if quick { 500 } else { 5_000 };
    let db = Database::new();
    let schema = Schema::from_pairs(&[("a", ValueType::Int), ("b", ValueType::Int)]);
    let fact = db.create_table("fact", schema).unwrap();
    let mut seed = Bag::new();
    for k in 0..rows {
        seed.insert(tuple![k, k % 97]);
    }
    fact.replace(seed).unwrap();
    db.create_view(
        "BIG",
        Expr::table("fact").select(Predicate::gt(col("a"), lit(-1i64))),
        Scenario::Combined,
    )
    .unwrap();
    db.set_maintenance_threads(workers);
    for i in 0..LARGE_BACKLOG_TXS {
        let (mut del, mut ins) = (Bag::new(), Bag::new());
        for j in 0..per {
            let k = i * per + j;
            del.insert(tuple![k, k % 97]);
            ins.insert(tuple![rows + k, k % 89]);
        }
        db.execute(
            &Transaction::new()
                .delete("fact".to_string(), del)
                .insert("fact".to_string(), ins),
        )
        .unwrap();
    }
    db
}

/// Serial vs 4-worker propagate of the single large view: the parallel
/// side exercises the per-shard Lemma 3 fold on the persistent pool. The
/// obs_guard gate divides these two series (armed as a speedup floor only
/// when the recording host had ≥4 cores — see `host.parallelism` in the
/// JSON artifact).
fn bench_propagate_large(b: &Bench, out: &mut Vec<Summary>, quick: bool) {
    let b = b.clone().samples(5);
    out.push(b.run_batched(
        "propagate_large/serial_loop",
        || large_view_backlog(quick, 1),
        |db| db.propagate("BIG").unwrap(),
    ));
    out.push(b.run_batched(
        "propagate_large/parallel_4w",
        || large_view_backlog(quick, 4),
        |db| db.propagate("BIG").unwrap(),
    ));
}

/// The same 40-transaction workload pushed through `execute` as one stream
/// vs. split across four concurrent streams. All streams write the same
/// base tables, so this measures the commit protocol's serialization cost
/// under contention — the worst case for the claims.
fn bench_concurrent_execute(b: &Bench, out: &mut Vec<Summary>) {
    let b = b.clone().samples(10);
    let make = |streams: usize, seed: u64| {
        let (db, mut gen) = retail_db(500, 2_000, Scenario::Combined, Minimality::Weak, seed);
        let per = BACKLOG_TXS / streams;
        let txs: Vec<Vec<Transaction>> = (0..streams)
            .map(|_| (0..per).map(|_| gen.sales_batch(10)).collect())
            .collect();
        (db, txs)
    };
    for streams in [1usize, 4] {
        out.push(b.run_batched(
            format!("execute_streams/{streams}stream/{BACKLOG_TXS}tx"),
            move || make(streams, 23),
            |(db, txs)| {
                let stats = run_stream_concurrent(&db, txs).unwrap();
                assert_eq!(stats.transactions, BACKLOG_TXS as u64);
            },
        ));
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let bench = if quick { Bench::quick() } else { Bench::from_env() };
    let mut out = Vec::new();
    bench_propagate_all(&bench, &mut out);
    bench_refresh_all(&bench, &mut out);
    bench_propagate_large(&bench, &mut out, quick);
    bench_concurrent_execute(&bench, &mut out);
    if quick {
        println!("concurrent: {} benchmarks smoke-ran", out.len());
        return;
    }
    summary_table(&out).print();
    // Anchor on the manifest so `cargo bench` (cwd = crates/bench) and a
    // direct binary run (cwd = repo root) both land in the committed
    // workspace-root results/ directory.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let dir = dir.as_path();
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("BENCH_concurrent.json");
        // Stamp the recording host's parallelism: the serial-vs-parallel
        // gates in obs_guard only demand a speedup when one was possible.
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        match write_json_with_host(&path, &out, parallelism) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
        }
    }
}
