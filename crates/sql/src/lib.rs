//! # dvm-sql — SQL front end
//!
//! A small SQL dialect covering the paper's view definitions (Example 1.1,
//! Example 1.2) and the DML needed by the examples:
//!
//! * `CREATE VIEW v AS SELECT [DISTINCT] … FROM t1 a1, t2 a2 WHERE …`
//! * compound queries with `UNION ALL` (`⊎`), `EXCEPT ALL` (`∸`),
//!   `EXCEPT` (all-occurrence difference), `INTERSECT ALL` (`min`)
//! * `INSERT INTO t VALUES (…), (…)` and `DELETE FROM t [WHERE …]`
//!
//! Statements lower to [`dvm_algebra::Expr`] queries via [`lower`]; no
//! aggregation (the paper explicitly omits it as orthogonal).

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod token;

pub use error::{Result, SqlError};
pub use lower::{sql_to_expr, sql_to_statement, LoweredStatement};
pub use parser::{parse_query, parse_statement};
