//! Criterion micro-benchmarks for the building blocks behind every
//! experiment: bag-algebra primitives, join evaluation, differential-query
//! generation, the composition lemma, and the three refresh paths.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use dvm_algebra::infer::{compile, compile_unoptimized};
use dvm_algebra::testgen::{Rng, Universe};
use dvm_bench::retail_db;
use dvm_core::{Minimality, Scenario};
use dvm_delta::{compose, post_update_deltas, pre_update_deltas};
use dvm_storage::{tuple, Bag};
use dvm_workload::view_expr;

fn bag_of_ints(n: i64, seed: i64) -> Bag {
    let mut b = Bag::new();
    for i in 0..n {
        b.insert_n(tuple![(i * 7 + seed) % n, i % 13], 1 + (i % 3) as u64);
    }
    b
}

fn bench_bag_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("bag_ops");
    for &n in &[1_000i64, 10_000] {
        let a = bag_of_ints(n, 1);
        let b = bag_of_ints(n, 3);
        g.bench_with_input(BenchmarkId::new("union", n), &n, |bench, _| {
            bench.iter(|| a.union(&b))
        });
        g.bench_with_input(BenchmarkId::new("monus", n), &n, |bench, _| {
            bench.iter(|| a.monus(&b))
        });
        g.bench_with_input(BenchmarkId::new("min_intersect", n), &n, |bench, _| {
            bench.iter(|| a.min_intersect(&b))
        });
        g.bench_with_input(BenchmarkId::new("dedup", n), &n, |bench, _| {
            bench.iter(|| a.dedup())
        });
        g.bench_with_input(BenchmarkId::new("compose_lemma3", n), &n, |bench, _| {
            let d2 = bag_of_ints(n / 10, 5);
            let i2 = bag_of_ints(n / 10, 7);
            bench.iter(|| compose(&a, &b, &d2, &i2))
        });
    }
    g.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("retail_view_eval");
    g.sample_size(20);
    for &customers in &[1_000usize, 5_000] {
        let (db, _gen) = retail_db(
            customers,
            customers * 5,
            Scenario::BaseLog,
            Minimality::Weak,
            3,
        );
        let q = compile(&view_expr(), db.catalog()).unwrap();
        g.bench_with_input(
            BenchmarkId::new("hash_join", customers),
            &customers,
            |bench, _| bench.iter(|| dvm_algebra::eval_in_catalog(&q, db.catalog()).unwrap()),
        );
        if customers <= 1_000 {
            let naive = compile_unoptimized(&view_expr(), db.catalog()).unwrap();
            g.bench_with_input(
                BenchmarkId::new("naive_product", customers),
                &customers,
                |bench, _| {
                    bench.iter(|| dvm_algebra::eval_in_catalog(&naive, db.catalog()).unwrap())
                },
            );
        }
    }
    g.finish();
}

fn bench_differentiation(c: &mut Criterion) {
    let mut g = c.benchmark_group("differentiation");
    // query-generation cost (what IM/DT pay per transaction, symbolically)
    let (db, mut gen) = retail_db(500, 2_000, Scenario::BaseLog, Minimality::Weak, 5);
    let tx = gen.sales_batch(10);
    g.bench_function("pre_update_deltas_retail", |bench| {
        bench.iter(|| pre_update_deltas(&view_expr(), &tx, db.catalog()).unwrap())
    });
    let view = db.view("V").unwrap();
    let log = view.log().unwrap().clone();
    g.bench_function("post_update_deltas_retail", |bench| {
        bench.iter(|| post_update_deltas(&view_expr(), &log, db.catalog()).unwrap())
    });
    // random deep expressions
    let u = Universe::small(3);
    let provider = u.provider();
    let mut rng = Rng::new(11);
    let state = u.state(&mut rng, 5);
    let q = u.expr(&mut rng, 4);
    let eta = u.weakly_minimal_subst(&mut rng, &state);
    g.bench_function("differentiate_depth4", |bench| {
        bench.iter(|| dvm_delta::differentiate(&q, &eta, &provider).unwrap())
    });
    g.finish();
}

fn bench_refresh_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("refresh_paths");
    g.sample_size(10);
    // Each iteration builds its own deferred backlog, so use iter_batched.
    g.bench_function("refresh_BL_100tx", |bench| {
        bench.iter_batched(
            || {
                let (db, mut gen) = retail_db(1_000, 5_000, Scenario::BaseLog, Minimality::Weak, 8);
                for _ in 0..100 {
                    db.execute(&gen.sales_batch(10)).unwrap();
                }
                db
            },
            |db| db.refresh("V").unwrap(),
            BatchSize::PerIteration,
        )
    });
    g.bench_function("partial_refresh_C_100tx", |bench| {
        bench.iter_batched(
            || {
                let (db, mut gen) =
                    retail_db(1_000, 5_000, Scenario::Combined, Minimality::Weak, 8);
                for _ in 0..100 {
                    db.execute(&gen.sales_batch(10)).unwrap();
                }
                db.propagate("V").unwrap();
                db
            },
            |db| db.partial_refresh("V").unwrap(),
            BatchSize::PerIteration,
        )
    });
    g.bench_function("recompute_100tx_backlog", |bench| {
        bench.iter_batched(
            || {
                let (db, mut gen) = retail_db(1_000, 5_000, Scenario::BaseLog, Minimality::Weak, 8);
                for _ in 0..100 {
                    db.execute(&gen.sales_batch(10)).unwrap();
                }
                db
            },
            |db| db.recompute_view("V").unwrap(),
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

fn bench_makesafe(c: &mut Criterion) {
    let mut g = c.benchmark_group("makesafe_per_tx");
    g.sample_size(30);
    for (label, scenario) in [
        ("IM", Scenario::Immediate),
        ("BL", Scenario::BaseLog),
        ("DT", Scenario::DiffTable),
        ("C", Scenario::Combined),
    ] {
        g.bench_function(label, |bench| {
            bench.iter_batched(
                || {
                    let (db, mut gen) = retail_db(1_000, 5_000, scenario, Minimality::Weak, 13);
                    let tx = gen.mixed_batch(10, 2);
                    (db, tx)
                },
                |(db, tx)| db.execute(&tx).unwrap(),
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

fn bench_sql(c: &mut Criterion) {
    c.bench_function("sql_parse_lower_example_1_1", |bench| {
        bench.iter(|| dvm_sql::sql_to_statement(dvm_workload::VIEW_SQL).unwrap())
    });
}

criterion_group!(
    benches,
    bench_bag_ops,
    bench_join,
    bench_differentiation,
    bench_refresh_paths,
    bench_makesafe,
    bench_sql
);
criterion_main!(benches);
