//! Pretty-printing of expressions in the paper's notation.

use crate::expr::Expr;
use std::fmt;

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Table(n) => write!(f, "{n}"),
            Expr::Literal { bag, .. } => {
                if bag.is_empty() {
                    write!(f, "φ")
                } else if bag.len() <= 4 {
                    write!(f, "{bag}")
                } else {
                    write!(f, "{{…{} tuples…}}", bag.len())
                }
            }
            Expr::Alias { alias, input } => write!(f, "({input} AS {alias})"),
            Expr::Select { pred, input } => write!(f, "σ[{pred}]({input})"),
            Expr::Project { cols, input } => {
                write!(f, "Π[")?;
                for (i, c) in cols.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, "]({input})")
            }
            Expr::DupElim(e) => write!(f, "ε({e})"),
            Expr::Union(a, b) => write!(f, "({a} ⊎ {b})"),
            Expr::Monus(a, b) => write!(f, "({a} ∸ {b})"),
            Expr::Product(a, b) => write!(f, "({a} × {b})"),
            Expr::MinIntersect(a, b) => write!(f, "({a} min {b})"),
            Expr::MaxUnion(a, b) => write!(f, "({a} max {b})"),
            Expr::Except(a, b) => write!(f, "({a} EXCEPT {b})"),
            Expr::GroupAggregate { keys, aggs, input } => {
                write!(f, "γ[")?;
                for (i, k) in keys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{k}")?;
                }
                write!(f, "; ")?;
                for (i, a) in aggs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "]({input})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{col, lit, Predicate};
    use dvm_storage::{tuple, Bag, Schema, ValueType};

    #[test]
    fn renders_paper_notation() {
        let e = Expr::table("R")
            .select(Predicate::eq(col("a"), lit(1i64)))
            .project(["a"])
            .union(Expr::table("S").monus(Expr::table("T")));
        assert_eq!(e.to_string(), "(Π[a](σ[a = 1](R)) ⊎ (S ∸ T))");
    }

    #[test]
    fn empty_renders_phi() {
        let s = Schema::from_pairs(&[("a", ValueType::Int)]);
        assert_eq!(Expr::empty(s.clone()).to_string(), "φ");
        assert_eq!(Expr::singleton(tuple![1], s.clone()).to_string(), "{[1]}");
        let mut big = Bag::new();
        for i in 0..10i64 {
            big.insert(tuple![i]);
        }
        assert_eq!(Expr::literal(big, s).to_string(), "{…10 tuples…}");
    }

    #[test]
    fn derived_ops_and_misc() {
        let e = Expr::table("R")
            .min_intersect(Expr::table("S"))
            .max_union(Expr::table("T").dedup())
            .except(Expr::table("U").alias("u"))
            .product(Expr::table("V"));
        assert_eq!(
            e.to_string(),
            "((((R min S) max ε(T)) EXCEPT (U AS u)) × V)"
        );
    }
}
