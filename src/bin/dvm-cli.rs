//! Interactive shell: SQL plus deferred-maintenance meta-commands.
//!
//! ```sh
//! cargo run --bin dvm-cli
//! ```

use dvm::repl::{Repl, ReplOutcome, HELP};
use std::io::{self, BufRead, Write};

fn main() {
    println!("dvm — deferred view maintenance (Colby et al., SIGMOD 1996)");
    println!("{HELP}\n");
    let mut repl = Repl::new();
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    loop {
        print!("dvm> ");
        stdout.flush().expect("flush stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => match repl.process(&line) {
                ReplOutcome::Output(s) => {
                    if !s.is_empty() {
                        print!("{s}");
                        if !s.ends_with('\n') {
                            println!();
                        }
                    }
                }
                ReplOutcome::Quit => break,
            },
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
    }
    println!("bye");
}
