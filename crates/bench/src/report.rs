//! Plain-text table and JSON reporting for experiment binaries and the
//! micro-benchmark harness.
//!
//! The table printer and nanosecond formatter live in `dvm-obs` (they are
//! shared with the engine's observability exporters); this module
//! re-exports them under their historical `dvm_bench::report` paths and
//! adds the benchmark-summary glue.

use dvm_testkit::bench::Summary;
pub use dvm_obs::{fmt_nanos, TableReport};
pub use dvm_testkit::bench::{
    to_json_report, to_json_report_with_host, write_json, write_json_with_host,
};

/// Render benchmark summaries as an aligned table (the human-readable
/// counterpart of [`to_json_report`]).
pub fn summary_table(summaries: &[Summary]) -> TableReport {
    let mut t = TableReport::new(["benchmark", "median", "p95", "min", "max", "samples"]);
    for s in summaries {
        t.row([
            s.name.clone(),
            fmt_nanos(s.median_ns),
            fmt_nanos(s.p95_ns),
            fmt_nanos(s.min_ns),
            fmt_nanos(s.max_ns),
            s.samples.to_string(),
        ]);
    }
    t
}

/// Format a duration with an adaptive unit.
pub fn fmt_duration(d: std::time::Duration) -> String {
    fmt_nanos(d.as_nanos() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_duration_matches_fmt_nanos() {
        let d = std::time::Duration::from_micros(1_500);
        assert_eq!(fmt_duration(d), "1.50ms");
        assert_eq!(fmt_duration(d), fmt_nanos(1_500_000.0));
    }

    #[test]
    fn summary_table_renders_each_benchmark() {
        let s = dvm_testkit::Bench::quick().run("bag_ops/union/1000", || 1 + 1);
        let out = summary_table(&[s]).render();
        assert!(out.contains("bag_ops/union/1000"));
        assert!(out.lines().next().unwrap().contains("median"));
    }
}
