//! Schemas: ordered lists of named, typed columns.
//!
//! Schemas are immutable and cheaply cloneable (`Arc` inside). Column
//! references may be unqualified (`custId`) or qualified (`c.custId`);
//! product schemas concatenate columns and keep qualifiers so that the
//! algebra layer can resolve names unambiguously.

use crate::error::{Result, StorageError};
use crate::tuple::Tuple;
use crate::value::ValueType;
use std::fmt;
use std::sync::Arc;

/// A named, typed column, optionally qualified by a table alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Table alias qualifier (e.g. `c` in `c.custId`), if any.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ValueType,
}

impl Column {
    /// An unqualified column.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Column {
            qualifier: None,
            name: name.into(),
            ty,
        }
    }

    /// A qualified column.
    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>, ty: ValueType) -> Self {
        Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
            ty,
        }
    }

    /// Whether this column matches a reference `[qualifier.]name`.
    ///
    /// An unqualified reference matches any column with that name; a
    /// qualified reference requires the qualifier to match too.
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if self.name != name {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self.qualifier.as_deref() == Some(q),
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}: {}", self.name, self.ty),
            None => write!(f, "{}: {}", self.name, self.ty),
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Arc<Vec<Column>>,
}

impl Schema {
    /// Build a schema. Duplicate *fully qualified* names are rejected;
    /// duplicate bare names with different qualifiers are allowed (they arise
    /// from products) and must be disambiguated by qualified references.
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            for d in &columns[i + 1..] {
                if c.name == d.name && c.qualifier == d.qualifier {
                    return Err(StorageError::DuplicateColumn {
                        table: c.qualifier.clone().unwrap_or_default(),
                        column: c.name.clone(),
                    });
                }
            }
        }
        Ok(Schema {
            columns: Arc::new(columns),
        })
    }

    /// Shorthand: unqualified columns from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate names — callers pass literal column lists, so a
    /// duplicate is a programming error.
    pub fn from_pairs(pairs: &[(&str, ValueType)]) -> Self {
        Schema::new(pairs.iter().map(|(n, t)| Column::new(*n, *t)).collect())
            .expect("duplicate column name in from_pairs")
    }

    /// The empty (0-ary) schema.
    pub fn empty() -> Self {
        Schema {
            columns: Arc::new(Vec::new()),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> Option<&Column> {
        self.columns.get(i)
    }

    /// Resolve a reference `[qualifier.]name` to a position.
    ///
    /// Errors with [`StorageError::AmbiguousColumn`] when more than one
    /// column matches and [`StorageError::NoSuchColumn`] when none does.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut found = None;
        for (i, c) in self.columns.iter().enumerate() {
            if c.matches(qualifier, name) {
                if found.is_some() {
                    return Err(StorageError::AmbiguousColumn {
                        column: display_ref(qualifier, name),
                    });
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| StorageError::NoSuchColumn {
            column: display_ref(qualifier, name),
        })
    }

    /// Concatenate two schemas (product).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut cols = Vec::with_capacity(self.arity() + other.arity());
        cols.extend_from_slice(&self.columns);
        cols.extend_from_slice(&other.columns);
        Schema {
            columns: Arc::new(cols),
        }
    }

    /// Re-qualify every column with a new table alias (used by `FROM t AS a`).
    pub fn with_qualifier(&self, qualifier: &str) -> Schema {
        Schema {
            columns: Arc::new(
                self.columns
                    .iter()
                    .map(|c| Column {
                        qualifier: Some(qualifier.to_string()),
                        name: c.name.clone(),
                        ty: c.ty,
                    })
                    .collect(),
            ),
        }
    }

    /// Strip all qualifiers (used when materializing a view: the output
    /// columns become plain names).
    pub fn unqualified(&self) -> Schema {
        Schema {
            columns: Arc::new(
                self.columns
                    .iter()
                    .map(|c| Column {
                        qualifier: None,
                        name: c.name.clone(),
                        ty: c.ty,
                    })
                    .collect(),
            ),
        }
    }

    /// Project onto positions, keeping names and types.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let mut cols = Vec::with_capacity(indices.len());
        for &i in indices {
            let c = self.columns.get(i).ok_or(StorageError::ArityMismatch {
                expected: self.arity(),
                got: i + 1,
            })?;
            cols.push(c.clone());
        }
        Ok(Schema {
            columns: Arc::new(cols),
        })
    }

    /// Whether two schemas are union-compatible: same arity and same column
    /// types position-wise (names may differ).
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.arity() == other.arity()
            && self
                .columns
                .iter()
                .zip(other.columns.iter())
                .all(|(a, b)| a.ty == b.ty)
    }

    /// Validate a tuple against this schema.
    pub fn validate(&self, t: &Tuple) -> Result<()> {
        if t.arity() != self.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.arity(),
                got: t.arity(),
            });
        }
        for (i, c) in self.columns.iter().enumerate() {
            let v = &t[i];
            if !v.conforms_to(c.ty) {
                return Err(StorageError::TypeMismatch {
                    column: c.name.clone(),
                    expected: c.ty,
                    got: v.value_type(),
                });
            }
        }
        Ok(())
    }

    /// Positions of every column, in order (identity projection).
    pub fn all_positions(&self) -> Vec<usize> {
        (0..self.arity()).collect()
    }
}

fn display_ref(qualifier: Option<&str>, name: &str) -> String {
    match qualifier {
        Some(q) => format!("{q}.{name}"),
        None => name.to_string(),
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn s2() -> Schema {
        Schema::from_pairs(&[("a", ValueType::Int), ("b", ValueType::Str)])
    }

    #[test]
    fn build_and_resolve() {
        let s = s2();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.resolve(None, "a").unwrap(), 0);
        assert_eq!(s.resolve(None, "b").unwrap(), 1);
        assert!(matches!(
            s.resolve(None, "zz"),
            Err(StorageError::NoSuchColumn { .. })
        ));
    }

    #[test]
    fn duplicate_qualified_name_rejected() {
        let err = Schema::new(vec![
            Column::new("a", ValueType::Int),
            Column::new("a", ValueType::Str),
        ]);
        assert!(matches!(err, Err(StorageError::DuplicateColumn { .. })));
    }

    #[test]
    fn same_name_different_qualifier_allowed_but_ambiguous_unqualified() {
        let s = Schema::new(vec![
            Column::qualified("r", "x", ValueType::Int),
            Column::qualified("s", "x", ValueType::Int),
        ])
        .unwrap();
        assert!(matches!(
            s.resolve(None, "x"),
            Err(StorageError::AmbiguousColumn { .. })
        ));
        assert_eq!(s.resolve(Some("r"), "x").unwrap(), 0);
        assert_eq!(s.resolve(Some("s"), "x").unwrap(), 1);
    }

    #[test]
    fn concat_and_qualify() {
        let r = s2().with_qualifier("r");
        let s = s2().with_qualifier("s");
        let p = r.concat(&s);
        assert_eq!(p.arity(), 4);
        assert_eq!(p.resolve(Some("s"), "a").unwrap(), 2);
        let u = p.unqualified();
        assert!(matches!(
            u.resolve(None, "a"),
            Err(StorageError::AmbiguousColumn { .. })
        ));
    }

    #[test]
    fn project_schema() {
        let s = s2();
        let p = s.project(&[1]).unwrap();
        assert_eq!(p.arity(), 1);
        assert_eq!(p.column(0).unwrap().name, "b");
        assert!(s.project(&[5]).is_err());
    }

    #[test]
    fn union_compatibility_is_positional_types() {
        let a = Schema::from_pairs(&[("x", ValueType::Int), ("y", ValueType::Str)]);
        let b = Schema::from_pairs(&[("p", ValueType::Int), ("q", ValueType::Str)]);
        let c = Schema::from_pairs(&[("p", ValueType::Str), ("q", ValueType::Int)]);
        assert!(a.union_compatible(&b));
        assert!(!a.union_compatible(&c));
        assert!(!a.union_compatible(&Schema::empty()));
    }

    #[test]
    fn validate_tuples() {
        let s = s2();
        assert!(s.validate(&tuple![1, "x"]).is_ok());
        assert!(s.validate(&tuple![1]).is_err());
        assert!(s.validate(&tuple!["x", "y"]).is_err());
        // NULL conforms to any column
        assert!(s
            .validate(&tuple::Tuple::new(vec![
                crate::value::Value::Null,
                crate::value::Value::Null
            ]))
            .is_ok());
    }

    #[test]
    fn display() {
        let s = Schema::new(vec![Column::qualified("c", "id", ValueType::Int)]).unwrap();
        assert_eq!(s.to_string(), "(c.id: INT)");
    }
}
