//! **E9 — crash recovery time** (durability subsystem).
//!
//! Claim: recovery cost is `O(checkpoint size + WAL suffix)`, so
//!
//! * time-to-open grows linearly with the number of WAL records past the
//!   last checkpoint, and
//! * a checkpoint cadence bounds that suffix — trading periodic
//!   checkpoint writes for bounded restart time — without changing the
//!   recovered state (the invariants recover *as they were*: stale views
//!   stay stale, logs and differential tables come back intact).
//!
//! For each configuration the retail database is built durably (initial
//! load, baseline checkpoint, then `txs` deferred transactions with
//! periodic propagation), closed, and `Database::open` is timed on the
//! resulting directory. Results go to `results/BENCH_recovery.json`:
//! a standard `benchmarks` array plus a `recovery` detail record per
//! configuration and the observability snapshot of the last reopened
//! database.

use dvm_bench::report::{fmt_nanos, TableReport};
use dvm_bench::retail_db_durable;
use dvm_core::{Database, Minimality, Scenario};
use dvm_durability::{DurabilityPolicy, WalOptions};
use dvm_obs::json;
use dvm_testkit::Bench;
use std::path::Path;

struct Config {
    name: String,
    /// Transactions executed after the baseline checkpoint.
    txs: usize,
    /// Cut a checkpoint every `k` transactions (None = only the baseline).
    cadence: Option<usize>,
}

fn quick() -> bool {
    std::env::var("EXP_RECOVERY_QUICK").is_ok_and(|v| v == "1")
}

fn configs() -> Vec<Config> {
    let mk = |name: &str, txs, cadence| Config {
        name: name.to_string(),
        txs,
        cadence,
    };
    if quick() {
        vec![
            mk("suffix=0", 0, None),
            mk("suffix=32", 32, None),
            mk("cadence=16", 40, Some(16)),
        ]
    } else {
        vec![
            mk("suffix=0", 0, None),
            mk("suffix=128", 128, None),
            mk("suffix=512", 512, None),
            mk("suffix=2048", 2048, None),
            mk("cadence=96", 512, Some(96)),
            mk("cadence=384", 512, Some(384)),
        ]
    }
}

/// Build the durable directory for one configuration and close it.
fn build(cfg: &Config, dir: &Path) {
    let (customers, sales) = if quick() { (100, 400) } else { (1_000, 5_000) };
    let options = WalOptions {
        policy: DurabilityPolicy::EveryN(32),
        segment_bytes: 1 << 20,
    };
    let (db, mut gen) = retail_db_durable(
        dir,
        options,
        customers,
        sales,
        Scenario::Combined,
        Minimality::Weak,
        17,
    );
    for i in 0..cfg.txs {
        db.execute(&gen.mixed_batch(4, 1)).unwrap();
        // Periodic propagation: the WAL suffix carries maintenance verbs,
        // not just transactions, exactly like a live deployment.
        if (i + 1) % 32 == 0 {
            db.propagate("V").unwrap();
        }
        if let Some(k) = cfg.cadence {
            if (i + 1) % k == 0 {
                db.checkpoint().unwrap();
            }
        }
    }
}

fn main() {
    println!("=== E9: recovery time vs WAL suffix length and checkpoint cadence ===\n");
    let bench = if quick() {
        Bench::quick()
    } else {
        Bench::from_env().samples(10)
    };

    let mut table = TableReport::new([
        "configuration",
        "wal records replayed",
        "bytes replayed",
        "open p50",
        "open p95",
    ]);
    let mut summaries = Vec::new();
    let mut details = Vec::new();
    let mut last_obs = None;

    for cfg in &configs() {
        let dir = std::env::temp_dir().join(format!(
            "dvm-exp-recovery-{}-{}",
            cfg.name.replace('=', "-"),
            std::process::id()
        ));
        build(cfg, &dir);

        let summary = bench.run(format!("recovery/open/{}", cfg.name), || {
            Database::open(&dir).unwrap()
        });

        // One representative open for the detail record and a correctness
        // spot-check: the recovered view must refresh to the truth.
        let db = Database::open(&dir).unwrap();
        let report = db.recovery_report().expect("durable open");
        db.refresh("V").unwrap();
        assert_eq!(
            db.query_view("V").unwrap(),
            db.recompute_view("V").unwrap(),
            "{}: recovered view refreshes incorrectly",
            cfg.name
        );
        assert!(db.check_all_invariants().unwrap().is_empty());

        table.row([
            cfg.name.clone(),
            report.wal_records_replayed.to_string(),
            report.wal_bytes_replayed.to_string(),
            fmt_nanos(summary.median_ns),
            fmt_nanos(summary.p95_ns),
        ]);
        details.push(json::object([
            ("name", json::string(&cfg.name)),
            ("txs", json::num_u(cfg.txs as u64)),
            (
                "cadence",
                json::string(
                    &cfg.cadence
                        .map(|k| k.to_string())
                        .unwrap_or_else(|| "never".to_string()),
                ),
            ),
            ("checkpoint_lsn", json::num_u(report.checkpoint_lsn)),
            ("wal_records_replayed", json::num_u(report.wal_records_replayed)),
            ("txns_replayed", json::num_u(report.txns_replayed)),
            ("wal_bytes_replayed", json::num_u(report.wal_bytes_replayed)),
            ("torn_bytes_dropped", json::num_u(report.torn_bytes_dropped)),
            ("recovery_nanos", json::num_u(report.recovery_nanos)),
        ]));
        last_obs = Some(db.observability().to_json());
        summaries.push(summary);
        let _ = std::fs::remove_dir_all(&dir);
    }
    table.print();

    println!(
        "\nlinear in the suffix: `suffix=0` pays only the checkpoint decode; every\n\
         additional WAL record adds one decode + replay; a cadence of k bounds the\n\
         replayed suffix below k regardless of total history."
    );

    let doc = json::object([
        (
            "benchmarks",
            json::array(summaries.iter().map(|s| s.to_json()).collect::<Vec<_>>()),
        ),
        ("recovery", json::array(details)),
        ("observability", last_obs.expect("at least one config")),
    ]);
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_recovery.json", format!("{doc}\n")).expect("write results");
    println!("\nwrote results/BENCH_recovery.json");
}
