//! Thin synchronization shims over `std::sync`, replacing `parking_lot`
//! and `crossbeam` in the workspace.
//!
//! The wrappers expose the `parking_lot` calling convention the engine was
//! written against — `read()`/`write()`/`lock()` return guards directly,
//! unwrapping poison by recovering the inner guard (a panicked writer in
//! this codebase can only have been mid-mutation of a bag; every such
//! mutation is applied via whole-value replacement or `Bag` methods that
//! keep the structure valid, so continuing is sound and matches
//! `parking_lot`'s no-poisoning semantics).
//!
//! [`RwLock::read_arc`] provides the owned (`Arc`-backed) read guard the
//! query evaluator uses to pin table contents without cloning, and
//! [`with_workers`] is the scoped-thread helper behind the concurrent
//! reader harness in `dvm-workload`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A reader–writer lock whose accessors never return `Err`: poison is
/// unwrapped into the recovered guard.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire an owned read guard that keeps the lock's `Arc` alive: it
    /// has no borrow lifetime, so it can outlive the reference it was
    /// acquired through (the `parking_lot` `read_arc` shape).
    pub fn read_arc(this: &Arc<Self>) -> ArcRwLockReadGuard<T>
    where
        T: 'static,
    {
        let owner = Arc::clone(this);
        let guard = owner.read();
        // SAFETY: we extend the guard's borrow lifetime to 'static. This is
        // sound because `owner` (the Arc keeping the RwLock alive) is moved
        // into the returned struct and outlives the guard: fields drop in
        // declaration order, so the guard is released before the Arc.
        let guard: std::sync::RwLockReadGuard<'static, T> =
            unsafe { std::mem::transmute::<RwLockReadGuard<'_, T>, _>(guard) };
        ArcRwLockReadGuard {
            guard,
            _owner: owner,
        }
    }

    /// Acquire an owned write guard (the `write` counterpart of
    /// [`RwLock::read_arc`]): holds the exclusive lock plus a strong
    /// reference to the lock itself, so it can be stored in lock-set
    /// collections that outlive the reference it was acquired through.
    pub fn write_arc(this: &Arc<Self>) -> ArcRwLockWriteGuard<T>
    where
        T: 'static,
    {
        let owner = Arc::clone(this);
        let guard = owner.write();
        // SAFETY: as in `read_arc` — the Arc moved into the returned struct
        // outlives the guard (fields drop in declaration order).
        let guard: std::sync::RwLockWriteGuard<'static, T> =
            unsafe { std::mem::transmute::<RwLockWriteGuard<'_, T>, _>(guard) };
        ArcRwLockWriteGuard {
            guard,
            _owner: owner,
        }
    }
}

/// An owning read guard returned by [`RwLock::read_arc`]: holds both the
/// read lock and a strong reference to the lock itself.
pub struct ArcRwLockReadGuard<T: 'static> {
    // Field order matters: `guard` must drop (releasing the lock) before
    // `_owner` (which keeps the lock's memory alive).
    guard: std::sync::RwLockReadGuard<'static, T>,
    _owner: Arc<RwLock<T>>,
}

impl<T> std::ops::Deref for ArcRwLockReadGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcRwLockReadGuard<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// An owning write guard returned by [`RwLock::write_arc`]: holds both the
/// exclusive lock and a strong reference to the lock itself.
pub struct ArcRwLockWriteGuard<T: 'static> {
    // Field order matters: `guard` must drop (releasing the lock) before
    // `_owner` (which keeps the lock's memory alive).
    guard: std::sync::RwLockWriteGuard<'static, T>,
    _owner: Arc<RwLock<T>>,
}

impl<T> std::ops::Deref for ArcRwLockWriteGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for ArcRwLockWriteGuard<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcRwLockWriteGuard<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// A mutex whose `lock()` never returns `Err` (poison unwrapped).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

/// Run `body` while `n` scoped worker threads execute `worker(index, stop)`
/// concurrently; when `body` returns, the stop flag is raised and all
/// workers are joined. Returns `body`'s result and the workers' results in
/// index order.
///
/// Workers should poll `stop` and return promptly once it reads `true`.
///
/// # Panics
/// Propagates a panic from any worker thread.
pub fn with_workers<R: Send, T>(
    n: usize,
    worker: impl Fn(usize, &AtomicBool) -> R + Sync,
    body: impl FnOnce() -> T,
) -> (T, Vec<R>) {
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let worker = &worker;
            let stop = &stop;
            handles.push(scope.spawn(move || worker(i, stop)));
        }
        let out = body();
        stop.store(true, Ordering::Relaxed);
        let results = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect();
        (out, results)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn rwlock_read_write_roundtrip() {
        let l = RwLock::new(1);
        {
            let mut w = l.write();
            *w = 2;
        }
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_concurrent_readers() {
        let l = Arc::new(RwLock::new(7u64));
        let total = AtomicU64::new(0);
        with_workers(
            4,
            |_, _| total.fetch_add(*l.read(), Ordering::Relaxed),
            || {},
        );
        assert_eq!(total.load(Ordering::Relaxed), 28);
    }

    #[test]
    fn read_arc_outlives_original_reference() {
        let guard = {
            let l = Arc::new(RwLock::new(vec![1, 2, 3]));
            RwLock::read_arc(&l)
            // `l` dropped here; the guard must keep the data alive
        };
        assert_eq!(*guard, vec![1, 2, 3]);
    }

    #[test]
    fn write_arc_outlives_original_reference() {
        let mut guard = {
            let l = Arc::new(RwLock::new(vec![1, 2]));
            RwLock::write_arc(&l)
            // `l` dropped here; the guard must keep the data alive
        };
        guard.push(3);
        assert_eq!(*guard, vec![1, 2, 3]);
    }

    #[test]
    fn write_arc_excludes_other_access_until_dropped() {
        let l = Arc::new(RwLock::new(0));
        let mut g = RwLock::write_arc(&l);
        *g = 9;
        drop(g);
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn read_arc_blocks_writers_until_dropped() {
        let l = Arc::new(RwLock::new(0));
        let g = RwLock::read_arc(&l);
        // a second reader is fine while the owned guard is held
        assert_eq!(*l.read(), 0);
        drop(g);
        *l.write() = 5;
        assert_eq!(*l.read(), 5);
    }

    #[test]
    fn mutex_poison_is_unwrapped() {
        let m = Arc::new(Mutex::new(10));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        // lock() must still succeed and see the value
        assert_eq!(*m.lock(), 10);
    }

    #[test]
    fn rwlock_poison_is_unwrapped() {
        let l = Arc::new(RwLock::new(3));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the rwlock");
        })
        .join();
        assert_eq!(*l.read(), 3);
        *l.write() = 4;
        assert_eq!(*l.read(), 4);
    }

    #[test]
    fn with_workers_runs_body_and_collects_results() {
        let counter = AtomicU64::new(0);
        let (out, results) = with_workers(
            3,
            |i, stop| {
                let mut spins = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    counter.fetch_add(1, Ordering::Relaxed);
                    spins += 1;
                    std::thread::yield_now();
                }
                (i, spins)
            },
            || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                42
            },
        );
        assert_eq!(out, 42);
        assert_eq!(results.len(), 3);
        for (idx, (i, spins)) in results.iter().enumerate() {
            assert_eq!(*i, idx, "results in index order");
            assert!(*spins > 0, "worker must have spun");
        }
        assert!(counter.load(Ordering::Relaxed) > 0);
    }
}
