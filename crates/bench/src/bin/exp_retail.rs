//! **E4 — Example 5.4: the retail warehouse day** (paper Section 5.3).
//!
//! The paper's own worked example: refresh period m = 24 hours, propagate
//! period k = 1 hour. Claims:
//!
//! * Policy 1's downtime is much smaller than `INV_BL`'s, "since the log
//!   would contain at most an hour's worth of changes rather than a day's
//!   worth";
//! * Policy 2's refresh "results in a view table that is no more than one
//!   hour out-of-date, and has the minimal downtime".
//!
//! We run one simulated day (1 tick = 1 minute, a 20-sale batch per
//! minute) under three configurations and report the downtime of the
//! end-of-day refresh plus the staleness after it.

use dvm_bench::report::{fmt_duration, fmt_nanos, TableReport};
use dvm_bench::retail_db;
use dvm_core::{Database, Minimality, Observability, PolicyDriver, RefreshPolicy, Scenario};
use dvm_obs::json;
use std::time::Duration;

const MINUTES: u64 = 1_440; // 24 h
const K: u64 = 60; // propagate hourly
const BATCH: usize = 20;

struct DayResult {
    label: &'static str,
    overhead_us: f64,
    propagate_total: Duration,
    day_end_downtime: Duration,
    staleness_min: u64,
    /// Full observability snapshot of the day (taken before the
    /// out-of-window convergence refresh, so Policy 2's numbers reflect
    /// the minimal-downtime path it is claimed to have).
    obs: Observability,
}

fn run_day(label: &'static str, scenario: Scenario, policy: Option<RefreshPolicy>) -> DayResult {
    let (db, mut gen) = retail_db(2_000, 20_000, scenario, Minimality::Weak, 54);
    let mut driver = PolicyDriver::new(&db);
    if let Some(p) = policy {
        driver.add_view("V", p).unwrap();
    }
    // minute 1..1439: updates + policy ticks (the end-of-day refresh at
    // minute 1440 is measured separately so we can isolate its downtime)
    let mut last_refresh_tick = 0u64;
    for minute in 1..MINUTES {
        db.execute(&gen.mixed_batch(BATCH, BATCH / 10)).unwrap();
        let actions = driver.tick().unwrap();
        if actions.refreshes > 0 || actions.partial_refreshes > 0 {
            last_refresh_tick = minute;
        }
    }
    db.execute(&gen.mixed_batch(BATCH, BATCH / 10)).unwrap();

    // the end-of-day refresh, timed
    let before = db.mv_table("V").unwrap().lock_metrics().snapshot();
    let staleness_min;
    match scenario {
        Scenario::BaseLog => {
            db.refresh("V").unwrap();
            staleness_min = 0;
        }
        Scenario::Combined => {
            if matches!(policy, Some(RefreshPolicy::Policy2 { .. })) {
                // Policy 2's minimal-downtime path: apply only what has
                // already been propagated (through minute 1380); the view
                // is then at most one propagation interval (k) stale.
                db.partial_refresh("V").unwrap();
                staleness_min = K;
            } else {
                db.refresh("V").unwrap();
                staleness_min = 0;
            }
        }
        _ => unreachable!(),
    }
    let after = db.mv_table("V").unwrap().lock_metrics().snapshot();
    let metrics = db.view_metrics("V").unwrap();
    let obs = db.observability();
    let _ = last_refresh_tick;

    // verify
    if staleness_min == 0 {
        assert_eq!(
            db.query_view("V").unwrap(),
            db.recompute_view("V").unwrap(),
            "{label}: refresh incorrect"
        );
    }
    assert!(db.check_invariant("V").unwrap().ok());
    // Policy 2's stale view must still converge on a final full refresh
    // (verified outside the measured downtime window).
    if staleness_min > 0 {
        db.refresh("V").unwrap();
        assert_eq!(
            db.query_view("V").unwrap(),
            db.recompute_view("V").unwrap(),
            "{label}: final refresh incorrect"
        );
    }

    DayResult {
        label,
        overhead_us: metrics.mean_makesafe_nanos() / 1e3,
        propagate_total: Duration::from_nanos(metrics.propagate_nanos),
        day_end_downtime: Duration::from_nanos(after.write_hold_nanos - before.write_hold_nanos),
        staleness_min,
        obs,
    }
}

fn staleness_bound(db: &Database) -> u64 {
    let _ = db;
    K
}

fn main() {
    println!("=== E4: Example 5.4 — one retail day (m = 24h, k = 1h, 1 tick = 1 min) ===\n");
    println!("2000 customers, 20k initial sales, ~20 sales/min with ~10% returns\n");

    let results = vec![
        run_day("BL, daily refresh", Scenario::BaseLog, None),
        run_day(
            "C + Policy 1 (propagate 1h, refresh 24h)",
            Scenario::Combined,
            Some(RefreshPolicy::Policy1 { k: K, m: MINUTES }),
        ),
        run_day(
            "C + Policy 2 (propagate 1h, partial 24h)",
            Scenario::Combined,
            Some(RefreshPolicy::Policy2 { k: K, m: MINUTES }),
        ),
    ];

    let mut t = TableReport::new([
        "configuration",
        "overhead/tx",
        "background propagate (day)",
        "day-end refresh DOWNTIME",
        "staleness after refresh",
    ]);
    for r in &results {
        t.row([
            r.label.to_string(),
            format!("{:.1}µs", r.overhead_us),
            fmt_duration(r.propagate_total),
            fmt_duration(r.day_end_downtime),
            if r.staleness_min == 0 {
                "fresh".to_string()
            } else {
                format!("≤ {} min (≤ k)", staleness_bound(&Database::new()))
            },
        ]);
    }
    t.print();

    // Distribution of the day's maintenance work, from the observability
    // registry: 1439 policy ticks' worth of makesafe/propagate samples.
    println!("\n--- maintenance latency distributions over the day ---\n");
    let mut pt = TableReport::new(["configuration", "op", "count", "p50", "p95", "p99", "max"]);
    for r in &results {
        let Some(v) = r.obs.views.iter().find(|v| v.name == "V") else {
            continue;
        };
        for (op, h) in [
            ("makesafe", &v.latency.makesafe),
            ("propagate", &v.latency.propagate),
            ("refresh", &v.latency.refresh),
            ("downtime (write-hold)", &v.mv_write_hold),
        ] {
            if h.is_empty() {
                continue;
            }
            pt.row([
                r.label.to_string(),
                op.to_string(),
                h.count.to_string(),
                fmt_nanos(h.p50() as f64),
                fmt_nanos(h.p95() as f64),
                fmt_nanos(h.p99() as f64),
                fmt_nanos(h.max as f64),
            ]);
        }
    }
    pt.print();

    let doc = json::object([
        ("experiment", json::string("exp_retail")),
        ("minutes", json::num_u(MINUTES)),
        ("propagate_every_min", json::num_u(K)),
        ("batch_per_min", json::num_u(BATCH as u64)),
        (
            "configs",
            json::array(results.iter().map(|r| {
                json::object([
                    ("name", json::string(r.label)),
                    ("staleness_min", json::num_u(r.staleness_min)),
                    (
                        "day_end_downtime_ns",
                        json::num_u(r.day_end_downtime.as_nanos() as u64),
                    ),
                    ("observability", r.obs.to_json()),
                ])
            })),
        ),
    ]);
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/exp_retail.json", format!("{doc}\n")).expect("write results");
    println!("\nwrote results/exp_retail.json");

    let bl = results[0].day_end_downtime;
    let p1 = results[1].day_end_downtime;
    let p2 = results[2].day_end_downtime;
    println!(
        "\ndowntime ratios: BL/P1 = {:.1}×, BL/P2 = {:.1}×",
        bl.as_secs_f64() / p1.as_secs_f64().max(1e-9),
        bl.as_secs_f64() / p2.as_secs_f64().max(1e-9),
    );
    println!(
        "paper claim reproduced when P1 ≪ BL (the log holds 1h, not 24h, of\n\
         changes) and P2 is minimal (it only applies precomputed differential\n\
         tables) at the price of ≤ 1h staleness."
    );
}
