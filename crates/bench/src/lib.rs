//! # dvm-bench — experiment harness
//!
//! One `exp_*` binary per paper figure / performance claim (see the
//! experiment index in `DESIGN.md`), plus `dvm-testkit`-based
//! micro-benchmarks and shared setup helpers.

#![warn(missing_docs)]

pub mod report;

use dvm_core::{Database, Minimality, Scenario};
use dvm_workload::{view_expr, RetailConfig, RetailGen};

/// A retail database with the Example-1.1 view installed under `scenario`.
pub fn retail_db(
    customers: usize,
    initial_sales: usize,
    scenario: Scenario,
    minimality: Minimality,
    seed: u64,
) -> (Database, RetailGen) {
    let db = Database::new();
    let mut gen = RetailGen::new(RetailConfig {
        customers,
        items: (customers / 2).max(10),
        initial_sales,
        high_fraction: 0.1,
        theta: 1.0,
        seed,
    });
    gen.install(&db).expect("install retail schema");
    db.create_view_with("V", view_expr(), scenario, minimality)
        .expect("create view");
    (db, gen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retail_db_builds() {
        let (db, _gen) = retail_db(50, 200, Scenario::Combined, Minimality::Weak, 1);
        assert!(db.check_invariant("V").unwrap().ok());
        assert_eq!(db.catalog().require("sales").unwrap().len(), 200);
    }
}
