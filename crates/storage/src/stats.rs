//! Per-table operation counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters tracking how a table has been used. Shared across
/// threads; all updates are relaxed atomics.
#[derive(Debug, Default)]
pub struct TableStats {
    tuples_inserted: AtomicU64,
    tuples_deleted: AtomicU64,
    scans: AtomicU64,
}

/// Point-in-time copy of [`TableStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableStatsSnapshot {
    /// Total tuple occurrences inserted (counting multiplicity).
    pub tuples_inserted: u64,
    /// Total tuple occurrences deleted (counting multiplicity).
    pub tuples_deleted: u64,
    /// Number of full scans (reads of the bag).
    pub scans: u64,
}

impl TableStats {
    /// Record `n` inserted tuple occurrences.
    pub fn record_insert(&self, n: u64) {
        self.tuples_inserted.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` deleted tuple occurrences.
    pub fn record_delete(&self, n: u64) {
        self.tuples_deleted.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one scan.
    pub fn record_scan(&self) {
        self.scans.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy current values.
    pub fn snapshot(&self) -> TableStatsSnapshot {
        TableStatsSnapshot {
            tuples_inserted: self.tuples_inserted.load(Ordering::Relaxed),
            tuples_deleted: self.tuples_deleted.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.tuples_inserted.store(0, Ordering::Relaxed);
        self.tuples_deleted.store(0, Ordering::Relaxed);
        self.scans.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = TableStats::default();
        s.record_insert(3);
        s.record_insert(2);
        s.record_delete(1);
        s.record_scan();
        let snap = s.snapshot();
        assert_eq!(snap.tuples_inserted, 5);
        assert_eq!(snap.tuples_deleted, 1);
        assert_eq!(snap.scans, 1);
    }

    #[test]
    fn reset() {
        let s = TableStats::default();
        s.record_insert(3);
        s.reset();
        assert_eq!(s.snapshot(), TableStatsSnapshot::default());
    }
}
