//! Tables: named, schema-validated bags behind instrumented locks.

use crate::bag::Bag;
use crate::error::Result;
use crate::lock::{InstrumentedRwLock, LockMetrics, OwnedReadGuard, TimedWriteGuard};
use crate::schema::Schema;
use crate::stats::TableStats;
use crate::tuple::Tuple;
use dvm_testkit::sync::RwLockReadGuard;
use std::fmt;

/// Whether a table is user-visible or maintenance-internal.
///
/// The paper (Section 3.1) partitions tables into *external* tables changed
/// by user transactions and *internal* tables (materialized views, logs,
/// view differential files) that user transactions may not touch directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableKind {
    /// User-defined base table.
    External,
    /// Maintenance-owned table (MV, log, or differential).
    Internal,
}

/// A named bag of tuples with a fixed schema.
///
/// All access goes through the instrumented lock so experiments can measure
/// write-hold (downtime) and read-block times.
pub struct Table {
    name: String,
    schema: Schema,
    kind: TableKind,
    data: InstrumentedRwLock<Bag>,
    stats: TableStats,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema, kind: TableKind) -> Self {
        Table {
            name: name.into(),
            schema,
            kind,
            data: InstrumentedRwLock::new(Bag::new()),
            stats: TableStats::default(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// External or internal.
    pub fn kind(&self) -> TableKind {
        self.kind
    }

    /// Lock metrics (write-hold = downtime, read-block = reader stalls).
    pub fn lock_metrics(&self) -> &LockMetrics {
        self.data.metrics()
    }

    /// Usage counters.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Read access to the bag. Records a scan.
    pub fn read(&self) -> RwLockReadGuard<'_, Bag> {
        self.stats.record_scan();
        self.data.read()
    }

    /// Owning read access (no borrow lifetime) — lets the query evaluator
    /// pin a table's contents without cloning. Records a scan.
    pub fn read_owned(&self) -> OwnedReadGuard<Bag> {
        self.stats.record_scan();
        self.data.read_owned()
    }

    /// Write access to the bag (hold time is recorded as downtime). Callers
    /// are responsible for schema validation of what they put in; prefer the
    /// typed mutators below.
    pub fn write(&self) -> TimedWriteGuard<'_, Bag> {
        self.data.write()
    }

    /// Clone the current contents.
    pub fn snapshot_bag(&self) -> Bag {
        self.read().clone()
    }

    /// Current total cardinality.
    pub fn len(&self) -> u64 {
        self.read().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validate a tuple against this table's schema.
    pub fn validate(&self, t: &Tuple) -> Result<()> {
        self.schema.validate(t)
    }

    /// Validate every tuple in a bag against this table's schema.
    pub fn validate_bag(&self, b: &Bag) -> Result<()> {
        for (t, _) in b.iter() {
            self.schema.validate(t)?;
        }
        Ok(())
    }

    /// Insert one tuple occurrence (validated).
    pub fn insert(&self, t: Tuple) -> Result<()> {
        self.validate(&t)?;
        self.write().insert(t);
        self.stats.record_insert(1);
        Ok(())
    }

    /// Apply a delta atomically: `table := (table ∸ del) ⊎ ins`.
    ///
    /// This is the paper's simple-transaction update shape. Both bags are
    /// validated first; the table is mutated under a single write lock.
    pub fn apply_delta(&self, del: &Bag, ins: &Bag) -> Result<()> {
        self.validate_bag(del)?;
        self.validate_bag(ins)?;
        {
            let mut guard = self.write();
            guard.apply_delta(del, ins);
        }
        self.stats.record_delete(del.len());
        self.stats.record_insert(ins.len());
        Ok(())
    }

    /// Replace the entire contents (validated).
    pub fn replace(&self, new: Bag) -> Result<()> {
        self.validate_bag(&new)?;
        let mut guard = self.write();
        let old_len = guard.len();
        *guard = new;
        let new_len = guard.len();
        drop(guard);
        self.stats.record_delete(old_len);
        self.stats.record_insert(new_len);
        Ok(())
    }

    /// Empty the table (`T := φ`).
    pub fn clear(&self) {
        let mut guard = self.write();
        let n = guard.len();
        guard.clear();
        drop(guard);
        self.stats.record_delete(n);
    }
}

impl fmt::Debug for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.name)
            .field("schema", &self.schema)
            .field("kind", &self.kind)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::ValueType;

    fn t() -> Table {
        Table::new(
            "r",
            Schema::from_pairs(&[("a", ValueType::Int)]),
            TableKind::External,
        )
    }

    #[test]
    fn insert_and_len() {
        let table = t();
        table.insert(tuple![1]).unwrap();
        table.insert(tuple![1]).unwrap();
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn insert_validates_schema() {
        let table = t();
        assert!(table.insert(tuple!["oops"]).is_err());
        assert!(table.insert(tuple![1, 2]).is_err());
        assert!(table.is_empty());
    }

    #[test]
    fn apply_delta() {
        let table = t();
        table.insert(tuple![1]).unwrap();
        table.insert(tuple![2]).unwrap();
        let del = Bag::singleton(tuple![1]);
        let ins = Bag::singleton(tuple![3]);
        table.apply_delta(&del, &ins).unwrap();
        let bag = table.snapshot_bag();
        assert!(!bag.contains(&tuple![1]));
        assert!(bag.contains(&tuple![2]));
        assert!(bag.contains(&tuple![3]));
    }

    #[test]
    fn apply_delta_validates_before_mutating() {
        let table = t();
        table.insert(tuple![1]).unwrap();
        let bad = Bag::singleton(tuple!["bad"]);
        assert!(table.apply_delta(&bad, &Bag::new()).is_err());
        assert!(table.apply_delta(&Bag::new(), &bad).is_err());
        assert_eq!(table.len(), 1, "failed delta must not change the table");
    }

    #[test]
    fn replace_and_clear() {
        let table = t();
        table.insert(tuple![1]).unwrap();
        table
            .replace(Bag::from_tuples([tuple![7], tuple![8]]))
            .unwrap();
        assert_eq!(table.len(), 2);
        table.clear();
        assert!(table.is_empty());
    }

    #[test]
    fn stats_track_operations() {
        let table = t();
        table.insert(tuple![1]).unwrap();
        table
            .apply_delta(&Bag::singleton(tuple![1]), &Bag::new())
            .unwrap();
        let s = table.stats().snapshot();
        assert_eq!(s.tuples_inserted, 1);
        assert_eq!(s.tuples_deleted, 1);
    }

    #[test]
    fn write_lock_metrics_accumulate() {
        let table = t();
        table.insert(tuple![1]).unwrap();
        assert!(table.lock_metrics().snapshot().write_acquisitions >= 1);
    }

    #[test]
    fn kind() {
        assert_eq!(t().kind(), TableKind::External);
    }
}
