//! Substitutions (Section 2.4) and past/future queries (Section 2.5).
//!
//! A general substitution `η = [Q1/R1, …, Qn/Rn]` simultaneously replaces
//! every table occurrence. The paper's differential machinery works on
//! **factored** substitutions, where each `Qi` has the shape
//! `(Ri ∸ Di) ⊎ Ai`; the two directions of time are then:
//!
//! * `FUTURE(T, Q) = T̂(Q)` with `Di = ∇Ri`, `Ai = ΔRi` (anticipate a
//!   transaction's changes), and
//! * `PAST(L, Q) = L̂(Q)` with `Di = ▲Ri`, `Ai = ▼Ri` (compensate for
//!   logged changes — note insertions/deletions swap roles).

use crate::expr::Expr;
use std::collections::BTreeMap;

/// A general substitution: table name → replacement expression.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Substitution {
    map: BTreeMap<String, Expr>,
}

impl Substitution {
    /// The identity substitution.
    pub fn new() -> Self {
        Substitution::default()
    }

    /// Map `table` to `replacement`.
    pub fn set(&mut self, table: impl Into<String>, replacement: Expr) -> &mut Self {
        self.map.insert(table.into(), replacement);
        self
    }

    /// The replacement for `table`, if any.
    pub fn get(&self, table: &str) -> Option<&Expr> {
        self.map.get(table)
    }

    /// Apply simultaneously: every `Table(R)` in `expr` with a mapping is
    /// replaced. (Simultaneity is inherent: replacements are *not*
    /// re-substituted.)
    pub fn apply(&self, expr: &Expr) -> Expr {
        match expr {
            Expr::Table(name) => match self.map.get(name) {
                Some(replacement) => replacement.clone(),
                None => expr.clone(),
            },
            Expr::Literal { .. } => expr.clone(),
            Expr::Alias { alias, input } => Expr::Alias {
                alias: alias.clone(),
                input: Box::new(self.apply(input)),
            },
            Expr::Select { pred, input } => Expr::Select {
                pred: pred.clone(),
                input: Box::new(self.apply(input)),
            },
            Expr::Project { cols, input } => Expr::Project {
                cols: cols.clone(),
                input: Box::new(self.apply(input)),
            },
            Expr::DupElim(e) => Expr::DupElim(Box::new(self.apply(e))),
            Expr::Union(a, b) => Expr::Union(Box::new(self.apply(a)), Box::new(self.apply(b))),
            Expr::Monus(a, b) => Expr::Monus(Box::new(self.apply(a)), Box::new(self.apply(b))),
            Expr::Product(a, b) => Expr::Product(Box::new(self.apply(a)), Box::new(self.apply(b))),
            Expr::MinIntersect(a, b) => {
                Expr::MinIntersect(Box::new(self.apply(a)), Box::new(self.apply(b)))
            }
            Expr::MaxUnion(a, b) => {
                Expr::MaxUnion(Box::new(self.apply(a)), Box::new(self.apply(b)))
            }
            Expr::Except(a, b) => Expr::Except(Box::new(self.apply(a)), Box::new(self.apply(b))),
            Expr::GroupAggregate { keys, aggs, input } => Expr::GroupAggregate {
                keys: keys.clone(),
                aggs: aggs.clone(),
                input: Box::new(self.apply(input)),
            },
        }
    }
}

/// A factored substitution: each table maps to `(R ∸ D) ⊎ A`.
///
/// `D` and `A` are arbitrary expressions (usually references to log or
/// staging tables, or literals). Tables without an entry are unchanged,
/// i.e. `D = A = φ`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FactoredSubstitution {
    map: BTreeMap<String, (Expr, Expr)>,
}

impl FactoredSubstitution {
    /// The identity factored substitution.
    pub fn new() -> Self {
        FactoredSubstitution::default()
    }

    /// Set `table ↦ (table ∸ del) ⊎ add`.
    pub fn set(&mut self, table: impl Into<String>, del: Expr, add: Expr) -> &mut Self {
        self.map.insert(table.into(), (del, add));
        self
    }

    /// The `(D, A)` pair for `table`, if present.
    pub fn get(&self, table: &str) -> Option<(&Expr, &Expr)> {
        self.map.get(table).map(|(d, a)| (d, a))
    }

    /// Tables with explicit entries.
    pub fn tables(&self) -> impl Iterator<Item = &String> {
        self.map.keys()
    }

    /// Number of explicit entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether there are no explicit entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// View as a general [`Substitution`]: `R ↦ (R ∸ D) ⊎ A`.
    pub fn to_substitution(&self) -> Substitution {
        let mut s = Substitution::new();
        for (table, (del, add)) in &self.map {
            s.set(
                table.clone(),
                Expr::table(table.clone())
                    .monus(del.clone())
                    .union(add.clone()),
            );
        }
        s
    }

    /// Apply `η(Q)`: replace every `Table(R)` with `(R ∸ D) ⊎ A`.
    pub fn apply(&self, expr: &Expr) -> Expr {
        self.to_substitution().apply(expr)
    }

    /// The dual substitution: swap the roles of `D` and `A` for every table.
    ///
    /// This is the duality of Section 4: if `self` encodes a transaction
    /// `T̂` (`R ↦ (R ∸ ∇R) ⊎ ΔR`), the dual encodes the log `L̂` that would
    /// record `T`'s changes (`R ↦ (R ∸ ▲R) ⊎ ▼R` with `▲ = Δ`, `▼ = ∇`).
    pub fn dual(&self) -> FactoredSubstitution {
        FactoredSubstitution {
            map: self
                .map
                .iter()
                .map(|(t, (d, a))| (t.clone(), (a.clone(), d.clone())))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{col, Predicate};

    #[test]
    fn general_substitution_simultaneous() {
        // η = [ε(R2)/R1, σ_q(R1)/R2] applied to σ_p(R1 × R2)
        // gives σ_p(ε(R2) × σ_q(R1)) — Section 2.4's example.
        let mut eta = Substitution::new();
        eta.set("R1", Expr::table("R2").dedup());
        eta.set(
            "R2",
            Expr::table("R1").select(Predicate::eq(col("q"), col("q"))),
        );
        let q = Expr::table("R1")
            .product(Expr::table("R2"))
            .select(Predicate::eq(col("p"), col("p")));
        let out = eta.apply(&q);
        let expected = Expr::table("R2")
            .dedup()
            .product(Expr::table("R1").select(Predicate::eq(col("q"), col("q"))))
            .select(Predicate::eq(col("p"), col("p")));
        assert_eq!(out, expected);
    }

    #[test]
    fn unmapped_tables_untouched() {
        let mut eta = Substitution::new();
        eta.set("R", Expr::table("X"));
        let q = Expr::table("R").union(Expr::table("S"));
        assert_eq!(eta.apply(&q), Expr::table("X").union(Expr::table("S")));
    }

    #[test]
    fn factored_apply_shape() {
        let mut f = FactoredSubstitution::new();
        f.set("R", Expr::table("delR"), Expr::table("insR"));
        let out = f.apply(&Expr::table("R"));
        assert_eq!(
            out,
            Expr::table("R")
                .monus(Expr::table("delR"))
                .union(Expr::table("insR"))
        );
    }

    #[test]
    fn dual_swaps_roles() {
        let mut f = FactoredSubstitution::new();
        f.set("R", Expr::table("d"), Expr::table("a"));
        let d = f.dual();
        let (del, add) = d.get("R").unwrap();
        assert_eq!(del, &Expr::table("a"));
        assert_eq!(add, &Expr::table("d"));
        assert_eq!(d.dual(), f, "dual is an involution");
    }

    #[test]
    fn substitution_under_alias_and_self_join() {
        let mut f = FactoredSubstitution::new();
        f.set("R", Expr::table("d"), Expr::table("a"));
        let q = Expr::table("R")
            .alias("x")
            .product(Expr::table("R").alias("y"));
        let out = f.apply(&q);
        let repl = Expr::table("R")
            .monus(Expr::table("d"))
            .union(Expr::table("a"));
        assert_eq!(
            out,
            repl.clone().alias("x").product(repl.alias("y")),
            "every occurrence replaced, aliases preserved"
        );
    }

    #[test]
    fn empty_factored_is_identity() {
        let f = FactoredSubstitution::new();
        let q = Expr::table("R").union(Expr::table("S"));
        assert_eq!(f.apply(&q), q);
        assert!(f.is_empty());
    }
}
