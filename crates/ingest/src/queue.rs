//! A bounded MPSC queue with blocking and non-blocking producers.
//!
//! One instance backs each base table's change feed in the ingest
//! pipeline. Producers either *block* until space frees (backpressure)
//! or *try* and get the item back on a full queue (shed mode counts the
//! drop). The single consumer — the ingest worker — never blocks here;
//! it polls [`BoundedQueue::pop`] and parks on the pipeline's shared
//! work signal instead, so one worker can drain many queues.
//!
//! Built directly on `std::sync::{Mutex, Condvar}` (the same choice as
//! the testkit worker pool, which needs a condvar the poison-unwrapping
//! shims don't wrap); lock poisoning is converted to a normal unwrap
//! because a poisoned queue means a producer/consumer already panicked
//! and the test run is lost anyway.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity (only from [`BoundedQueue::try_push`]);
    /// the rejected item is returned to the caller.
    Full(T),
    /// The queue was closed; no further items are accepted.
    Closed(T),
}

struct Inner<T> {
    buf: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer queue. See the module docs.
pub struct BoundedQueue<T> {
    cap: usize,
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `cap` items (`cap` ≥ 1 enforced).
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                buf: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
        }
    }

    /// Capacity this queue was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue, waiting for space while the queue is full (producer-side
    /// backpressure). Fails only once the queue is closed.
    pub fn push_blocking(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if g.closed {
                return Err(PushError::Closed(item));
            }
            if g.buf.len() < self.cap {
                g.buf.push_back(item);
                return Ok(());
            }
            g = self.not_full.wait(g).unwrap();
        }
    }

    /// Enqueue without waiting: a full queue returns the item via
    /// [`PushError::Full`] so shed-mode admission can count the drop.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.buf.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        g.buf.push_back(item);
        Ok(())
    }

    /// Dequeue the oldest item, if any, waking one blocked producer.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap();
        let item = g.buf.pop_front();
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Close the queue: subsequent pushes fail, blocked producers wake
    /// with [`PushError::Closed`], already-queued items stay poppable.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_full.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push_blocking(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.try_push(9), Err(PushError::Full(9)));
        assert_eq!((q.pop(), q.pop(), q.pop(), q.pop()), (Some(0), Some(1), Some(2), Some(3)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push_blocking(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.push_blocking(1).is_ok());
        // The producer must be parked: give it time, verify nothing landed.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1, "producer blocked at capacity");
        assert_eq!(q.pop(), Some(0));
        assert!(h.join().unwrap(), "freed slot unblocked the producer");
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn close_wakes_blocked_producer_and_rejects_new_pushes() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push_blocking(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.push_blocking(1));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), Err(PushError::Closed(1)));
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        // Draining still works after close.
        assert_eq!(q.pop(), Some(0));
        assert!(q.pop().is_none());
    }
}
