//! Robustness: the SQL front end must never panic — every input, however
//! mangled, either parses or returns a structured error.
//!
//! Ported from proptest to the in-workspace `dvm-testkit` harness. The old
//! `fuzz.proptest-regressions` corpus is preserved as explicit pinned
//! regression tests at the bottom of this file.

use dvm_sql::{parse_statement, sql_to_statement};
use dvm_testkit::{Prop, Rng};

/// Arbitrary characters (the old `.{0,200}` strategy): mostly printable
/// ASCII, salted with whitespace, quotes, and multi-byte unicode.
fn arb_string(rng: &mut Rng, max_len: usize) -> String {
    let len = rng.range_usize(0, max_len + 1);
    let mut s = String::with_capacity(len);
    for _ in 0..len {
        let c = match rng.below(10) {
            0..=5 => char::from(rng.range(0x20, 0x7f) as u8),
            6 => *rng.choice(&[' ', '\t', '\'', '"', ';', '\\', '\0']),
            7 => *rng.choice(&['é', 'ß', '日', '🦀', '¼', '∑']),
            _ => char::from(rng.range(b'a' as i64, b'z' as i64 + 1) as u8),
        };
        s.push(c);
    }
    s
}

/// A lowercase identifier `[a-z]{lo,hi}`.
fn arb_ident(rng: &mut Rng, lo: usize, hi: usize) -> String {
    let len = rng.range_usize(lo, hi + 1);
    (0..len)
        .map(|_| char::from(rng.range(b'a' as i64, b'z' as i64 + 1) as u8))
        .collect()
}

/// Arbitrary byte soup: no panics.
#[test]
fn arbitrary_strings_never_panic() {
    Prop::new("arbitrary_strings_never_panic")
        .cases(512)
        .run(|rng| {
            let input = arb_string(rng, 200);
            let _ = parse_statement(&input);
            let _ = sql_to_statement(&input);
        });
}

/// SQL-shaped soup: random keywords/idents/operators glued together.
#[test]
fn sql_shaped_soup_never_panics() {
    const TOKENS: &[&str] = &[
        "SELECT", "FROM", "WHERE", "CREATE", "VIEW", "TABLE", "INSERT", "DELETE", "UNION", "ALL",
        "EXCEPT", "INTERSECT", "AND", "OR", "NOT", "(", ")", ",", "*", "=", "<", ">=", "'str'",
        "42", "3.5", "tbl", "a.b", ";",
    ];
    Prop::new("sql_shaped_soup_never_panics")
        .cases(512)
        .run(|rng| {
            let n = rng.range_usize(0, 30);
            let tokens: Vec<&str> = (0..n).map(|_| *rng.choice(TOKENS)).collect();
            let input = tokens.join(" ");
            let _ = parse_statement(&input);
            let _ = sql_to_statement(&input);
        });
}

/// Valid single-table selects round-trip through parse + lower.
#[test]
fn generated_selects_parse() {
    Prop::new("generated_selects_parse").cases(256).run(|rng| {
        let ncols = rng.range_usize(1, 4);
        // prefix identifiers so they can never collide with SQL keywords
        let cols: Vec<String> = (0..ncols)
            .map(|_| format!("c_{}", arb_ident(rng, 1, 6)))
            .collect();
        let table = arb_ident(rng, 1, 8);
        let distinct = rng.flip();
        let sql = format!(
            "SELECT {}{} FROM t_{}",
            if distinct { "DISTINCT " } else { "" },
            cols.join(", "),
            table
        );
        let stmt = sql_to_statement(&sql);
        assert!(stmt.is_ok(), "{sql}: {stmt:?}");
    });
}

/// Numeric and string literals survive INSERT round-trips.
#[test]
fn insert_literals_roundtrip() {
    Prop::new("insert_literals_roundtrip")
        .cases(256)
        .run(|rng| {
            let v1 = rng.any_i64();
            let v2 = rng.f64_range(-1.0e10, 1.0e10);
            let sql = format!("INSERT INTO t VALUES ({v1}, {v2:.4})");
            // negative numbers are not in the literal grammar (no unary minus);
            // only assert no panic and well-formed positives parse
            let parsed = sql_to_statement(&sql);
            if v1 >= 0 && v2 >= 0.0 {
                assert!(parsed.is_ok(), "{sql}: {parsed:?}");
            }
        });
}

#[test]
fn deeply_nested_parens_do_not_overflow() {
    // recursive-descent depth check: keep below the default stack but deep
    // enough to catch accidental quadratic/looping behaviour
    let depth = 200;
    let mut q = String::new();
    for _ in 0..depth {
        q.push('(');
    }
    q.push_str("SELECT a FROM t");
    for _ in 0..depth {
        q.push(')');
    }
    assert!(dvm_sql::parse_query(&q).is_ok());
    // unbalanced versions error cleanly
    assert!(dvm_sql::parse_query(&q[..q.len() - 1]).is_err());
}

// ---- pinned regressions (the old fuzz.proptest-regressions corpus) ------
//
// proptest stored opaque shrink hashes; each entry below is the shrunk
// counterexample it recorded, as an explicit deterministic test so the
// corpus keeps running under the new harness.

/// `cc f282ccc5…`: shrunk to `cols = ["or"], table = "a", distinct = false`.
/// A keyword-shaped column name survived shrinking because the `c_` prefix
/// must keep it out of the keyword table — verify it still does.
#[test]
fn regression_keyword_shaped_identifiers_parse() {
    let sql = "SELECT c_or FROM t_a";
    let stmt = sql_to_statement(sql);
    assert!(stmt.is_ok(), "{sql}: {stmt:?}");
    // and the unprefixed keyword really is the danger the prefix avoids:
    // `SELECT or FROM a` must error, not panic
    assert!(sql_to_statement("SELECT or FROM a").is_err());
}
