//! Algebra-layer errors.

use dvm_storage::StorageError;
use std::fmt;

/// Errors raised while type-checking, compiling, or evaluating queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// Underlying storage error (missing table, bad column, ...).
    Storage(StorageError),
    /// A binary bag operator was applied to schemas that are not
    /// union-compatible (same arity and positional types).
    NotUnionCompatible {
        /// The operator, e.g. "⊎".
        op: &'static str,
        /// Left schema rendered for diagnostics.
        left: String,
        /// Right schema rendered for diagnostics.
        right: String,
    },
    /// A comparison predicate was applied to incomparable operand types.
    IncomparableOperands {
        /// Left operand rendered.
        left: String,
        /// Right operand rendered.
        right: String,
    },
    /// A literal bag did not conform to its declared schema.
    BadLiteral(String),
    /// EXCEPT expansion requires distinct, nonempty column names.
    UnexpandableExcept(String),
    /// An aggregate call is ill-typed or ill-formed (non-numeric SUM/AVG
    /// argument, argument-less function other than `COUNT(*)`, …).
    BadAggregate(String),
    /// Joining two tuples overflowed the `u64` multiplicity counter.
    ///
    /// Deferred maintenance trades in exact multiplicities (the differential
    /// formulas of Lemma 1 cancel occurrence counts), so clamping here would
    /// silently corrupt every downstream delta — surface it instead.
    MultiplicityOverflow {
        /// Multiplicity of the probe-side tuple.
        left: u64,
        /// Multiplicity of the build-side tuple.
        right: u64,
    },
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::Storage(e) => write!(f, "{e}"),
            AlgebraError::NotUnionCompatible { op, left, right } => {
                write!(
                    f,
                    "operands of {op} are not union-compatible: {left} vs {right}"
                )
            }
            AlgebraError::IncomparableOperands { left, right } => {
                write!(f, "cannot compare {left} with {right}")
            }
            AlgebraError::BadLiteral(msg) => write!(f, "bad literal bag: {msg}"),
            AlgebraError::UnexpandableExcept(msg) => {
                write!(f, "cannot expand EXCEPT: {msg}")
            }
            AlgebraError::BadAggregate(msg) => write!(f, "bad aggregate: {msg}"),
            AlgebraError::MultiplicityOverflow { left, right } => {
                write!(
                    f,
                    "joined multiplicity overflows u64: {left} * {right}"
                )
            }
        }
    }
}

impl std::error::Error for AlgebraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlgebraError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for AlgebraError {
    fn from(e: StorageError) -> Self {
        AlgebraError::Storage(e)
    }
}

/// Result alias for algebra operations.
pub type Result<T> = std::result::Result<T, AlgebraError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = AlgebraError::from(StorageError::NoSuchTable("r".into()));
        assert_eq!(e.to_string(), "no such table 'r'");
        assert!(std::error::Error::source(&e).is_some());

        let e = AlgebraError::NotUnionCompatible {
            op: "⊎",
            left: "(a: INT)".into(),
            right: "(b: STRING)".into(),
        };
        assert!(e.to_string().contains("union-compatible"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
