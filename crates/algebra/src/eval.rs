//! Plan evaluation.
//!
//! Evaluation is strictly bottom-up over owned/borrowed bags. Table contents
//! come from a [`BagSource`]; the production source is [`PinnedState`],
//! which acquires one read lock per distinct table *up front in sorted name
//! order* — so a query never takes a recursive read lock (self-joins scan
//! the same pinned bag twice) and concurrent evaluations cannot deadlock.

use crate::error::Result;
use crate::infer::CompiledQuery;
use crate::plan::Plan;
use dvm_storage::lock::OwnedReadGuard;
use dvm_storage::{Bag, Catalog, Snapshot, StorageError};
use std::borrow::Cow;
use std::collections::{BTreeSet, HashMap};

/// Read access to named bags for the duration of one evaluation.
pub trait BagSource {
    /// Borrow the bag backing `table`.
    fn bag(&self, table: &str) -> Result<&Bag>;
}

/// A set of tables pinned with read locks for consistent evaluation.
///
/// Locks are acquired in sorted table-name order; drop the `PinnedState` to
/// release them.
pub struct PinnedState {
    guards: HashMap<String, OwnedReadGuard<Bag>>,
}

impl PinnedState {
    /// Pin all `tables` from the catalog (sorted acquisition order).
    pub fn pin(catalog: &Catalog, tables: &BTreeSet<String>) -> Result<Self> {
        let mut guards = HashMap::with_capacity(tables.len());
        for name in tables {
            let table = catalog.require(name)?;
            guards.insert(name.clone(), table.read_owned());
        }
        Ok(PinnedState { guards })
    }

    /// Pin exactly the tables a plan scans.
    pub fn pin_for(catalog: &Catalog, plan: &Plan) -> Result<Self> {
        Self::pin(catalog, &plan.tables())
    }
}

impl BagSource for PinnedState {
    fn bag(&self, table: &str) -> Result<&Bag> {
        self.guards
            .get(table)
            .map(|g| &**g)
            .ok_or_else(|| StorageError::NoSuchTable(table.to_string()).into())
    }
}

impl BagSource for Snapshot {
    fn bag(&self, table: &str) -> Result<&Bag> {
        Snapshot::bag(self, table)
            .ok_or_else(|| StorageError::NoSuchTable(table.to_string()).into())
    }
}

impl BagSource for HashMap<String, Bag> {
    fn bag(&self, table: &str) -> Result<&Bag> {
        self.get(table)
            .ok_or_else(|| StorageError::NoSuchTable(table.to_string()).into())
    }
}

/// Evaluate a plan against a bag source, returning an owned bag.
pub fn eval(plan: &Plan, src: &dyn BagSource) -> Result<Bag> {
    Ok(eval_cow(plan, src)?.into_owned())
}

/// Evaluate a compiled query against the current catalog state, pinning the
/// tables it reads.
pub fn eval_in_catalog(query: &CompiledQuery, catalog: &Catalog) -> Result<Bag> {
    let pinned = PinnedState::pin_for(catalog, &query.plan)?;
    eval(&query.plan, &pinned)
}

fn eval_cow<'a>(plan: &'a Plan, src: &'a dyn BagSource) -> Result<Cow<'a, Bag>> {
    Ok(match plan {
        Plan::Scan(name) => Cow::Borrowed(src.bag(name)?),
        Plan::Literal(bag) => Cow::Borrowed(bag),
        Plan::Filter(pred, input) => {
            let b = eval_cow(input, src)?;
            Cow::Owned(b.select(|t| pred.eval(t)))
        }
        Plan::Project(indices, input) => {
            let b = eval_cow(input, src)?;
            Cow::Owned(b.project(indices))
        }
        Plan::DupElim(input) => {
            let b = eval_cow(input, src)?;
            Cow::Owned(b.dedup())
        }
        Plan::Union(a, b) => {
            let x = eval_cow(a, src)?;
            let y = eval_cow(b, src)?;
            Cow::Owned(x.union(&y))
        }
        Plan::Monus(a, b) => {
            let x = eval_cow(a, src)?;
            let y = eval_cow(b, src)?;
            // Avoid cloning the left side when it is already owned.
            match x {
                Cow::Owned(mut owned) => {
                    owned.monus_assign(&y);
                    Cow::Owned(owned)
                }
                Cow::Borrowed(b_ref) => Cow::Owned(b_ref.monus(&y)),
            }
        }
        Plan::Product(a, b) => {
            let x = eval_cow(a, src)?;
            let y = eval_cow(b, src)?;
            Cow::Owned(x.product(&y))
        }
        Plan::MinIntersect(a, b) => {
            let x = eval_cow(a, src)?;
            let y = eval_cow(b, src)?;
            Cow::Owned(x.min_intersect(&y))
        }
        Plan::MaxUnion(a, b) => {
            let x = eval_cow(a, src)?;
            let y = eval_cow(b, src)?;
            Cow::Owned(x.max_union(&y))
        }
        Plan::Except(a, b) => {
            let x = eval_cow(a, src)?;
            let y = eval_cow(b, src)?;
            Cow::Owned(x.except_all_occurrences(&y))
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => {
            let l = eval_cow(left, src)?;
            let r = eval_cow(right, src)?;
            Cow::Owned(hash_join(&l, &r, left_keys, right_keys, residual)?)
        }
    })
}

/// Hash equi-join: build on the right side, probe with the left.
/// Multiplicities multiply (checked — an overflow is surfaced as
/// [`crate::AlgebraError::MultiplicityOverflow`], never clamped); `residual`
/// filters the concatenated tuple.
fn hash_join(
    left: &Bag,
    right: &Bag,
    left_keys: &[usize],
    right_keys: &[usize],
    residual: &crate::plan::PhysPredicate,
) -> Result<Bag> {
    use dvm_storage::{Tuple, Value};
    // Key values are normalized so hash-equality coincides with the
    // evaluator's SQL comparison semantics: integers coerce to doubles
    // (sql_cmp compares them via f64 conversion, with the same precision
    // behaviour), and NULL never joins.
    fn key_of(t: &Tuple, keys: &[usize]) -> Option<Vec<Value>> {
        let mut out = Vec::with_capacity(keys.len());
        for &i in keys {
            match &t[i] {
                Value::Null => return None,
                Value::Int(v) => out.push(Value::Double(*v as f64)),
                other => out.push(other.clone()),
            }
        }
        Some(out)
    }
    let mut build: HashMap<Vec<Value>, Vec<(&Tuple, u64)>> =
        HashMap::with_capacity(right.distinct_len());
    for (t, m) in right.iter() {
        let Some(key) = key_of(t, right_keys) else {
            continue;
        };
        build.entry(key).or_default().push((t, m));
    }
    let mut out = Bag::new();
    for (lt, lm) in left.iter() {
        let Some(key) = key_of(lt, left_keys) else {
            continue;
        };
        if let Some(matches) = build.get(&key) {
            for (rt, rm) in matches {
                let joined = lt.concat(rt);
                if residual.eval(&joined) {
                    let m = lm.checked_mul(*rm).ok_or(
                        crate::AlgebraError::MultiplicityOverflow {
                            left: lm,
                            right: *rm,
                        },
                    )?;
                    out.insert_n(joined, m);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::infer::compile;
    use crate::predicate::{col, lit, Predicate};
    use dvm_storage::{tuple, Schema, TableKind, ValueType};

    fn catalog() -> Catalog {
        let c = Catalog::new();
        let r = c
            .create_table(
                "r",
                Schema::from_pairs(&[("a", ValueType::Int), ("b", ValueType::Int)]),
                TableKind::External,
            )
            .unwrap();
        r.insert(tuple![1, 10]).unwrap();
        r.insert(tuple![1, 10]).unwrap();
        r.insert(tuple![2, 20]).unwrap();
        let s = c
            .create_table(
                "s",
                Schema::from_pairs(&[("b", ValueType::Int), ("c", ValueType::Int)]),
                TableKind::External,
            )
            .unwrap();
        s.insert(tuple![10, 100]).unwrap();
        s.insert(tuple![30, 300]).unwrap();
        c
    }

    fn run(c: &Catalog, e: &Expr) -> Bag {
        let q = compile(e, c).unwrap();
        eval_in_catalog(&q, c).unwrap()
    }

    #[test]
    fn scan_and_filter() {
        let c = catalog();
        let out = run(
            &c,
            &Expr::table("r").select(Predicate::eq(col("a"), lit(1i64))),
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out.multiplicity(&tuple![1, 10]), 2);
    }

    #[test]
    fn join_via_product_preserves_duplicates() {
        let c = catalog();
        // R ⋈ S on r.b = s.b: [1,10] (×2) joins [10,100] → two results
        let e = Expr::table("r")
            .alias("r")
            .product(Expr::table("s").alias("s"))
            .select(Predicate::eq(col("r.b"), col("s.b")))
            .project(["a", "c"]);
        let out = run(&c, &e);
        assert_eq!(out.multiplicity(&tuple![1, 100]), 2);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn self_join_scans_pinned_bag_twice() {
        let c = catalog();
        let e = Expr::table("r")
            .alias("x")
            .product(Expr::table("r").alias("y"))
            .select(Predicate::eq(col("x.a"), col("y.a")));
        let out = run(&c, &e);
        // [1,10]×2 self-join on a=1: 2*2 = 4; plus [2,20]: 1. Total 5.
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn union_monus_dedup() {
        let c = catalog();
        let r = Expr::table("r");
        assert_eq!(run(&c, &r.clone().union(r.clone())).len(), 6);
        assert!(run(&c, &r.clone().monus(r.clone())).is_empty());
        assert_eq!(run(&c, &r.clone().dedup()).len(), 2);
    }

    #[test]
    fn projection_merges_duplicates() {
        let c = catalog();
        let out = run(&c, &Expr::table("r").project(["a"]));
        assert_eq!(out.multiplicity(&tuple![1]), 2);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn min_max_except() {
        let c = catalog();
        let two = Expr::table("r").union(Expr::table("r"));
        let one = Expr::table("r");
        let mn = run(&c, &two.clone().min_intersect(one.clone()));
        assert_eq!(mn.multiplicity(&tuple![1, 10]), 2);
        let mx = run(&c, &two.clone().max_union(one.clone()));
        assert_eq!(mx.multiplicity(&tuple![1, 10]), 4);
        // EXCEPT removes all occurrences
        let ex = run(
            &c,
            &two.except(Expr::table("r").select(Predicate::eq(col("a"), lit(1i64)))),
        );
        assert_eq!(ex.multiplicity(&tuple![1, 10]), 0);
        assert_eq!(ex.multiplicity(&tuple![2, 20]), 2);
    }

    #[test]
    fn eval_against_snapshot() {
        let c = catalog();
        let snap = c.snapshot();
        // mutate after snapshot
        c.get("r").unwrap().insert(tuple![9, 90]).unwrap();
        let q = compile(&Expr::table("r"), &c).unwrap();
        let now = eval_in_catalog(&q, &c).unwrap();
        let then = eval(&q.plan, &snap).unwrap();
        assert_eq!(now.len(), 4);
        assert_eq!(then.len(), 3, "snapshot sees the past state");
    }

    #[test]
    fn eval_missing_table_in_snapshot_errors() {
        let c = Catalog::new();
        let snap = c.snapshot();
        let plan = Plan::Scan("ghost".to_string());
        assert!(eval(&plan, &snap).is_err());
    }

    #[test]
    fn literal_eval() {
        let c = catalog();
        let s = Schema::from_pairs(&[("a", ValueType::Int), ("b", ValueType::Int)]);
        let e = Expr::literal(Bag::singleton(tuple![7, 70]), s);
        let out = run(&c, &e.union(Expr::table("r")));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn hash_join_multiplicity_overflow_is_an_error() {
        use crate::AlgebraError;
        let c = Catalog::new();
        for name in ["hl", "hr"] {
            let t = c
                .create_table(
                    name,
                    Schema::from_pairs(&[("k", ValueType::Int)]),
                    TableKind::External,
                )
                .unwrap();
            let mut huge = Bag::new();
            huge.insert_n(tuple![1], u64::MAX / 2);
            t.replace(huge).unwrap();
        }
        let e = Expr::table("hl")
            .alias("l")
            .product(Expr::table("hr").alias("r"))
            .select(Predicate::eq(col("l.k"), col("r.k")));
        let q = compile(&e, &c).unwrap();
        assert!(
            matches!(q.plan, Plan::HashJoin { .. }),
            "equi-join must compile to a hash join for this test to bite"
        );
        let err = eval_in_catalog(&q, &c).unwrap_err();
        assert!(matches!(err, AlgebraError::MultiplicityOverflow { .. }));
        assert!(err.to_string().contains("overflows u64"));
    }

    #[test]
    fn hash_join_large_but_representable_multiplicities_ok() {
        let c = Catalog::new();
        let mk = |name: &str, m: u64| {
            let t = c
                .create_table(
                    name,
                    Schema::from_pairs(&[("k", ValueType::Int)]),
                    TableKind::External,
                )
                .unwrap();
            let mut b = Bag::new();
            b.insert_n(tuple![1], m);
            t.replace(b).unwrap();
        };
        mk("gl", 1 << 32);
        mk("gr", (1 << 31) - 1);
        let e = Expr::table("gl")
            .alias("l")
            .product(Expr::table("gr").alias("r"))
            .select(Predicate::eq(col("l.k"), col("r.k")));
        let q = compile(&e, &c).unwrap();
        let out = eval_in_catalog(&q, &c).unwrap();
        assert_eq!(out.multiplicity(&tuple![1, 1]), (1u64 << 32) * ((1 << 31) - 1));
    }

    #[test]
    fn hashmap_source() {
        let mut m = HashMap::new();
        m.insert("t".to_string(), Bag::singleton(tuple![1]));
        let plan = Plan::Scan("t".to_string());
        assert_eq!(eval(&plan, &m).unwrap().len(), 1);
        assert!(eval(&Plan::Scan("u".into()), &m).is_err());
    }
}
