//! Workload determinism: the retail generator is a pure function of its
//! seed. Two generators with the same configuration must emit *byte-for-
//! byte identical* transaction traces (Zipf sampling included), because
//! every experiment's reproducibility — and the bench harness's
//! comparability across commits — rests on it.

use dvm_testkit::Rng;
use dvm_workload::{RetailConfig, RetailGen, Zipf};

fn cfg(seed: u64) -> RetailConfig {
    RetailConfig {
        customers: 80,
        items: 40,
        initial_sales: 300,
        seed,
        ..RetailConfig::default()
    }
}

/// Canonical serialization of a bag: tuples with multiplicities, sorted
/// (bags hash-map iteration order is not stable, the *contents* are).
fn canon(bag: &dvm_storage::Bag) -> String {
    let mut rows: Vec<String> = bag.iter().map(|(t, m)| format!("{t:?}x{m}")).collect();
    rows.sort();
    rows.join(",")
}

/// Serialize a full mixed workload trace (the exact tuples, per batch).
fn trace(seed: u64) -> String {
    let mut g = RetailGen::new(cfg(seed));
    let mut out = String::new();
    for round in 0..10 {
        let tx = match round % 4 {
            0 => g.sales_batch(7),
            1 => g.mixed_batch(5, 2),
            2 => g.churn_batch(3),
            _ => g.score_change_batch(4),
        };
        for table in ["sales", "customer"] {
            if let Some((del, ins)) = tx.get(table) {
                out.push_str(&format!(
                    "{round} {table} del=[{}] ins=[{}]\n",
                    canon(del),
                    canon(ins)
                ));
            }
        }
    }
    out
}

#[test]
fn same_seed_produces_identical_traces() {
    assert_eq!(trace(7), trace(7), "trace must be a function of the seed");
}

#[test]
fn different_seeds_produce_different_traces() {
    assert_ne!(trace(7), trace(8));
}

#[test]
fn install_is_deterministic_too() {
    use dvm_core::Database;
    let load = |seed| {
        let db = Database::new();
        let mut g = RetailGen::new(cfg(seed));
        g.install(&db).unwrap();
        (
            db.catalog().require("customer").unwrap().snapshot_bag(),
            db.catalog().require("sales").unwrap().snapshot_bag(),
        )
    };
    assert_eq!(load(5), load(5));
    assert_ne!(load(5).1, load(6).1, "sales rows depend on the seed");
}

#[test]
fn zipf_sampling_is_deterministic() {
    let z = Zipf::new(100, 0.9);
    let draw = |seed| {
        let mut rng = Rng::new(seed);
        (0..1_000).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
    };
    assert_eq!(draw(42), draw(42));
    assert_ne!(draw(42), draw(43));
}
