//! Robustness: the SQL front end must never panic — every input, however
//! mangled, either parses or returns a structured error.

use dvm_sql::{parse_statement, sql_to_statement};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup: no panics.
    #[test]
    fn arbitrary_strings_never_panic(input in ".{0,200}") {
        let _ = parse_statement(&input);
        let _ = sql_to_statement(&input);
    }

    /// SQL-shaped soup: random keywords/idents/operators glued together.
    #[test]
    fn sql_shaped_soup_never_panics(tokens in proptest::collection::vec(
        prop_oneof![
            Just("SELECT".to_string()), Just("FROM".to_string()),
            Just("WHERE".to_string()), Just("CREATE".to_string()),
            Just("VIEW".to_string()), Just("TABLE".to_string()),
            Just("INSERT".to_string()), Just("DELETE".to_string()),
            Just("UNION".to_string()), Just("ALL".to_string()),
            Just("EXCEPT".to_string()), Just("INTERSECT".to_string()),
            Just("AND".to_string()), Just("OR".to_string()),
            Just("NOT".to_string()), Just("(".to_string()),
            Just(")".to_string()), Just(",".to_string()),
            Just("*".to_string()), Just("=".to_string()),
            Just("<".to_string()), Just(">=".to_string()),
            Just("'str'".to_string()), Just("42".to_string()),
            Just("3.5".to_string()), Just("tbl".to_string()),
            Just("a.b".to_string()), Just(";".to_string()),
        ],
        0..30,
    )) {
        let input = tokens.join(" ");
        let _ = parse_statement(&input);
        let _ = sql_to_statement(&input);
    }

    /// Valid single-table selects round-trip through parse + lower.
    #[test]
    fn generated_selects_parse(cols in proptest::collection::vec("[a-z]{1,6}", 1..4),
                               table in "[a-z]{1,8}",
                               distinct in any::<bool>()) {
        // prefix identifiers so they can never collide with SQL keywords
        let cols: Vec<String> = cols.iter().map(|c| format!("c_{c}")).collect();
        let sql = format!(
            "SELECT {}{} FROM t_{}",
            if distinct { "DISTINCT " } else { "" },
            cols.join(", "),
            table
        );
        let stmt = sql_to_statement(&sql);
        prop_assert!(stmt.is_ok(), "{sql}: {stmt:?}");
    }

    /// Numeric and string literals survive INSERT round-trips.
    #[test]
    fn insert_literals_roundtrip(v1 in any::<i64>(), v2 in -1.0e10f64..1.0e10) {
        let sql = format!("INSERT INTO t VALUES ({v1}, {v2:.4})");
        // negative numbers are not in the literal grammar (no unary minus);
        // only assert no panic and well-formed positives parse
        let parsed = sql_to_statement(&sql);
        if v1 >= 0 && v2 >= 0.0 {
            prop_assert!(parsed.is_ok(), "{sql}: {parsed:?}");
        }
    }
}

#[test]
fn deeply_nested_parens_do_not_overflow() {
    // recursive-descent depth check: keep below the default stack but deep
    // enough to catch accidental quadratic/looping behaviour
    let depth = 200;
    let mut q = String::new();
    for _ in 0..depth {
        q.push('(');
    }
    q.push_str("SELECT a FROM t");
    for _ in 0..depth {
        q.push(')');
    }
    assert!(dvm_sql::parse_query(&q).is_ok());
    // unbalanced versions error cleanly
    assert!(dvm_sql::parse_query(&q[..q.len() - 1]).is_err());
}
