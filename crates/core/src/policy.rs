//! Refresh policies (Section 5.3) over a simulated clock.
//!
//! A *policy* decides when the Figure-3 refresh functions actually run.
//! Policies 1 and 2 are the paper's named policies for the `INV_C`
//! scenario; `PeriodicRefresh`, `OnDemand`, and `OnQuery` cover the other
//! variants discussed in Section 5.
//!
//! Time is a discrete tick counter so experiments are deterministic and
//! Example 5.4's "propagate hourly, refresh daily" runs in microseconds
//! (1 tick = 1 simulated minute there).

use crate::database::Database;
use crate::error::{CoreError, Result};
use crate::view::Scenario;
use dvm_obs::EventKind;
use std::fmt;

/// When maintenance operations fire for one view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshPolicy {
    /// Refresh only when the user calls [`Database::refresh`] directly.
    OnDemand,
    /// Refresh before every read (see [`PolicyDriver::query`]).
    OnQuery,
    /// `refresh_*` every `every` ticks (any deferred scenario).
    PeriodicRefresh {
        /// Refresh period in ticks.
        every: u64,
    },
    /// **Policy 1**: `propagate_C` every `k` ticks, full `refresh_C` every
    /// `m` ticks (`m > k`). Low downtime: most incremental work has already
    /// been propagated when the refresh runs.
    Policy1 {
        /// Propagation period `k`.
        k: u64,
        /// Refresh period `m`.
        m: u64,
    },
    /// **Policy 2**: `propagate_C` every `k` ticks, `partial_refresh_C`
    /// every `m` ticks. *Minimal* downtime — the refresh only applies
    /// precomputed differential tables — at the price of the view being up
    /// to `k` ticks stale after a refresh.
    Policy2 {
        /// Propagation period `k`.
        k: u64,
        /// Partial-refresh period `m`.
        m: u64,
    },
    /// **SLA deadline scheduler**: keep the view's *measured* staleness
    /// (time since last refresh, from [`Database::staleness`]) under an
    /// explicit bound, instead of refreshing on a blind period. Each tick
    /// the driver reads the staleness gauges, computes every SLA view's
    /// deadline, and refreshes — earliest deadline first, batched through
    /// the maintenance worker pool — exactly the views whose deadlines
    /// would pass before the next tick. Combined-scenario views also join
    /// the tick's propagate batch so the deadline refresh applies mostly
    /// precomputed differentials.
    Sla {
        /// Maximum tolerated nanoseconds since the last completed refresh.
        staleness_bound: u64,
    },
}

impl fmt::Display for RefreshPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefreshPolicy::OnDemand => write!(f, "on-demand"),
            RefreshPolicy::OnQuery => write!(f, "on-query"),
            RefreshPolicy::PeriodicRefresh { every } => write!(f, "periodic(every={every})"),
            RefreshPolicy::Policy1 { k, m } => write!(f, "policy1(k={k}, m={m})"),
            RefreshPolicy::Policy2 { k, m } => write!(f, "policy2(k={k}, m={m})"),
            RefreshPolicy::Sla { staleness_bound } => {
                write!(f, "sla(bound={})", dvm_obs::fmt_nanos(*staleness_bound as f64))
            }
        }
    }
}

impl RefreshPolicy {
    /// Whether this policy can drive a view maintained under `scenario`:
    /// `Ok(())`, or a typed [`CoreError::IncompatiblePolicy`] naming the
    /// offending scenario (the `view` field is filled in by
    /// [`PolicyDriver::add_view`], which knows the registration target).
    pub fn compatible_with(&self, scenario: Scenario) -> Result<()> {
        let ok = match self {
            RefreshPolicy::OnDemand => true,
            RefreshPolicy::OnQuery
            | RefreshPolicy::PeriodicRefresh { .. }
            | RefreshPolicy::Sla { .. } => scenario != Scenario::Immediate,
            RefreshPolicy::Policy1 { .. } | RefreshPolicy::Policy2 { .. } => {
                scenario == Scenario::Combined
            }
        };
        if ok {
            Ok(())
        } else {
            Err(CoreError::IncompatiblePolicy {
                view: String::new(),
                policy: self.to_string(),
                scenario: scenario.label(),
            })
        }
    }
}

/// What a tick executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TickActions {
    /// Number of `propagate_C` operations run.
    pub propagates: usize,
    /// Number of full refreshes run.
    pub refreshes: usize,
    /// Number of partial refreshes run.
    pub partial_refreshes: usize,
}

/// One registered view: its policy plus the scenario captured at
/// registration (so the SLA scheduler can route Combined views through
/// the propagate batch without re-resolving the view each tick).
struct Entry {
    name: String,
    policy: RefreshPolicy,
    scenario: Scenario,
}

/// Drives per-view policies against a database on a shared tick counter.
pub struct PolicyDriver<'a> {
    db: &'a Database,
    entries: Vec<Entry>,
    tick: u64,
    /// `Database::now_nanos` at the end of the previous tick, if any.
    last_tick_at: Option<u64>,
    /// Smoothed inter-tick gap estimate (nanoseconds) — the SLA deadline
    /// scheduler acts *this* tick on any view whose deadline would pass
    /// before the next tick is expected.
    est_gap_nanos: u64,
}

impl<'a> PolicyDriver<'a> {
    /// A driver starting at tick 0.
    pub fn new(db: &'a Database) -> Self {
        PolicyDriver {
            db,
            entries: Vec::new(),
            tick: 0,
            last_tick_at: None,
            est_gap_nanos: 0,
        }
    }

    /// Register a view under a policy; validated against its scenario.
    pub fn add_view(&mut self, name: impl Into<String>, policy: RefreshPolicy) -> Result<()> {
        let name = name.into();
        let scenario = self.db.view(&name)?.scenario();
        policy.compatible_with(scenario).map_err(|e| match e {
            CoreError::IncompatiblePolicy {
                policy, scenario, ..
            } => CoreError::IncompatiblePolicy {
                view: name.clone(),
                policy,
                scenario,
            },
            other => other,
        })?;
        self.entries.push(Entry {
            name,
            policy,
            scenario,
        });
        Ok(())
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Reposition the tick counter (e.g. to probe behaviour near
    /// `u64::MAX`); the next [`tick`](Self::tick) runs at `tick + 1`,
    /// wrapping to 0 past the end of the counter's range.
    pub fn seek(&mut self, tick: u64) {
        self.tick = tick;
    }

    /// Views whose SLA deadline would pass before the next expected tick,
    /// sorted earliest-deadline-first (ascending remaining slack). A view
    /// that has never refreshed is maximally urgent.
    fn sla_due(&self) -> Result<Vec<(u64, String, Scenario)>> {
        let mut due: Vec<(u64, String, Scenario)> = Vec::new();
        for e in &self.entries {
            if let RefreshPolicy::Sla { staleness_bound } = e.policy {
                let staleness = self
                    .db
                    .staleness(&e.name)?
                    .nanos_since_refresh
                    .unwrap_or(u64::MAX);
                if staleness.saturating_add(self.est_gap_nanos) >= staleness_bound {
                    let slack = staleness_bound.saturating_sub(staleness);
                    due.push((slack, e.name.clone(), e.scenario));
                }
            }
        }
        due.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        Ok(due)
    }

    /// Advance one tick, running whatever is due. When both a propagate and
    /// a refresh are due on the same tick, the propagate runs first (so the
    /// refresh applies the freshest differential tables).
    ///
    /// All due propagates run as one batch through
    /// [`Database::propagate_many`], so independent views propagate in
    /// parallel; refreshes then run in registration order. SLA views whose
    /// deadline would pass before the next tick join the propagate batch
    /// (Combined scenario only) and are then refreshed
    /// earliest-deadline-first through [`Database::refresh_many`].
    ///
    /// The tick counter wraps at `u64::MAX` rather than panicking, so a
    /// driver left running indefinitely never aborts; period arithmetic
    /// simply restarts from tick 0.
    pub fn tick(&mut self) -> Result<TickActions> {
        self.tick = self.tick.wrapping_add(1);
        let t = self.tick;
        let mut actions = TickActions::default();

        // Real-time bookkeeping for the SLA deadline scheduler.
        let now = self.db.now_nanos();
        if let Some(prev) = self.last_tick_at {
            let gap = now.saturating_sub(prev);
            self.est_gap_nanos = if self.est_gap_nanos == 0 {
                gap
            } else {
                // EWMA (α = 1/4): smooth over scheduling jitter.
                (3 * self.est_gap_nanos + gap) / 4
            };
        }
        self.last_tick_at = Some(now);

        let sla_due = self.sla_due()?;
        let mut due_propagates: Vec<String> = self
            .entries
            .iter()
            .filter_map(|e| match e.policy {
                RefreshPolicy::Policy1 { k, m }
                    if t.is_multiple_of(k) && !t.is_multiple_of(m) =>
                {
                    Some(e.name.clone())
                }
                RefreshPolicy::Policy2 { k, .. } if t.is_multiple_of(k) => Some(e.name.clone()),
                _ => None,
            })
            .collect();
        // Due SLA views under Combined also propagate in the shared batch:
        // their refresh then mostly applies precomputed differentials.
        for (_, name, scenario) in &sla_due {
            if *scenario == Scenario::Combined {
                due_propagates.push(name.clone());
            }
        }
        actions.propagates = due_propagates.len();
        let trace = self.db.tracer();
        if trace.is_enabled() {
            for name in &due_propagates {
                trace.event(EventKind::Policy, &format!("t{t}: propagate {name} due"), None);
            }
        }
        self.db.propagate_many(&due_propagates)?;
        for Entry { name, policy, .. } in &self.entries {
            match *policy {
                RefreshPolicy::OnDemand | RefreshPolicy::OnQuery => {}
                RefreshPolicy::PeriodicRefresh { every } => {
                    if t.is_multiple_of(every) {
                        if trace.is_enabled() {
                            trace.event(
                                EventKind::Policy,
                                &format!("t{t}: refresh {name} (periodic, every {every})"),
                                None,
                            );
                        }
                        self.db.refresh(name)?;
                        actions.refreshes += 1;
                    }
                }
                RefreshPolicy::Policy1 { m, .. } => {
                    if t.is_multiple_of(m) {
                        if trace.is_enabled() {
                            trace.event(
                                EventKind::Policy,
                                &format!("t{t}: refresh {name} (policy 1, m={m})"),
                                None,
                            );
                        }
                        // refresh_C = propagate ; partial_refresh
                        self.db.refresh(name)?;
                        actions.refreshes += 1;
                    }
                }
                RefreshPolicy::Policy2 { m, .. } => {
                    if t.is_multiple_of(m) {
                        if trace.is_enabled() {
                            trace.event(
                                EventKind::Policy,
                                &format!("t{t}: partial refresh {name} (policy 2, m={m})"),
                                None,
                            );
                        }
                        self.db.partial_refresh(name)?;
                        actions.partial_refreshes += 1;
                    }
                }
                // Handled below, earliest-deadline-first.
                RefreshPolicy::Sla { .. } => {}
            }
        }
        if !sla_due.is_empty() {
            if trace.is_enabled() {
                for (slack, name, _) in &sla_due {
                    trace.event(
                        EventKind::Policy,
                        &format!("t{t}: sla refresh {name} (slack {slack}ns)"),
                        None,
                    );
                }
            }
            let names: Vec<String> = sla_due.iter().map(|(_, n, _)| n.clone()).collect();
            self.db.refresh_many(&names)?;
            actions.refreshes += names.len();
        }
        // One staleness sample per tick, after the tick's maintenance — the
        // time-series recorder turns this into per-view staleness/backlog
        // curves (`\profile show`, `exp_profile`).
        self.db.sample_staleness_series();
        Ok(actions)
    }

    /// Advance `n` ticks.
    pub fn run(&mut self, n: u64) -> Result<TickActions> {
        let mut total = TickActions::default();
        for _ in 0..n {
            let a = self.tick()?;
            total.propagates += a.propagates;
            total.refreshes += a.refreshes;
            total.partial_refreshes += a.partial_refreshes;
        }
        Ok(total)
    }

    /// Read a view under its policy: `OnQuery` views are refreshed first.
    pub fn query(&self, name: &str) -> Result<dvm_storage::Bag> {
        if let Some(e) = self.entries.iter().find(|e| e.name == name) {
            if matches!(e.policy, RefreshPolicy::OnQuery) {
                self.db.refresh(name)?;
            }
        }
        self.db.query_view(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_algebra::Expr;
    use dvm_delta::Transaction;
    use dvm_storage::{tuple, Schema, ValueType};

    fn db() -> Database {
        let d = Database::new();
        d.create_table("r", Schema::from_pairs(&[("a", ValueType::Int)]))
            .unwrap();
        d
    }

    #[test]
    fn policy_compatibility() {
        assert!(RefreshPolicy::OnDemand
            .compatible_with(Scenario::Immediate)
            .is_ok());
        assert!(RefreshPolicy::PeriodicRefresh { every: 5 }
            .compatible_with(Scenario::Immediate)
            .is_err());
        assert!(RefreshPolicy::Policy1 { k: 1, m: 24 }
            .compatible_with(Scenario::Combined)
            .is_ok());
        assert!(RefreshPolicy::Policy1 { k: 1, m: 24 }
            .compatible_with(Scenario::BaseLog)
            .is_err());
        assert!(RefreshPolicy::Policy2 { k: 1, m: 24 }
            .compatible_with(Scenario::Combined)
            .is_ok());
        assert!(RefreshPolicy::OnQuery
            .compatible_with(Scenario::BaseLog)
            .is_ok());
        assert!(RefreshPolicy::Sla {
            staleness_bound: 1_000_000
        }
        .compatible_with(Scenario::BaseLog)
        .is_ok());
        assert!(RefreshPolicy::Sla {
            staleness_bound: 1_000_000
        }
        .compatible_with(Scenario::Immediate)
        .is_err());
    }

    #[test]
    fn incompatible_policy_error_names_scenario() {
        // Bare check: the error carries the rendered policy + the
        // offending scenario, with no view attached yet.
        let err = RefreshPolicy::Policy1 { k: 1, m: 24 }
            .compatible_with(Scenario::BaseLog)
            .unwrap_err();
        match &err {
            CoreError::IncompatiblePolicy {
                view,
                policy,
                scenario,
            } => {
                assert!(view.is_empty());
                assert_eq!(policy, "policy1(k=1, m=24)");
                assert_eq!(*scenario, Scenario::BaseLog.label());
            }
            other => panic!("unexpected error: {other:?}"),
        }
        assert!(err.to_string().contains("cannot drive scenario"));
    }

    #[test]
    fn incompatible_registration_rejected() {
        let d = db();
        d.create_view("v", Expr::table("r"), Scenario::BaseLog)
            .unwrap();
        let mut driver = PolicyDriver::new(&d);
        let err = driver
            .add_view("v", RefreshPolicy::Policy2 { k: 1, m: 4 })
            .unwrap_err();
        // The registration path patches the view name into the error.
        match &err {
            CoreError::IncompatiblePolicy { view, scenario, .. } => {
                assert_eq!(view, "v");
                assert_eq!(*scenario, Scenario::BaseLog.label());
            }
            other => panic!("unexpected error: {other:?}"),
        }
        assert!(err.to_string().contains("view 'v'"));
        assert!(driver
            .add_view("v", RefreshPolicy::PeriodicRefresh { every: 3 })
            .is_ok());
    }

    #[test]
    fn periodic_refresh_fires_on_schedule() {
        let d = db();
        d.create_view("v", Expr::table("r"), Scenario::BaseLog)
            .unwrap();
        let mut driver = PolicyDriver::new(&d);
        driver
            .add_view("v", RefreshPolicy::PeriodicRefresh { every: 3 })
            .unwrap();
        d.execute(&Transaction::new().insert_tuple("r", tuple![1]))
            .unwrap();
        assert_eq!(driver.run(2).unwrap().refreshes, 0);
        assert!(d.query_view("v").unwrap().is_empty(), "still stale");
        assert_eq!(driver.tick().unwrap().refreshes, 1);
        assert_eq!(d.query_view("v").unwrap().len(), 1);
        assert_eq!(driver.now(), 3);
    }

    #[test]
    fn policy1_propagates_k_refreshes_m() {
        let d = db();
        d.create_view("v", Expr::table("r"), Scenario::Combined)
            .unwrap();
        let mut driver = PolicyDriver::new(&d);
        driver
            .add_view("v", RefreshPolicy::Policy1 { k: 2, m: 6 })
            .unwrap();
        d.execute(&Transaction::new().insert_tuple("r", tuple![1]))
            .unwrap();
        let total = driver.run(6).unwrap();
        // propagate at t=2,4 (t=6 is folded into refresh), refresh at t=6
        assert_eq!(total.propagates, 2);
        assert_eq!(total.refreshes, 1);
        assert_eq!(d.query_view("v").unwrap().len(), 1);
    }

    #[test]
    fn policy2_partial_refresh_stays_one_interval_stale() {
        let d = db();
        d.create_view("v", Expr::table("r"), Scenario::Combined)
            .unwrap();
        let mut driver = PolicyDriver::new(&d);
        driver
            .add_view("v", RefreshPolicy::Policy2 { k: 1, m: 4 })
            .unwrap();
        // insert on every tick; at t=4 the partial refresh applies
        // everything propagated through t=4's propagate (k=1 propagates
        // first), so staleness ≤ k ticks.
        for i in 0..4i64 {
            d.execute(&Transaction::new().insert_tuple("r", tuple![i]))
                .unwrap();
            driver.tick().unwrap();
        }
        let v = d.query_view("v").unwrap();
        assert_eq!(v.len(), 4, "partial refresh at t=4 saw all 4 inserts");
        assert!(d.check_invariant("v").unwrap().ok());
    }

    #[test]
    fn policy1_with_m_not_above_k_degenerates_to_periodic_refresh() {
        // The paper assumes m > k (propagate often, refresh rarely). The
        // driver must still behave when the periods collide or invert:
        // every k-tick that is also an m-tick folds its propagate into the
        // refresh, so no tick runs both on the same view.
        let d = db();
        d.create_view("v", Expr::table("r"), Scenario::Combined)
            .unwrap();
        let mut driver = PolicyDriver::new(&d);
        driver
            .add_view("v", RefreshPolicy::Policy1 { k: 3, m: 3 })
            .unwrap();
        d.execute(&Transaction::new().insert_tuple("r", tuple![1]))
            .unwrap();
        let total = driver.run(6).unwrap();
        assert_eq!(total.propagates, 0, "m == k: every k-tick is an m-tick");
        assert_eq!(total.refreshes, 2);
        assert_eq!(d.query_view("v").unwrap().len(), 1);

        // m < k with m | k: refreshes dominate, propagates never fire.
        let mut driver = PolicyDriver::new(&d);
        driver
            .add_view("v", RefreshPolicy::Policy1 { k: 4, m: 2 })
            .unwrap();
        d.execute(&Transaction::new().insert_tuple("r", tuple![2]))
            .unwrap();
        let total = driver.run(4).unwrap();
        assert_eq!(total.propagates, 0, "multiples of 4 are all multiples of 2");
        assert_eq!(total.refreshes, 2);
        assert_eq!(d.query_view("v").unwrap().len(), 2);
        assert!(d.check_invariant("v").unwrap().ok());
    }

    #[test]
    fn tick_counter_wraps_at_u64_max_without_panicking() {
        let d = db();
        d.create_view("v", Expr::table("r"), Scenario::BaseLog)
            .unwrap();
        d.create_view("w", Expr::table("r"), Scenario::Combined)
            .unwrap();
        let mut driver = PolicyDriver::new(&d);
        driver
            .add_view("v", RefreshPolicy::PeriodicRefresh { every: 3 })
            .unwrap();
        driver
            .add_view("w", RefreshPolicy::Policy1 { k: 2, m: 4 })
            .unwrap();
        d.execute(&Transaction::new().insert_tuple("r", tuple![1]))
            .unwrap();
        driver.seek(u64::MAX - 2);
        // Ticks: MAX-1, MAX, 0 (wrap), 1, 2, 3.
        let total = driver.run(6).unwrap();
        assert_eq!(driver.now(), 3, "counter wrapped through u64::MAX to 3");
        // u64::MAX ≡ 0 (mod 3), so the periodic view refreshes at MAX, at
        // the wrap tick 0, and at 3. Policy1 (k=2, m=4): MAX-1 ≡ 2 (mod 4)
        // propagates, the wrap tick 0 refreshes, 2 propagates again.
        assert_eq!(total.refreshes, 4);
        assert_eq!(total.propagates, 2);
        assert_eq!(d.query_view("v").unwrap().len(), 1);
        assert_eq!(d.query_view("w").unwrap().len(), 1);
        assert!(d.check_invariant("w").unwrap().ok());
    }

    #[test]
    fn sla_staleness_never_exceeds_bound_plus_one_maintenance() {
        // The deadline scheduler refreshes any view whose staleness would
        // cross the bound by the next expected tick, so right after a tick
        // returns, staleness can only exceed the bound by the duration of
        // that tick's own maintenance (when the refresh ran mid-tick).
        let d = db();
        d.create_view("v", Expr::table("r"), Scenario::Combined)
            .unwrap();
        d.refresh("v").unwrap();
        let bound = 2_000_000; // 2 ms
        let mut driver = PolicyDriver::new(&d);
        driver
            .add_view("v", RefreshPolicy::Sla { staleness_bound: bound })
            .unwrap();
        let mut refreshes = 0;
        for i in 0..200i64 {
            d.execute(&Transaction::new().insert_tuple("r", tuple![i]))
                .unwrap();
            // Vary the cadence so the EWMA gap estimate sees jitter.
            if i % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(300));
            }
            let start = std::time::Instant::now();
            refreshes += driver.tick().unwrap().refreshes;
            let after = d.staleness("v").unwrap().nanos_since_refresh.unwrap();
            let tick_ns = start.elapsed().as_nanos() as u64;
            assert!(
                after <= bound + tick_ns,
                "tick {i}: staleness {after}ns above bound {bound}ns + maintenance {tick_ns}ns"
            );
        }
        assert!(refreshes > 0, "the bound forced deadline refreshes");
        assert!(d.check_invariant("v").unwrap().ok());
    }

    #[test]
    fn on_query_refreshes_before_read() {
        let d = db();
        d.create_view("v", Expr::table("r"), Scenario::BaseLog)
            .unwrap();
        let mut driver = PolicyDriver::new(&d);
        driver.add_view("v", RefreshPolicy::OnQuery).unwrap();
        d.execute(&Transaction::new().insert_tuple("r", tuple![1]))
            .unwrap();
        assert_eq!(d.query_view("v").unwrap().len(), 0, "stale via raw read");
        assert_eq!(driver.query("v").unwrap().len(), 1, "fresh via policy read");
    }
}
