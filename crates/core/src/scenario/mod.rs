//! The maintenance operations of **Figure 3**, one module per scenario.
//!
//! | invariant | makesafe hook | refresh path |
//! |---|---|---|
//! | `INV_IM` | eval `∇(T,Q)/Δ(T,Q)` pre-update, apply to `MV` with `T` | — |
//! | `INV_BL` | extend log (`compose`) | eval `▼(L,Q)/▲(L,Q)` post-update under the `MV` write lock |
//! | `INV_DT` | eval `∇(T,Q)/Δ(T,Q)` pre-update, fold into `∇MV/ΔMV` | apply `∇MV/ΔMV` under the `MV` write lock |
//! | `INV_C` | extend log (same as BL) | `propagate_C` (fold `▼/▲` into `∇MV/ΔMV`, *no* `MV` lock) + `partial_refresh_C` (apply) |
//!
//! Downtime — the time the `MV` write lock is held — is measured by the MV
//! table's lock metrics; everything evaluated inside that lock counts.

pub mod base_log;
pub mod combined;
pub mod diff_table;
pub mod immediate;

use crate::error::Result;
use crate::view::View;
use dvm_algebra::eval::{eval, ParamSource, PinnedState};
use dvm_algebra::infer::compile;
use dvm_algebra::Expr;
use dvm_delta::CompiledDeltaVariant;
use dvm_storage::{Bag, Catalog};
use std::collections::HashMap;
use std::time::Instant;

/// Start a phase timer iff profiling is on (`None` keeps the off path at
/// one relaxed atomic load).
pub(crate) fn phase_start() -> Option<Instant> {
    dvm_obs::profiling_on().then(Instant::now)
}

/// Record a finished phase timer as a leaf in the current profiling
/// capture. The non-evaluation work of a maintenance operation — delta
/// derivation, compile/pin, the Lemma-3 fold, log truncation — lands in
/// the same per-operation capture as the operator pipelines, so the
/// recorded nanos can telescope to the operation's observed wall time
/// (`MaintProfile::coverage`).
pub(crate) fn phase_end(label: &'static str, rows: u64, started: Option<Instant>) {
    if let Some(s) = started {
        dvm_obs::profile::record_eval(dvm_obs::OpProf::leaf(
            label,
            rows,
            s.elapsed().as_nanos() as u64,
        ));
    }
}

/// Compile and evaluate an expression in the current catalog state,
/// pinning exactly the tables it reads.
pub(crate) fn eval_expr(catalog: &Catalog, expr: &Expr) -> Result<Bag> {
    let q = compile(expr, catalog)?;
    let pinned = PinnedState::pin_for(catalog, &q.plan)?;
    Ok(eval(&q.plan, &pinned)?)
}

/// Evaluate an expression with some table contents overridden. The
/// overrides ride the algebra's [`ParamSource`] — the same parameterized
/// source the compiled delta programs bind log bags through.
pub(crate) fn eval_expr_overlay(
    catalog: &Catalog,
    expr: &Expr,
    overrides: &HashMap<String, Bag>,
) -> Result<Bag> {
    let q = compile(expr, catalog)?;
    let src = ParamSource::pin(catalog, &q.plan.tables(), overrides)?;
    Ok(eval(&q.plan, &src)?)
}

/// Evaluate a delete/insert expression pair against one pinned state (both
/// sides must see the same state).
pub(crate) fn eval_pair(catalog: &Catalog, del: &Expr, ins: &Expr) -> Result<(Bag, Bag)> {
    eval_pair_overlay(catalog, del, ins, &HashMap::new())
}

/// As [`eval_pair`], with some table contents overridden.
pub(crate) fn eval_pair_overlay(
    catalog: &Catalog,
    del: &Expr,
    ins: &Expr,
    overrides: &HashMap<String, Bag>,
) -> Result<(Bag, Bag)> {
    let t = phase_start();
    let dq = compile(del, catalog)?;
    let iq = compile(ins, catalog)?;
    let mut tables = dq.plan.tables();
    tables.extend(iq.plan.tables());
    let src = ParamSource::pin(catalog, &tables, overrides)?;
    phase_end("CompilePin(▼,▲)", 0, t);
    Ok((eval(&dq.plan, &src)?, eval(&iq.plan, &src)?))
}

/// Execute a precompiled delta-plan variant: snapshot the active log
/// tables as parameter bags, pin the remaining (base) tables the stored
/// plans scan, and evaluate both plans against the bound source. This is
/// the whole steady-state propagate front half — no differentiation, no
/// simplification, no plan construction. The snapshot+pin is recorded as
/// the `BindParams` phase; the evaluations profile themselves.
pub(crate) fn eval_variant_bound(
    catalog: &Catalog,
    variant: &CompiledDeltaVariant,
    param_tables: &[&str],
) -> Result<(Bag, Bag)> {
    let t = phase_start();
    let mut params = HashMap::with_capacity(param_tables.len());
    for name in param_tables {
        params.insert((*name).to_string(), catalog.bag_of(name)?);
    }
    let mut tables = variant.del.plan.tables();
    tables.extend(variant.ins.plan.tables());
    let src = ParamSource::pin(catalog, &tables, &params)?;
    phase_end("BindParams", params.values().map(Bag::len).sum(), t);
    Ok((eval(&variant.del.plan, &src)?, eval(&variant.ins.plan, &src)?))
}

/// Recompute the view definition from scratch (the non-incremental
/// baseline used by experiments and the invariant checker).
pub fn recompute(catalog: &Catalog, view: &View) -> Result<Bag> {
    let pinned = PinnedState::pin_for(catalog, &view.compiled().plan)?;
    Ok(eval(&view.compiled().plan, &pinned)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_storage::{tuple, Schema, TableKind, ValueType};

    #[test]
    fn eval_expr_and_pair() {
        let c = Catalog::new();
        let t = c
            .create_table(
                "r",
                Schema::from_pairs(&[("a", ValueType::Int)]),
                TableKind::External,
            )
            .unwrap();
        t.insert(tuple![1]).unwrap();
        let e = Expr::table("r");
        assert_eq!(eval_expr(&c, &e).unwrap().len(), 1);
        let (d, i) = eval_pair(&c, &e, &e).unwrap();
        assert_eq!(d, i);
    }
}
