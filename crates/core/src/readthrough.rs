//! Read-through queries: fresh answers over stale views, with zero
//! downtime (paper Section 7, first future-work question).
//!
//! The paper asks: *"are there algorithms to refresh only those parts of a
//! view needed by a given query?"* This module answers the underlying need
//! without mutating `MV` at all: every scenario's invariant expresses the
//! current value of `Q` as a combination of `MV` and auxiliary state, so a
//! reader can evaluate that combination on the fly —
//!
//! ```text
//! IM:  Q = MV
//! DT:  Q = (MV ∸ ∇MV) ⊎ ΔMV
//! BL:  Q = (MV ∸ ▼(L,Q)) ⊎ ▲(L,Q)                    (cancellation lemma)
//! C:   Q = (((MV ∸ ∇MV) ⊎ ΔMV) ∸ ▼(L,Q)) ⊎ ▲(L,Q)
//! ```
//!
//! — and a *filtered* read-through pushes the query predicate `σ_p` into
//! every component (selection distributes over `∸` and `⊎`), so only the
//! relevant part of the incremental work is ever computed. No write lock
//! is taken; concurrent readers of the stale `MV` are unaffected.

use crate::error::Result;
use crate::scenario::eval_expr;
use crate::view::View;
use dvm_algebra::infer::compile_predicate;
use dvm_algebra::{Expr, Predicate};
use dvm_delta::post_update_deltas;
use dvm_storage::{Bag, Catalog};

/// Compute the current value of the view without refreshing it.
pub fn read_through(catalog: &Catalog, view: &View) -> Result<Bag> {
    read_through_inner(catalog, view, None, &std::collections::HashMap::new())
}

/// Compute `σ_pred(Q)` — the fresh, filtered view value — without
/// refreshing. The predicate is resolved against the view's output schema
/// and pushed into the materialized table, the differential tables, and
/// the incremental queries alike.
pub fn read_through_where(catalog: &Catalog, view: &View, pred: &Predicate) -> Result<Bag> {
    read_through_inner(catalog, view, Some(pred), &std::collections::HashMap::new())
}

/// Read-through with log-table contents overridden (shared-log views:
/// effective log = staging ∘ un-drained shared suffix).
pub fn read_through_with_log_overrides(
    catalog: &Catalog,
    view: &View,
    pred: Option<&Predicate>,
    log_overrides: &std::collections::HashMap<String, Bag>,
) -> Result<Bag> {
    read_through_inner(catalog, view, pred, log_overrides)
}

fn read_through_inner(
    catalog: &Catalog,
    view: &View,
    pred: Option<&Predicate>,
    log_overrides: &std::collections::HashMap<String, Bag>,
) -> Result<Bag> {
    // σ_p over a materialized bag.
    let mv_schema = view.mv_schema();
    let filter_bag = |bag: Bag| -> Result<Bag> {
        match pred {
            None => Ok(bag),
            Some(p) => {
                let phys = compile_predicate(p, &mv_schema)?;
                Ok(bag.select(|t| phys.eval(t)))
            }
        }
    };
    // σ_p around a delta expression (the expression's schema is the view's
    // output schema, so the same predicate resolves).
    let wrap = |e: Expr| -> Expr {
        match pred {
            None => e,
            Some(p) => e.select(p.clone()),
        }
    };

    // Start from σ_p(MV).
    let mut value = filter_bag(catalog.bag_of(view.mv_table())?)?;

    // Differential tables (DT, C).
    if let Some((dt_del, dt_ins)) = view.diff_tables() {
        let del = filter_bag(catalog.bag_of(dt_del)?)?;
        let ins = filter_bag(catalog.bag_of(dt_ins)?)?;
        value.apply_delta(&del, &ins);
    }

    // Logged changes (BL, C): evaluate σ_p(▼(L,Q)) / σ_p(▲(L,Q)) now.
    if let Some(log) = view.log() {
        let deltas = post_update_deltas(view.definition(), log, catalog)?;
        let (del, ins) = crate::scenario::eval_pair_overlay(
            catalog,
            &wrap(deltas.del),
            &wrap(deltas.ins),
            log_overrides,
        )?;
        value.apply_delta(&del, &ins);
    }

    Ok(value)
}

/// Ground truth for tests: `σ_pred(Q)` recomputed from scratch.
pub fn recompute_where(catalog: &Catalog, view: &View, pred: &Predicate) -> Result<Bag> {
    eval_expr(catalog, &view.definition().clone().select(pred.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::view::Scenario;
    use dvm_algebra::predicate::{col, lit};
    use dvm_delta::Transaction;
    use dvm_storage::{tuple, Schema, ValueType};

    fn db_with_view(scenario: Scenario) -> Database {
        let db = Database::new();
        db.create_table(
            "r",
            Schema::from_pairs(&[("a", ValueType::Int), ("b", ValueType::Int)]),
        )
        .unwrap();
        db.execute_unmaintained(
            &Transaction::new()
                .insert_tuple("r", tuple![1, 10])
                .insert_tuple("r", tuple![2, 20]),
        )
        .unwrap();
        db.create_view("v", Expr::table("r"), scenario).unwrap();
        db
    }

    #[test]
    fn read_through_fresh_under_all_scenarios() {
        for scenario in [
            Scenario::Immediate,
            Scenario::BaseLog,
            Scenario::DiffTable,
            Scenario::Combined,
        ] {
            let db = db_with_view(scenario);
            db.execute(
                &Transaction::new()
                    .insert_tuple("r", tuple![3, 30])
                    .delete_tuple("r", tuple![1, 10]),
            )
            .unwrap();
            let fresh = db.read_through("v").unwrap();
            assert_eq!(fresh, db.recompute_view("v").unwrap(), "{scenario:?}");
            if scenario != Scenario::Immediate && scenario != Scenario::DiffTable {
                // the materialization itself must NOT have moved
                assert_ne!(db.query_view("v").unwrap(), fresh, "{scenario:?}");
            }
        }
    }

    #[test]
    fn read_through_after_partial_propagation() {
        let db = db_with_view(Scenario::Combined);
        db.execute(&Transaction::new().insert_tuple("r", tuple![3, 30]))
            .unwrap();
        db.propagate("v").unwrap(); // into ∇MV/ΔMV
        db.execute(&Transaction::new().insert_tuple("r", tuple![4, 40]))
            .unwrap(); // still in the log
        let fresh = db.read_through("v").unwrap();
        assert_eq!(fresh, db.recompute_view("v").unwrap());
        assert!(fresh.contains(&tuple![3, 30]));
        assert!(fresh.contains(&tuple![4, 40]));
    }

    #[test]
    fn filtered_read_through_matches_filtered_truth() {
        let db = db_with_view(Scenario::Combined);
        db.execute(
            &Transaction::new()
                .insert_tuple("r", tuple![3, 30])
                .insert_tuple("r", tuple![4, 40])
                .delete_tuple("r", tuple![2, 20]),
        )
        .unwrap();
        let pred = Predicate::gt(col("b"), lit(25i64));
        let view = db.view("v").unwrap();
        let filtered = read_through_where(db.catalog(), &view, &pred).unwrap();
        let truth = recompute_where(db.catalog(), &view, &pred).unwrap();
        assert_eq!(filtered, truth);
        assert_eq!(filtered.len(), 2); // [3,30], [4,40]
    }

    #[test]
    fn read_through_takes_no_write_lock() {
        let db = db_with_view(Scenario::BaseLog);
        db.execute(&Transaction::new().insert_tuple("r", tuple![5, 50]))
            .unwrap();
        let mv = db.mv_table("v").unwrap();
        let before = mv.lock_metrics().snapshot().write_acquisitions;
        let _ = db.read_through("v").unwrap();
        let _ = db
            .read_through_where("v", &Predicate::gt(col("a"), lit(0i64)))
            .unwrap();
        assert_eq!(
            mv.lock_metrics().snapshot().write_acquisitions,
            before,
            "read-through is downtime-free"
        );
        // and the log is untouched (nothing was consumed)
        let (log, _) = db.aux_sizes("v").unwrap();
        assert_eq!(log, 1);
    }

    #[test]
    fn filtered_read_through_on_join_view() {
        // a join view with a selective predicate: the filtered read only
        // touches matching tuples
        let db = Database::new();
        db.create_table(
            "c",
            Schema::from_pairs(&[("id", ValueType::Int), ("grp", ValueType::Int)]),
        )
        .unwrap();
        db.create_table(
            "s",
            Schema::from_pairs(&[("id", ValueType::Int), ("amt", ValueType::Int)]),
        )
        .unwrap();
        db.execute_unmaintained(
            &Transaction::new()
                .insert_tuple("c", tuple![1, 7])
                .insert_tuple("c", tuple![2, 8])
                .insert_tuple("s", tuple![1, 100]),
        )
        .unwrap();
        let def = Expr::table("c")
            .alias("c")
            .product(Expr::table("s").alias("s"))
            .select(Predicate::eq(col("c.id"), col("s.id")))
            .project(["grp", "amt"]);
        db.create_view("j", def, Scenario::BaseLog).unwrap();
        db.execute(
            &Transaction::new()
                .insert_tuple("s", tuple![2, 200])
                .insert_tuple("s", tuple![1, 150]),
        )
        .unwrap();
        let pred = Predicate::eq(col("grp"), lit(8i64));
        let view = db.view("j").unwrap();
        let filtered = read_through_where(db.catalog(), &view, &pred).unwrap();
        assert_eq!(filtered, Bag::singleton(tuple![8, 200]));
    }
}
