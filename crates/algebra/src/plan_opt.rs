//! Physical plan optimization: selection pushdown and hash-join formation.
//!
//! The naive evaluation of `σ_p(E × F)` materializes the full cross
//! product — infeasible for the paper's retail workload (a 50k-customer ×
//! 250k-sales join would allocate billions of tuples). This pass rewrites
//!
//! ```text
//! Filter(p, Product(l, r))   →   HashJoin { l', r', keys, residual }
//! ```
//!
//! splitting the conjuncts of `p` into: left-only (pushed into `l`),
//! right-only (pushed into `r`, indices shifted), equi-join conditions
//! (`col_i = col_j` across the two sides → hash keys), and a residual
//! evaluated per joined tuple. Nested product chains optimize bottom-up
//! because pushed-down conjuncts re-expose inner `Filter(Product)` shapes.
//!
//! The rewrite is purely positional and value-preserving; the randomized
//! equivalence tests at the bottom compare optimized and unoptimized
//! evaluation on generated expressions.

use crate::plan::{PhysOperand, PhysPredicate, Plan};
use dvm_storage::hasher::FxHashMap;
use dvm_storage::Bag;

/// Optimize a plan. `scan_arity` maps table names to their arities (the
/// compiler provides it from the schema provider).
pub fn optimize(plan: Plan, scan_arity: &FxHashMap<String, usize>) -> Plan {
    match plan {
        Plan::Filter(pred, input) => {
            let input = optimize(*input, scan_arity);
            // merge directly nested filters into one conjunct set
            let (pred, input) = match input {
                Plan::Filter(inner, grand) => {
                    (PhysPredicate::And(Box::new(pred), Box::new(inner)), *grand)
                }
                other => (pred, other),
            };
            match input {
                Plan::Product(l, r) => build_join(pred, *l, *r, scan_arity),
                // Selection distributes over every bag operator with 0/1
                // predicates: σ_p(A ⊎ B) = σ_p(A) ⊎ σ_p(B), and likewise
                // for ∸, min, max, EXCEPT (per-tuple multiplicities are
                // scaled by p(t) ∈ {0,1} on both sides) and ε. Pushing the
                // filter down is what lets the differential rules' shapes
                // — σ over a union of delta products — become hash joins.
                Plan::Union(a, b) => Plan::Union(
                    Box::new(optimize(Plan::Filter(pred.clone(), a), scan_arity)),
                    Box::new(optimize(Plan::Filter(pred, b), scan_arity)),
                ),
                Plan::Monus(a, b) => Plan::Monus(
                    Box::new(optimize(Plan::Filter(pred.clone(), a), scan_arity)),
                    Box::new(optimize(Plan::Filter(pred, b), scan_arity)),
                ),
                Plan::MinIntersect(a, b) => Plan::MinIntersect(
                    Box::new(optimize(Plan::Filter(pred.clone(), a), scan_arity)),
                    Box::new(optimize(Plan::Filter(pred, b), scan_arity)),
                ),
                Plan::MaxUnion(a, b) => Plan::MaxUnion(
                    Box::new(optimize(Plan::Filter(pred.clone(), a), scan_arity)),
                    Box::new(optimize(Plan::Filter(pred, b), scan_arity)),
                ),
                Plan::Except(a, b) => Plan::Except(
                    Box::new(optimize(Plan::Filter(pred.clone(), a), scan_arity)),
                    Box::new(optimize(Plan::Filter(pred, b), scan_arity)),
                ),
                Plan::DupElim(a) => {
                    Plan::DupElim(Box::new(optimize(Plan::Filter(pred, a), scan_arity)))
                }
                // σ_p(Π_cols(E)) = Π_cols(σ_p'(E)) with positions remapped
                // through the projection.
                Plan::Project(cols, a) => {
                    let remapped = remap_pred(pred, &cols);
                    Plan::Project(
                        cols,
                        Box::new(optimize(Plan::Filter(remapped, a), scan_arity)),
                    )
                }
                other => Plan::Filter(pred, Box::new(other)),
            }
        }
        Plan::Project(cols, input) => Plan::Project(cols, Box::new(optimize(*input, scan_arity))),
        Plan::DupElim(input) => Plan::DupElim(Box::new(optimize(*input, scan_arity))),
        Plan::Union(a, b) => Plan::Union(
            Box::new(optimize(*a, scan_arity)),
            Box::new(optimize(*b, scan_arity)),
        ),
        Plan::Monus(a, b) => Plan::Monus(
            Box::new(optimize(*a, scan_arity)),
            Box::new(optimize(*b, scan_arity)),
        ),
        Plan::Product(a, b) => Plan::Product(
            Box::new(optimize(*a, scan_arity)),
            Box::new(optimize(*b, scan_arity)),
        ),
        Plan::MinIntersect(a, b) => Plan::MinIntersect(
            Box::new(optimize(*a, scan_arity)),
            Box::new(optimize(*b, scan_arity)),
        ),
        Plan::MaxUnion(a, b) => Plan::MaxUnion(
            Box::new(optimize(*a, scan_arity)),
            Box::new(optimize(*b, scan_arity)),
        ),
        Plan::Except(a, b) => Plan::Except(
            Box::new(optimize(*a, scan_arity)),
            Box::new(optimize(*b, scan_arity)),
        ),
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => Plan::HashJoin {
            left: Box::new(optimize(*left, scan_arity)),
            right: Box::new(optimize(*right, scan_arity)),
            left_keys,
            right_keys,
            residual,
        },
        Plan::GroupAggregate { keys, aggs, input } => Plan::GroupAggregate {
            keys,
            aggs,
            input: Box::new(optimize(*input, scan_arity)),
        },
        leaf @ (Plan::Scan(_) | Plan::Literal(_)) => leaf,
    }
}

/// Split `pred` over `l × r` and build the best available join.
fn build_join(pred: PhysPredicate, l: Plan, r: Plan, scan_arity: &FxHashMap<String, usize>) -> Plan {
    let Some(lar) = arity(&l, scan_arity) else {
        // Unknown left arity (empty literal): no classification possible.
        return Plan::Filter(pred, Box::new(Plan::Product(Box::new(l), Box::new(r))));
    };

    let mut conjuncts = Vec::new();
    flatten_conjuncts(pred, &mut conjuncts);

    let mut left_preds = Vec::new();
    let mut right_preds = Vec::new();
    let mut left_keys = Vec::new();
    let mut right_keys = Vec::new();
    let mut residual = Vec::new();

    for c in conjuncts {
        match classify(&c, lar) {
            Class::Left => left_preds.push(c),
            Class::Right => right_preds.push(shift_pred(c, lar)),
            Class::EquiJoin(li, ri) => {
                left_keys.push(li);
                right_keys.push(ri - lar);
            }
            Class::Residual => residual.push(c),
        }
    }

    let mut l = optimize(l, scan_arity);
    if let Some(p) = combine(left_preds) {
        // re-run the pass so a pushed-down filter over an inner product
        // becomes a join as well
        l = optimize(Plan::Filter(p, Box::new(l)), scan_arity);
    }
    let mut r = optimize(r, scan_arity);
    if let Some(p) = combine(right_preds) {
        r = optimize(Plan::Filter(p, Box::new(r)), scan_arity);
    }

    if left_keys.is_empty() {
        // no equi keys: plain product, residual applied on top
        match combine(residual) {
            Some(p) => Plan::Filter(p, Box::new(Plan::Product(Box::new(l), Box::new(r)))),
            None => Plan::Product(Box::new(l), Box::new(r)),
        }
    } else {
        Plan::HashJoin {
            left: Box::new(l),
            right: Box::new(r),
            left_keys,
            right_keys,
            residual: combine(residual).unwrap_or(PhysPredicate::Const(true)),
        }
    }
}

enum Class {
    Left,
    Right,
    /// `col_i = col_j` with `i` on the left side and `j` on the right.
    EquiJoin(usize, usize),
    Residual,
}

fn classify(pred: &PhysPredicate, lar: usize) -> Class {
    use crate::predicate::CmpOp;
    if let PhysPredicate::Cmp(PhysOperand::Col(i), CmpOp::Eq, PhysOperand::Col(j)) = pred {
        let (lo, hi) = (*i.min(j), *i.max(j));
        if lo < lar && hi >= lar {
            return Class::EquiJoin(lo, hi);
        }
    }
    let cols = pred_columns(pred);
    if cols.iter().all(|&c| c < lar) {
        Class::Left
    } else if cols.iter().all(|&c| c >= lar) {
        Class::Right
    } else {
        Class::Residual
    }
}

fn pred_columns(pred: &PhysPredicate) -> Vec<usize> {
    fn operand(out: &mut Vec<usize>, o: &PhysOperand) {
        if let PhysOperand::Col(i) = o {
            out.push(*i);
        }
    }
    let mut out = Vec::new();
    let mut stack = vec![pred];
    while let Some(p) = stack.pop() {
        match p {
            PhysPredicate::Const(_) => {}
            PhysPredicate::Cmp(l, _, r) => {
                operand(&mut out, l);
                operand(&mut out, r);
            }
            PhysPredicate::And(a, b) | PhysPredicate::Or(a, b) => {
                stack.push(a);
                stack.push(b);
            }
            PhysPredicate::Not(a) => stack.push(a),
        }
    }
    out
}

fn flatten_conjuncts(pred: PhysPredicate, out: &mut Vec<PhysPredicate>) {
    match pred {
        PhysPredicate::And(a, b) => {
            flatten_conjuncts(*a, out);
            flatten_conjuncts(*b, out);
        }
        PhysPredicate::Const(true) => {}
        other => out.push(other),
    }
}

fn combine(mut preds: Vec<PhysPredicate>) -> Option<PhysPredicate> {
    let first = preds.pop()?;
    Some(preds.into_iter().fold(first, |acc, p| {
        PhysPredicate::And(Box::new(acc), Box::new(p))
    }))
}

/// Remap predicate positions through a projection: position `i` in the
/// projected tuple is position `cols[i]` in the input tuple.
fn remap_pred(pred: PhysPredicate, cols: &[usize]) -> PhysPredicate {
    fn remap_op(o: PhysOperand, cols: &[usize]) -> PhysOperand {
        match o {
            PhysOperand::Col(i) => PhysOperand::Col(cols[i]),
            c => c,
        }
    }
    match pred {
        PhysPredicate::Const(b) => PhysPredicate::Const(b),
        PhysPredicate::Cmp(l, op, r) => {
            PhysPredicate::Cmp(remap_op(l, cols), op, remap_op(r, cols))
        }
        PhysPredicate::And(a, b) => PhysPredicate::And(
            Box::new(remap_pred(*a, cols)),
            Box::new(remap_pred(*b, cols)),
        ),
        PhysPredicate::Or(a, b) => PhysPredicate::Or(
            Box::new(remap_pred(*a, cols)),
            Box::new(remap_pred(*b, cols)),
        ),
        PhysPredicate::Not(a) => PhysPredicate::Not(Box::new(remap_pred(*a, cols))),
    }
}

/// Shift every column index down by `lar` (right-side pushdown).
fn shift_pred(pred: PhysPredicate, lar: usize) -> PhysPredicate {
    fn shift_op(o: PhysOperand, lar: usize) -> PhysOperand {
        match o {
            PhysOperand::Col(i) => PhysOperand::Col(i - lar),
            c => c,
        }
    }
    match pred {
        PhysPredicate::Const(b) => PhysPredicate::Const(b),
        PhysPredicate::Cmp(l, op, r) => PhysPredicate::Cmp(shift_op(l, lar), op, shift_op(r, lar)),
        PhysPredicate::And(a, b) => {
            PhysPredicate::And(Box::new(shift_pred(*a, lar)), Box::new(shift_pred(*b, lar)))
        }
        PhysPredicate::Or(a, b) => {
            PhysPredicate::Or(Box::new(shift_pred(*a, lar)), Box::new(shift_pred(*b, lar)))
        }
        PhysPredicate::Not(a) => PhysPredicate::Not(Box::new(shift_pred(*a, lar))),
    }
}

// ---- streaming fusion -----------------------------------------------------

/// One pipelined per-tuple operator, applied in order to each streamed
/// `(tuple, multiplicity)` pair without materializing an intermediate bag.
#[derive(Debug)]
pub enum FusedOp<'a> {
    /// Drop tuples failing the predicate.
    Filter(&'a PhysPredicate),
    /// Positional projection (multiplicities untouched; merging of
    /// now-equal tuples happens wherever the stream is next materialized).
    Project(&'a [usize]),
}

/// Where a fused pipeline's tuples come from.
#[derive(Debug)]
pub enum FusedSource<'a> {
    /// Stream a named table's pinned bag.
    Scan(&'a str),
    /// Stream a constant bag.
    Literal(&'a Bag),
    /// Stream the left pipeline, then the right (`⊎` needs no state).
    Union(Box<FusedPlan<'a>>, Box<FusedPlan<'a>>),
    /// Hash join: one side is materialized into a hash table (and possibly
    /// served from the join-build cache); the other side's tuples stream
    /// through it. Both sides are carried fused *and* as raw plans so the
    /// executor can pick the build side at runtime — it prefers building a
    /// stable base-table side (reusable across evaluations via the cache)
    /// over a churning delta/log side.
    Join {
        /// Left-side pipeline (streamed when the right side is built).
        left: Box<FusedPlan<'a>>,
        /// Left-side plan (materialized when the executor flips the build).
        left_plan: &'a Plan,
        /// Right-side pipeline (streamed when the build is flipped).
        right: Box<FusedPlan<'a>>,
        /// Right-side plan (the default build side).
        right_plan: &'a Plan,
        /// Key positions in the left tuple.
        left_keys: &'a [usize],
        /// Key positions in the right tuple.
        right_keys: &'a [usize],
        /// Residual predicate over the concatenated tuple.
        residual: &'a PhysPredicate,
    },
    /// A pipeline breaker (`∸`, `ε`, `min`, `max`, `EXCEPT`, `×`): its
    /// result must be fully materialized before anything can stream, so
    /// the executor evaluates it with the exact bag primitives and streams
    /// the owned result out.
    Breaker(&'a Plan),
}

/// A [`Plan`] re-shaped for streaming execution: a source plus a fused
/// chain of per-tuple ops, applied innermost-first. Borrowed from the plan
/// it was fused from — building one allocates a few vecs and boxes but
/// never touches a tuple.
#[derive(Debug)]
pub struct FusedPlan<'a> {
    /// Tuple source.
    pub source: FusedSource<'a>,
    /// Per-tuple op chain, in application order.
    pub ops: Vec<FusedOp<'a>>,
}

/// Fuse a plan for streaming execution.
///
/// `Filter`/`Project` chains collapse into per-tuple op chains over the
/// nearest source below them (`Scan`, `Literal`, `⊎`, `HashJoin`) — so the
/// selective change-query shape `Π(σ(scan/join))` runs without a single
/// intermediate bag. Everything else is a pipeline breaker and stays
/// materialized, which keeps the breakers' exact multiplicity semantics
/// (e.g. `×`'s saturating arithmetic) byte-identical to the reference
/// evaluator.
pub fn fuse(plan: &Plan) -> FusedPlan<'_> {
    let mut ops = Vec::new();
    let mut cur = plan;
    loop {
        match cur {
            Plan::Filter(pred, input) => {
                ops.push(FusedOp::Filter(pred));
                cur = input;
            }
            Plan::Project(cols, input) => {
                ops.push(FusedOp::Project(cols));
                cur = input;
            }
            _ => break,
        }
    }
    // Collected outermost-first; streams apply innermost-first.
    ops.reverse();
    let source = match cur {
        Plan::Scan(name) => FusedSource::Scan(name),
        Plan::Literal(bag) => FusedSource::Literal(bag),
        Plan::Union(a, b) => FusedSource::Union(Box::new(fuse(a)), Box::new(fuse(b))),
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => FusedSource::Join {
            left: Box::new(fuse(left)),
            left_plan: left,
            right: Box::new(fuse(right)),
            right_plan: right,
            left_keys,
            right_keys,
            residual,
        },
        breaker => FusedSource::Breaker(breaker),
    };
    FusedPlan { source, ops }
}

/// Output arity of a plan, when statically known.
fn arity(plan: &Plan, scan_arity: &FxHashMap<String, usize>) -> Option<usize> {
    match plan {
        Plan::Scan(name) => scan_arity.get(name).copied(),
        Plan::Literal(bag) => bag.iter().next().map(|(t, _)| t.arity()),
        Plan::Filter(_, p) | Plan::DupElim(p) => arity(p, scan_arity),
        Plan::Project(cols, _) => Some(cols.len()),
        Plan::Union(a, b)
        | Plan::Monus(a, b)
        | Plan::MinIntersect(a, b)
        | Plan::MaxUnion(a, b)
        | Plan::Except(a, b) => arity(a, scan_arity).or_else(|| arity(b, scan_arity)),
        Plan::Product(a, b) => Some(arity(a, scan_arity)? + arity(b, scan_arity)?),
        Plan::HashJoin { left, right, .. } => {
            Some(arity(left, scan_arity)? + arity(right, scan_arity)?)
        }
        Plan::GroupAggregate { keys, aggs, .. } => Some(keys.len() + aggs.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::expr::Expr;
    use crate::infer::{compile, compile_unoptimized};
    use crate::predicate::{col, lit, Predicate};
    use crate::testgen::{Rng, Universe};
    use dvm_storage::{tuple, Bag, Schema, ValueType};

    fn provider() -> std::collections::HashMap<String, Schema> {
        let mut m = std::collections::HashMap::new();
        m.insert(
            "r".to_string(),
            Schema::from_pairs(&[("a", ValueType::Int), ("b", ValueType::Int)]),
        );
        m.insert(
            "s".to_string(),
            Schema::from_pairs(&[("b", ValueType::Int), ("c", ValueType::Int)]),
        );
        m
    }

    fn state() -> std::collections::HashMap<String, Bag> {
        let mut m = std::collections::HashMap::new();
        m.insert(
            "r".to_string(),
            Bag::from_tuples([tuple![1, 10], tuple![1, 10], tuple![2, 20], tuple![3, 10]]),
        );
        m.insert(
            "s".to_string(),
            Bag::from_tuples([tuple![10, 100], tuple![20, 200], tuple![30, 300]]),
        );
        m
    }

    #[test]
    fn join_is_formed_and_correct() {
        let p = provider();
        let e = Expr::table("r")
            .alias("r")
            .product(Expr::table("s").alias("s"))
            .select(
                Predicate::eq(col("r.b"), col("s.b")).and(Predicate::gt(col("r.a"), lit(0i64))),
            );
        let optimized = compile(&e, &p).unwrap();
        assert!(
            matches!(optimized.plan, Plan::HashJoin { .. }),
            "expected a hash join, got {:?}",
            optimized.plan
        );
        let naive = compile_unoptimized(&e, &p).unwrap();
        let s = state();
        assert_eq!(
            eval(&optimized.plan, &s).unwrap(),
            eval(&naive.plan, &s).unwrap()
        );
        // duplicates multiply through the join
        let out = eval(&optimized.plan, &s).unwrap();
        assert_eq!(out.multiplicity(&tuple![1, 10, 10, 100]), 2);
    }

    #[test]
    fn single_side_predicates_pushed_down() {
        let p = provider();
        let e = Expr::table("r")
            .alias("r")
            .product(Expr::table("s").alias("s"))
            .select(
                Predicate::eq(col("r.b"), col("s.b"))
                    .and(Predicate::eq(col("r.a"), lit(1i64)))
                    .and(Predicate::lt(col("s.c"), lit(250i64))),
            );
        let q = compile(&e, &p).unwrap();
        let Plan::HashJoin { left, right, .. } = &q.plan else {
            panic!("expected join: {:?}", q.plan);
        };
        assert!(matches!(**left, Plan::Filter(..)), "left filter pushed");
        assert!(matches!(**right, Plan::Filter(..)), "right filter pushed");
        let s = state();
        let out = eval(&q.plan, &s).unwrap();
        assert_eq!(out.len(), 2); // [1,10,10,100] ×2
    }

    #[test]
    fn non_equi_product_keeps_filter() {
        let p = provider();
        let e = Expr::table("r")
            .alias("r")
            .product(Expr::table("s").alias("s"))
            .select(Predicate::lt(col("r.b"), col("s.b")));
        let q = compile(&e, &p).unwrap();
        assert!(matches!(q.plan, Plan::Filter(_, _)));
        let s = state();
        let naive = compile_unoptimized(&e, &p).unwrap();
        assert_eq!(eval(&q.plan, &s).unwrap(), eval(&naive.plan, &s).unwrap());
    }

    #[test]
    fn nested_products_become_nested_joins() {
        let mut p = provider();
        p.insert(
            "t".to_string(),
            Schema::from_pairs(&[("c", ValueType::Int), ("d", ValueType::Int)]),
        );
        let e = Expr::table("r")
            .alias("r")
            .product(Expr::table("s").alias("s"))
            .product(Expr::table("t").alias("t"))
            .select(
                Predicate::eq(col("r.b"), col("s.b")).and(Predicate::eq(col("s.c"), col("t.c"))),
            );
        let q = compile(&e, &p).unwrap();
        // outer join on s.c = t.c; inner (pushed) join on r.b = s.b
        let Plan::HashJoin { left, .. } = &q.plan else {
            panic!("outer join expected: {:?}", q.plan);
        };
        assert!(
            matches!(**left, Plan::HashJoin { .. }),
            "inner join expected: {left:?}"
        );
        let mut s = state();
        s.insert(
            "t".to_string(),
            Bag::from_tuples([tuple![100, 1], tuple![300, 3]]),
        );
        let naive = compile_unoptimized(&e, &p).unwrap();
        assert_eq!(eval(&q.plan, &s).unwrap(), eval(&naive.plan, &s).unwrap());
    }

    #[test]
    fn filter_pushes_through_union_of_products() {
        // The differential-rule shape: σ over a union of delta products
        // must become a union of hash joins, not filtered cross products.
        let p = provider();
        let join_pred = Predicate::eq(col("r.b"), col("s.b"));
        let e = Expr::table("r")
            .alias("r")
            .product(Expr::table("s").alias("s"))
            .union(
                Expr::table("r")
                    .alias("r")
                    .product(Expr::table("s").alias("s")),
            )
            .select(join_pred);
        let q = compile(&e, &p).unwrap();
        let Plan::Union(a, b) = &q.plan else {
            panic!("filter should push through the union: {:?}", q.plan);
        };
        assert!(matches!(**a, Plan::HashJoin { .. }));
        assert!(matches!(**b, Plan::HashJoin { .. }));
        let s = state();
        let naive = compile_unoptimized(&e, &p).unwrap();
        assert_eq!(eval(&q.plan, &s).unwrap(), eval(&naive.plan, &s).unwrap());
    }

    #[test]
    fn filter_pushes_through_projection_with_remap() {
        let p = provider();
        let e = Expr::table("r")
            .project(["b", "a"])
            .select(Predicate::gt(col("a"), lit(1i64)));
        let q = compile(&e, &p).unwrap();
        let Plan::Project(_, inner) = &q.plan else {
            panic!("projection should be outermost: {:?}", q.plan);
        };
        assert!(matches!(**inner, Plan::Filter(..)));
        let s = state();
        let naive = compile_unoptimized(&e, &p).unwrap();
        assert_eq!(eval(&q.plan, &s).unwrap(), eval(&naive.plan, &s).unwrap());
    }

    #[test]
    fn filter_pushes_through_monus_and_dedup() {
        let p = provider();
        let e = Expr::table("r")
            .monus(Expr::table("r").dedup())
            .select(Predicate::eq(col("a"), lit(1i64)));
        let q = compile(&e, &p).unwrap();
        assert!(
            matches!(q.plan, Plan::Monus(..)),
            "filter pushed below monus: {:?}",
            q.plan
        );
        let s = state();
        let naive = compile_unoptimized(&e, &p).unwrap();
        assert_eq!(eval(&q.plan, &s).unwrap(), eval(&naive.plan, &s).unwrap());
    }

    #[test]
    fn fuse_collapses_filter_project_chains() {
        let p = provider();
        let e = Expr::table("r")
            .select(Predicate::gt(col("a"), lit(1i64)))
            .project(["b"])
            .select(Predicate::lt(col("b"), lit(100i64)));
        let q = compile(&e, &p).unwrap();
        let fused = fuse(&q.plan);
        assert!(
            matches!(fused.source, FusedSource::Scan("r")),
            "chain should bottom out at the scan: {fused:?}"
        );
        // Filter pushdown has already merged both selections below the
        // projection, so fusion sees one conjunctive filter then a project.
        assert_eq!(fused.ops.len(), 2, "merged filter + project fused: {fused:?}");
        assert!(matches!(fused.ops[0], FusedOp::Filter(_)));
        assert!(matches!(fused.ops[1], FusedOp::Project(_)));
    }

    #[test]
    fn fuse_streams_joins_and_breaks_on_monus() {
        let p = provider();
        let join = Expr::table("r")
            .alias("r")
            .product(Expr::table("s").alias("s"))
            .select(Predicate::eq(col("r.b"), col("s.b")))
            .project(["a", "c"]);
        let q = compile(&join, &p).unwrap();
        let fused = fuse(&q.plan);
        assert!(matches!(fused.source, FusedSource::Join { .. }));
        assert_eq!(fused.ops.len(), 1, "projection fused over the probe output");

        let diff = Expr::table("r").monus(Expr::table("r").dedup());
        let q2 = compile(&diff, &p).unwrap();
        let fused2 = fuse(&q2.plan);
        assert!(matches!(fused2.source, FusedSource::Breaker(_)));
        assert!(fused2.ops.is_empty());
    }

    #[test]
    fn randomized_equivalence() {
        let u = Universe::small(3);
        let provider = u.provider();
        let mut rng = Rng::new(31337);
        for _ in 0..300 {
            let state = u.state(&mut rng, 5);
            let e = u.expr(&mut rng, 3);
            let optimized = compile(&e, &provider).unwrap();
            let naive = compile_unoptimized(&e, &provider).unwrap();
            assert_eq!(
                eval(&optimized.plan, &state).unwrap(),
                eval(&naive.plan, &state).unwrap(),
                "optimizer changed semantics of {e}"
            );
        }
    }
}
