//! Shrinking property-test harness replacing `proptest`.
//!
//! A property is a closure `Fn(&mut Rng)` that draws a random input and
//! asserts something about it (plain `assert!`/`assert_eq!` — a panic is a
//! failure). The harness runs it for a configurable number of cases, each
//! under a distinct case seed derived from the base seed, with the RNG in
//! *recording* mode. When a case fails, the recorded tape of raw draws is
//! shrunk — tail truncation, zeroing, and halving of entries, replayed
//! after each edit — and the final report prints the failing case seed,
//! the environment variable that reproduces it, and the shrunk tape.
//!
//! Pinned regressions: [`Prop::regression_seeds`] re-runs saved case seeds
//! before any novel cases are generated (the moral equivalent of a
//! `proptest-regressions` file), and [`replay_tape`] re-runs one explicit
//! shrunk tape.
//!
//! Reproduction: set `DVM_PROP_SEED=<hex-or-decimal>` to run only that
//! case seed (with full panic output, no shrinking).

use crate::rng::Rng;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Mutex;

/// Environment variable that pins a single reproducing case seed.
pub const SEED_ENV: &str = "DVM_PROP_SEED";

/// Environment variable that overrides the number of cases per property.
pub const CASES_ENV: &str = "DVM_PROP_CASES";

/// Serializes panic-hook swapping across concurrently running properties
/// (the libtest harness runs tests on many threads).
static HOOK_LOCK: Mutex<()> = Mutex::new(());

/// Total shrink attempts per failure (replays of candidate tapes).
const SHRINK_BUDGET: usize = 600;

/// A configured property run.
#[derive(Debug, Clone)]
pub struct Prop {
    name: String,
    cases: u32,
    base_seed: u64,
    regressions: Vec<u64>,
}

impl Prop {
    /// A property named `name` (used in failure reports), defaulting to
    /// 256 cases under a fixed base seed.
    pub fn new(name: impl Into<String>) -> Self {
        Prop {
            name: name.into(),
            cases: 256,
            base_seed: 0xD5_F3_7A_11,
            regressions: Vec::new(),
        }
    }

    /// Set the number of cases (the `DVM_PROP_CASES` env var overrides).
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Set the base seed from which case seeds are derived.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Pin previously failing case seeds: they run first, before any novel
    /// cases, so a fixed bug stays fixed.
    pub fn regression_seeds(mut self, seeds: &[u64]) -> Self {
        self.regressions.extend_from_slice(seeds);
        self
    }

    /// Run the property. Panics (failing the enclosing `#[test]`) on the
    /// first failing case, after shrinking, with a reproduction recipe.
    pub fn run(self, f: impl Fn(&mut Rng)) {
        // Pinned reproduction: run exactly one case, without catching the
        // panic, so the natural assertion message and backtrace surface.
        if let Ok(v) = std::env::var(SEED_ENV) {
            let seed = parse_seed(&v)
                .unwrap_or_else(|| panic!("{SEED_ENV}={v}: not a u64 (decimal or 0x-hex)"));
            eprintln!("property '{}': replaying pinned seed {seed:#x}", self.name);
            f(&mut Rng::recording(seed));
            return;
        }
        let cases = std::env::var(CASES_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases);
        let seeds = self
            .regressions
            .iter()
            .copied()
            .chain((0..cases).map(|i| splitmix64(self.base_seed.wrapping_add(i as u64))));
        for (i, case_seed) in seeds.enumerate() {
            let mut rng = Rng::recording(case_seed);
            if let Err(msg) = quiet_catch(|| f(&mut rng)) {
                let tape = rng.tape().expect("recording mode").to_vec();
                self.report_failure(&f, i, case_seed, tape, msg);
            }
        }
    }

    fn report_failure(
        &self,
        f: &impl Fn(&mut Rng),
        case: usize,
        case_seed: u64,
        tape: Vec<u64>,
        msg: String,
    ) -> ! {
        let (tape, msg) = shrink(f, tape, msg);
        let shown = 24.min(tape.len());
        panic!(
            "property '{}' failed at case {case} (seed {case_seed:#x})\n\
             reproduce with: {SEED_ENV}={case_seed:#x} cargo test\n\
             shrunk input tape: {} draws, first {shown}: {:?}\n\
             assertion: {msg}",
            self.name,
            tape.len(),
            &tape[..shown],
        );
    }
}

/// Replay one explicit shrunk tape against a property — for pinning a
/// minimal counterexample found by the shrinker as a regression test.
pub fn replay_tape(tape: &[u64], f: impl Fn(&mut Rng)) {
    f(&mut Rng::replay(tape.to_vec()));
}

/// Derive a well-mixed case seed from a base seed + index (splitmix64).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn parse_seed(v: &str) -> Option<u64> {
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

thread_local! {
    /// Nesting depth of [`quiet_catch`] on this thread — a nested call
    /// (a property run inside another caught closure) must not re-acquire
    /// [`HOOK_LOCK`], which is not reentrant.
    static QUIET_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Run `f`, catching a panic and extracting its message, with the global
/// panic hook silenced so shrink attempts don't flood the captured output.
fn quiet_catch(f: impl FnOnce()) -> Result<(), String> {
    let nested = QUIET_DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v > 0
    });
    let result = if nested {
        // The outer call on this thread already silenced the hook and
        // holds the lock; just catch.
        panic::catch_unwind(AssertUnwindSafe(f))
    } else {
        let _guard = HOOK_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let prev = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        panic::set_hook(prev);
        result
    };
    QUIET_DEPTH.with(|d| d.set(d.get() - 1));
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Bounded shrink search over the raw-draw tape: keep any edit that still
/// fails. Edits, in order of aggressiveness: truncate the tail, zero single
/// entries, halve single entries. Returns the smallest failing tape found
/// and its assertion message.
fn shrink(f: &impl Fn(&mut Rng), tape: Vec<u64>, msg: String) -> (Vec<u64>, String) {
    let mut best = tape;
    let mut best_msg = msg;
    let mut budget = SHRINK_BUDGET;
    let try_candidate = |cand: &[u64], budget: &mut usize| -> Option<String> {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        quiet_catch(|| f(&mut Rng::replay(cand.to_vec()))).err()
    };

    // Phase 1: binary-search the shortest failing prefix.
    let mut lo = 0usize;
    let mut hi = best.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match try_candidate(&best[..mid], &mut budget) {
            Some(m) => {
                best_msg = m;
                hi = mid;
            }
            None => lo = mid + 1,
        }
        if budget == 0 {
            break;
        }
    }
    best.truncate(hi);

    // Phases 2–3: per-entry zeroing, then halving, looped to fixpoint.
    loop {
        let mut improved = false;
        for i in 0..best.len() {
            if best[i] == 0 {
                continue;
            }
            let mut cand = best.clone();
            cand[i] = 0;
            if let Some(m) = try_candidate(&cand, &mut budget) {
                best = cand;
                best_msg = m;
                improved = true;
            }
        }
        for i in 0..best.len() {
            if best[i] <= 1 {
                continue;
            }
            let mut cand = best.clone();
            cand[i] /= 2;
            if let Some(m) = try_candidate(&cand, &mut budget) {
                best = cand;
                best_msg = m;
                improved = true;
            }
        }
        if !improved || budget == 0 {
            break;
        }
    }
    (best, best_msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn passing_property_runs_all_cases() {
        let count = AtomicU32::new(0);
        Prop::new("always-true").cases(40).run(|rng| {
            count.fetch_add(1, Ordering::Relaxed);
            assert!(rng.below(10) < 10);
        });
        assert_eq!(count.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn failing_property_reports_seed_and_tape() {
        let failure = quiet_catch(|| {
            Prop::new("finds-big-value").cases(200).run(|rng| {
                let v = rng.below(1_000);
                assert!(v < 990, "drew {v}");
            });
        });
        let msg = failure.expect_err("property must fail");
        assert!(msg.contains("finds-big-value"), "{msg}");
        assert!(msg.contains(SEED_ENV), "{msg}");
        assert!(msg.contains("shrunk input tape"), "{msg}");
    }

    #[test]
    fn shrinking_minimizes_vector_length() {
        // Property: any drawn vector has < 3 elements ≥ 5. Up to 51 draws
        // are made per case; the greedy tape shrinker (truncate/zero/halve
        // — it cannot move draws) must still cut the tape down hard.
        let failure = quiet_catch(|| {
            Prop::new("short-vectors").cases(300).run(|rng| {
                let len = rng.below(50) as usize;
                let v: Vec<u64> = (0..len).map(|_| rng.below(10)).collect();
                assert!(v.iter().filter(|&&x| x >= 5).count() < 3);
            });
        });
        let msg = failure.expect_err("property must fail");
        let draws: u64 = msg
            .split("shrunk input tape: ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .expect("tape size in report");
        assert!(draws <= 20, "shrinker left {draws} draws: {msg}");
    }

    #[test]
    fn regression_seeds_run_first() {
        let count = AtomicU32::new(0);
        let failure = quiet_catch(|| {
            Prop::new("pinned")
                .cases(100)
                .regression_seeds(&[0xBAD])
                .run(|rng| {
                    count.fetch_add(1, Ordering::Relaxed);
                    // Every seed fails; the point is that the pinned seed is
                    // case 0 and is what gets reported.
                    let _ = rng.next_u64();
                    panic!("always fails");
                });
        });
        let msg = failure.expect_err("must fail");
        assert!(msg.contains("case 0"), "{msg}");
        assert!(msg.contains("0xbad"), "{msg}");
    }

    #[test]
    fn replay_tape_feeds_exact_draws() {
        replay_tape(&[7, 3], |rng| {
            assert_eq!(rng.next_u64(), 7);
            assert_eq!(rng.next_u64(), 3);
            assert_eq!(rng.next_u64(), 0, "exhausted tape yields zero");
        });
    }

    #[test]
    fn splitmix_spreads_adjacent_indices() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10, "adjacent seeds must decorrelate");
    }

    #[test]
    fn parse_seed_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("123"), Some(123));
        assert_eq!(parse_seed("0xff"), Some(255));
        assert_eq!(parse_seed(" 0XFF "), Some(255));
        assert_eq!(parse_seed("zzz"), None);
    }
}
