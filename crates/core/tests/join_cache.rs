//! Join-build cache correctness under the commit protocol.
//!
//! The streaming executor caches hash-join build tables keyed on the build
//! subtree's fingerprint and validated against the scanned tables' data
//! epochs. These tests drive it through `Database`: a commit between two
//! propagates must never let the second propagate reuse a stale build, the
//! cache must be invisible to serial-vs-parallel maintenance equivalence,
//! and the hit/miss counters must show the cache actually working.

use dvm_algebra::testgen::{Rng, Universe};
use dvm_algebra::{col, Expr, Predicate};
use dvm_core::{Database, Scenario};
use dvm_delta::Transaction;
use dvm_storage::Bag;
use dvm_testkit::sync::with_workers;

/// `Π[l.a, r.b](σ_{l.a = r.a}(t0 × t1))` — an equi-join the optimizer
/// compiles to a `HashJoin`, over the shared two-column schema.
fn join_def() -> Expr {
    Expr::table("t0")
        .alias("l")
        .product(Expr::table("t1").alias("r"))
        .select(Predicate::eq(col("l.a"), col("r.a")))
        .project(["l.a", "r.b"])
}

fn seeded_db(u: &Universe, seed: u64) -> Database {
    let mut rng = Rng::new(seed);
    let db = Database::new();
    for t in &u.tables {
        let table = db.create_table(t.clone(), u.schema.clone()).unwrap();
        table.replace(u.bag(&mut rng, 6)).unwrap();
    }
    db
}

fn random_tx(u: &Universe, rng: &mut Rng, db: &Database) -> Transaction {
    let mut tx = Transaction::new();
    for t in &u.tables {
        if rng.chance(1, 2) {
            continue;
        }
        let current = db.catalog().bag_of(t).unwrap();
        let mut del = Bag::new();
        for (tuple, mult) in current.iter() {
            if rng.chance(1, 3) {
                del.insert_n(tuple.clone(), 1 + rng.below(mult));
            }
        }
        tx = tx.delete(t.clone(), del).insert(t.clone(), u.bag(rng, 3));
    }
    tx
}

/// A commit between two propagates bumps the written tables' epochs, so the
/// second propagate must rebuild — reusing the pre-commit build table would
/// silently freeze the view. Checked against recomputed truth every round.
#[test]
fn commit_between_propagates_never_serves_stale_build() {
    let u = Universe::small(2);
    let db = seeded_db(&u, 0xCAFE);
    db.create_view("vj", join_def(), Scenario::Combined).unwrap();

    let mut rng = Rng::new(0x5EED);
    for round in 0..15 {
        db.execute(&random_tx(&u, &mut rng, &db)).unwrap();
        db.propagate("vj").unwrap();
        // The interleaved commit: every table it wrote is epoch-bumped.
        db.execute(&random_tx(&u, &mut rng, &db)).unwrap();
        db.propagate("vj").unwrap();
        db.partial_refresh("vj").unwrap();
        assert_eq!(
            db.query_view("vj").unwrap(),
            db.recompute_view("vj").unwrap(),
            "round {round}: propagate after commit used stale state"
        );
        let failures = db.check_all_invariants().unwrap();
        assert!(failures.is_empty(), "round {round}: {failures:?}");
    }
}

/// Identical transaction streams through a serial (1-thread) and a parallel
/// (4-thread) database, join views in every maintenance-bearing scenario:
/// the cache must not make the fan-out path observable.
#[test]
fn serial_and_parallel_maintenance_agree_with_caching() {
    let u = Universe::small(2);
    let build = |threads: usize| {
        let db = seeded_db(&u, 0xB0B);
        for (i, scenario) in [
            Scenario::Immediate,
            Scenario::BaseLog,
            Scenario::DiffTable,
            Scenario::Combined,
        ]
        .into_iter()
        .enumerate()
        {
            db.create_view(format!("vj{i}"), join_def(), scenario).unwrap();
        }
        db.set_maintenance_threads(threads);
        db
    };
    let serial = build(1);
    let fanout = build(4);
    // Pregenerated stream: deletes drawn from the tuple universe, not table
    // state, so both databases see byte-identical transactions.
    let mut rng = Rng::new(0x7001);
    let txs: Vec<Transaction> = (0..12)
        .map(|_| {
            let mut tx = Transaction::new();
            for t in &u.tables {
                tx = tx
                    .delete(t.clone(), u.bag(&mut rng, 2))
                    .insert(t.clone(), u.bag(&mut rng, 3));
            }
            tx
        })
        .collect();
    for tx in &txs {
        serial.execute(tx).unwrap();
        fanout.execute(tx).unwrap();
        serial.propagate_all().unwrap();
        fanout.propagate_all().unwrap();
    }
    serial.refresh_all().unwrap();
    fanout.refresh_all().unwrap();
    for i in 0..4 {
        let name = format!("vj{i}");
        assert_eq!(
            serial.query_view(&name).unwrap(),
            fanout.query_view(&name).unwrap(),
            "{name}: caching made fan-out observable"
        );
        assert_eq!(
            fanout.query_view(&name).unwrap(),
            fanout.recompute_view(&name).unwrap(),
            "{name}: diverged from recomputed truth"
        );
    }
}

/// Concurrent execute / propagate / refresh traffic over join views with the
/// cache live: invariants hold and views land on truth at quiescence.
#[test]
fn concurrent_traffic_with_cache_stays_consistent() {
    let u = Universe::small(2);
    let db = seeded_db(&u, 0xD00D);
    db.create_view("vj_c", join_def(), Scenario::Combined).unwrap();
    db.create_view("vj_bl", join_def(), Scenario::BaseLog).unwrap();
    db.set_maintenance_threads(4);

    let ((), _) = with_workers(
        4,
        |i, _stop| {
            let mut rng = Rng::new(0xFEED + i as u64);
            for _ in 0..15 {
                match rng.below(6) {
                    0..=2 => {
                        let tx = random_tx(&u, &mut rng, &db);
                        db.execute(&tx).unwrap();
                    }
                    3 => db.propagate("vj_c").unwrap(),
                    4 => db.partial_refresh("vj_c").unwrap(),
                    _ => db.refresh("vj_bl").unwrap(),
                }
            }
        },
        || {},
    );

    let failures = db.check_all_invariants().unwrap();
    assert!(failures.is_empty(), "post-stress invariants: {failures:?}");
    db.refresh_all().unwrap();
    for v in ["vj_c", "vj_bl"] {
        assert_eq!(
            db.query_view(v).unwrap(),
            db.recompute_view(v).unwrap(),
            "{v} diverged under concurrent cached maintenance"
        );
    }
}

/// The counters prove reuse: repeated evaluation over unchanged state hits,
/// a commit forces a miss, and the numbers surface in observability JSON.
#[test]
fn cache_hits_accumulate_and_commits_force_misses() {
    let u = Universe::small(2);
    let db = seeded_db(&u, 0xAB);
    let before = db.catalog().join_cache().stats();
    // The initial materialization at view creation is the cold build.
    db.create_view("vj", join_def(), Scenario::Combined).unwrap();
    let cold = db.catalog().join_cache().stats();
    assert!(cold.misses > before.misses, "first build must be a miss");
    db.recompute_view("vj").unwrap();
    let warm = db.catalog().join_cache().stats();
    assert!(warm.hits > cold.hits, "unchanged state must hit");
    assert_eq!(warm.misses, cold.misses, "no rebuild on unchanged state");

    // A commit to the build side drops/invalidates the entry: next
    // evaluation misses, and the result is still correct.
    db.execute(&Transaction::new().insert_tuple("t1", dvm_storage::tuple![1, 9]))
        .unwrap();
    db.recompute_view("vj").unwrap();
    let after_commit = db.catalog().join_cache().stats();
    assert!(
        after_commit.misses > warm.misses,
        "commit must force a rebuild"
    );

    let obs = db.observability();
    assert_eq!(obs.join_cache, after_commit);
    let doc = obs.to_json();
    assert!(
        doc.contains("\"join_cache\""),
        "observability JSON must carry cache counters"
    );
}
