//! **Delta-plan compilation experiment**: steady-state propagate through
//! the view's compiled delta program vs re-deriving the change queries
//! symbolically on every call, written to `results/BENCH_compile.json`.
//!
//! Both paths share the evaluation back half (Lemma 3 fold, log clear);
//! the difference under measurement is exactly the per-call symbolic work
//! the compiler amortizes — `Del`/`Add` differentiation, simplification,
//! and physical plan construction.
//!
//! Series:
//!
//! * `compile/small_delta/{compiled,per_call}` — propagate a 10-sale
//!   backlog through the Example-1.1 join view. Small deltas are the
//!   steady-state regime deferred maintenance lives in, and where the
//!   symbolic front half dominates; `obs_guard` gates
//!   `per_call ≥ 1.5× compiled` here.
//! * `compile/delta1000/{compiled,per_call}` — a 1 000-sale backlog: the
//!   evaluation dominates and the ratio shrinks toward 1, bounding what
//!   compilation can and cannot buy.
//! * `compile/agg_small/{compiled,per_call}` — a GROUP BY view (COUNT,
//!   SUM over sales), whose γ differentiation is the costliest to re-run
//!   per call.
//!
//! Every round is differentially checked before timing: a compiled-path
//! twin and a per-call twin run the same backlog and must agree with each
//! other and with a from-scratch recompute. `--test` runs the checks and
//! one quick sample per series without writing (the `scripts/ci.sh`
//! smoke).

use dvm_algebra::{AggCall, AggFunc, ColRef, Expr};
use dvm_bench::report::{summary_table, write_json};
use dvm_bench::retail_db;
use dvm_core::{Database, Minimality, Scenario};
use dvm_testkit::bench::{Bench, Summary};
use dvm_workload::RetailGen;

// Small base tables keep the fixed evaluation cost low, so the
// small-delta series isolates the per-call symbolic front half (the thing
// compilation removes) instead of burying it under table scans.
const CUSTOMERS: usize = 100;
const INITIAL_SALES: usize = 300;
const SMALL: usize = 8;
const LARGE: usize = 1_000;

/// `γ_{custId; COUNT(*), SUM(quantity)}(sales)` — an aggregate view over
/// the same fact stream.
fn agg_expr() -> Expr {
    Expr::table("sales").group_aggregate(
        vec![ColRef::new("custId")],
        vec![
            AggCall::count_star(),
            AggCall::new(AggFunc::Sum, ColRef::new("quantity")),
        ],
    )
}

/// A retail database with the join view `V` and the aggregate view `VA`,
/// plus one warmed-up propagate so the measured rounds hit the variant
/// cache (steady state), never the one-time compile.
fn make(seed: u64) -> (Database, RetailGen) {
    let (db, mut gen) = retail_db(
        CUSTOMERS,
        INITIAL_SALES,
        Scenario::Combined,
        Minimality::Weak,
        seed,
    );
    db.create_view_with("VA", agg_expr(), Scenario::Combined, Minimality::Weak)
        .expect("create aggregate view");
    db.execute(&gen.sales_batch(SMALL)).unwrap();
    db.propagate("V").unwrap();
    db.propagate("VA").unwrap();
    (db, gen)
}

/// Compiled and per-call propagation must be indistinguishable: same MV,
/// same differential tables, same truth — checked across several rounds
/// on twin databases fed identical batches.
fn differential_check() {
    let (compiled, mut gen_a) = make(7);
    let (per_call, mut gen_b) = make(7);
    for round in 0..4 {
        let batch_a = gen_a.sales_batch(25);
        let batch_b = gen_b.sales_batch(25);
        compiled.execute(&batch_a).unwrap();
        per_call.execute(&batch_b).unwrap();
        for v in ["V", "VA"] {
            compiled.propagate(v).unwrap();
            per_call.propagate_uncompiled(v).unwrap();
        }
        for v in ["V", "VA"] {
            compiled.partial_refresh(v).unwrap();
            per_call.partial_refresh(v).unwrap();
            let a = compiled.query_view(v).unwrap();
            let b = per_call.query_view(v).unwrap();
            assert_eq!(a, b, "round {round}: {v} diverged compiled vs per-call");
            assert_eq!(
                a,
                compiled.recompute_view(v).unwrap(),
                "round {round}: {v} diverged from recomputed truth"
            );
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let bench = if quick { Bench::quick() } else { Bench::from_env() };

    differential_check();

    let mut out: Vec<Summary> = Vec::new();
    let cases: &[(&str, &str, usize, bool)] = &[
        ("compile/small_delta/compiled", "V", SMALL, true),
        ("compile/small_delta/per_call", "V", SMALL, false),
        ("compile/delta1000/compiled", "V", LARGE, true),
        ("compile/delta1000/per_call", "V", LARGE, false),
        ("compile/agg_small/compiled", "VA", SMALL, true),
        ("compile/agg_small/per_call", "VA", SMALL, false),
    ];
    for &(name, view, batch, use_compiled) in cases {
        out.push(bench.run_batched(
            name,
            || {
                let (db, mut gen) = make(42);
                db.execute(&gen.sales_batch(batch)).unwrap();
                db
            },
            |db| {
                if use_compiled {
                    db.propagate(view).unwrap();
                } else {
                    db.propagate_uncompiled(view).unwrap();
                }
            },
        ));
    }

    if quick {
        println!(
            "exp_compile: smoke OK — compiled≡per-call differential checks passed, \
             {} benchmarks ran",
            out.len()
        );
        return;
    }
    summary_table(&out).print();

    let median = |name: &str| {
        out.iter()
            .find(|s| s.name == name)
            .map(|s| s.median_ns)
            .unwrap_or(f64::NAN)
    };
    println!(
        "\ncompiled-plan speedup (median per-call / compiled): \
         small delta {:.1}x, 1000-delta {:.1}x, aggregate {:.1}x",
        median("compile/small_delta/per_call") / median("compile/small_delta/compiled"),
        median("compile/delta1000/per_call") / median("compile/delta1000/compiled"),
        median("compile/agg_small/per_call") / median("compile/agg_small/compiled"),
    );

    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("BENCH_compile.json");
        match write_json(&path, &out) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}
