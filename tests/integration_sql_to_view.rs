//! End-to-end: SQL text → view definition → maintained materialization,
//! across all four scenarios, including the paper's Example 1.1 view.

use dvm::workload::{customer_schema, sales_schema, VIEW_SQL};
use dvm::{Database, Minimality, Scenario, SqlOutcome, SqlSession};
use dvm_storage::tuple;

fn retail_base(db: &Database) {
    db.create_table("customer", customer_schema()).unwrap();
    db.create_table("sales", sales_schema()).unwrap();
    let s = SqlSession::new(db);
    s.run_script(
        "INSERT INTO customer VALUES (1, 'alice', '1 main st', 'High'), \
                                     (2, 'bob', '2 main st', 'Low'), \
                                     (3, 'carol', '3 main st', 'High'); \
         INSERT INTO sales VALUES (1, 100, 2, 9.99), (1, 100, 2, 9.99), \
                                  (2, 100, 1, 9.99), (3, 101, 0, 5.00);",
    )
    .unwrap();
}

#[test]
fn example_1_1_view_all_scenarios() {
    for scenario in [
        Scenario::Immediate,
        Scenario::BaseLog,
        Scenario::DiffTable,
        Scenario::Combined,
    ] {
        let db = Database::new();
        retail_base(&db);
        let session = SqlSession::new(&db).with_default_scenario(scenario);
        session.run(VIEW_SQL).unwrap();

        // alice's duplicate sales both appear (bag semantics); carol's
        // zero-quantity sale and bob's low score are filtered.
        let v = db.query_view("V").unwrap();
        assert_eq!(v.len(), 2, "{scenario:?}");
        assert_eq!(v.multiplicity(&tuple![1, "alice", "High", 100, 2]), 2);

        // a new sale for carol with nonzero quantity
        session
            .run("INSERT INTO sales VALUES (3, 102, 5, 19.99)")
            .unwrap();
        // and bob gets promoted (delete + insert through SQL)
        session
            .run("DELETE FROM customer WHERE name = 'bob'")
            .unwrap();
        session
            .run("INSERT INTO customer VALUES (2, 'bob', '2 main st', 'High')")
            .unwrap();

        assert!(db.check_invariant("V").unwrap().ok(), "{scenario:?}");
        db.refresh("V").unwrap();
        let v = db.query_view("V").unwrap();
        assert_eq!(v, db.recompute_view("V").unwrap(), "{scenario:?}");
        assert!(v.contains(&tuple![3, "carol", "High", 102, 5]));
        assert!(v.contains(&tuple![2, "bob", "High", 100, 1]));
    }
}

#[test]
fn querying_view_by_name_reads_materialization() {
    let db = Database::new();
    retail_base(&db);
    let session = SqlSession::new(&db).with_default_scenario(Scenario::BaseLog);
    session.run(VIEW_SQL).unwrap();
    session
        .run("INSERT INTO sales VALUES (1, 103, 7, 3.50)")
        .unwrap();
    // The view table is stale; SELECTing FROM the view must show the
    // stale contents (that is the decision-support reading of the paper).
    let SqlOutcome::Rows(stale) = session.run("SELECT custId, itemNo FROM V").unwrap() else {
        panic!()
    };
    assert!(!stale.contains(&tuple![1, 103]));
    db.refresh("V").unwrap();
    let SqlOutcome::Rows(fresh) = session.run("SELECT custId, itemNo FROM V").unwrap() else {
        panic!()
    };
    assert!(fresh.contains(&tuple![1, 103]));
}

#[test]
fn compound_sql_views_maintained() {
    // A view with UNION ALL and EXCEPT ALL over two ad-hoc tables.
    let db = Database::new();
    let s = SqlSession::new(&db).with_default_scenario(Scenario::Combined);
    db.create_table(
        "a",
        dvm_storage::Schema::from_pairs(&[("x", dvm_storage::ValueType::Int)]),
    )
    .unwrap();
    db.create_table(
        "b",
        dvm_storage::Schema::from_pairs(&[("x", dvm_storage::ValueType::Int)]),
    )
    .unwrap();
    s.run_script(
        "INSERT INTO a VALUES (1), (1), (2); \
         INSERT INTO b VALUES (1), (3);",
    )
    .unwrap();
    s.run("CREATE VIEW u AS SELECT x FROM a UNION ALL SELECT x FROM b")
        .unwrap();
    s.run("CREATE VIEW m AS SELECT x FROM a EXCEPT ALL SELECT x FROM b")
        .unwrap();
    s.run("CREATE VIEW d AS SELECT DISTINCT x FROM a").unwrap();

    assert_eq!(db.query_view("u").unwrap().len(), 5);
    assert_eq!(db.query_view("m").unwrap().multiplicity(&tuple![1]), 1);
    assert_eq!(db.query_view("d").unwrap().len(), 2);

    // churn both tables
    s.run_script(
        "DELETE FROM a WHERE x = 1; \
         INSERT INTO b VALUES (2), (2); \
         INSERT INTO a VALUES (4);",
    )
    .unwrap();
    for v in ["u", "m", "d"] {
        assert!(db.check_invariant(v).unwrap().ok(), "{v}");
        db.refresh(v).unwrap();
        assert_eq!(
            db.query_view(v).unwrap(),
            db.recompute_view(v).unwrap(),
            "{v}"
        );
    }
}

#[test]
fn strong_minimality_via_session() {
    let db = Database::new();
    db.create_table(
        "t",
        dvm_storage::Schema::from_pairs(&[("x", dvm_storage::ValueType::Int)]),
    )
    .unwrap();
    let s = SqlSession::new(&db)
        .with_default_scenario(Scenario::Combined)
        .with_default_minimality(Minimality::Strong);
    s.run("INSERT INTO t VALUES (1)").unwrap();
    s.run("CREATE VIEW v AS SELECT x FROM t").unwrap();
    // churn: delete + reinsert, then propagate — strong minimality cancels
    s.run("DELETE FROM t WHERE x = 1").unwrap();
    db.propagate("v").unwrap();
    s.run("INSERT INTO t VALUES (1)").unwrap();
    db.propagate("v").unwrap();
    let (_, dt) = db.aux_sizes("v").unwrap();
    assert_eq!(dt, 0, "delete/reinsert fully cancelled");
    db.refresh("v").unwrap();
    assert_eq!(db.query_view("v").unwrap(), db.recompute_view("v").unwrap());
}
