//! `INV_IM` (Section 3.2): the view table is always consistent.
//!
//! `makesafe_IM[T]` augments `T` with
//! `MV := (MV ∸ ∇(T,Q)) ⊎ Δ(T,Q)`, the incremental queries evaluated in the
//! **pre-update** state. The per-transaction overhead is the full cost of
//! generating and evaluating the incremental queries — the very cost
//! deferred maintenance exists to displace.

use crate::error::Result;
use crate::scenario::eval_pair;
use crate::view::View;
use dvm_delta::{pre_update_deltas, Transaction};
use dvm_storage::{Bag, Catalog};

/// The `MV` update computed before the transaction runs.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingMvUpdate {
    /// Bag to remove from `MV` (`∇(T,Q)` evaluated pre-update).
    pub del: Bag,
    /// Bag to add to `MV` (`Δ(T,Q)` evaluated pre-update).
    pub ins: Bag,
}

/// Pre-update phase of `makesafe_IM[T]`: derive `∇(T,Q)/Δ(T,Q)` and
/// evaluate them in the current (pre-update) state.
pub fn prepare(catalog: &Catalog, view: &View, tx: &Transaction) -> Result<PendingMvUpdate> {
    let pair = pre_update_deltas(view.definition(), tx, catalog)?;
    let (del, ins) = eval_pair(catalog, &pair.del, &pair.add)?;
    Ok(PendingMvUpdate { del, ins })
}

/// Post-update phase: apply the precomputed bags to `MV`.
pub fn apply(catalog: &Catalog, view: &View, pending: &PendingMvUpdate) -> Result<()> {
    let mv = catalog.require(view.mv_table())?;
    mv.apply_delta(&pending.del, &pending.ins)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{Minimality, Scenario};
    use dvm_algebra::infer::compile;
    use dvm_algebra::Expr;
    use dvm_storage::{tuple, Schema, TableKind, ValueType};

    fn setup() -> (Catalog, View) {
        let c = Catalog::new();
        let schema = Schema::from_pairs(&[("a", ValueType::Int)]);
        let r = c
            .create_table("r", schema.clone(), TableKind::External)
            .unwrap();
        r.insert(tuple![1]).unwrap();
        r.insert(tuple![2]).unwrap();
        let def = Expr::table("r");
        let compiled = compile(&def, &c).unwrap();
        let view = View::new("v", def, compiled, Scenario::Immediate, Minimality::Weak).unwrap();
        let mv = c
            .create_table(view.mv_table(), view.mv_schema(), TableKind::Internal)
            .unwrap();
        mv.insert(tuple![1]).unwrap();
        mv.insert(tuple![2]).unwrap();
        (c, view)
    }

    #[test]
    fn prepare_then_apply_tracks_definition() {
        let (c, view) = setup();
        let tx = Transaction::new()
            .insert_tuple("r", tuple![3])
            .delete_tuple("r", tuple![1]);
        let pending = prepare(&c, &view, &tx).unwrap();
        // apply the base change, then the view change
        c.require("r")
            .unwrap()
            .apply_delta(&Bag::singleton(tuple![1]), &Bag::singleton(tuple![3]))
            .unwrap();
        apply(&c, &view, &pending).unwrap();
        let mv = c.bag_of(view.mv_table()).unwrap();
        let truth = crate::scenario::recompute(&c, &view).unwrap();
        assert_eq!(mv, truth);
    }

    #[test]
    fn irrelevant_transaction_produces_empty_update() {
        let (c, view) = setup();
        c.create_table(
            "other",
            Schema::from_pairs(&[("x", ValueType::Int)]),
            TableKind::External,
        )
        .unwrap();
        let tx = Transaction::new().insert_tuple("other", tuple![9]);
        let pending = prepare(&c, &view, &tx).unwrap();
        assert!(pending.del.is_empty());
        assert!(pending.ins.is_empty());
    }
}
