//! A hand-rolled FxHash-style hasher — the workspace's fast, hermetic
//! replacement for std's SipHash on the maintenance hot path.
//!
//! Every bag operation hashes tuples; with std's default `RandomState`
//! (SipHash-1-3) that hashing dominates selective change-query evaluation.
//! This module reimplements the multiply-rotate scheme popularized by
//! Firefox and rustc (`FxHasher`): state is folded with
//! `rotate_left(5) ^ chunk` then multiplied by a 64-bit constant with good
//! bit dispersion. It is **not** DoS-resistant — there is no random seed,
//! and an adversary who controls tuple values can construct collisions.
//! That trade-off is deliberate here: bags are internal maintenance state
//! (logs, differential tables, build tables), not an internet-facing hash
//! table. See DESIGN.md §11 for the full discussion.
//!
//! Zero dependencies; `FxHashMap`/`FxHashSet` are plain std collections
//! with the hasher plugged in, so every `HashMap` API works unchanged.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier from the FxHash family: a 64-bit constant with no
/// obvious structure and a roughly even bit distribution, chosen so that
/// `wrapping_mul` diffuses low-order entropy into the high bits that
/// `HashMap` uses for bucket selection.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Rotation applied before each fold; 5 keeps consecutive small integers
/// from cancelling in the multiply.
const ROTATE: u32 = 5;

/// A fast, non-cryptographic, non-DoS-resistant hasher.
///
/// Deterministic across processes and runs (no random state), which the
/// join-build cache exploits: plan fingerprints computed in one evaluation
/// are valid keys in the next.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// A hasher starting from an explicit state — used to derive
    /// independent fingerprints from one canonical encoding (the
    /// join-build cache combines two differently-seeded hashes into a
    /// 128-bit key).
    pub fn with_seed(seed: u64) -> Self {
        FxHasher { hash: seed }
    }

    #[inline]
    fn fold(&mut self, chunk: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ chunk).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // 8-byte chunks, then a length-tagged tail so `"ab" + "c"` and
        // `"a" + "bc"` (same bytes, different write boundaries from the
        // same logical value) still agree, while values of different
        // lengths diverge.
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (head, tail) = rest.split_at(8);
            self.fold(u64::from_le_bytes(head.try_into().expect("8-byte head")));
            rest = tail;
        }
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(tail));
            self.fold(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.fold(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.fold(i as u64);
        self.fold((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.fold(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hash one value with an [`FxHasher`] seeded at `seed`.
pub fn fx_hash_with_seed<T: std::hash::Hash + ?Sized>(value: &T, seed: u64) -> u64 {
    let mut h = FxHasher::with_seed(seed);
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(
            hash_of(&vec![1i64, 2, 3]),
            hash_of(&vec![1i64, 2, 3]),
        );
    }

    #[test]
    fn different_inputs_diverge() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        assert_ne!(hash_of(&""), hash_of(&"\0"), "length tag separates");
    }

    #[test]
    fn byte_boundary_independence_within_one_write() {
        // A 9-byte string exercises the chunk + tail path.
        let long = "abcdefghi";
        assert_eq!(hash_of(&long), hash_of(&long));
        assert_ne!(hash_of(&"abcdefgh"), hash_of(&long));
    }

    #[test]
    fn seeded_hashes_are_independent() {
        let a = fx_hash_with_seed(&7u64, 0);
        let b = fx_hash_with_seed(&7u64, 0x9e37_79b9_7f4a_7c15);
        assert_ne!(a, b);
        assert_eq!(a, fx_hash_with_seed(&7u64, 0));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(format!("key-{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m["key-517"], 517);
        let s: FxHashSet<u32> = (0..100).collect();
        assert!(s.contains(&99));
    }

    #[test]
    fn small_int_distribution_not_degenerate() {
        // Consecutive integers must not collapse into few buckets: check
        // that the low 6 bits of the hashes of 0..64 take many values.
        let mut buckets = FxHashSet::default();
        for i in 0..64u64 {
            buckets.insert(hash_of(&i) & 0x3f);
        }
        assert!(buckets.len() > 32, "only {} distinct buckets", buckets.len());
    }

    #[test]
    fn tuple_hash_matches_between_vec_and_slice() {
        // `HashMap<Vec<V>, _>` probed with `&[V]` via `Borrow` requires the
        // two Hash impls to agree; std guarantees Vec hashes as its slice.
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(hash_of(&v), hash_of(&v.as_slice()));
    }
}
