//! Fixed-capacity, downsampling time series — the measurement substrate
//! for staleness-over-time and propagate-latency-over-time recording.
//!
//! A [`TimeSeries`] stores at most `capacity` points, ever. Samples are
//! aggregated `bucket` at a time (avg + max + count per stored point);
//! when the point buffer fills, adjacent point pairs are merged (count-
//! weighted average, max of maxes, first timestamp) and the bucket size
//! doubles. Memory is therefore O(capacity) regardless of how long the
//! recorder runs, while the series keeps full time coverage at
//! progressively coarser resolution — exactly what an SLA scheduler needs
//! to judge staleness trends without an unbounded log.

use crate::json;

/// One stored (downsampled) point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsPoint {
    /// Timestamp of the first raw sample folded into this point
    /// (monotonic nanos, caller-defined origin).
    pub t_nanos: u64,
    /// Average of the folded raw samples.
    pub avg: f64,
    /// Maximum of the folded raw samples.
    pub max: f64,
    /// How many raw samples this point represents.
    pub count: u64,
}

/// An accumulating, capacity-bounded series of `(t, value)` samples.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    name: String,
    capacity: usize,
    /// Raw samples folded per stored point (doubles on each compaction).
    bucket: u64,
    points: Vec<TsPoint>,
    /// Partially filled point (fewer than `bucket` samples so far).
    pending: Option<TsPoint>,
}

impl TimeSeries {
    /// A new series holding at most `capacity` points (min 2, rounded
    /// down to even so pair-merging always halves exactly).
    pub fn new(name: impl Into<String>, capacity: usize) -> TimeSeries {
        let capacity = (capacity.max(2)) & !1;
        TimeSeries {
            name: name.into(),
            capacity,
            bucket: 1,
            points: Vec::with_capacity(capacity),
            pending: None,
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Raw samples per stored point at the current resolution.
    pub fn bucket(&self) -> u64 {
        self.bucket
    }

    /// Stored points (the pending partial point is excluded).
    pub fn points(&self) -> &[TsPoint] {
        &self.points
    }

    /// Total raw samples recorded over the series' lifetime.
    pub fn samples(&self) -> u64 {
        self.points.iter().map(|p| p.count).sum::<u64>()
            + self.pending.map_or(0, |p| p.count)
    }

    /// Record one raw sample.
    pub fn push(&mut self, t_nanos: u64, value: f64) {
        let p = self.pending.get_or_insert(TsPoint {
            t_nanos,
            avg: 0.0,
            max: f64::NEG_INFINITY,
            count: 0,
        });
        // Streaming mean: exact regardless of bucket size.
        p.count += 1;
        p.avg += (value - p.avg) / p.count as f64;
        p.max = p.max.max(value);
        if p.count >= self.bucket {
            let done = self.pending.take().expect("just filled");
            self.points.push(done);
            if self.points.len() >= self.capacity {
                self.compact();
            }
        }
    }

    /// Merge adjacent point pairs and double the bucket: half the points,
    /// same time coverage, coarser resolution.
    fn compact(&mut self) {
        let mut merged = Vec::with_capacity(self.capacity / 2 + 1);
        for pair in self.points.chunks(2) {
            merged.push(match pair {
                [a, b] => {
                    let count = a.count + b.count;
                    TsPoint {
                        t_nanos: a.t_nanos,
                        avg: (a.avg * a.count as f64 + b.avg * b.count as f64) / count as f64,
                        max: a.max.max(b.max),
                        count,
                    }
                }
                [only] => *only,
                _ => unreachable!("chunks(2)"),
            });
        }
        self.points = merged;
        self.bucket *= 2;
    }

    /// Serialize as a JSON object: `{name, bucket, samples, points: [{t_ns,
    /// avg, max, count}, …]}`. The pending partial point is included as a
    /// final point so freshly recorded data is never invisible.
    pub fn to_json(&self) -> String {
        let pts = self.points.iter().chain(self.pending.iter()).map(|p| {
            json::object([
                ("t_ns", json::num_u(p.t_nanos)),
                ("avg", json::num_f(p.avg)),
                ("max", json::num_f(p.max)),
                ("count", json::num_u(p.count)),
            ])
        });
        json::object([
            ("name", json::string(&self.name)),
            ("bucket", json::num_u(self.bucket)),
            ("samples", json::num_u(self.samples())),
            ("points", json::array(pts)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_raw_points_until_capacity() {
        let mut ts = TimeSeries::new("s", 8);
        for i in 0..7u64 {
            ts.push(i * 100, i as f64);
        }
        assert_eq!(ts.bucket(), 1);
        assert_eq!(ts.points().len(), 7);
        assert_eq!(ts.points()[3].avg, 3.0);
        assert_eq!(ts.samples(), 7);
    }

    #[test]
    fn compaction_halves_points_and_doubles_bucket() {
        let mut ts = TimeSeries::new("s", 8);
        for i in 0..8u64 {
            ts.push(i * 100, i as f64);
        }
        // Hit capacity once: 8 points → 4 merged pairs, bucket 2.
        assert_eq!(ts.bucket(), 2);
        assert_eq!(ts.points().len(), 4);
        let p0 = ts.points()[0];
        assert_eq!(p0.t_nanos, 0);
        assert_eq!(p0.avg, 0.5);
        assert_eq!(p0.max, 1.0);
        assert_eq!(p0.count, 2);
        assert_eq!(ts.samples(), 8);
    }

    #[test]
    fn memory_stays_bounded_under_long_runs() {
        let mut ts = TimeSeries::new("s", 16);
        for i in 0..10_000u64 {
            ts.push(i, (i % 17) as f64);
        }
        assert!(ts.points().len() < 16, "{} points", ts.points().len());
        assert_eq!(ts.samples(), 10_000);
        // Total count across stored + pending equals samples pushed, and
        // the count-weighted average survives every compaction.
        let sum: f64 = ts
            .points()
            .iter()
            .map(|p| p.avg * p.count as f64)
            .sum::<f64>();
        // Stored points cover exactly the first `stored` samples (the tail
        // sits in the pending partial point); the count-weighted average
        // must survive every compaction.
        let stored: u64 = ts.points().iter().map(|p| p.count).sum();
        let expected: f64 = (0..stored).map(|i| (i % 17) as f64).sum();
        assert!((sum - expected).abs() < 1e-6, "{sum} vs {expected}");
    }

    #[test]
    fn max_tracks_spikes_through_compaction() {
        let mut ts = TimeSeries::new("s", 4);
        for i in 0..64u64 {
            ts.push(i, if i == 13 { 999.0 } else { 1.0 });
        }
        let max = ts
            .points()
            .iter()
            .map(|p| p.max)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(max, 999.0, "spike must survive downsampling");
    }

    #[test]
    fn json_includes_pending_point() {
        let mut ts = TimeSeries::new("stale/V", 8);
        ts.push(5, 2.0);
        let doc = json::parse(&ts.to_json()).unwrap();
        assert_eq!(doc.get("name").and_then(|v| v.as_str()), Some("stale/V"));
        let pts = doc.get("points").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(pts.len(), 1, "pending partial point exported");
        assert_eq!(pts[0].get("avg").and_then(|v| v.as_f64()), Some(2.0));
    }
}
