//! Physical query plans: positional, schema-free, directly evaluable.
//!
//! A [`Plan`] is produced from a logical [`crate::expr::Expr`] by
//! [`crate::infer::compile`]; all column references have been resolved to
//! tuple positions and all schema checks have already happened.

use crate::aggregate::AggFunc;
use crate::predicate::CmpOp;
use dvm_storage::hasher::FxHasher;
use dvm_storage::{Bag, Tuple, Value};
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

/// A compiled predicate operand: tuple position or constant.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum PhysOperand {
    /// Value at a tuple position.
    Col(usize),
    /// Constant.
    Const(Value),
}

impl PhysOperand {
    fn value<'a>(&'a self, t: &'a Tuple) -> &'a Value {
        match self {
            PhysOperand::Col(i) => &t[*i],
            PhysOperand::Const(v) => v,
        }
    }
}

/// A compiled predicate over positional tuples.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum PhysPredicate {
    /// Constant truth value.
    Const(bool),
    /// Comparison of two operands.
    Cmp(PhysOperand, CmpOp, PhysOperand),
    /// Conjunction.
    And(Box<PhysPredicate>, Box<PhysPredicate>),
    /// Disjunction.
    Or(Box<PhysPredicate>, Box<PhysPredicate>),
    /// Negation.
    Not(Box<PhysPredicate>),
}

impl PhysPredicate {
    /// Evaluate against a tuple.
    pub fn eval(&self, t: &Tuple) -> bool {
        match self {
            PhysPredicate::Const(b) => *b,
            PhysPredicate::Cmp(l, op, r) => {
                let (lv, rv) = (l.value(t), r.value(t));
                // Null-safe equality is *value identity* — the total
                // structural order tuples and bags use — not coercing SQL
                // comparison: NULL <=> NULL is true, and Int(0) does NOT
                // match Double(0.0). This is exactly the equality the
                // EXCEPT expansion needs to mirror the direct operator.
                if *op == CmpOp::NullEq {
                    return lv.cmp(rv) == std::cmp::Ordering::Equal;
                }
                op.test(lv.sql_cmp(rv))
            }
            PhysPredicate::And(a, b) => a.eval(t) && b.eval(t),
            PhysPredicate::Or(a, b) => a.eval(t) || b.eval(t),
            PhysPredicate::Not(a) => !a.eval(t),
        }
    }
}

/// A physical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan a named table.
    Scan(String),
    /// A constant bag.
    Literal(Bag),
    /// Filter by a compiled predicate.
    Filter(PhysPredicate, Box<Plan>),
    /// Positional projection (bag semantics; duplicates preserved).
    Project(Vec<usize>, Box<Plan>),
    /// Duplicate elimination `ε`.
    DupElim(Box<Plan>),
    /// Additive union `⊎`.
    Union(Box<Plan>, Box<Plan>),
    /// Monus `∸`.
    Monus(Box<Plan>, Box<Plan>),
    /// Cartesian product `×`.
    Product(Box<Plan>, Box<Plan>),
    /// Minimal intersection `min`.
    MinIntersect(Box<Plan>, Box<Plan>),
    /// Maximal union `max`.
    MaxUnion(Box<Plan>, Box<Plan>),
    /// SQL `EXCEPT` (all occurrences removed).
    Except(Box<Plan>, Box<Plan>),
    /// Hash equi-join, produced by the optimizer from `Filter(Product)`:
    /// tuples whose `left_keys` positions equal the `right_keys` positions
    /// (positions relative to each side) are concatenated, multiplicities
    /// multiplied, then filtered by `residual` (over the concatenated
    /// tuple).
    HashJoin {
        /// Probe side.
        left: Box<Plan>,
        /// Build side.
        right: Box<Plan>,
        /// Key positions in the left tuple.
        left_keys: Vec<usize>,
        /// Key positions in the right tuple.
        right_keys: Vec<usize>,
        /// Residual predicate over the concatenated tuple.
        residual: PhysPredicate,
    },
    /// Grouping aggregate `γ`: group the input by the key positions and
    /// emit one row per non-empty group — key values, then one value per
    /// aggregate. A pipeline breaker in both executors.
    GroupAggregate {
        /// Key positions in the input tuple.
        keys: Vec<usize>,
        /// Aggregates: function plus argument position (`None` only for
        /// `COUNT(*)`).
        aggs: Vec<(AggFunc, Option<usize>)>,
        /// Input plan.
        input: Box<Plan>,
    },
}

impl Plan {
    /// Names of all tables scanned (deduplicated, sorted) — the set the
    /// evaluator pins read locks for.
    pub fn tables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_tables(&mut out);
        out
    }

    /// A 128-bit structural fingerprint of this plan, salted with `salt`
    /// (the join-key positions when fingerprinting a build side, so the
    /// same subtree built on different keys gets different entries).
    ///
    /// Two [`FxHasher`] passes with independent seeds are combined into a
    /// `u128`; the join-build cache treats equality of fingerprints as plan
    /// identity, which a 64-bit hash could not justify. The encoding tags
    /// every node with a discriminant byte, so shape ambiguities (e.g.
    /// `Union(a, b)` vs `Monus(a, b)`) cannot collide structurally.
    /// `Literal` bags are folded order-independently (hash-map iteration
    /// order never leaks in), so equal bags always fingerprint equally.
    pub fn fingerprint128(&self, salt: &[usize]) -> u128 {
        let mut lo = FxHasher::with_seed(0);
        let mut hi = FxHasher::with_seed(0x9e37_79b9_7f4a_7c15);
        for h in [&mut lo, &mut hi] {
            self.hash_structure(h);
            h.write_usize(salt.len());
            for &k in salt {
                h.write_usize(k);
            }
        }
        ((hi.finish() as u128) << 64) | (lo.finish() as u128)
    }

    fn hash_structure<H: Hasher>(&self, h: &mut H) {
        match self {
            Plan::Scan(name) => {
                h.write_u8(0);
                name.hash(h);
            }
            Plan::Literal(bag) => {
                h.write_u8(1);
                // Order-independent content digest: per-entry hashes are
                // combined with wrapping addition (commutative), so the
                // bag's internal iteration order is irrelevant.
                let digest = bag.fold_entry_hashes(|t, m| {
                    let mut eh = FxHasher::with_seed(0xa076_1d64_78bd_642f);
                    t.hash(&mut eh);
                    eh.write_u64(m);
                    eh.finish()
                });
                h.write_u64(digest);
                h.write_u64(bag.len());
            }
            Plan::Filter(pred, input) => {
                h.write_u8(2);
                pred.hash(h);
                input.hash_structure(h);
            }
            Plan::Project(cols, input) => {
                h.write_u8(3);
                cols.hash(h);
                input.hash_structure(h);
            }
            Plan::DupElim(input) => {
                h.write_u8(4);
                input.hash_structure(h);
            }
            Plan::Union(a, b)
            | Plan::Monus(a, b)
            | Plan::Product(a, b)
            | Plan::MinIntersect(a, b)
            | Plan::MaxUnion(a, b)
            | Plan::Except(a, b) => {
                h.write_u8(match self {
                    Plan::Union(..) => 5,
                    Plan::Monus(..) => 6,
                    Plan::Product(..) => 7,
                    Plan::MinIntersect(..) => 8,
                    Plan::MaxUnion(..) => 9,
                    _ => 10,
                });
                a.hash_structure(h);
                b.hash_structure(h);
            }
            Plan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                residual,
            } => {
                h.write_u8(11);
                left.hash_structure(h);
                right.hash_structure(h);
                left_keys.hash(h);
                right_keys.hash(h);
                residual.hash(h);
            }
            Plan::GroupAggregate { keys, aggs, input } => {
                h.write_u8(12);
                keys.hash(h);
                h.write_usize(aggs.len());
                for (func, arg) in aggs {
                    h.write_u8(*func as u8);
                    match arg {
                        None => h.write_u8(0),
                        Some(i) => {
                            h.write_u8(1);
                            h.write_usize(*i);
                        }
                    }
                }
                input.hash_structure(h);
            }
        }
    }

    fn collect_tables(&self, out: &mut BTreeSet<String>) {
        match self {
            Plan::Scan(n) => {
                out.insert(n.clone());
            }
            Plan::Literal(_) => {}
            Plan::Filter(_, p) | Plan::Project(_, p) | Plan::DupElim(p) => p.collect_tables(out),
            Plan::Union(a, b)
            | Plan::Monus(a, b)
            | Plan::Product(a, b)
            | Plan::MinIntersect(a, b)
            | Plan::MaxUnion(a, b)
            | Plan::Except(a, b) => {
                a.collect_tables(out);
                b.collect_tables(out);
            }
            Plan::HashJoin { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
            Plan::GroupAggregate { input, .. } => input.collect_tables(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_storage::tuple;

    #[test]
    fn phys_predicate_eval() {
        let t = tuple![3, "x"];
        let p = PhysPredicate::Cmp(
            PhysOperand::Col(0),
            CmpOp::Gt,
            PhysOperand::Const(Value::Int(2)),
        );
        assert!(p.eval(&t));
        let p2 = PhysPredicate::And(
            Box::new(p.clone()),
            Box::new(PhysPredicate::Cmp(
                PhysOperand::Col(1),
                CmpOp::Eq,
                PhysOperand::Const(Value::str("y")),
            )),
        );
        assert!(!p2.eval(&t));
        assert!(PhysPredicate::Not(Box::new(p2)).eval(&t));
        assert!(PhysPredicate::Or(
            Box::new(PhysPredicate::Const(false)),
            Box::new(PhysPredicate::Const(true))
        )
        .eval(&t));
    }

    #[test]
    fn null_comparison_false_but_not_makes_true() {
        let t = Tuple::new(vec![Value::Null]);
        let cmp = PhysPredicate::Cmp(
            PhysOperand::Col(0),
            CmpOp::Eq,
            PhysOperand::Const(Value::Int(1)),
        );
        assert!(!cmp.eval(&t));
        assert!(PhysPredicate::Not(Box::new(cmp)).eval(&t));
    }

    #[test]
    fn fingerprints_distinguish_structure_and_salt() {
        let scan_r = Plan::Scan("r".into());
        let scan_s = Plan::Scan("s".into());
        assert_eq!(scan_r.fingerprint128(&[]), scan_r.fingerprint128(&[]));
        assert_ne!(scan_r.fingerprint128(&[]), scan_s.fingerprint128(&[]));
        assert_ne!(
            scan_r.fingerprint128(&[0]),
            scan_r.fingerprint128(&[1]),
            "join-key salt participates"
        );
        let union = Plan::Union(Box::new(scan_r.clone()), Box::new(scan_s.clone()));
        let monus = Plan::Monus(Box::new(scan_r.clone()), Box::new(scan_s.clone()));
        assert_ne!(union.fingerprint128(&[]), monus.fingerprint128(&[]));
    }

    #[test]
    fn literal_fingerprint_is_insertion_order_independent() {
        let mut a = Bag::new();
        for i in 0..50 {
            a.insert(tuple![i]);
        }
        let mut b = Bag::new();
        for i in (0..50).rev() {
            b.insert(tuple![i]);
        }
        assert_eq!(
            Plan::Literal(a).fingerprint128(&[]),
            Plan::Literal(b).fingerprint128(&[])
        );
        assert_ne!(
            Plan::Literal(Bag::singleton(tuple![1])).fingerprint128(&[]),
            Plan::Literal(Bag::singleton(tuple![2])).fingerprint128(&[])
        );
    }

    #[test]
    fn plan_tables_sorted_dedup() {
        let p = Plan::Union(
            Box::new(Plan::Scan("s".into())),
            Box::new(Plan::Product(
                Box::new(Plan::Scan("r".into())),
                Box::new(Plan::Scan("r".into())),
            )),
        );
        assert_eq!(
            p.tables().into_iter().collect::<Vec<_>>(),
            vec!["r".to_string(), "s".to_string()]
        );
    }
}
