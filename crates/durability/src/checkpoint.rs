//! Atomic, versioned checkpoints.
//!
//! A checkpoint is an opaque engine-state payload (encoded by `dvm-core`)
//! plus the WAL LSN it was cut at: replaying records with `lsn >
//! checkpoint.wal_lsn` on top of the payload reconstructs the pre-crash
//! state. The file format is:
//!
//! ```text
//! 8-byte magic "DVMCKPT1" | u8 version | u64 wal_lsn
//! | u32 payload_len | u32 crc32(payload) | payload
//! ```
//!
//! ## Atomicity protocol
//!
//! [`save`] writes the bytes to `checkpoint.dvm.tmp`, fsyncs the file,
//! renames it over `checkpoint.dvm`, and fsyncs the directory. A crash at
//! any point leaves either the old checkpoint (plus a stale `.tmp` that
//! [`load`] ignores and removes) or the complete new one — never a torn
//! mixture. [`load`] additionally rejects trailing bytes after the
//! declared payload, so a doubled/garbled rename target cannot slip
//! through.

use crate::crc::crc32;
use crate::error::{DurabilityError, Result};
use crate::wal::sync_dir;
use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::Path;

/// File name of the durable checkpoint within a database directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.dvm";
/// Temporary sibling used by the atomic-rename protocol.
pub const CHECKPOINT_TMP: &str = "checkpoint.dvm.tmp";

const MAGIC: &[u8; 8] = b"DVMCKPT1";
const VERSION: u8 = 1;
const HEADER: usize = 8 + 1 + 8 + 4 + 4;

/// A decoded checkpoint: the WAL cut and the engine-state payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Last WAL LSN whose effects are included in `payload`. Replay must
    /// start strictly after this.
    pub wal_lsn: u64,
    /// Opaque engine state (encoded/decoded by `dvm-core`).
    pub payload: Vec<u8>,
}

impl Checkpoint {
    /// Serialize to the on-disk format.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER + self.payload.len());
        buf.extend_from_slice(MAGIC);
        buf.push(VERSION);
        buf.extend_from_slice(&self.wal_lsn.to_be_bytes());
        buf.extend_from_slice(&(self.payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(&crc32(&self.payload).to_be_bytes());
        buf.extend_from_slice(&self.payload);
        buf
    }

    /// Parse and verify the on-disk format.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint> {
        let corrupt = |reason: String| DurabilityError::CorruptCheckpoint { reason };
        if bytes.len() < HEADER {
            return Err(corrupt(format!(
                "file too short: {} bytes, header needs {HEADER}",
                bytes.len()
            )));
        }
        if &bytes[..8] != MAGIC {
            return Err(corrupt("bad magic".into()));
        }
        if bytes[8] != VERSION {
            return Err(corrupt(format!("unsupported version {}", bytes[8])));
        }
        let wal_lsn = u64::from_be_bytes(bytes[9..17].try_into().unwrap());
        let len = u32::from_be_bytes(bytes[17..21].try_into().unwrap()) as usize;
        let crc = u32::from_be_bytes(bytes[21..25].try_into().unwrap());
        if bytes.len() < HEADER + len {
            return Err(corrupt(format!(
                "payload truncated at byte {}: declared {len}, present {}",
                bytes.len(),
                bytes.len() - HEADER
            )));
        }
        if bytes.len() > HEADER + len {
            return Err(corrupt(format!(
                "at byte {}: {} trailing bytes after declared payload",
                HEADER + len,
                bytes.len() - HEADER - len
            )));
        }
        let payload = &bytes[HEADER..];
        if crc32(payload) != crc {
            return Err(corrupt("payload CRC mismatch".into()));
        }
        Ok(Checkpoint {
            wal_lsn,
            payload: payload.to_vec(),
        })
    }
}

/// Atomically persist `ckpt` as `dir/checkpoint.dvm` (tmp + rename +
/// fsync file and directory).
pub fn save(dir: &Path, ckpt: &Checkpoint) -> Result<()> {
    fs::create_dir_all(dir).map_err(|e| DurabilityError::io(dir, e))?;
    let tmp = dir.join(CHECKPOINT_TMP);
    let dst = dir.join(CHECKPOINT_FILE);
    let mut f = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&tmp)
        .map_err(|e| DurabilityError::io(&tmp, e))?;
    f.write_all(&ckpt.encode())
        .and_then(|()| f.sync_data())
        .map_err(|e| DurabilityError::io(&tmp, e))?;
    drop(f);
    fs::rename(&tmp, &dst).map_err(|e| DurabilityError::io(&dst, e))?;
    sync_dir(dir)
}

/// Load `dir/checkpoint.dvm` if present. A stale `checkpoint.dvm.tmp`
/// (crash before the rename) is removed and ignored — the previous
/// checkpoint, if any, remains authoritative.
pub fn load(dir: &Path) -> Result<Option<Checkpoint>> {
    let tmp = dir.join(CHECKPOINT_TMP);
    if tmp.exists() {
        fs::remove_file(&tmp).map_err(|e| DurabilityError::io(&tmp, e))?;
    }
    let dst = dir.join(CHECKPOINT_FILE);
    let bytes = match fs::read(&dst) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(DurabilityError::io(&dst, e)),
    };
    Checkpoint::decode(&bytes).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dvm-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            wal_lsn: 42,
            payload: b"engine state bytes".to_vec(),
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        save(&dir, &sample()).unwrap();
        assert_eq!(load(&dir).unwrap(), Some(sample()));
        assert!(!dir.join(CHECKPOINT_TMP).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let dir = tmpdir("missing");
        assert_eq!(load(&dir).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_is_ignored_and_removed() {
        let dir = tmpdir("staletmp");
        save(&dir, &sample()).unwrap();
        // Crash mid-checkpoint: a half-written successor never renamed.
        fs::write(dir.join(CHECKPOINT_TMP), b"DVMCKPT1\x01partial").unwrap();
        assert_eq!(load(&dir).unwrap(), Some(sample()));
        assert!(!dir.join(CHECKPOINT_TMP).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_payload_detected() {
        let dir = tmpdir("corrupt");
        save(&dir, &sample()).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        fs::write(&path, bytes).unwrap();
        assert!(matches!(
            load(&dir),
            Err(DurabilityError::CorruptCheckpoint { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_padded_files_detected() {
        let full = sample().encode();
        for cut in [0, 7, HEADER - 1, full.len() - 1] {
            assert!(Checkpoint::decode(&full[..cut]).is_err(), "cut {cut}");
        }
        let mut padded = full.clone();
        padded.push(0);
        let err = Checkpoint::decode(&padded).unwrap_err();
        assert!(
            format!("{err}").contains("trailing bytes"),
            "unexpected: {err}"
        );
    }

    #[test]
    fn empty_payload_roundtrips() {
        let c = Checkpoint {
            wal_lsn: 0,
            payload: Vec::new(),
        };
        assert_eq!(Checkpoint::decode(&c.encode()).unwrap(), c);
    }
}
