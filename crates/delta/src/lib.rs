//! # dvm-delta — differential algorithms for view maintenance
//!
//! Contribution 2 of *"Algorithms for Deferred View Maintenance"* (Colby,
//! Griffin, Libkin, Mumick, Trickey — SIGMOD 1996): change-propagation
//! over the full bag algebra that is correct in **both** the pre-update and
//! the post-update state.
//!
//! * [`weak`] — the mutually recursive `Del(η,Q)` / `Add(η,Q)` of Figure 2
//!   (Theorem 2: weakly minimal differentiation);
//! * [`strong`] — strengthening to strong minimality (Section 4.1);
//! * [`transaction`] — simple transactions and minimality normalization;
//! * [`incremental`] — `∇/Δ` (pre-update, for immediate maintenance) and
//!   `▼/▲` (post-update, for deferred refresh), plus the *state-bug*
//!   variant used by the experiments;
//! * [`compose`](mod@compose) — the weakly minimal composition lemma (Lemma 3);
//! * [`cancel`] — the cancellation lemma (Lemma 1);
//! * [`compile`] — the delta-plan compiler: `▼/▲` derived, simplified and
//!   plan-optimized once per view, cached per activity mask, and
//!   re-executed with log bags bound as parameters.

#![warn(missing_docs)]

pub mod cancel;
pub mod compile;
pub mod compose;
pub mod error;
pub mod incremental;
pub mod strong;
pub mod transaction;
pub mod weak;

pub use compile::{CompiledDeltaProgram, CompiledDeltaVariant, DeltaProgramStats};
pub use compose::{compose, compose_into};
pub use error::{DeltaError, Result};
pub use incremental::{
    buggy_post_update_deltas, log_del_name, log_ins_name, post_update_deltas,
    post_update_deltas_general, post_update_deltas_pruned, pre_update_deltas, LogTables,
    PostDeltas,
};
pub use strong::{is_strongly_minimal, strongify_bags, strongify_exprs};
pub use transaction::Transaction;
pub use weak::{differentiate, differentiate_raw, DeltaPair};
