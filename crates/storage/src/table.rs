//! Tables: named, schema-validated bags behind instrumented locks.

use crate::bag::Bag;
use crate::error::Result;
use crate::lock::{InstrumentedRwLock, LockMetrics, OwnedReadGuard, TimedWriteGuard};
use crate::schema::Schema;
use crate::stats::TableStats;
use crate::tuple::Tuple;
use dvm_testkit::sync::{ArcRwLockReadGuard, ArcRwLockWriteGuard, RwLock, RwLockReadGuard};
use std::fmt;
use std::sync::Arc;

/// Whether a table is user-visible or maintenance-internal.
///
/// The paper (Section 3.1) partitions tables into *external* tables changed
/// by user transactions and *internal* tables (materialized views, logs,
/// view differential files) that user transactions may not touch directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableKind {
    /// User-defined base table.
    External,
    /// Maintenance-owned table (MV, log, or differential).
    Internal,
}

/// A named bag of tuples with a fixed schema.
///
/// All access goes through the instrumented lock so experiments can measure
/// write-hold (downtime) and read-block times.
pub struct Table {
    // `Arc<str>` so evaluator-side pin maps can key by a shared pointer
    // instead of cloning the string per pin (hot path: every change-query
    // evaluation pins every scanned table).
    name: Arc<str>,
    schema: Schema,
    kind: TableKind,
    data: InstrumentedRwLock<Bag>,
    stats: TableStats,
    // Commit-intent lock, distinct from the data lock: writers that must
    // keep this table's state stable across a multi-step protocol (pin →
    // normalize → apply) hold it for the whole span, while the data lock is
    // only held for the instants of actual reads/writes. Plain readers
    // never touch it.
    commit: Arc<RwLock<()>>,
}

/// A held commit-intent claim on one table (see [`Table::commit_shared`]).
///
/// Dropping the guard releases the claim. The variants only differ in
/// exclusivity; neither grants data access by itself.
#[derive(Debug)]
pub enum CommitGuard {
    /// Shared claim: the table's state may be read consistently across a
    /// multi-step protocol; other shared claimants may interleave reads.
    Shared(ArcRwLockReadGuard<()>),
    /// Exclusive claim: the holder may mutate the table; no other commit
    /// claimant (shared or exclusive) is active.
    Exclusive(ArcRwLockWriteGuard<()>),
}

impl CommitGuard {
    /// Whether this is an exclusive claim.
    pub fn is_exclusive(&self) -> bool {
        matches!(self, CommitGuard::Exclusive(_))
    }
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema, kind: TableKind) -> Self {
        Table {
            name: Arc::from(name.into()),
            schema,
            kind,
            data: InstrumentedRwLock::new(Bag::new()),
            stats: TableStats::default(),
            commit: Arc::new(RwLock::new(())),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table name as a cheaply clonable shared string (refcount bump, no
    /// allocation) — what evaluator pin maps key by.
    pub fn name_shared(&self) -> Arc<str> {
        Arc::clone(&self.name)
    }

    /// The table's *data epoch*: a globally-unique version stamped on every
    /// write-lock acquisition. Two reads of the same epoch bracket a span
    /// with no writers; read it while holding a read guard and it describes
    /// exactly the pinned contents. The join-build cache validates entries
    /// against these epochs.
    pub fn data_epoch(&self) -> u64 {
        self.data.version()
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// External or internal.
    pub fn kind(&self) -> TableKind {
        self.kind
    }

    /// Lock metrics (write-hold = downtime, read-block = reader stalls).
    pub fn lock_metrics(&self) -> &LockMetrics {
        self.data.metrics()
    }

    /// Usage counters.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Read access to the bag. Records a scan.
    pub fn read(&self) -> RwLockReadGuard<'_, Bag> {
        self.stats.record_scan();
        self.data.read()
    }

    /// Owning read access (no borrow lifetime) — lets the query evaluator
    /// pin a table's contents without cloning. Records a scan.
    pub fn read_owned(&self) -> OwnedReadGuard<Bag> {
        self.stats.record_scan();
        self.data.read_owned()
    }

    /// Write access to the bag (hold time is recorded as downtime). Callers
    /// are responsible for schema validation of what they put in; prefer the
    /// typed mutators below.
    pub fn write(&self) -> TimedWriteGuard<'_, Bag> {
        self.data.write()
    }

    /// Take a shared commit-intent claim: the table's state is guaranteed
    /// not to be mutated by any protocol-respecting writer until the guard
    /// drops. Blocks while an exclusive claim is held.
    ///
    /// Lock-order discipline: commit claims on a *set* of tables must be
    /// acquired in ascending table-name order (use `Catalog::lock_commit`),
    /// and always before any data lock.
    pub fn commit_shared(&self) -> CommitGuard {
        CommitGuard::Shared(RwLock::read_arc(&self.commit))
    }

    /// Take an exclusive commit-intent claim: the holder is the only
    /// protocol-respecting writer of this table until the guard drops.
    ///
    /// Same ordering discipline as [`Table::commit_shared`].
    pub fn commit_exclusive(&self) -> CommitGuard {
        CommitGuard::Exclusive(RwLock::write_arc(&self.commit))
    }

    /// Clone the current contents.
    pub fn snapshot_bag(&self) -> Bag {
        self.read().clone()
    }

    /// Current total cardinality.
    pub fn len(&self) -> u64 {
        self.read().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validate a tuple against this table's schema.
    pub fn validate(&self, t: &Tuple) -> Result<()> {
        self.schema.validate(t)
    }

    /// Validate every tuple in a bag against this table's schema.
    pub fn validate_bag(&self, b: &Bag) -> Result<()> {
        for (t, _) in b.iter() {
            self.schema.validate(t)?;
        }
        Ok(())
    }

    /// Insert one tuple occurrence (validated).
    pub fn insert(&self, t: Tuple) -> Result<()> {
        self.validate(&t)?;
        self.write().insert(t);
        self.stats.record_insert(1);
        Ok(())
    }

    /// Apply a delta atomically: `table := (table ∸ del) ⊎ ins`.
    ///
    /// This is the paper's simple-transaction update shape. Both bags are
    /// validated first; the table is mutated under a single write lock.
    pub fn apply_delta(&self, del: &Bag, ins: &Bag) -> Result<()> {
        self.validate_bag(del)?;
        self.validate_bag(ins)?;
        {
            let mut guard = self.write();
            guard.apply_delta(del, ins);
        }
        self.stats.record_delete(del.len());
        self.stats.record_insert(ins.len());
        Ok(())
    }

    /// Replace the entire contents (validated).
    pub fn replace(&self, new: Bag) -> Result<()> {
        self.validate_bag(&new)?;
        let mut guard = self.write();
        let old_len = guard.len();
        *guard = new;
        let new_len = guard.len();
        drop(guard);
        self.stats.record_delete(old_len);
        self.stats.record_insert(new_len);
        Ok(())
    }

    /// Empty the table (`T := φ`).
    pub fn clear(&self) {
        let mut guard = self.write();
        let n = guard.len();
        guard.clear();
        drop(guard);
        self.stats.record_delete(n);
    }
}

impl fmt::Debug for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.name)
            .field("schema", &self.schema)
            .field("kind", &self.kind)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::ValueType;

    fn t() -> Table {
        Table::new(
            "r",
            Schema::from_pairs(&[("a", ValueType::Int)]),
            TableKind::External,
        )
    }

    #[test]
    fn insert_and_len() {
        let table = t();
        table.insert(tuple![1]).unwrap();
        table.insert(tuple![1]).unwrap();
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn insert_validates_schema() {
        let table = t();
        assert!(table.insert(tuple!["oops"]).is_err());
        assert!(table.insert(tuple![1, 2]).is_err());
        assert!(table.is_empty());
    }

    #[test]
    fn apply_delta() {
        let table = t();
        table.insert(tuple![1]).unwrap();
        table.insert(tuple![2]).unwrap();
        let del = Bag::singleton(tuple![1]);
        let ins = Bag::singleton(tuple![3]);
        table.apply_delta(&del, &ins).unwrap();
        let bag = table.snapshot_bag();
        assert!(!bag.contains(&tuple![1]));
        assert!(bag.contains(&tuple![2]));
        assert!(bag.contains(&tuple![3]));
    }

    #[test]
    fn apply_delta_validates_before_mutating() {
        let table = t();
        table.insert(tuple![1]).unwrap();
        let bad = Bag::singleton(tuple!["bad"]);
        assert!(table.apply_delta(&bad, &Bag::new()).is_err());
        assert!(table.apply_delta(&Bag::new(), &bad).is_err());
        assert_eq!(table.len(), 1, "failed delta must not change the table");
    }

    #[test]
    fn replace_and_clear() {
        let table = t();
        table.insert(tuple![1]).unwrap();
        table
            .replace(Bag::from_tuples([tuple![7], tuple![8]]))
            .unwrap();
        assert_eq!(table.len(), 2);
        table.clear();
        assert!(table.is_empty());
    }

    #[test]
    fn stats_track_operations() {
        let table = t();
        table.insert(tuple![1]).unwrap();
        table
            .apply_delta(&Bag::singleton(tuple![1]), &Bag::new())
            .unwrap();
        let s = table.stats().snapshot();
        assert_eq!(s.tuples_inserted, 1);
        assert_eq!(s.tuples_deleted, 1);
    }

    #[test]
    fn write_lock_metrics_accumulate() {
        let table = t();
        table.insert(tuple![1]).unwrap();
        assert!(table.lock_metrics().snapshot().write_acquisitions >= 1);
    }

    #[test]
    fn kind() {
        assert_eq!(t().kind(), TableKind::External);
    }

    #[test]
    fn data_epoch_changes_exactly_on_writes() {
        let table = t();
        let e0 = table.data_epoch();
        let _ = table.snapshot_bag();
        assert_eq!(table.data_epoch(), e0, "reads leave the epoch alone");
        table.insert(tuple![1]).unwrap();
        let e1 = table.data_epoch();
        assert!(e1 > e0);
        table.clear();
        assert!(table.data_epoch() > e1);
    }

    #[test]
    fn name_shared_is_the_same_allocation() {
        let table = t();
        let a = table.name_shared();
        let b = table.name_shared();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(&*a, table.name());
    }

    #[test]
    fn commit_guards_shared_coexist_exclusive_flagged() {
        let table = t();
        let a = table.commit_shared();
        let b = table.commit_shared();
        assert!(!a.is_exclusive());
        assert!(!b.is_exclusive());
        drop(a);
        drop(b);
        let e = table.commit_exclusive();
        assert!(e.is_exclusive());
        // data access is independent of commit claims
        table.insert(tuple![1]).unwrap();
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn commit_exclusive_blocks_shared_claimants() {
        let table = Arc::new(t());
        let g = table.commit_exclusive();
        let t2 = Arc::clone(&table);
        let h = std::thread::spawn(move || {
            let _s = t2.commit_shared(); // blocks until the exclusive drops
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(!h.is_finished(), "shared claim must wait for exclusive");
        drop(g);
        assert!(h.join().unwrap());
    }
}
