//! Property tests (proptest) for the differential layer: Theorem 2, the
//! refresh identity behind Contribution 2, Lemma 1, Lemma 3, and strong
//! minimality — shrinking variants of the seeded randomized suites.

use dvm_algebra::eval::eval;
use dvm_algebra::infer::compile;
use dvm_algebra::testgen::{Rng, Universe};
use dvm_algebra::Expr;
use dvm_delta::{compose, differentiate, strongify_bags, Transaction};
use dvm_storage::{Bag, Tuple, Value};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_bag() -> impl Strategy<Value = Bag> {
    proptest::collection::vec(((0i64..5, 0i64..5), 1u64..4), 0..7).prop_map(|items| {
        let mut b = Bag::new();
        for ((x, y), m) in items {
            b.insert_n(Tuple::new(vec![Value::Int(x), Value::Int(y)]), m);
        }
        b
    })
}

fn arb_instance() -> impl Strategy<Value = (HashMap<String, Bag>, u64, usize)> {
    (
        proptest::collection::vec(arb_bag(), 3),
        any::<u64>(),
        1usize..4,
    )
        .prop_map(|(bags, seed, depth)| {
            let mut state = HashMap::new();
            for (i, b) in bags.into_iter().enumerate() {
                state.insert(format!("t{i}"), b);
            }
            (state, seed, depth)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem 2 over proptest-shrunk instances.
    #[test]
    fn theorem2((state, seed, depth) in arb_instance()) {
        let u = Universe::small(3);
        let provider = u.provider();
        let mut rng = Rng::new(seed);
        let q = u.expr(&mut rng, depth.min(2));
        let eta = u.weakly_minimal_subst(&mut rng, &state);
        let pair = differentiate(&q, &eta, &provider).unwrap();
        let ev = |e: &Expr| eval(&compile(e, &provider).unwrap().plan, &state).unwrap();
        let q_val = ev(&q);
        let del = ev(&pair.del);
        let add = ev(&pair.add);
        prop_assert_eq!(ev(&eta.apply(&q)), q_val.monus(&del).union(&add), "Theorem 2(a)");
        prop_assert!(del.is_subbag_of(&q_val), "Theorem 2(b)");
    }

    /// The deferred-refresh identity (Contribution 2): MV holding Q(s_p)
    /// refreshed with the post-update deltas equals Q(s_c).
    #[test]
    fn post_update_refresh_identity((s_p, seed, depth) in arb_instance()) {
        use dvm_delta::{log_del_name, log_ins_name, post_update_deltas, LogTables};
        let u = Universe::small(3);
        let mut provider = u.provider();
        for t in &u.tables {
            provider.insert(log_del_name(t), u.schema.clone());
            provider.insert(log_ins_name(t), u.schema.clone());
        }
        let mut rng = Rng::new(seed);
        let q = u.expr(&mut rng, depth.min(2));
        let f = u.weakly_minimal_subst(&mut rng, &s_p);
        let mut s_c = u.apply_subst_to_state(&f, &s_p);
        let mut log = LogTables::new();
        for t in &u.tables {
            log.add(t.clone());
            let (d, a) = match f.get(t) {
                Some((Expr::Literal { bag: d, .. }, Expr::Literal { bag: a, .. })) => {
                    (d.clone(), a.clone())
                }
                None => (Bag::new(), Bag::new()),
                _ => unreachable!(),
            };
            s_c.insert(log_del_name(t), d);
            s_c.insert(log_ins_name(t), a);
        }
        let q_plan = compile(&q, &provider).unwrap().plan;
        let mv = eval(&q_plan, &s_p).unwrap();
        let truth = eval(&q_plan, &s_c).unwrap();
        let deltas = post_update_deltas(&q, &log, &provider).unwrap();
        let del = eval(&compile(&deltas.del, &provider).unwrap().plan, &s_c).unwrap();
        let ins = eval(&compile(&deltas.ins, &provider).unwrap().plan, &s_c).unwrap();
        prop_assert_eq!(mv.monus(&del).union(&ins), truth);
    }

    /// Lemma 1 (cancellation) for arbitrary bags.
    #[test]
    fn lemma1(o in arb_bag(), d in arb_bag(), i in arb_bag()) {
        let n = o.monus(&d).union(&i);
        prop_assert_eq!(n.monus(&i).union(&o.min_intersect(&d)), o);
    }

    /// Lemma 3 (composition) with its side conditions.
    #[test]
    fn lemma3(o in arb_bag(), d1 in arb_bag(), i1 in arb_bag(), d2 in arb_bag(), i2 in arb_bag()) {
        let d1 = d1.min_intersect(&o); // D1 ⊑ O
        let mid = o.monus(&d1).union(&i1);
        let d2 = d2.min_intersect(&mid); // D2 ⊑ (O ∸ D1) ⊎ I1
        let (d3, i3) = compose(&d1, &i1, &d2, &i2);
        prop_assert_eq!(mid.monus(&d2).union(&i2), o.monus(&d3).union(&i3), "Lemma 3(a)");
        prop_assert!(d3.is_subbag_of(&o), "Lemma 3(b)");
    }

    /// Strong minimality preserves application and achieves disjointness.
    #[test]
    fn strongify(q in arb_bag(), del in arb_bag(), add in arb_bag()) {
        let del = del.min_intersect(&q); // weak minimality precondition
        let (d2, a2) = strongify_bags(&del, &add);
        prop_assert_eq!(q.monus(&del).union(&add), q.monus(&d2).union(&a2));
        prop_assert!(d2.min_intersect(&a2).is_empty());
        prop_assert!(d2.is_subbag_of(&q));
    }

    /// Transaction normalization: `make_weakly_minimal` changes the
    /// deletion bags but never the applied result.
    #[test]
    fn weak_minimality_normalization_sound(state in proptest::collection::vec(arb_bag(), 1),
                                           del in arb_bag(), ins in arb_bag()) {
        let mut s: HashMap<String, Bag> = HashMap::new();
        s.insert("t0".to_string(), state[0].clone());
        let tx = Transaction::new().delete("t0", del).insert("t0", ins);
        let normalized = tx.make_weakly_minimal(&s).unwrap();
        prop_assert!(normalized.is_weakly_minimal(&s).unwrap());
        let mut a = s.clone();
        tx.apply_to_map(&mut a);
        let mut b = s.clone();
        normalized.apply_to_map(&mut b);
        prop_assert_eq!(a, b);
    }
}
