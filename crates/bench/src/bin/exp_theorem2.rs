//! **F2 — Theorem 2: correctness of the Figure-2 differential algorithm.**
//!
//! For random queries `Q` (full bag algebra, depth ≤ 3) and random weakly
//! minimal substitutions `η`, check both clauses:
//!
//! ```text
//! (a) η(Q) ≡ (Q ∸ Del(η,Q)) ⊎ Add(η,Q)
//! (b) Del(η,Q) ⊑ Q
//! ```
//!
//! plus the size effect of φ-simplification (what makes the incremental
//! queries *incremental*).

use dvm_algebra::eval::eval;
use dvm_algebra::infer::compile;
use dvm_algebra::testgen::{Rng, Universe};
use dvm_bench::report::TableReport;
use dvm_delta::{differentiate, differentiate_raw};

const INSTANCES: usize = 5_000;

fn main() {
    println!("=== F2: Theorem 2 on {INSTANCES} random (state, Q, η) instances ===\n");
    let u = Universe::small(3);
    let provider = u.provider();
    let mut rng = Rng::new(2);

    let mut a_violations = 0usize;
    let mut b_violations = 0usize;
    let mut raw_size_total = 0usize;
    let mut simplified_size_total = 0usize;
    let mut checked = 0usize;

    while checked < INSTANCES {
        let state = u.state(&mut rng, 4);
        let q = u.expr(&mut rng, 3);
        let eta = u.weakly_minimal_subst(&mut rng, &state);
        if eta.is_empty() {
            continue;
        }
        checked += 1;

        let raw = differentiate_raw(&q, &eta, &provider).unwrap();
        let pair = differentiate(&q, &eta, &provider).unwrap();
        raw_size_total += raw.size();
        simplified_size_total += pair.size();

        let ev = |e| eval(&compile(e, &provider).unwrap().plan, &state).unwrap();
        let q_val = ev(&q);
        let del_val = ev(&pair.del);
        let add_val = ev(&pair.add);
        let eta_q_val = ev(&eta.apply(&q));

        if eta_q_val != q_val.monus(&del_val).union(&add_val) {
            a_violations += 1;
        }
        if !del_val.is_subbag_of(&q_val) {
            b_violations += 1;
        }
    }

    let mut t = TableReport::new(["check", "result"]);
    t.row(["instances".to_string(), checked.to_string()]);
    t.row([
        "(a) η(Q) ≡ (Q ∸ Del) ⊎ Add violations".to_string(),
        a_violations.to_string(),
    ]);
    t.row([
        "(b) Del(η,Q) ⊑ Q violations".to_string(),
        b_violations.to_string(),
    ]);
    t.row([
        "mean raw Del/Add AST size (Figure 2 verbatim)".to_string(),
        format!("{:.1}", raw_size_total as f64 / checked as f64),
    ]);
    t.row([
        "mean simplified AST size (φ-propagated)".to_string(),
        format!("{:.1}", simplified_size_total as f64 / checked as f64),
    ]);
    t.print();

    assert_eq!(a_violations, 0);
    assert_eq!(b_violations, 0);
    println!("\nTheorem 2 reproduced on every instance.");
}
