//! Fixed-width plain-text tables — the human-readable exporter shared by
//! the REPL's `\metrics` command and every `exp_*` binary (`dvm-bench`
//! re-exports these under `dvm_bench::report`).

/// A simple fixed-width table printer: header + rows, columns sized to fit.
pub struct TableReport {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableReport {
    /// Start a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TableReport {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // left-align first column, right-align the rest
                let pad = widths[i].saturating_sub(c.chars().count());
                if i == 0 {
                    line.push_str(c);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(c);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format nanoseconds with an adaptive unit.
pub fn fmt_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.0}ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.1}µs", nanos / 1e3)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2}ms", nanos / 1e6)
    } else {
        format!("{:.3}s", nanos / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TableReport::new(["name", "value"]);
        t.row(["longer-name", "1"]);
        t.row(["x", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].ends_with("    1"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        TableReport::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn fmt_units() {
        assert_eq!(fmt_nanos(500.0), "500ns");
        assert_eq!(fmt_nanos(1_500.0), "1.5µs");
        assert_eq!(fmt_nanos(2_500_000.0), "2.50ms");
        assert_eq!(fmt_nanos(3_000_000_000.0), "3.000s");
    }
}
