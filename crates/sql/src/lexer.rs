//! Hand-written SQL lexer.

use crate::error::{Result, SqlError};
use crate::token::{Keyword, Token, TokenKind};

/// Tokenize SQL text. Keywords are case-insensitive; identifiers keep their
/// case; strings are single-quoted with `''` as the escape for a quote.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset: start,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token {
                    kind: TokenKind::Ne,
                    offset: start,
                });
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '\'' => {
                // Collect raw bytes and decode once: the input is valid
                // UTF-8, so a byte-accurate copy of the literal body is too
                // (pushing bytes as chars would mangle multi-byte
                // characters into Latin-1 mojibake).
                let mut raw: Vec<u8> = Vec::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::Lex {
                                offset: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            raw.push(b'\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            raw.push(b);
                            i += 1;
                        }
                    }
                }
                let s = String::from_utf8(raw).map_err(|e| SqlError::Lex {
                    offset: start,
                    message: format!("invalid UTF-8 in string literal: {e}"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            '0'..='9' => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'.') {
                    if bytes[j] == b'.' {
                        // a second dot ends the number (e.g. ranges); a dot
                        // not followed by a digit is a qualifier dot.
                        if is_float || !bytes.get(j + 1).is_some_and(u8::is_ascii_digit) {
                            break;
                        }
                        is_float = true;
                    }
                    j += 1;
                }
                let text = &input[i..j];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|e| SqlError::Lex {
                        offset: start,
                        message: format!("bad float '{text}': {e}"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|e| SqlError::Lex {
                        offset: start,
                        message: format!("bad integer '{text}': {e}"),
                    })?)
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &input[i..j];
                let upper = word.to_ascii_uppercase();
                let kind = match Keyword::from_upper(&upper) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(word.to_string()),
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(SqlError::Lex {
                    offset: start,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        lex(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("SELECT a, b FROM t;"),
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Ident("a".into()),
                TokenKind::Comma,
                TokenKind::Ident("b".into()),
                TokenKind::Keyword(Keyword::From),
                TokenKind::Ident("t".into()),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive_idents_keep_case() {
        assert_eq!(
            kinds("select CustId"),
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Ident("CustId".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("= != <> < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_literals_with_escape() {
        assert_eq!(
            kinds("'High' 'it''s'"),
            vec![
                TokenKind::Str("High".into()),
                TokenKind::Str("it's".into()),
                TokenKind::Eof
            ]
        );
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn non_ascii_string_literals_survive() {
        assert_eq!(
            kinds("'café über 日本'"),
            vec![TokenKind::Str("café über 日本".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 3.5"),
            vec![TokenKind::Int(42), TokenKind::Float(3.5), TokenKind::Eof]
        );
    }

    #[test]
    fn qualified_column_is_three_tokens() {
        assert_eq!(
            kinds("c.custId"),
            vec![
                TokenKind::Ident("c".into()),
                TokenKind::Dot,
                TokenKind::Ident("custId".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("SELECT -- the columns\n a"),
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Ident("a".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(matches!(lex("a @ b"), Err(SqlError::Lex { .. })));
    }

    #[test]
    fn offsets_recorded() {
        let toks = lex("SELECT a").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 7);
    }
}
