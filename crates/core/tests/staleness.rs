//! Staleness accounting over the shared epoch log: `epochs_pending` must
//! track appends monotonically, collapse to zero on refresh, and the
//! vacuum must never reclaim past the minimum live cursor the registry
//! reports.

use dvm_algebra::Expr;
use dvm_core::{Database, Minimality};
use dvm_delta::Transaction;
use dvm_storage::{tuple, Schema, ValueType};

fn shared_db(views: &[&str]) -> Database {
    let db = Database::new();
    db.create_table("r", Schema::from_pairs(&[("a", ValueType::Int)]))
        .unwrap();
    for v in views {
        db.create_view_shared(*v, Expr::table("r"), Minimality::Weak)
            .unwrap();
    }
    db
}

fn pending(db: &Database, view: &str) -> u64 {
    db.staleness(view).unwrap().epochs_pending
}

#[test]
fn epochs_pending_monotone_under_appends() {
    let db = shared_db(&["v"]);
    assert_eq!(pending(&db, "v"), 0, "fresh view starts caught up");
    let mut last = 0;
    for i in 0..5i64 {
        db.execute(&Transaction::new().insert_tuple("r", tuple![i]))
            .unwrap();
        let now = pending(&db, "v");
        assert!(now > last, "append must grow the backlog: {last} → {now}");
        last = now;
    }
    assert_eq!(last, 5);
    let gauges = db.staleness("v").unwrap();
    assert_eq!(gauges.pending_entries, 5);
    assert_eq!(gauges.pending_volume, 5);
}

#[test]
fn refresh_drops_pending_to_zero() {
    let db = shared_db(&["v"]);
    for i in 0..3i64 {
        db.execute(&Transaction::new().insert_tuple("r", tuple![i]))
            .unwrap();
    }
    assert_eq!(pending(&db, "v"), 3);
    db.refresh("v").unwrap();
    let gauges = db.staleness("v").unwrap();
    assert_eq!(gauges.epochs_pending, 0);
    assert_eq!(gauges.pending_entries, 0);
    assert_eq!(gauges.pending_volume, 0);
    assert_eq!(db.query_view("v").unwrap().len(), 3);
}

#[test]
fn propagate_also_advances_the_cursor() {
    let db = shared_db(&["v"]);
    db.execute(&Transaction::new().insert_tuple("r", tuple![1]))
        .unwrap();
    assert_eq!(pending(&db, "v"), 1);
    db.propagate("v").unwrap();
    assert_eq!(pending(&db, "v"), 0, "drain happens at propagate");
    // ... but the work now sits in the differential tables, not the MV
    let obs = db.observability();
    let v = &obs.views[0];
    assert_eq!(v.dt_tuples, 1);
}

#[test]
fn vacuum_never_reclaims_past_min_live_cursor() {
    // Two views over the same base: "slow" never refreshes, so its cursor
    // pins the log; vacuuming may reclaim nothing. After "slow" catches
    // up, the suffix becomes reclaimable.
    let db = shared_db(&["fast", "slow"]);
    for i in 0..4i64 {
        db.execute(&Transaction::new().insert_tuple("r", tuple![i]))
            .unwrap();
    }
    db.refresh("fast").unwrap();
    assert_eq!(pending(&db, "fast"), 0);
    assert_eq!(pending(&db, "slow"), 4);

    let reclaimed = db.vacuum_shared_log();
    assert_eq!(reclaimed, 0, "slow's cursor pins every entry");
    let obs = db.observability();
    assert_eq!(obs.shared_log_entries, 4);
    // slow can still fold its whole backlog and land on the truth
    db.refresh("slow").unwrap();
    assert_eq!(
        db.query_view("slow").unwrap(),
        db.recompute_view("slow").unwrap()
    );

    // now everyone is caught up; the vacuum may take the lot
    let reclaimed = db.vacuum_shared_log();
    assert_eq!(reclaimed, 4);
    assert_eq!(db.observability().shared_log_entries, 0);
}

#[test]
fn vacuum_respects_partial_progress() {
    let db = shared_db(&["a", "b"]);
    db.execute(&Transaction::new().insert_tuple("r", tuple![1]))
        .unwrap();
    db.refresh("a").unwrap();
    db.refresh("b").unwrap();
    db.execute(&Transaction::new().insert_tuple("r", tuple![2]))
        .unwrap();
    db.refresh("a").unwrap(); // b still one epoch behind
    assert_eq!(pending(&db, "b"), 1);
    let reclaimed = db.vacuum_shared_log();
    assert_eq!(reclaimed, 1, "only the entry both views consumed goes");
    // b's backlog survives the vacuum intact
    assert_eq!(db.staleness("b").unwrap().pending_entries, 1);
    db.refresh("b").unwrap();
    assert_eq!(
        db.query_view("b").unwrap(),
        db.recompute_view("b").unwrap()
    );
}

#[test]
fn nanos_since_refresh_resets_on_refresh() {
    let db = shared_db(&["v"]);
    let initial = db
        .staleness("v")
        .unwrap()
        .nanos_since_refresh
        .expect("initialization stamps the view");
    std::thread::sleep(std::time::Duration::from_millis(5));
    let aged = db.staleness("v").unwrap().nanos_since_refresh.unwrap();
    assert!(aged > initial, "gauge ages while idle: {initial} → {aged}");
    assert!(aged >= 4_000_000);
    db.refresh("v").unwrap();
    let fresh = db.staleness("v").unwrap().nanos_since_refresh.unwrap();
    assert!(fresh < aged, "refresh rewinds the gauge: {fresh} < {aged}");
}

#[test]
fn nanos_since_refresh_is_monotone_between_refreshes() {
    // Regression pin: the gauge derives from the database's `Instant`-based
    // monotonic clock (`Database::now_nanos`), not wall time, so successive
    // idle reads can never go backwards — a wall-clock implementation would
    // jump under NTP steps or timezone changes.
    let db = shared_db(&["v"]);
    let mut last = db.staleness("v").unwrap().nanos_since_refresh.unwrap();
    for _ in 0..200 {
        let now = db.staleness("v").unwrap().nanos_since_refresh.unwrap();
        assert!(now >= last, "staleness gauge went backwards: {last} → {now}");
        last = now;
    }
}

#[test]
fn observability_json_round_trips_staleness() {
    let db = shared_db(&["v"]);
    db.execute(&Transaction::new().insert_tuple("r", tuple![7]))
        .unwrap();
    let doc = db.observability().to_json();
    let parsed = dvm_obs::json::parse(&doc).unwrap();
    let views = parsed.get("views").unwrap().as_arr().unwrap();
    assert_eq!(views.len(), 1);
    let st = views[0].get("staleness").unwrap();
    assert_eq!(st.get("epochs_pending").unwrap().as_f64(), Some(1.0));
    assert_eq!(st.get("retained_volume").unwrap().as_f64(), Some(1.0));
    assert!(st.get("nanos_since_refresh").unwrap().as_f64().is_some());
    assert_eq!(
        parsed.get("shared_log").unwrap().get("entries").unwrap().as_f64(),
        Some(1.0)
    );
}
