//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the same
//! checksum Postgres and gzip use for record framing. Table-driven, table
//! built in a `const fn` so the crate stays zero-dependency.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.0;
        for &b in data {
            crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.0 = crc;
    }

    /// Final checksum.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot checksum of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(data));
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"record payload bytes".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {i}:{bit} undetected");
            }
        }
    }
}
