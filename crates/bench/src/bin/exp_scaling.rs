//! **E5 — incremental refresh vs full recompute** (paper Section 3.3).
//!
//! Claim: "in most cases this incremental approach will be much less
//! expensive than recomputing Q from scratch. However, the computation of
//! the incremental queries still may be costly" — i.e. incremental wins
//! when the logged change fraction is small, and there is a crossover as
//! the log grows toward the table size.
//!
//! Setup: retail view over 100k sales; defer a log containing a changed
//! fraction f of the sales table, then time (a) `refresh_BL` (incremental,
//! post-update) and (b) a from-scratch recompute of Q.

use dvm_bench::report::{fmt_duration, TableReport};
use dvm_bench::retail_db;
use dvm_core::{Minimality, Scenario};
use std::time::Instant;

const CUSTOMERS: usize = 2_000;
const INITIAL_SALES: usize = 100_000;

fn main() {
    println!("=== E5: incremental refresh vs full recompute (|sales| = {INITIAL_SALES}) ===\n");

    let mut table = TableReport::new([
        "changed fraction",
        "log tuples",
        "incremental refresh_BL",
        "full recompute",
        "speedup",
    ]);

    for &fraction in &[0.001f64, 0.005, 0.01, 0.05, 0.10, 0.30, 1.00] {
        let changes = ((INITIAL_SALES as f64) * fraction) as usize;
        let (db, mut gen) = retail_db(
            CUSTOMERS,
            INITIAL_SALES,
            Scenario::BaseLog,
            Minimality::Weak,
            5,
        );
        // one big deferred batch: ~80% inserts, 20% deletes
        let tx = gen.mixed_batch(changes * 4 / 5, changes / 5);
        db.execute(&tx).unwrap();

        // (b) full recompute, timed (not mutating MV so (a) starts stale)
        let t0 = Instant::now();
        let truth = db.recompute_view("V").unwrap();
        let recompute = t0.elapsed();

        // (a) incremental refresh, timed
        let t0 = Instant::now();
        db.refresh("V").unwrap();
        let incremental = t0.elapsed();

        assert_eq!(db.query_view("V").unwrap(), truth, "refresh correctness");

        table.row([
            format!("{:.1}%", fraction * 100.0),
            tx.change_volume().to_string(),
            fmt_duration(incremental),
            fmt_duration(recompute),
            format!(
                "{:.1}×",
                recompute.as_secs_f64() / incremental.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    table.print();

    println!(
        "\npaper claim reproduced when the speedup is large for small change\n\
         fractions and decays toward (or below) 1× as the change fraction\n\
         approaches the table size — the crossover where recomputation wins."
    );
}
