//! The maintenance profiler end-to-end through `Database`: operator-level
//! cost attribution per propagate/refresh strictly gated behind the
//! profiling flag, and the always-on time-series recorder the policy
//! driver samples staleness into.
//!
//! Profiling is a process-wide flag, so every flag-dependent assertion
//! lives in one test body — parallel test threads must not observe each
//! other's toggles.

use dvm_algebra::testgen::{Rng, Universe};
use dvm_algebra::{col, Expr, Predicate};
use dvm_core::{Database, Minimality, PolicyDriver, RefreshPolicy, Scenario};
use dvm_delta::Transaction;
use dvm_storage::{tuple, Schema, ValueType};

/// An equi-join the optimizer compiles to a `HashJoin`, so profiled
/// propagates produce non-trivial operator trees.
fn join_def() -> Expr {
    Expr::table("t0")
        .alias("l")
        .product(Expr::table("t1").alias("r"))
        .select(Predicate::eq(col("l.a"), col("r.a")))
        .project(["l.a", "r.b"])
}

fn seeded_db(u: &Universe, seed: u64) -> Database {
    let mut rng = Rng::new(seed);
    let db = Database::new();
    for t in &u.tables {
        let table = db.create_table(t.clone(), u.schema.clone()).unwrap();
        table.replace(u.bag(&mut rng, 8)).unwrap();
    }
    db
}

fn churn(u: &Universe, rng: &mut Rng) -> Transaction {
    let mut tx = Transaction::new();
    for t in &u.tables {
        tx = tx
            .delete(t.clone(), u.bag(rng, 2))
            .insert(t.clone(), u.bag(rng, 3));
    }
    tx
}

#[test]
fn profiler_gates_capture_and_attributes_costs() {
    let u = Universe::small(2);
    let db = seeded_db(&u, 0x1234);
    db.create_view("vj", join_def(), Scenario::Combined).unwrap();
    let mut rng = Rng::new(0x99);

    // --- off (the default): maintenance records no operation profiles ---
    assert!(!db.profiling_enabled());
    db.execute(&churn(&u, &mut rng)).unwrap();
    db.propagate("vj").unwrap();
    let off = db.profile_report();
    assert!(!off.enabled);
    assert!(off.ops.is_empty(), "off path must record no profiles");
    assert!(
        off.per_plan.is_empty(),
        "per-plan cache attribution accrues only while profiling"
    );

    // --- on: propagate and partial_refresh record annotated trees ---
    db.set_profiling(true);
    db.execute(&churn(&u, &mut rng)).unwrap();
    db.propagate("vj").unwrap();
    db.partial_refresh("vj").unwrap();
    let on = db.profile_report();
    assert!(on.enabled);
    let prop = on
        .ops
        .iter()
        .find(|o| o.op == "propagate")
        .expect("propagate must be profiled");
    assert_eq!(prop.view, "vj");
    assert!(
        !prop.evals.is_empty(),
        "propagate over a join view evaluates change queries"
    );
    for e in &prop.evals {
        assert_eq!(
            e.total_exclusive_nanos(),
            e.nanos,
            "per-operator exclusive nanos must telescope to the root:\n{}",
            e.render()
        );
    }
    assert!(prop.coverage() > 0.0);
    assert!(
        on.ops.iter().any(|o| o.op == "partial_refresh"),
        "partial_refresh must be profiled too"
    );
    let rendered = on.render();
    assert!(rendered.contains("== propagate vj"), "{rendered}");
    assert!(rendered.contains("Scan"), "{rendered}");
    assert!(rendered.contains("pool:"), "{rendered}");
    assert!(rendered.contains("join cache:"), "{rendered}");

    // The report round-trips through its JSON exporter.
    let doc = dvm_obs::json::parse(&on.to_json()).unwrap();
    assert_eq!(
        doc.get("enabled"),
        Some(&dvm_obs::json::Value::Bool(true))
    );
    assert!(!doc.get("ops").unwrap().as_arr().unwrap().is_empty());

    // --- re-enabling starts a fresh phase ---
    db.set_profiling(false);
    db.set_profiling(true);
    assert!(
        db.profile_report().ops.is_empty(),
        "enabling profiling clears the previous phase"
    );
    db.set_profiling(false);
    assert!(!db.profiling_enabled());
}

#[test]
fn time_series_record_latency_and_policy_driven_staleness() {
    let db = Database::new();
    db.create_table("r", Schema::from_pairs(&[("a", ValueType::Int)]))
        .unwrap();
    db.create_view_shared("v", Expr::table("r"), Minimality::Weak)
        .unwrap();
    let mut driver = PolicyDriver::new(&db);
    driver
        .add_view("v", RefreshPolicy::Policy2 { k: 1, m: 2 })
        .unwrap();
    for i in 0..6i64 {
        db.execute(&Transaction::new().insert_tuple("r", tuple![i]))
            .unwrap();
        driver.tick().unwrap();
    }

    let report = db.profile_report();
    let series: Vec<&str> = report.series.iter().map(|s| s.name()).collect();
    assert!(
        series.contains(&"propagate_ns/v"),
        "propagate latency series missing: {series:?}"
    );
    assert!(
        series.contains(&"refresh_ns/v"),
        "partial-refresh latency series missing: {series:?}"
    );
    assert!(
        series.contains(&"staleness_ns/v"),
        "policy ticks must sample staleness: {series:?}"
    );
    assert!(
        series.contains(&"backlog_entries/v"),
        "policy ticks must sample backlog: {series:?}"
    );
    let staleness = report
        .series
        .iter()
        .find(|s| s.name() == "staleness_ns/v")
        .unwrap();
    assert_eq!(staleness.samples(), 6, "one sample per tick");
    let prop = report
        .series
        .iter()
        .find(|s| s.name() == "propagate_ns/v")
        .unwrap();
    assert_eq!(prop.samples(), 6, "Policy2 k=1 propagates every tick");
    // Series survive the JSON exporter with their points intact.
    let doc = dvm_obs::json::parse(&report.to_json()).unwrap();
    let arr = doc.get("series").unwrap().as_arr().unwrap();
    assert_eq!(arr.len(), report.series.len());
    assert!(arr
        .iter()
        .any(|s| s.get("name").and_then(|n| n.as_str()) == Some("staleness_ns/v")));
}
