//! The delta-plan compiler: `Del`/`Add` change queries derived, simplified,
//! and plan-optimized **once per view**, then re-executed with the current
//! log bags bound as parameters — zero symbolic work in steady state.
//!
//! [`post_update_deltas_pruned`](crate::post_update_deltas_pruned) earns
//! its keep by replacing log tables that are empty *right now* with `φ`
//! before differentiation, so untouched tables vanish from the change
//! queries. A compile-once design must keep that property without
//! re-deriving per call, and the resolution here is an **activity-mask
//! keyed variant cache**: each subset of non-empty log tables gets its own
//! pruned, compiled `(▼, ▲)` plan pair, derived the first time that subset
//! is observed and a pure map lookup ever after. Steady workloads touch
//! one or two subsets (e.g. a sales-only stream always dirties exactly the
//! sales logs), so the cache converges immediately; the all-active variant
//! is compiled eagerly at view creation as the universal fallback.
//!
//! Masks are capped at 64 logged bases (two bits per base). Beyond that
//! the mask saturates to [`CompiledDeltaProgram::SATURATED`], which maps
//! every log table active — always *sound*, because substituting a log
//! table whose current contents are empty only loses pruning, never
//! changes the value of the change queries.

use crate::error::Result;
use crate::incremental::LogTables;
use crate::weak::differentiate;
use dvm_algebra::infer::{compile, CompiledQuery, SchemaProvider};
use dvm_algebra::subst::FactoredSubstitution;
use dvm_algebra::Expr;
use dvm_testkit::sync::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::SystemTime;

/// One compiled `(▼, ▲)` plan pair for a specific set of active log
/// tables.
#[derive(Debug)]
pub struct CompiledDeltaVariant {
    /// The activity mask this variant was derived for.
    pub mask: u128,
    /// Compiled `▼(L,Q)` — what to remove.
    pub del: CompiledQuery,
    /// Compiled `▲(L,Q)` — what to add.
    pub ins: CompiledQuery,
    /// Total AST size of the derived change queries (diagnostics).
    pub expr_size: usize,
}

/// Counters and provenance of one [`CompiledDeltaProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaProgramStats {
    /// Variants compiled (symbolic derivations performed over the
    /// program's lifetime — stops growing once the workload's masks are
    /// all cached).
    pub compiles: u64,
    /// Parameter bindings (steady-state executions).
    pub binds: u64,
    /// Variant-cache hits (executions that did zero symbolic work).
    pub hits: u64,
    /// Variants currently cached.
    pub variants: u64,
    /// When the program was compiled.
    pub compiled_at: SystemTime,
}

#[derive(Debug)]
struct LogEntry {
    base: String,
    del_table: String,
    ins_table: String,
}

/// A view's precompiled delta program: the Figure 2 differentiation of its
/// definition against its log substitution, stored as executable plans
/// keyed by which log tables currently hold tuples. See the module docs.
#[derive(Debug)]
pub struct CompiledDeltaProgram {
    definition: Expr,
    /// Logged bases in sorted order — entry `i` owns mask bits `2i`
    /// (deletion log non-empty) and `2i+1` (insertion log non-empty).
    entries: Vec<LogEntry>,
    variants: Mutex<BTreeMap<u128, Arc<CompiledDeltaVariant>>>,
    compiles: AtomicU64,
    binds: AtomicU64,
    hits: AtomicU64,
    compiled_at: SystemTime,
}

impl CompiledDeltaProgram {
    /// The saturated activity mask: every log table treated as active.
    /// Used verbatim when the view logs more than 64 bases.
    pub const SATURATED: u128 = u128::MAX;

    /// Derive, simplify, and plan-compile the program for `definition`
    /// over `log`. The all-active variant is compiled eagerly so the
    /// first propagate already skips symbolic work in the common case of
    /// a fully dirty log.
    pub fn compile(
        definition: &Expr,
        log: &LogTables,
        provider: &dyn SchemaProvider,
    ) -> Result<Self> {
        let entries = log
            .bases()
            .map(|base| {
                let (d, i) = log.get(base).expect("listed base");
                LogEntry {
                    base: base.clone(),
                    del_table: d.to_string(),
                    ins_table: i.to_string(),
                }
            })
            .collect();
        let program = CompiledDeltaProgram {
            definition: definition.clone(),
            entries,
            variants: Mutex::new(BTreeMap::new()),
            compiles: AtomicU64::new(0),
            binds: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            compiled_at: SystemTime::now(),
        };
        let full = program.all_active_mask();
        if full != 0 {
            program.compile_variant(full, provider)?;
        }
        Ok(program)
    }

    /// The mask with every logged table active.
    pub fn all_active_mask(&self) -> u128 {
        let bits = self.entries.len().saturating_mul(2);
        if bits >= 128 {
            Self::SATURATED
        } else {
            (1u128 << bits) - 1
        }
    }

    fn bit_active(mask: u128, bit: usize) -> bool {
        if mask == Self::SATURATED {
            return true;
        }
        bit < 128 && (mask >> bit) & 1 == 1
    }

    /// Compute the activity mask for the current log state: one bit per
    /// log table that is non-empty *right now*. `0` means the whole log
    /// is empty — propagate is a no-op and no plan need run. Saturates to
    /// [`Self::SATURATED`] past 64 logged bases (sound: over-inclusion
    /// only loses pruning).
    pub fn activity_mask(&self, is_empty_now: &dyn Fn(&str) -> bool) -> u128 {
        if self.entries.len() > 64 {
            let any = self
                .entries
                .iter()
                .any(|e| !is_empty_now(&e.del_table) || !is_empty_now(&e.ins_table));
            return if any { Self::SATURATED } else { 0 };
        }
        let mut mask = 0u128;
        for (i, e) in self.entries.iter().enumerate() {
            if !is_empty_now(&e.del_table) {
                mask |= 1 << (2 * i);
            }
            if !is_empty_now(&e.ins_table) {
                mask |= 1 << (2 * i + 1);
            }
        }
        mask
    }

    /// The log tables active under `mask`, i.e. exactly the parameter
    /// tables the variant's plans may scan.
    pub fn active_log_tables(&self, mask: u128) -> Vec<&str> {
        let mut out = Vec::new();
        for (i, e) in self.entries.iter().enumerate() {
            if Self::bit_active(mask, 2 * i) {
                out.push(e.del_table.as_str());
            }
            if Self::bit_active(mask, 2 * i + 1) {
                out.push(e.ins_table.as_str());
            }
        }
        out
    }

    /// Fetch the compiled variant for `mask`, deriving and compiling it on
    /// first sight. Returns `(variant, freshly_compiled)` so callers can
    /// attribute the one-time symbolic cost to a `CompileDelta` phase.
    pub fn variant(
        &self,
        mask: u128,
        provider: &dyn SchemaProvider,
    ) -> Result<(Arc<CompiledDeltaVariant>, bool)> {
        if let Some(v) = self.variants.lock().get(&mask) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(v), false));
        }
        Ok((self.compile_variant(mask, provider)?, true))
    }

    /// The eagerly compiled all-active variant, if the view logs any base.
    pub fn full_variant(&self) -> Option<Arc<CompiledDeltaVariant>> {
        self.variants
            .lock()
            .get(&self.all_active_mask())
            .map(Arc::clone)
    }

    /// Every cached variant, in mask order.
    pub fn variants_snapshot(&self) -> Vec<Arc<CompiledDeltaVariant>> {
        self.variants.lock().values().map(Arc::clone).collect()
    }

    /// Count one steady-state parameter binding.
    pub fn record_bind(&self) {
        self.binds.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DeltaProgramStats {
        DeltaProgramStats {
            compiles: self.compiles.load(Ordering::Relaxed),
            binds: self.binds.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            variants: self.variants.lock().len() as u64,
            compiled_at: self.compiled_at,
        }
    }

    /// Derive + compile the variant for `mask` and cache it. Mirrors
    /// [`post_update_deltas_pruned`](crate::post_update_deltas_pruned):
    /// inactive log tables enter the substitution as `φ` literals (so
    /// φ-propagation prunes their terms at compile time) and wholly
    /// inactive bases are left out of `η` entirely.
    fn compile_variant(
        &self,
        mask: u128,
        provider: &dyn SchemaProvider,
    ) -> Result<Arc<CompiledDeltaVariant>> {
        let mut l_hat = FactoredSubstitution::new();
        for (i, e) in self.entries.iter().enumerate() {
            let del_active = Self::bit_active(mask, 2 * i);
            let ins_active = Self::bit_active(mask, 2 * i + 1);
            if !del_active && !ins_active {
                continue;
            }
            let schema = provider.schema_of(&e.base)?;
            // `L̂`: `R ↦ (R ∸ ▲R) ⊎ ▼R` — the factored D is the insertion
            // log and A the deletion log (reconstructing the past).
            let d = if ins_active {
                Expr::table(e.ins_table.clone())
            } else {
                Expr::empty(schema.clone())
            };
            let a = if del_active {
                Expr::table(e.del_table.clone())
            } else {
                Expr::empty(schema.clone())
            };
            l_hat.set(e.base.clone(), d, a);
        }
        let pair = differentiate(&self.definition, &l_hat, provider)?;
        // Post-update role swap: ▼ = Add(L̂,Q), ▲ = Del(L̂,Q).
        let expr_size = pair.del.size() + pair.add.size();
        let variant = Arc::new(CompiledDeltaVariant {
            mask,
            del: compile(&pair.add, provider)?,
            ins: compile(&pair.del, provider)?,
            expr_size,
        });
        self.compiles.fetch_add(1, Ordering::Relaxed);
        self.variants.lock().insert(mask, Arc::clone(&variant));
        Ok(variant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::{log_del_name, log_ins_name, post_update_deltas_pruned};
    use dvm_algebra::eval::eval;
    use dvm_algebra::testgen::{Rng, Universe};
    use dvm_storage::{tuple, Bag, Schema};
    use std::collections::HashMap;

    fn provider_with_logs(u: &Universe) -> HashMap<String, Schema> {
        let mut p = u.provider();
        for t in &u.tables {
            p.insert(log_del_name(t), u.schema.clone());
            p.insert(log_ins_name(t), u.schema.clone());
        }
        p
    }

    fn empty_logs(u: &Universe, state: &mut HashMap<String, Bag>) -> LogTables {
        let mut log = LogTables::new();
        for t in &u.tables {
            log.add(t.clone());
            state.insert(log_del_name(t), Bag::new());
            state.insert(log_ins_name(t), Bag::new());
        }
        log
    }

    #[test]
    fn empty_log_is_mask_zero_and_full_variant_eager() {
        let u = Universe::small(2);
        let provider = provider_with_logs(&u);
        let mut state = u.state(&mut Rng::new(1), 4);
        let log = empty_logs(&u, &mut state);
        let q = Expr::table("t0").union(Expr::table("t1"));
        let p = CompiledDeltaProgram::compile(&q, &log, &provider).unwrap();
        let is_empty = |t: &str| state.get(t).map(|b| b.is_empty()).unwrap_or(false);
        assert_eq!(p.activity_mask(&is_empty), 0);
        assert_eq!(p.all_active_mask(), 0b1111);
        let s = p.stats();
        assert_eq!(s.compiles, 1, "all-active variant compiled eagerly");
        assert_eq!(s.variants, 1);
        assert!(p.full_variant().is_some());
    }

    #[test]
    fn variant_cache_hits_after_first_compile() {
        let u = Universe::small(2);
        let provider = provider_with_logs(&u);
        let mut state = u.state(&mut Rng::new(2), 4);
        let log = empty_logs(&u, &mut state);
        state.insert(log_ins_name("t0"), Bag::singleton(tuple![1, 1]));
        let q = Expr::table("t0").union(Expr::table("t1"));
        let p = CompiledDeltaProgram::compile(&q, &log, &provider).unwrap();
        let is_empty = |t: &str| state.get(t).map(|b| b.is_empty()).unwrap_or(false);
        let mask = p.activity_mask(&is_empty);
        assert_ne!(mask, 0);
        assert_ne!(mask, p.all_active_mask());
        let (_, fresh) = p.variant(mask, &provider).unwrap();
        assert!(fresh, "first sighting of this mask derives");
        let (_, fresh) = p.variant(mask, &provider).unwrap();
        assert!(!fresh, "second sighting is a pure lookup");
        let s = p.stats();
        assert_eq!(s.compiles, 2); // all-active + this mask
        assert_eq!(s.hits, 1);
        assert_eq!(s.variants, 2);
        // The active tables are exactly t0's insertion log.
        assert_eq!(p.active_log_tables(mask), vec![log_ins_name("t0")]);
    }

    #[test]
    fn masked_variant_matches_pruned_derivation() {
        // The central equivalence, small-scale (the full property suite
        // lives in tests/compile_differential.rs): the compiled variant's
        // plans evaluate bag-equal to a fresh pruned derivation.
        let u = Universe::small(3);
        let provider = provider_with_logs(&u);
        let mut rng = Rng::new(77);
        for _ in 0..40 {
            let q = u.expr(&mut rng, 2);
            let mut state = u.state(&mut rng, 4);
            let log = empty_logs(&u, &mut state);
            let f = u.weakly_minimal_subst(&mut rng, &state);
            let mut state = u.apply_subst_to_state(&f, &state);
            for t in &u.tables {
                let (d, a) = match f.get(t) {
                    Some((Expr::Literal { bag: d, .. }, Expr::Literal { bag: a, .. })) => {
                        (d.clone(), a.clone())
                    }
                    None => (Bag::new(), Bag::new()),
                    _ => unreachable!("literal deltas"),
                };
                state.insert(log_del_name(t), d);
                state.insert(log_ins_name(t), a);
            }
            let program = CompiledDeltaProgram::compile(&q, &log, &provider).unwrap();
            let is_empty = |t: &str| state.get(t).map(|b| b.is_empty()).unwrap_or(false);
            let fresh =
                post_update_deltas_pruned(&q, &log, &provider, &is_empty).unwrap();
            let ev = |e: &Expr| eval(&compile(e, &provider).unwrap().plan, &state).unwrap();
            let mask = program.activity_mask(&is_empty);
            if mask == 0 {
                assert!(ev(&fresh.del).is_empty() && ev(&fresh.ins).is_empty());
                continue;
            }
            let (v, _) = program.variant(mask, &provider).unwrap();
            assert_eq!(eval(&v.del.plan, &state).unwrap(), ev(&fresh.del), "▼ for {q}");
            assert_eq!(eval(&v.ins.plan, &state).unwrap(), ev(&fresh.ins), "▲ for {q}");
        }
    }

    #[test]
    fn saturated_mask_is_sound_past_64_bases() {
        // 70 logged bases force saturation; the program must still answer
        // correctly because empty log tables evaluate to φ at runtime.
        let schema = Schema::from_pairs(&[
            ("a", dvm_storage::ValueType::Int),
            ("b", dvm_storage::ValueType::Int),
        ]);
        let mut provider: HashMap<String, Schema> = HashMap::new();
        let mut log = LogTables::new();
        let mut state: HashMap<String, Bag> = HashMap::new();
        for i in 0..70 {
            let t = format!("t{i}");
            provider.insert(t.clone(), schema.clone());
            provider.insert(log_del_name(&t), schema.clone());
            provider.insert(log_ins_name(&t), schema.clone());
            state.insert(t.clone(), Bag::new());
            state.insert(log_del_name(&t), Bag::new());
            state.insert(log_ins_name(&t), Bag::new());
            log.add(t);
        }
        let q = Expr::table("t0").union(Expr::table("t1"));
        let p = CompiledDeltaProgram::compile(&q, &log, &provider).unwrap();
        assert_eq!(p.all_active_mask(), CompiledDeltaProgram::SATURATED);

        state.insert("t0".into(), Bag::singleton(tuple![1, 1]));
        state.insert(log_ins_name("t0"), Bag::singleton(tuple![1, 1]));
        let is_empty = |t: &str| state.get(t).map(|b| b.is_empty()).unwrap_or(false);
        let mask = p.activity_mask(&is_empty);
        assert_eq!(mask, CompiledDeltaProgram::SATURATED, "mask saturates");
        let (v, _) = p.variant(mask, &provider).unwrap();
        let ins = eval(&v.ins.plan, &state).unwrap();
        assert_eq!(ins, Bag::singleton(tuple![1, 1]), "▲ = the logged insert");
        let del = eval(&v.del.plan, &state).unwrap();
        assert!(del.is_empty());
    }
}
