//! The retail warehouse of Example 1.1 / Example 5.4: continuous
//! point-of-sale inserts, a join view for decision support, deferred
//! maintenance with hourly propagation and daily refresh.
//!
//! Simulated time: 1 tick = 1 minute; propagate every k = 60 ticks (1 h),
//! refresh every m = 1440 ticks (24 h) — the paper's exact parameters.
//!
//! ```sh
//! cargo run --release --example retail_warehouse
//! ```

use dvm::workload::{RetailConfig, RetailGen};
use dvm::{Database, PolicyDriver, RefreshPolicy, Scenario};

fn main() {
    let db = Database::new();
    let mut gen = RetailGen::new(RetailConfig {
        customers: 2_000,
        items: 500,
        initial_sales: 20_000,
        high_fraction: 0.1,
        theta: 1.0,
        seed: 54,
    });
    gen.install(&db).unwrap();
    db.create_view("V", dvm::workload::view_expr(), Scenario::Combined)
        .unwrap();
    println!(
        "installed retail schema: {} customers, {} initial sales; view V materialized with {} rows",
        2_000,
        20_000,
        db.query_view("V").unwrap().len()
    );

    // Policy 2 (Example 5.4): propagate every hour, partial-refresh daily.
    let mut driver = PolicyDriver::new(&db);
    driver
        .add_view("V", RefreshPolicy::Policy2 { k: 60, m: 1440 })
        .unwrap();

    // One simulated day: a batch of sales lands every minute.
    let mut total_sales = 0u64;
    for minute in 1..=1440u64 {
        let tx = if minute % 7 == 0 {
            gen.mixed_batch(20, 5) // some returns
        } else {
            gen.sales_batch(20)
        };
        total_sales += tx.change_volume();
        db.execute(&tx).unwrap();
        let actions = driver.tick().unwrap();
        if actions.propagates > 0 && minute % 360 == 0 {
            let (log, dt) = db.aux_sizes("V").unwrap();
            println!("t={minute:>4}min propagated; log={log} tuples, diff tables={dt} tuples");
        }
        if actions.partial_refreshes > 0 {
            println!("t={minute:>4}min partial refresh (end of day)");
        }
    }

    let metrics = db.view_metrics("V").unwrap();
    let lock = db.mv_table("V").unwrap().lock_metrics().snapshot();
    println!("\n=== day summary ===");
    println!("sales applied:            {total_sales}");
    println!(
        "per-transaction overhead: {:.1}µs mean over {} transactions (log appends only)",
        metrics.mean_makesafe_nanos() / 1000.0,
        metrics.makesafe_count
    );
    println!(
        "propagate (background):   {} runs, {:.2}ms mean — paid off the refresh path",
        metrics.propagate_count,
        metrics.mean_propagate_nanos() / 1e6
    );
    println!(
        "view downtime:            {:.3}ms total write-lock hold ({} refresh ops, max single {:.3}ms)",
        lock.write_hold_nanos as f64 / 1e6,
        metrics.refresh_count,
        lock.write_hold_max_nanos as f64 / 1e6
    );

    // Verify correctness at end of day: staleness ≤ k as Policy 2 promises.
    let stale = db.query_view("V").unwrap();
    let truth = db.recompute_view("V").unwrap();
    println!(
        "end of day: view has {} rows, truth {} (staleness bounded by the last propagate)",
        stale.len(),
        truth.len()
    );
    db.refresh("V").unwrap();
    assert_eq!(db.query_view("V").unwrap(), db.recompute_view("V").unwrap());
    println!("after a final full refresh the view equals the recomputed truth ✓");
    assert!(db.check_invariant("V").unwrap().ok());
    println!("INV_C held throughout ✓");
}
