//! Maintenance profiling reports: cost attribution for one maintenance
//! operation ([`MaintProfile`]) and the engine-wide [`ProfileReport`]
//! (`\profile show` in the REPL, `Database::profile_report()` in code,
//! `results/BENCH_profile.json` via `exp_profile`).
//!
//! While profiling is enabled (`Database::set_profiling(true)`), every
//! `propagate` / `refresh` / `partial_refresh` claims the annotated
//! operator trees ([`OpProf`]) and per-shard fan-out profiles
//! ([`ShardProfile`]) its evaluations deposited, and stores them here
//! together with the operation's observed wall time — so per-operator
//! nanos can be checked against the latency the histograms report
//! ([`MaintProfile::coverage`]).

use dvm_obs::{fmt_nanos, json, HistogramSnapshot, OpProf, ShardProfile, TimeSeries};
use dvm_storage::{JoinCacheStats, PlanCacheStats};
use dvm_testkit::PoolStats;
use std::fmt::Write as _;

/// Everything profiled during one maintenance operation on one view.
#[derive(Debug, Clone)]
pub struct MaintProfile {
    /// View the operation maintained.
    pub view: String,
    /// `"propagate"`, `"refresh"`, or `"partial_refresh"`.
    pub op: &'static str,
    /// Observed wall nanos of the whole operation (the same sample the
    /// latency histogram recorded).
    pub total_nanos: u64,
    /// One annotated tree per evaluation the operation ran, in order.
    pub evals: Vec<OpProf>,
    /// One profile per parallel shard fan-out, in order.
    pub shards: Vec<ShardProfile>,
}

impl MaintProfile {
    /// Nanos the profiler attributed: the inclusive root time of every
    /// recorded tree — operator pipelines and phase timers (delta
    /// derivation, compile/pin, the Lemma-3 fold, log truncation) alike.
    /// Parallel shard fan-outs run *inside* the compose/apply phase
    /// timers, so [`ShardProfile`]s are reported for imbalance diagnosis
    /// but not counted again here.
    pub fn attributed_nanos(&self) -> u64 {
        self.evals.iter().map(|e| e.nanos).sum::<u64>()
    }

    /// `attributed_nanos / total_nanos` — how much of the observed
    /// latency the operator-level counters explain (1.0 when the
    /// operation did no measurable work).
    pub fn coverage(&self) -> f64 {
        if self.total_nanos == 0 {
            return 1.0;
        }
        self.attributed_nanos() as f64 / self.total_nanos as f64
    }

    /// Render this operation's annotated trees and shard profiles.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== {} {}  (total={} attributed={} coverage={:.0}%)",
            self.op,
            self.view,
            fmt_nanos(self.total_nanos as f64),
            fmt_nanos(self.attributed_nanos() as f64),
            self.coverage() * 100.0
        );
        for (i, e) in self.evals.iter().enumerate() {
            let _ = writeln!(out, "eval #{i}:");
            out.push_str(&e.render());
        }
        for s in &self.shards {
            let _ = writeln!(
                out,
                "shards {}: {} tuples, slowest {}, imbalance {:.2}",
                s.label,
                s.total_tuples(),
                fmt_nanos(s.max_nanos() as f64),
                s.imbalance()
            );
        }
        out
    }

    /// Serialize as a JSON object.
    pub fn to_json(&self) -> String {
        json::object([
            ("view", json::string(&self.view)),
            ("op", json::string(self.op)),
            ("total_nanos", json::num_u(self.total_nanos)),
            ("attributed_nanos", json::num_u(self.attributed_nanos())),
            ("coverage", json::num_f(self.coverage())),
            ("evals", json::array(self.evals.iter().map(OpProf::to_json))),
            (
                "shards",
                json::array(self.shards.iter().map(ShardProfile::to_json)),
            ),
        ])
    }
}

/// The engine-wide profiling snapshot: recent per-operation profiles plus
/// the resource-attribution counters (worker pool, join-build cache per
/// plan, WAL latency) and the registered time series.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Whether profiling is currently enabled.
    pub enabled: bool,
    /// Most recent profiled maintenance operations, oldest first.
    pub ops: Vec<MaintProfile>,
    /// Maintenance worker-pool utilization counters.
    pub pool: PoolStats,
    /// Join-build cache totals.
    pub join_cache: JoinCacheStats,
    /// Per-plan-fingerprint cache attribution, busiest first (accrues
    /// only while profiling is on).
    pub per_plan: Vec<(u128, PlanCacheStats)>,
    /// WAL append latency (None when no durable sink is attached).
    pub wal_append: Option<HistogramSnapshot>,
    /// WAL fsync latency (None when no durable sink is attached).
    pub wal_sync: Option<HistogramSnapshot>,
    /// Registered time series (staleness gauges, propagate latency).
    pub series: Vec<TimeSeries>,
}

impl ProfileReport {
    /// Render the whole report for the REPL's `\profile show`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profiling: {}",
            if self.enabled { "on" } else { "off" }
        );
        if self.ops.is_empty() {
            out.push_str("no profiled maintenance operations recorded\n");
        }
        for op in &self.ops {
            out.push_str(&op.render());
        }
        let _ = writeln!(
            out,
            "pool: {} workers, {} jobs claimed by workers, {} run by submitter",
            self.pool.workers.len(),
            self.pool
                .workers
                .iter()
                .map(|w| w.jobs_claimed)
                .sum::<u64>(),
            self.pool.submitter_jobs
        );
        for (i, w) in self.pool.workers.iter().enumerate() {
            let _ = writeln!(
                out,
                "  worker {i}: jobs={} parks={} wakes={}",
                w.jobs_claimed, w.parks, w.wakes
            );
        }
        let _ = writeln!(
            out,
            "join cache: {} hits, {} misses, {} evictions, {} resident",
            self.join_cache.hits,
            self.join_cache.misses,
            self.join_cache.evictions,
            self.join_cache.entries
        );
        for (key, s) in &self.per_plan {
            let _ = writeln!(
                out,
                "  plan {:032x}: hits={} misses={} evictions={}",
                key, s.hits, s.misses, s.evictions
            );
        }
        if let (Some(a), Some(s)) = (&self.wal_append, &self.wal_sync) {
            let _ = writeln!(
                out,
                "wal: append p50={} p99={} ({} samples); fsync p50={} p99={} ({} samples)",
                fmt_nanos(a.p50() as f64),
                fmt_nanos(a.p99() as f64),
                a.count,
                fmt_nanos(s.p50() as f64),
                fmt_nanos(s.p99() as f64),
                s.count
            );
        }
        for ts in &self.series {
            let last = ts.points().last().copied();
            let _ = writeln!(
                out,
                "series {}: {} samples, bucket {}{}",
                ts.name(),
                ts.samples(),
                ts.bucket(),
                match last {
                    Some(p) => format!(", last avg {:.0} max {:.0}", p.avg, p.max),
                    None => String::new(),
                }
            );
        }
        out
    }

    /// The whole report as one JSON document.
    pub fn to_json(&self) -> String {
        json::object([
            ("enabled", json::boolean(self.enabled)),
            ("ops", json::array(self.ops.iter().map(MaintProfile::to_json))),
            (
                "pool",
                json::object([
                    (
                        "workers",
                        json::array(self.pool.workers.iter().map(|w| {
                            json::object([
                                ("jobs_claimed", json::num_u(w.jobs_claimed)),
                                ("parks", json::num_u(w.parks)),
                                ("wakes", json::num_u(w.wakes)),
                            ])
                        })),
                    ),
                    ("submitter_jobs", json::num_u(self.pool.submitter_jobs)),
                    ("total_jobs", json::num_u(self.pool.total_jobs())),
                ]),
            ),
            (
                "join_cache",
                json::object([
                    ("hits", json::num_u(self.join_cache.hits)),
                    ("misses", json::num_u(self.join_cache.misses)),
                    ("evictions", json::num_u(self.join_cache.evictions)),
                    ("entries", json::num_u(self.join_cache.entries)),
                    (
                        "per_plan",
                        json::array(self.per_plan.iter().map(|(key, s)| {
                            json::object([
                                ("plan", json::string(&format!("{key:032x}"))),
                                ("hits", json::num_u(s.hits)),
                                ("misses", json::num_u(s.misses)),
                                ("evictions", json::num_u(s.evictions)),
                            ])
                        })),
                    ),
                ]),
            ),
            (
                "wal",
                json::object([
                    (
                        "append",
                        match &self.wal_append {
                            Some(h) => h.to_json(),
                            None => "null".to_string(),
                        },
                    ),
                    (
                        "sync",
                        match &self.wal_sync {
                            Some(h) => h.to_json(),
                            None => "null".to_string(),
                        },
                    ),
                ]),
            ),
            (
                "series",
                json::array(self.series.iter().map(TimeSeries::to_json)),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_op() -> MaintProfile {
        MaintProfile {
            view: "v".into(),
            op: "propagate",
            total_nanos: 1_000,
            evals: vec![OpProf {
                label: "Filter".into(),
                rows_in: 10,
                rows_out: 4,
                nanos: 600,
                children: vec![OpProf::leaf("Scan r", 10, 200)],
            }],
            shards: vec![ShardProfile {
                label: "compose_delta",
                tuples: vec![5, 3],
                nanos: vec![300, 100],
            }],
        }
    }

    #[test]
    fn coverage_counts_recorded_trees_but_not_shards_again() {
        let p = sample_op();
        assert_eq!(p.attributed_nanos(), 600);
        assert!((p.coverage() - 0.6).abs() < 1e-9);
        let idle = MaintProfile {
            total_nanos: 0,
            evals: vec![],
            shards: vec![],
            ..p
        };
        assert_eq!(idle.coverage(), 1.0);
    }

    #[test]
    fn report_renders_and_serializes() {
        let report = ProfileReport {
            enabled: true,
            ops: vec![sample_op()],
            pool: PoolStats::default(),
            join_cache: JoinCacheStats {
                hits: 2,
                misses: 1,
                entries: 1,
                evictions: 0,
            },
            per_plan: vec![(
                7u128,
                PlanCacheStats {
                    hits: 2,
                    misses: 1,
                    evictions: 0,
                },
            )],
            wal_append: None,
            wal_sync: None,
            series: vec![TimeSeries::new("propagate_ns/v", 8)],
        };
        let r = report.render();
        assert!(r.contains("profiling: on"), "{r}");
        assert!(r.contains("== propagate v"), "{r}");
        assert!(r.contains("Scan r"), "{r}");
        assert!(r.contains("join cache: 2 hits"), "{r}");
        assert!(r.contains("series propagate_ns/v"), "{r}");

        let doc = json::parse(&report.to_json()).unwrap();
        assert_eq!(doc.get("enabled"), Some(&json::Value::Bool(true)));
        let ops = doc.get("ops").unwrap().as_arr().unwrap();
        assert_eq!(ops[0].get("op").unwrap().as_str(), Some("propagate"));
        assert_eq!(ops[0].get("coverage").unwrap().as_f64(), Some(0.6));
        let jc = doc.get("join_cache").unwrap();
        assert_eq!(jc.get("evictions").unwrap().as_f64(), Some(0.0));
        assert_eq!(jc.get("per_plan").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(doc.get("wal").unwrap().get("append"), Some(&json::Value::Null));
        assert_eq!(doc.get("series").unwrap().as_arr().unwrap().len(), 1);
    }
}
