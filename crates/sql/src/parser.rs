//! Recursive-descent parser for the supported dialect.
//!
//! ```text
//! statement   := create_table | create_view | query | insert | delete
//! create_table:= CREATE TABLE ident ( ident type (, ident type)* )
//! create_view := CREATE VIEW ident AS query
//! query       := select_block ((UNION ALL | EXCEPT [ALL] | INTERSECT ALL) select_block)*
//! select_block:= SELECT [DISTINCT] (select_item (, select_item)* | *)
//!                FROM table_ref (, table_ref)* [WHERE pred]
//!                [GROUP BY column (, column)*]
//!              | ( query )
//! select_item := agg_name ( * | column ) | column      -- agg names: COUNT/SUM/AVG/MIN/MAX
//! table_ref   := ident [[AS] ident]
//! pred        := or_pred
//! or_pred     := and_pred (OR and_pred)*
//! and_pred    := not_pred (AND not_pred)*
//! not_pred    := NOT not_pred | ( pred ) | comparison | TRUE | FALSE
//! comparison  := scalar op scalar
//! scalar      := literal | ident [. ident]
//! insert      := INSERT INTO ident VALUES row (, row)*
//! delete      := DELETE FROM ident [WHERE pred]
//! ```

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::lexer::lex;
use crate::token::{Keyword, Token, TokenKind};
use dvm_storage::Value;

/// Parse one statement (a trailing `;` is allowed).
pub fn parse_statement(input: &str) -> Result<Statement> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_if(&TokenKind::Semicolon);
    p.expect(&TokenKind::Eof)?;
    Ok(stmt)
}

/// Parse a standalone query.
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.eat_if(&TokenKind::Semicolon);
    p.expect(&TokenKind::Eof)?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(SqlError::Parse {
            offset: self.peek().offset,
            message: message.into(),
        })
    }

    fn eat_if(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        self.eat_if(&TokenKind::Keyword(kw))
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if &self.peek().kind == kind {
            self.advance();
            Ok(())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek().kind))
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<()> {
        self.expect(&TokenKind::Keyword(kw))
    }

    fn ident(&mut self) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        match &self.peek().kind {
            TokenKind::Keyword(Keyword::Create) => {
                self.advance();
                if self.eat_keyword(Keyword::Table) {
                    let name = self.ident()?;
                    self.expect(&TokenKind::LParen)?;
                    let mut columns = vec![self.column_def()?];
                    while self.eat_if(&TokenKind::Comma) {
                        columns.push(self.column_def()?);
                    }
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Statement::CreateTable { name, columns });
                }
                self.expect_keyword(Keyword::View)?;
                let name = self.ident()?;
                self.expect_keyword(Keyword::As)?;
                let query = self.query()?;
                Ok(Statement::CreateView { name, query })
            }
            TokenKind::Keyword(Keyword::Insert) => {
                self.advance();
                self.expect_keyword(Keyword::Into)?;
                let table = self.ident()?;
                self.expect_keyword(Keyword::Values)?;
                let mut rows = vec![self.row()?];
                while self.eat_if(&TokenKind::Comma) {
                    rows.push(self.row()?);
                }
                Ok(Statement::Insert { table, rows })
            }
            TokenKind::Keyword(Keyword::Delete) => {
                self.advance();
                self.expect_keyword(Keyword::From)?;
                let table = self.ident()?;
                let predicate = if self.eat_keyword(Keyword::Where) {
                    Some(self.predicate()?)
                } else {
                    None
                };
                Ok(Statement::Delete { table, predicate })
            }
            _ => Ok(Statement::Select(self.query()?)),
        }
    }

    fn column_def(&mut self) -> Result<(String, dvm_storage::ValueType)> {
        let name = self.ident()?;
        let ty = match self.peek().kind {
            TokenKind::Keyword(Keyword::Int) => dvm_storage::ValueType::Int,
            TokenKind::Keyword(Keyword::String_) => dvm_storage::ValueType::Str,
            TokenKind::Keyword(Keyword::Double) => dvm_storage::ValueType::Double,
            TokenKind::Keyword(Keyword::Boolean) => dvm_storage::ValueType::Bool,
            ref other => return self.err(format!("expected a column type, found {other}")),
        };
        self.advance();
        Ok((name, ty))
    }

    fn row(&mut self) -> Result<Vec<Value>> {
        self.expect(&TokenKind::LParen)?;
        let mut vals = vec![self.literal()?];
        while self.eat_if(&TokenKind::Comma) {
            vals.push(self.literal()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(vals)
    }

    fn literal(&mut self) -> Result<Value> {
        let t = self.advance();
        Ok(match t.kind {
            TokenKind::Int(v) => Value::Int(v),
            TokenKind::Float(v) => Value::Double(v),
            TokenKind::Str(s) => Value::str(s),
            TokenKind::Keyword(Keyword::True) => Value::Bool(true),
            TokenKind::Keyword(Keyword::False) => Value::Bool(false),
            TokenKind::Keyword(Keyword::Null) => Value::Null,
            other => {
                return Err(SqlError::Parse {
                    offset: t.offset,
                    message: format!("expected literal, found {other}"),
                })
            }
        })
    }

    fn query(&mut self) -> Result<Query> {
        let mut left = self.query_term()?;
        loop {
            if self.eat_keyword(Keyword::Union) {
                self.expect_keyword(Keyword::All)?;
                let right = self.query_term()?;
                left = Query::UnionAll(Box::new(left), Box::new(right));
            } else if self.eat_keyword(Keyword::Except) {
                let all = self.eat_keyword(Keyword::All);
                let right = self.query_term()?;
                left = if all {
                    Query::ExceptAll(Box::new(left), Box::new(right))
                } else {
                    Query::Except(Box::new(left), Box::new(right))
                };
            } else if self.eat_keyword(Keyword::Intersect) {
                self.expect_keyword(Keyword::All)?;
                let right = self.query_term()?;
                left = Query::IntersectAll(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn query_term(&mut self) -> Result<Query> {
        if self.eat_if(&TokenKind::LParen) {
            let q = self.query()?;
            self.expect(&TokenKind::RParen)?;
            Ok(q)
        } else {
            Ok(Query::Select(self.select_block()?))
        }
    }

    fn select_block(&mut self) -> Result<SelectBlock> {
        self.expect_keyword(Keyword::Select)?;
        let distinct = self.eat_keyword(Keyword::Distinct);
        let columns = if self.eat_if(&TokenKind::Star) {
            None
        } else {
            let mut cols = vec![self.select_item()?];
            while self.eat_if(&TokenKind::Comma) {
                cols.push(self.select_item()?);
            }
            Some(cols)
        };
        self.expect_keyword(Keyword::From)?;
        let mut from = vec![self.table_ref()?];
        while self.eat_if(&TokenKind::Comma) {
            from.push(self.table_ref()?);
        }
        let predicate = if self.eat_keyword(Keyword::Where) {
            Some(self.predicate()?)
        } else {
            None
        };
        let group_by = if self.eat_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            let mut keys = vec![self.column_ref()?];
            while self.eat_if(&TokenKind::Comma) {
                keys.push(self.column_ref()?);
            }
            keys
        } else {
            Vec::new()
        };
        Ok(SelectBlock {
            distinct,
            columns,
            from,
            predicate,
            group_by,
        })
    }

    /// Aggregate names are ordinary identifiers (a column may be called
    /// `count`); only an identifier *immediately followed by `(`* is read
    /// as an aggregate call.
    fn select_item(&mut self) -> Result<SelectItem> {
        if let TokenKind::Ident(name) = &self.peek().kind {
            if let Some(func) = agg_func_from_name(name) {
                let next = &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind;
                if *next == TokenKind::LParen {
                    self.advance(); // function name
                    self.advance(); // '('
                    let arg = if self.eat_if(&TokenKind::Star) {
                        if func != AggFuncAst::Count {
                            return self.err("only COUNT may take '*'");
                        }
                        None
                    } else {
                        Some(self.column_ref()?)
                    };
                    self.expect(&TokenKind::RParen)?;
                    return Ok(SelectItem::Agg { func, arg });
                }
            }
        }
        Ok(SelectItem::Col(self.column_ref()?))
    }

    fn column_ref(&mut self) -> Result<ColumnRef> {
        let first = self.ident()?;
        if self.eat_if(&TokenKind::Dot) {
            let name = self.ident()?;
            Ok(ColumnRef {
                qualifier: Some(first),
                name,
            })
        } else {
            Ok(ColumnRef {
                qualifier: None,
                name: first,
            })
        }
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident()?;
        let alias =
            if self.eat_keyword(Keyword::As) || matches!(self.peek().kind, TokenKind::Ident(_)) {
                Some(self.ident()?)
            } else {
                None
            };
        Ok(TableRef { table, alias })
    }

    fn predicate(&mut self) -> Result<PredExpr> {
        self.or_pred()
    }

    fn or_pred(&mut self) -> Result<PredExpr> {
        let mut left = self.and_pred()?;
        while self.eat_keyword(Keyword::Or) {
            let right = self.and_pred()?;
            left = PredExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_pred(&mut self) -> Result<PredExpr> {
        let mut left = self.not_pred()?;
        while self.eat_keyword(Keyword::And) {
            let right = self.not_pred()?;
            left = PredExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_pred(&mut self) -> Result<PredExpr> {
        if self.eat_keyword(Keyword::Not) {
            return Ok(PredExpr::Not(Box::new(self.not_pred()?)));
        }
        if self.eat_keyword(Keyword::True) {
            return Ok(PredExpr::Const(true));
        }
        if self.eat_keyword(Keyword::False) {
            return Ok(PredExpr::Const(false));
        }
        if self.eat_if(&TokenKind::LParen) {
            let p = self.predicate()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(p);
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<PredExpr> {
        let left = self.scalar()?;
        let op = match self.peek().kind {
            TokenKind::Eq => CmpOpAst::Eq,
            TokenKind::Ne => CmpOpAst::Ne,
            TokenKind::Lt => CmpOpAst::Lt,
            TokenKind::Le => CmpOpAst::Le,
            TokenKind::Gt => CmpOpAst::Gt,
            TokenKind::Ge => CmpOpAst::Ge,
            ref other => return self.err(format!("expected comparison operator, found {other}")),
        };
        self.advance();
        let right = self.scalar()?;
        Ok(PredExpr::Cmp(left, op, right))
    }

    fn scalar(&mut self) -> Result<Scalar> {
        match &self.peek().kind {
            TokenKind::Ident(_) => Ok(Scalar::Col(self.column_ref()?)),
            _ => Ok(Scalar::Lit(self.literal()?)),
        }
    }
}

/// Case-insensitive aggregate-function lookup.
fn agg_func_from_name(name: &str) -> Option<AggFuncAst> {
    Some(match name.to_ascii_uppercase().as_str() {
        "COUNT" => AggFuncAst::Count,
        "SUM" => AggFuncAst::Sum,
        "AVG" => AggFuncAst::Avg,
        "MIN" => AggFuncAst::Min,
        "MAX" => AggFuncAst::Max,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_view() {
        // Example 1.1.
        let stmt = parse_statement(
            "CREATE VIEW V AS \
             SELECT c.custId, c.name, c.score, s.itemNo, s.quantity \
             FROM customer c, sales s \
             WHERE c.custId = s.custId AND s.quantity != 0 AND c.score = 'High'",
        )
        .unwrap();
        let Statement::CreateView { name, query } = stmt else {
            panic!("expected CREATE VIEW");
        };
        assert_eq!(name, "V");
        let Query::Select(block) = query else {
            panic!("expected plain select");
        };
        assert!(!block.distinct);
        assert_eq!(block.columns.as_ref().unwrap().len(), 5);
        assert_eq!(block.from.len(), 2);
        assert_eq!(block.from[0].alias.as_deref(), Some("c"));
        assert!(block.predicate.is_some());
    }

    #[test]
    fn parse_select_star_and_distinct() {
        let q = parse_query("SELECT DISTINCT * FROM t").unwrap();
        let Query::Select(b) = q else { panic!() };
        assert!(b.distinct);
        assert!(b.columns.is_none());
    }

    #[test]
    fn parse_compound_queries() {
        let q = parse_query("SELECT a FROM r UNION ALL SELECT a FROM s EXCEPT ALL SELECT a FROM t")
            .unwrap();
        // left-associative: (r ∪ s) ∸ t
        assert!(matches!(q, Query::ExceptAll(..)));
        let q = parse_query("SELECT a FROM r EXCEPT SELECT a FROM s").unwrap();
        assert!(matches!(q, Query::Except(..)));
        let q = parse_query("SELECT a FROM r INTERSECT ALL SELECT a FROM s").unwrap();
        assert!(matches!(q, Query::IntersectAll(..)));
    }

    #[test]
    fn parse_parenthesized_compound() {
        let q =
            parse_query("SELECT a FROM r EXCEPT ALL (SELECT a FROM s UNION ALL SELECT a FROM t)")
                .unwrap();
        let Query::ExceptAll(_, right) = q else {
            panic!()
        };
        assert!(matches!(*right, Query::UnionAll(..)));
    }

    #[test]
    fn parse_insert() {
        let stmt =
            parse_statement("INSERT INTO sales VALUES (1, 2, 3, 4.5), (2, 3, 4, 5.5);").unwrap();
        let Statement::Insert { table, rows } = stmt else {
            panic!()
        };
        assert_eq!(table, "sales");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][3], Value::Double(4.5));
    }

    #[test]
    fn parse_delete() {
        let stmt = parse_statement("DELETE FROM sales WHERE quantity = 0").unwrap();
        let Statement::Delete { table, predicate } = stmt else {
            panic!()
        };
        assert_eq!(table, "sales");
        assert!(predicate.is_some());
        let stmt = parse_statement("DELETE FROM sales").unwrap();
        assert!(matches!(
            stmt,
            Statement::Delete {
                predicate: None,
                ..
            }
        ));
    }

    #[test]
    fn predicate_precedence_or_under_and() {
        let q = parse_query("SELECT a FROM t WHERE a = 1 OR a = 2 AND b = 3").unwrap();
        let Query::Select(b) = q else { panic!() };
        // OR is the top node: a=1 OR (a=2 AND b=3)
        assert!(matches!(b.predicate, Some(PredExpr::Or(..))));
    }

    #[test]
    fn not_and_parens() {
        let q = parse_query("SELECT a FROM t WHERE NOT (a = 1 OR TRUE)").unwrap();
        let Query::Select(b) = q else { panic!() };
        assert!(matches!(b.predicate, Some(PredExpr::Not(..))));
    }

    #[test]
    fn literal_on_left_of_comparison() {
        let q = parse_query("SELECT a FROM t WHERE 1 < a").unwrap();
        let Query::Select(b) = q else { panic!() };
        assert!(matches!(
            b.predicate,
            Some(PredExpr::Cmp(Scalar::Lit(_), CmpOpAst::Lt, Scalar::Col(_)))
        ));
    }

    #[test]
    fn errors_report_position() {
        let err = parse_statement("SELECT FROM t").unwrap_err();
        assert!(matches!(err, SqlError::Parse { offset: 7, .. }), "{err}");
        assert!(parse_statement("SELECT a FROM t WHERE").is_err());
        assert!(parse_statement("CREATE TABLE t").is_err());
        assert!(parse_statement("SELECT a FROM t extra garbage = 1").is_err());
    }

    #[test]
    fn parse_create_table() {
        let stmt = parse_statement(
            "CREATE TABLE sales (custId INT, name VARCHAR, price DOUBLE, active BOOLEAN)",
        )
        .unwrap();
        let Statement::CreateTable { name, columns } = stmt else {
            panic!()
        };
        assert_eq!(name, "sales");
        assert_eq!(columns.len(), 4);
        assert_eq!(
            columns[0],
            ("custId".to_string(), dvm_storage::ValueType::Int)
        );
        assert_eq!(columns[1].1, dvm_storage::ValueType::Str);
        assert_eq!(columns[2].1, dvm_storage::ValueType::Double);
        assert_eq!(columns[3].1, dvm_storage::ValueType::Bool);
        assert!(parse_statement("CREATE TABLE t (a BLOB)").is_err());
        assert!(parse_statement("CREATE TABLE t ()").is_err());
    }

    #[test]
    fn union_requires_all() {
        assert!(parse_query("SELECT a FROM r UNION SELECT a FROM s").is_err());
    }

    #[test]
    fn parse_group_by_and_aggregates() {
        let q = parse_query(
            "SELECT s.itemNo, count(*), Count(custId), SUM(quantity), avg(quantity), \
             MIN(quantity), max(s.quantity) \
             FROM sales s WHERE quantity > 0 GROUP BY s.itemNo",
        )
        .unwrap();
        let Query::Select(b) = q else { panic!() };
        assert_eq!(b.group_by.len(), 1);
        assert_eq!(b.group_by[0].name, "itemNo");
        let cols = b.columns.as_ref().unwrap();
        assert_eq!(cols.len(), 7);
        assert!(matches!(cols[0], SelectItem::Col(_)));
        assert_eq!(
            cols[1],
            SelectItem::Agg {
                func: AggFuncAst::Count,
                arg: None
            }
        );
        assert!(matches!(
            cols[2],
            SelectItem::Agg {
                func: AggFuncAst::Count,
                arg: Some(_)
            }
        ));
        assert!(matches!(cols[3], SelectItem::Agg { func: AggFuncAst::Sum, .. }));
        assert!(matches!(cols[4], SelectItem::Agg { func: AggFuncAst::Avg, .. }));
        assert!(matches!(cols[5], SelectItem::Agg { func: AggFuncAst::Min, .. }));
        let SelectItem::Agg {
            func: AggFuncAst::Max,
            arg: Some(ref c),
        } = cols[6]
        else {
            panic!("expected MAX(s.quantity)");
        };
        assert_eq!(c.qualifier.as_deref(), Some("s"));
    }

    #[test]
    fn group_by_multiple_keys() {
        let q = parse_query("SELECT a, b, count(*) FROM t GROUP BY a, b").unwrap();
        let Query::Select(b) = q else { panic!() };
        assert_eq!(b.group_by.len(), 2);
    }

    #[test]
    fn count_as_plain_column_name_still_parses() {
        // No '(' after the identifier: `count` is just a column here.
        let q = parse_query("SELECT count FROM t").unwrap();
        let Query::Select(b) = q else { panic!() };
        assert!(matches!(b.columns.as_ref().unwrap()[0], SelectItem::Col(_)));
    }

    #[test]
    fn star_only_valid_under_count() {
        assert!(parse_query("SELECT SUM(*) FROM t").is_err());
        assert!(parse_query("SELECT count(*) FROM t").is_ok());
    }

    #[test]
    fn group_by_requires_by_and_keys() {
        assert!(parse_query("SELECT a FROM t GROUP a").is_err());
        assert!(parse_query("SELECT a FROM t GROUP BY").is_err());
    }
}
