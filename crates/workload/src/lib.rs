//! # dvm-workload — workload generation and measurement harness
//!
//! * [`retail`] — the paper's Example-1.1 retail scenario (synthetic
//!   substitute for the proprietary point-of-sale data): Zipf-skewed sales
//!   streams, mixed insert/delete batches, churn batches, and customer
//!   score changes;
//! * [`cdc`] — deterministic CDC event streams for the `dvm-ingest`
//!   pipeline (N concurrent producers at sustained load);
//! * [`zipf`] — inverse-CDF Zipf sampling;
//! * [`runner`] — drive update streams, measure per-transaction overhead,
//!   refresh downtime, and what concurrent readers experience.

#![warn(missing_docs)]

pub mod cdc;
pub mod retail;
pub mod runner;
pub mod zipf;

pub use cdc::sales_event_streams;
pub use retail::{customer_schema, sales_schema, view_expr, RetailConfig, RetailGen, VIEW_SQL};
pub use runner::{measure_downtime, run_stream, with_concurrent_readers, ReaderStats, StreamStats};
pub use zipf::Zipf;
