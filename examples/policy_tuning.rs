//! Policy tuning: the same update stream under every maintenance scenario
//! and policy, with the costs that matter printed side by side —
//! per-transaction overhead, background propagate work, and view downtime.
//!
//! This is the decision a warehouse operator actually faces: where should
//! the maintenance work live? In the update transactions (IM, DT), in the
//! refresh window (BL), or in a background propagator (C + Policy 1/2)?
//!
//! ```sh
//! cargo run --release --example policy_tuning
//! ```

use dvm::workload::{view_expr, RetailConfig, RetailGen};
use dvm::{Database, Minimality, PolicyDriver, RefreshPolicy, Scenario};

struct Row {
    label: &'static str,
    overhead_us: f64,
    propagate_ms: f64,
    downtime_ms: f64,
    fresh: bool,
}

fn run(scenario: Scenario, policy: Option<RefreshPolicy>, label: &'static str) -> Row {
    let db = Database::new();
    let mut gen = RetailGen::new(RetailConfig {
        customers: 500,
        items: 200,
        initial_sales: 5_000,
        ..RetailConfig::default()
    });
    gen.install(&db).unwrap();
    db.create_view_with("V", view_expr(), scenario, Minimality::Weak)
        .unwrap();

    let mut driver = PolicyDriver::new(&db);
    if let Some(p) = policy {
        driver.add_view("V", p).unwrap();
    }
    for _ in 0..120 {
        db.execute(&gen.mixed_batch(10, 2)).unwrap();
        driver.tick().unwrap();
    }
    // end-of-run refresh for scenarios whose policy never fired
    if policy.is_none() && scenario != Scenario::Immediate {
        db.refresh("V").unwrap();
    }

    let metrics = db.view_metrics("V").unwrap();
    let lock = db.mv_table("V").unwrap().lock_metrics().snapshot();
    let fresh = db.query_view("V").unwrap() == db.recompute_view("V").unwrap();
    Row {
        label,
        overhead_us: metrics.mean_makesafe_nanos() / 1e3,
        propagate_ms: metrics.propagate_nanos as f64 / 1e6,
        downtime_ms: lock.write_hold_nanos as f64 / 1e6,
        fresh,
    }
}

fn main() {
    println!("120 mixed transactions (10 inserts + 2 deletes each) on the retail view\n");
    let rows = vec![
        run(Scenario::Immediate, None, "IM  (immediate)"),
        run(
            Scenario::DiffTable,
            None,
            "DT  (fold per tx, refresh at end)",
        ),
        run(
            Scenario::BaseLog,
            Some(RefreshPolicy::PeriodicRefresh { every: 24 }),
            "BL  (log per tx, refresh every 24)",
        ),
        run(
            Scenario::Combined,
            Some(RefreshPolicy::Policy1 { k: 6, m: 24 }),
            "C/P1 (propagate 6, refresh 24)",
        ),
        run(
            Scenario::Combined,
            Some(RefreshPolicy::Policy2 { k: 6, m: 24 }),
            "C/P2 (propagate 6, partial 24)",
        ),
    ];

    println!(
        "{:<36} {:>12} {:>14} {:>13} {:>7}",
        "configuration", "overhead/tx", "propagate tot", "downtime tot", "fresh?"
    );
    for r in &rows {
        println!(
            "{:<36} {:>10.1}µs {:>12.2}ms {:>11.3}ms {:>7}",
            r.label,
            r.overhead_us,
            r.propagate_ms,
            r.downtime_ms,
            if r.fresh { "yes" } else { "≤k old" }
        );
    }

    println!(
        "\nreading the table: IM and DT pay incremental computation inside every\n\
         transaction; BL pays it inside the refresh window (downtime); C moves it\n\
         into background propagation — low overhead AND low downtime, which is\n\
         the paper's Contribution 1."
    );
}
