//! A persistent worker pool with dynamic (work-stealing) job claiming.
//!
//! [`sync::with_workers`](crate::sync::with_workers) spawns and joins fresh
//! OS threads on every call, which showed up as a measured regression on the
//! maintenance fan-out path: propagating six views in parallel was *slower*
//! than the serial loop because each `propagate_many` paid thread spawn +
//! join latency, and the strided view split (worker `i` takes views `i`,
//! `i+n`, …) load-imbalanced whenever view sizes were skewed.
//!
//! [`WorkerPool`] fixes both:
//!
//! * **Persistent threads.** Workers are spawned lazily on first parallel
//!   use and then parked on a condvar; a batch submission is two mutex
//!   acquisitions, not `n` thread spawns.
//! * **Dynamic claiming.** A batch of `jobs` closures is consumed by
//!   atomically claiming the next unclaimed index (`fetch_add`), so a
//!   worker that finishes a small job immediately steals the next one.
//!   There is no static stride assignment to imbalance.
//! * **Submitter participation.** The calling thread claims jobs alongside
//!   the workers, so `run` makes progress even with zero pool threads
//!   (single-core hosts, nested submissions from inside a worker) and can
//!   never deadlock waiting for a slot.
//!
//! Batches may be submitted from inside a running job (nested parallelism:
//! a per-view job fanning out per-shard bag work); the inner submitter
//! participates in its own batch, so nesting needs no reserved threads.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Lifetime utilization counters for one pool worker. Counters are plain
/// relaxed atomics bumped unconditionally — one add per claimed job and
/// two per park/wake cycle, nothing on the job's inner loop — so they are
/// always on (no mode flag) and cost nothing measurable.
#[derive(Debug, Default)]
struct WorkerSlot {
    /// Jobs this worker claimed off batches (work-stealing wins).
    jobs_claimed: AtomicU64,
    /// Times the worker parked on the condvar (no joinable batch).
    parks: AtomicU64,
    /// Times the worker woke from a park (spurious wakes included).
    wakes: AtomicU64,
}

/// Snapshot of one worker's lifetime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs claimed by this worker.
    pub jobs_claimed: u64,
    /// Condvar parks.
    pub parks: u64,
    /// Condvar wakes.
    pub wakes: u64,
}

/// Snapshot of the pool's utilization counters: per-worker claims and
/// park/wake churn, plus jobs the submitting threads ran themselves
/// (serial fallbacks and submitter participation in parallel batches).
/// `total_jobs()` therefore equals the number of jobs ever submitted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// One entry per spawned worker, in spawn order.
    pub workers: Vec<WorkerStats>,
    /// Jobs executed by submitting threads (not pool workers).
    pub submitter_jobs: u64,
}

impl PoolStats {
    /// Jobs executed across workers and submitters — equals the total
    /// jobs ever passed to [`WorkerPool::run`].
    pub fn total_jobs(&self) -> u64 {
        self.submitter_jobs + self.workers.iter().map(|w| w.jobs_claimed).sum::<u64>()
    }
}

/// The type-erased body of a batch: runs job `i` and records its result.
///
/// SAFETY invariant: the reference points at a closure on the submitting
/// thread's stack. It is only dereferenced by a claimant that won a
/// `next < total` claim, and the submitter blocks in [`WorkerPool::run`]
/// until every claimed job has reported completion — after which
/// `next >= total` forever, so the pointer is never read again.
type BatchBody = &'static (dyn Fn(usize) + Sync);

struct BatchDone {
    completed: usize,
    panic: Option<Box<dyn Any + Send>>,
}

struct Batch {
    /// Next unclaimed job index; claimed with `fetch_add` (work stealing).
    next: AtomicUsize,
    total: usize,
    /// Pool workers currently helping (excludes the submitter).
    helpers: AtomicUsize,
    /// Cap on concurrent helpers, so a run respects the caller's
    /// configured thread budget even when the pool has more threads.
    max_helpers: usize,
    body: BatchBody,
    done: Mutex<BatchDone>,
    done_cv: Condvar,
}

impl Batch {
    /// Claim and run jobs until the batch is exhausted, counting each
    /// claim into `claimed` (the claimant's utilization counter).
    fn work(&self, claimed: &AtomicU64) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            claimed.fetch_add(1, Ordering::Relaxed);
            let outcome = catch_unwind(AssertUnwindSafe(|| (self.body)(i)));
            let mut done = self.done.lock().unwrap();
            if let Err(payload) = outcome {
                done.panic.get_or_insert(payload);
            }
            done.completed += 1;
            if done.completed == self.total {
                self.done_cv.notify_all();
            }
        }
    }

    fn has_unclaimed(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.total
    }

    /// Try to register as a helper; fails when the helper cap is reached.
    fn try_join(&self) -> bool {
        self.helpers
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |h| {
                (h < self.max_helpers).then_some(h + 1)
            })
            .is_ok()
    }

    fn leave(&self) {
        self.helpers.fetch_sub(1, Ordering::Relaxed);
    }
}

struct QueueState {
    queue: Vec<Arc<Batch>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl Shared {
    fn enqueue(&self, batch: Arc<Batch>) {
        let mut st = self.state.lock().unwrap();
        st.queue.push(batch);
        drop(st);
        self.cv.notify_all();
    }

    fn remove(&self, batch: &Arc<Batch>) {
        let mut st = self.state.lock().unwrap();
        st.queue.retain(|b| !Arc::ptr_eq(b, batch));
    }
}

fn worker_loop(shared: Arc<Shared>, slot: Arc<WorkerSlot>) {
    loop {
        let batch = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                let joinable = st
                    .queue
                    .iter()
                    .find(|b| b.has_unclaimed() && b.try_join())
                    .cloned();
                match joinable {
                    Some(b) => break b,
                    None => {
                        slot.parks.fetch_add(1, Ordering::Relaxed);
                        st = shared.cv.wait(st).unwrap();
                        slot.wakes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        };
        batch.work(&slot.jobs_claimed);
        batch.leave();
        if !batch.has_unclaimed() {
            shared.remove(&batch);
        }
        // A helper slot freed up; another parked worker may now fit.
        shared.cv.notify_all();
    }
}

/// A pool of persistent worker threads executing batches of indexed jobs.
///
/// Threads are spawned lazily (a pool that is never used in parallel costs
/// nothing) and grow monotonically up to the largest requested width; idle
/// workers park on a condvar. Dropping the pool shuts the workers down and
/// joins them.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// One slot per spawned worker, in spawn order; slots survive pool
    /// growth (`ensure_threads` only appends).
    slots: Mutex<Vec<Arc<WorkerSlot>>>,
    /// Jobs run by submitting threads (serial paths + participation).
    submitter_jobs: AtomicU64,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// Create an empty pool. No threads are spawned until a parallel
    /// [`run`](Self::run) needs them.
    pub fn new() -> Self {
        WorkerPool {
            shared: Arc::new(Shared {
                state: Mutex::new(QueueState {
                    queue: Vec::new(),
                    shutdown: false,
                }),
                cv: Condvar::new(),
            }),
            handles: Mutex::new(Vec::new()),
            slots: Mutex::new(Vec::new()),
            submitter_jobs: AtomicU64::new(0),
        }
    }

    /// Number of persistent worker threads currently spawned.
    pub fn threads(&self) -> usize {
        self.handles.lock().unwrap().len()
    }

    /// Grow the pool to at least `n` persistent worker threads.
    pub fn ensure_threads(&self, n: usize) {
        let mut handles = self.handles.lock().unwrap();
        while handles.len() < n {
            let shared = Arc::clone(&self.shared);
            let name = format!("dvm-pool-{}", handles.len());
            let slot = Arc::new(WorkerSlot::default());
            self.slots.lock().unwrap().push(Arc::clone(&slot));
            handles.push(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || worker_loop(shared, slot))
                    .expect("spawn pool worker"),
            );
        }
    }

    /// Snapshot the utilization counters: per-worker jobs claimed and
    /// park/wake counts, plus submitter-executed jobs.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self
                .slots
                .lock()
                .unwrap()
                .iter()
                .map(|s| WorkerStats {
                    jobs_claimed: s.jobs_claimed.load(Ordering::Relaxed),
                    parks: s.parks.load(Ordering::Relaxed),
                    wakes: s.wakes.load(Ordering::Relaxed),
                })
                .collect(),
            submitter_jobs: self.submitter_jobs.load(Ordering::Relaxed),
        }
    }

    /// Run `jobs` indexed jobs with at most `width` threads working at once
    /// (the calling thread counts toward `width` and always participates).
    /// Returns the job results in index order. A panic in any job is
    /// propagated to the caller after the whole batch has drained.
    pub fn run<R, F>(&self, jobs: usize, width: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if jobs == 0 {
            return Vec::new();
        }
        if width <= 1 || jobs == 1 {
            self.submitter_jobs.fetch_add(jobs as u64, Ordering::Relaxed);
            return (0..jobs).map(f).collect();
        }

        let helpers = width.saturating_sub(1).min(jobs.saturating_sub(1));
        self.ensure_threads(helpers);

        let slots: Vec<Mutex<Option<R>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        let body = |i: usize| {
            let r = f(i);
            *slots[i].lock().unwrap() = Some(r);
        };
        let body_ref: &(dyn Fn(usize) + Sync) = &body;
        // SAFETY: see `BatchBody`. The submitter blocks below until
        // `completed == total`; no claim can observe `next < total`
        // afterwards, so the erased borrow never outlives this frame's use.
        let body_static: BatchBody =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), BatchBody>(body_ref) };
        let batch = Arc::new(Batch {
            next: AtomicUsize::new(0),
            total: jobs,
            helpers: AtomicUsize::new(0),
            max_helpers: helpers,
            body: body_static,
            done: Mutex::new(BatchDone {
                completed: 0,
                panic: None,
            }),
            done_cv: Condvar::new(),
        });

        self.shared.enqueue(Arc::clone(&batch));
        batch.work(&self.submitter_jobs);

        let panic = {
            let mut done = batch.done.lock().unwrap();
            while done.completed < batch.total {
                done = batch.done_cv.wait(done).unwrap();
            }
            done.panic.take()
        };
        self.shared.remove(&batch);
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("job completed"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.cv_notify();
        for h in self.handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

impl WorkerPool {
    fn cv_notify(&self) {
        self.shared.cv.notify_all();
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_all_jobs_in_order() {
        let pool = WorkerPool::new();
        let out = pool.run(17, 4, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_serial_paths() {
        let pool = WorkerPool::new();
        assert!(pool.run(0, 4, |i| i).is_empty());
        assert_eq!(pool.run(3, 1, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(pool.threads(), 0, "serial runs must not spawn threads");
    }

    #[test]
    fn threads_grow_monotonically_and_are_reused() {
        let pool = WorkerPool::new();
        pool.run(8, 3, |i| i);
        assert_eq!(pool.threads(), 2);
        pool.run(8, 2, |i| i);
        assert_eq!(pool.threads(), 2, "pool never shrinks below peak");
        pool.run(8, 5, |i| i);
        assert_eq!(pool.threads(), 4);
    }

    #[test]
    fn dynamic_claiming_covers_every_index_once() {
        let pool = WorkerPool::new();
        let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        pool.run(64, 4, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "job {i} claimed once");
        }
    }

    #[test]
    fn uneven_jobs_finish() {
        // Skewed job sizes: dynamic claiming must drain the batch even when
        // one job dominates (the strided-split failure mode).
        let pool = WorkerPool::new();
        let out = pool.run(9, 3, |i| {
            let spins = if i == 0 { 200_000 } else { 10 };
            let mut acc = 0u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(31).wrapping_add(k);
            }
            (i as u64) ^ (acc & 1)
        });
        assert_eq!(out.len(), 9);
    }

    #[test]
    fn nested_submission_does_not_deadlock() {
        let pool = WorkerPool::new();
        let total: u64 = pool
            .run(4, 4, |i| pool.run(4, 4, |j| (i * 4 + j) as u64).iter().sum::<u64>())
            .iter()
            .sum();
        assert_eq!(total, (0..16).sum::<u64>());
    }

    #[test]
    fn panic_propagates_after_drain() {
        let pool = WorkerPool::new();
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, 2, |i| {
                if i == 3 {
                    panic!("job 3 exploded");
                }
                i
            })
        }));
        assert!(r.is_err());
        // Pool is still usable after a panicked batch.
        assert_eq!(pool.run(4, 2, |i| i).len(), 4);
    }

    #[test]
    fn results_from_many_widths_match_serial() {
        let pool = WorkerPool::new();
        for width in 1..=6 {
            let out = pool.run(23, width, |i| i as u64 * 7 + 1);
            assert_eq!(out, (0..23).map(|i| i as u64 * 7 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn jobs_claimed_sums_to_jobs_submitted_across_widths() {
        let pool = WorkerPool::new();
        let mut submitted = 0u64;
        for width in [1usize, 2, 4] {
            for jobs in [1usize, 7, 32] {
                let out = pool.run(jobs, width, |i| i);
                assert_eq!(out.len(), jobs);
                submitted += jobs as u64;
                let stats = pool.stats();
                assert_eq!(
                    stats.total_jobs(),
                    submitted,
                    "width {width}: claims across workers + submitter must \
                     account for every job ever submitted"
                );
            }
        }
        // Serial runs (width 1) never touch the workers, so the whole
        // width-1 block is attributable to the submitter.
        assert!(pool.stats().submitter_jobs >= 1 + 7 + 32);
    }

    #[test]
    fn counters_survive_pool_growth() {
        let pool = WorkerPool::new();
        pool.run(16, 2, |i| i); // spawns 1 helper
        let before = pool.stats();
        assert_eq!(before.workers.len(), 1);
        assert_eq!(before.total_jobs(), 16);

        pool.ensure_threads(4);
        let grown = pool.stats();
        assert_eq!(grown.workers.len(), 4, "growth appends slots");
        assert_eq!(
            grown.workers[0].jobs_claimed, before.workers[0].jobs_claimed,
            "existing worker's counters survive ensure_threads"
        );
        assert_eq!(grown.total_jobs(), 16);

        pool.run(16, 4, |i| i);
        let after = pool.stats();
        assert_eq!(after.total_jobs(), 32);
        assert!(
            after.workers[0].jobs_claimed >= before.workers[0].jobs_claimed,
            "claims are monotone"
        );
    }

    #[test]
    fn parked_workers_record_parks_and_wakes() {
        let pool = WorkerPool::new();
        pool.ensure_threads(2);
        // Give the freshly spawned workers a moment to park on the condvar
        // (no batch is queued, so both must end up waiting).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let stats = pool.stats();
            let parks: u64 = stats.workers.iter().map(|w| w.parks).sum();
            if parks >= 2 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "workers never parked");
            std::thread::yield_now();
        }
        // A batch wakes them; wakes catch up to parks once it drains.
        pool.run(8, 3, |i| i);
        let stats = pool.stats();
        let parks: u64 = stats.workers.iter().map(|w| w.parks).sum();
        let wakes: u64 = stats.workers.iter().map(|w| w.wakes).sum();
        assert!(parks >= 2);
        assert!(wakes <= parks, "every wake follows a park");
    }
}
