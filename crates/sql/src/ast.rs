//! SQL abstract syntax.

use dvm_storage::{Value, ValueType};

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE, …)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column names and types.
        columns: Vec<(String, ValueType)>,
    },
    /// `CREATE VIEW name AS query`
    CreateView {
        /// View name.
        name: String,
        /// Defining query.
        query: Query,
    },
    /// A standalone query.
    Select(Query),
    /// `INSERT INTO table VALUES (…), (…)`
    Insert {
        /// Target table.
        table: String,
        /// Rows of literal values.
        rows: Vec<Vec<Value>>,
    },
    /// `DELETE FROM table [WHERE predicate]`
    Delete {
        /// Target table.
        table: String,
        /// Optional filter (all rows when absent).
        predicate: Option<PredExpr>,
    },
}

/// A query: one select block optionally combined with further queries.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// A plain `SELECT … FROM … [WHERE …]`.
    Select(SelectBlock),
    /// `q1 UNION ALL q2` → additive union `⊎`.
    UnionAll(Box<Query>, Box<Query>),
    /// `q1 EXCEPT ALL q2` → monus `∸`.
    ExceptAll(Box<Query>, Box<Query>),
    /// `q1 EXCEPT q2` → remove all occurrences (Section 2.1's `EXCEPT`).
    Except(Box<Query>, Box<Query>),
    /// `q1 INTERSECT ALL q2` → minimal intersection `min`.
    IntersectAll(Box<Query>, Box<Query>),
}

/// One `SELECT` block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectBlock {
    /// `SELECT DISTINCT` → duplicate elimination `ε`.
    pub distinct: bool,
    /// Projection list; `None` means `*`.
    pub columns: Option<Vec<SelectItem>>,
    /// `FROM` items, combined by product.
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub predicate: Option<PredExpr>,
    /// `GROUP BY` key columns (empty when absent).
    pub group_by: Vec<ColumnRef>,
}

/// One item of a select list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// A plain column reference.
    Col(ColumnRef),
    /// An aggregate call: `COUNT(*)` (arg `None`, Count only) or `func(col)`.
    Agg {
        /// The aggregate function.
        func: AggFuncAst,
        /// Argument column; `None` means `COUNT(*)`.
        arg: Option<ColumnRef>,
    },
}

/// Aggregate functions at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the variants are the SQL function names themselves
pub enum AggFuncAst {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// A `[qualifier.]name` column reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Table alias qualifier.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
}

/// A `FROM` item: `table [AS] alias?`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Optional alias.
    pub alias: Option<String>,
}

/// A predicate expression.
#[derive(Debug, Clone, PartialEq)]
pub enum PredExpr {
    /// Literal TRUE/FALSE.
    Const(bool),
    /// Comparison.
    Cmp(Scalar, CmpOpAst, Scalar),
    /// Conjunction.
    And(Box<PredExpr>, Box<PredExpr>),
    /// Disjunction.
    Or(Box<PredExpr>, Box<PredExpr>),
    /// Negation.
    Not(Box<PredExpr>),
}

/// Comparison operators (AST level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOpAst {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A scalar operand: column or literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// Column reference.
    Col(ColumnRef),
    /// Literal value.
    Lit(Value),
}
