//! The weakly minimal differential algorithm of **Figure 2**.
//!
//! Given a factored substitution `η` (every table mapped to
//! `(R ∸ D) ⊎ A`), the mutually recursive `Del`/`Add` generators
//! produce queries satisfying **Theorem 2**:
//!
//! ```text
//! (a) η(Q) ≡ (Q ∸ Del(η,Q)) ⊎ Add(η,Q)
//! (b) Del(η,Q) ⊑ Q              (weak minimality)
//! ```
//!
//! provided `η` is weakly minimal (`D_i ⊑ R_i` in the evaluation state).
//! All sub-expressions are evaluated in the *same* state as the equation —
//! the rules are purely syntactic, which is what lets Section 4 reuse them
//! in both the pre-update direction (`η = T̂`) and, via the cancellation
//! lemma, the post-update direction (`η = L̂`).
//!
//! Rules (Figure 2), with `D(E) = Del(η,E)`, `A(E) = Add(η,E)`:
//!
//! ```text
//! D(R)      = D_R                          A(R)      = A_R
//! D(φ|{x})  = φ                            A(φ|{x})  = φ
//! D(σp E)   = σp(D E)                      A(σp E)   = σp(A E)
//! D(Π E)    = Π(D E)                       A(Π E)    = Π(A E)
//! D(ε E)    = ε(D E) ∸ (E ∸ D E)           A(ε E)    = ε(A E) ∸ (E ∸ D E)
//! D(E ⊎ F)  = D E ⊎ D F                    A(E ⊎ F)  = A E ⊎ A F
//! D(E ∸ F)  = (D E ⊎ A F) min (E ∸ F)
//! A(E ∸ F)  = ((A E ⊎ D F) ∸ (F ∸ E)) ∸ ((D E ⊎ A F) ∸ (E ∸ F))
//! D(E × F)  = (D E × D F) ⊎ (D E × (F ∸ D F)) ⊎ ((E ∸ D E) × D F)
//! A(E × F)  = (A E × A F) ⊎ (A E × (F ∸ D F)) ⊎ ((E ∸ D E) × A F)
//! ```
//!
//! Derived operators (`min`, `max`, `EXCEPT`) are expanded into the core
//! grammar first; `Alias` commutes with both functions.

use crate::error::Result;
use dvm_algebra::infer::{infer_schema, SchemaProvider};
use dvm_algebra::simplify::simplify;
use dvm_algebra::subst::FactoredSubstitution;
use dvm_algebra::Expr;

/// A delete/insert pair of incremental queries.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaPair {
    /// The deletions (`Del(η,Q)`).
    pub del: Expr,
    /// The insertions (`Add(η,Q)`).
    pub add: Expr,
}

impl DeltaPair {
    /// Total AST size of both queries (experiment metric).
    pub fn size(&self) -> usize {
        self.del.size() + self.add.size()
    }
}

/// Compute `Del(η,Q)` and `Add(η,Q)`, expanding derived operators first and
/// φ-simplifying the results.
///
/// Simplification is semantics-preserving, so Theorem 2 holds for the
/// returned pair; it is also what makes the pair *incremental*: terms that
/// only mention unchanged tables collapse to `φ`.
pub fn differentiate(
    q: &Expr,
    eta: &FactoredSubstitution,
    provider: &dyn SchemaProvider,
) -> Result<DeltaPair> {
    let raw = differentiate_raw(q, eta, provider)?;
    Ok(DeltaPair {
        del: simplify(&raw.del, provider)?,
        add: simplify(&raw.add, provider)?,
    })
}

/// Compute `Del(η,Q)` / `Add(η,Q)` exactly as written in Figure 2, with no
/// simplification (useful for inspecting the rules themselves).
pub fn differentiate_raw(
    q: &Expr,
    eta: &FactoredSubstitution,
    provider: &dyn SchemaProvider,
) -> Result<DeltaPair> {
    let schema_of = |e: &Expr| infer_schema(e, provider);
    let expanded = q.expand_derived(&schema_of)?;
    del_add(&expanded, eta, provider)
}

/// The mutually recursive core. Returns both queries at once: the binary
/// rules need `Del` and `Add` of both children, so computing them together
/// avoids exponential recomputation.
fn del_add(
    q: &Expr,
    eta: &FactoredSubstitution,
    provider: &dyn SchemaProvider,
) -> Result<DeltaPair> {
    Ok(match q {
        Expr::Table(name) => match eta.get(name) {
            Some((d, a)) => DeltaPair {
                del: d.clone(),
                add: a.clone(),
            },
            None => {
                let schema = provider.schema_of(name)?;
                DeltaPair {
                    del: Expr::empty(schema.clone()),
                    add: Expr::empty(schema),
                }
            }
        },
        Expr::Literal { schema, .. } => DeltaPair {
            del: Expr::empty(schema.clone()),
            add: Expr::empty(schema.clone()),
        },
        Expr::Alias { alias, input } => {
            let p = del_add(input, eta, provider)?;
            DeltaPair {
                del: p.del.alias(alias.clone()),
                add: p.add.alias(alias.clone()),
            }
        }
        Expr::Select { pred, input } => {
            let p = del_add(input, eta, provider)?;
            DeltaPair {
                del: p.del.select(pred.clone()),
                add: p.add.select(pred.clone()),
            }
        }
        Expr::Project { cols, input } => {
            let p = del_add(input, eta, provider)?;
            DeltaPair {
                del: p.del.project_refs(cols.clone()),
                add: p.add.project_refs(cols.clone()),
            }
        }
        Expr::DupElim(e) => {
            let p = del_add(e, eta, provider)?;
            // E ∸ Del(η,E): what survives the deletions.
            let survivors = (**e).clone().monus(p.del.clone());
            DeltaPair {
                del: p.del.dedup().monus(survivors.clone()),
                add: p.add.dedup().monus(survivors),
            }
        }
        Expr::Union(a, b) => {
            let pa = del_add(a, eta, provider)?;
            let pb = del_add(b, eta, provider)?;
            DeltaPair {
                del: pa.del.union(pb.del),
                add: pa.add.union(pb.add),
            }
        }
        Expr::Monus(a, b) => {
            let pa = del_add(a, eta, provider)?;
            let pb = del_add(b, eta, provider)?;
            let e = (**a).clone();
            let f = (**b).clone();
            // Del(E ∸ F) = (Del E ⊎ Add F) min (E ∸ F)
            let del = pa
                .del
                .clone()
                .union(pb.add.clone())
                .min_intersect(e.clone().monus(f.clone()));
            // Add(E ∸ F) = ((Add E ⊎ Del F) ∸ (F ∸ E)) ∸ ((Del E ⊎ Add F) ∸ (E ∸ F))
            let add = pa
                .add
                .union(pb.del)
                .monus(f.clone().monus(e.clone()))
                .monus(pa.del.union(pb.add).monus(e.monus(f)));
            DeltaPair { del, add }
        }
        Expr::Product(a, b) => {
            let pa = del_add(a, eta, provider)?;
            let pb = del_add(b, eta, provider)?;
            let e = (**a).clone();
            let f = (**b).clone();
            let e_surv = e.monus(pa.del.clone()); // E ∸ Del E
            let f_surv = f.monus(pb.del.clone()); // F ∸ Del F
            let del = pa
                .del
                .clone()
                .product(pb.del.clone())
                .union(pa.del.clone().product(f_surv.clone()))
                .union(e_surv.clone().product(pb.del));
            let add = pa
                .add
                .clone()
                .product(pb.add.clone())
                .union(pa.add.product(f_surv))
                .union(e_surv.product(pb.add));
            DeltaPair { del, add }
        }
        // Grouping aggregates are not term-wise differentiable: a single
        // input delta rewrites whole output rows (old group row out, new
        // group row in). The exact rule is the monus form
        //
        //   Del(G(E)) = G(E) ∸ G(η(E))      Add(G(E)) = G(η(E)) ∸ G(E)
        //
        // which satisfies Theorem 2 for *any* P = G(η(E)):
        // (Q ∸ (Q ∸ P)) ⊎ (P ∸ Q) = P pointwise, and (Q ∸ P) ⊑ Q.
        // When no table under the aggregate changed, both deltas are φ —
        // the guard keeps identity substitutions fully incremental (the
        // engine's O(Δ) path for changed aggregates is the dedicated
        // count-annotated maintainer, not these change queries).
        Expr::GroupAggregate { .. } => {
            let tables = q.tables();
            if !eta.tables().any(|t| tables.contains(t)) {
                let schema = infer_schema(q, provider)?;
                DeltaPair {
                    del: Expr::empty(schema.clone()),
                    add: Expr::empty(schema),
                }
            } else {
                let post = eta.apply(q);
                DeltaPair {
                    del: q.clone().monus(post.clone()),
                    add: post.monus(q.clone()),
                }
            }
        }
        // Derived operators are expanded before differentiation; reaching
        // one here is a caller error.
        Expr::MinIntersect(..) | Expr::MaxUnion(..) | Expr::Except(..) => {
            unreachable!("derived operators must be expanded before del_add")
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_algebra::eval::eval;
    use dvm_algebra::infer::compile;
    use dvm_algebra::testgen::{Rng, Universe};
    use dvm_storage::{tuple, Bag, Schema, ValueType};
    use std::collections::HashMap;

    fn schema_ab() -> Schema {
        Schema::from_pairs(&[("a", ValueType::Int), ("b", ValueType::Int)])
    }

    /// Check Theorem 2 on a concrete (state, query, substitution) instance.
    fn check_theorem2(
        q: &Expr,
        eta: &FactoredSubstitution,
        provider: &HashMap<String, Schema>,
        state: &HashMap<String, Bag>,
    ) {
        let pair = differentiate(q, eta, provider).unwrap();
        let q_val = eval(&compile(q, provider).unwrap().plan, state).unwrap();
        let del_val = eval(&compile(&pair.del, provider).unwrap().plan, state).unwrap();
        let add_val = eval(&compile(&pair.add, provider).unwrap().plan, state).unwrap();
        let eta_q = eta.apply(q);
        let eta_q_val = eval(&compile(&eta_q, provider).unwrap().plan, state).unwrap();
        assert_eq!(
            eta_q_val,
            q_val.monus(&del_val).union(&add_val),
            "Theorem 2(a) failed for {q}"
        );
        assert!(
            del_val.is_subbag_of(&q_val),
            "Theorem 2(b) Del ⊑ Q failed for {q}"
        );
    }

    #[test]
    fn unmapped_table_has_empty_deltas() {
        let u = Universe::small(2);
        let provider = u.provider();
        let eta = FactoredSubstitution::new();
        let pair = differentiate(&Expr::table("t0"), &eta, &provider).unwrap();
        assert!(pair.del.is_empty_literal());
        assert!(pair.add.is_empty_literal());
    }

    #[test]
    fn literal_has_empty_deltas() {
        let u = Universe::small(1);
        let provider = u.provider();
        let mut eta = FactoredSubstitution::new();
        eta.set(
            "t0",
            Expr::empty(schema_ab()),
            Expr::literal(Bag::singleton(tuple![1, 1]), schema_ab()),
        );
        let q = Expr::literal(Bag::singleton(tuple![2, 2]), schema_ab());
        let pair = differentiate(&q, &eta, &provider).unwrap();
        assert!(pair.del.is_empty_literal());
        assert!(pair.add.is_empty_literal());
    }

    #[test]
    fn table_rule_returns_d_and_a() {
        let u = Universe::small(1);
        let provider = u.provider();
        let d = Expr::literal(Bag::singleton(tuple![0, 0]), schema_ab());
        let a = Expr::literal(Bag::singleton(tuple![1, 1]), schema_ab());
        let mut eta = FactoredSubstitution::new();
        eta.set("t0", d.clone(), a.clone());
        let pair = differentiate(&Expr::table("t0"), &eta, &provider).unwrap();
        assert_eq!(pair.del, d);
        assert_eq!(pair.add, a);
    }

    #[test]
    fn example_1_2_join_multiplicities() {
        // Paper Example 1.2: U(A) = Π_{R.A}(σ_{R.B=S.B}(R × S)).
        // R = {[a1,b1]}, S = {[b2,c1]}, insert [a1,b2] into R and
        // [b2,c2] into S. Correct Δ (pre-update) is {[a1],[a1]}:
        // ΔR ⋈ S contributes one and ΔR ⋈ ΔS the other.
        let mut provider: HashMap<String, Schema> = HashMap::new();
        provider.insert(
            "R".into(),
            Schema::from_pairs(&[("A", ValueType::Str), ("B", ValueType::Str)]),
        );
        provider.insert(
            "S".into(),
            Schema::from_pairs(&[("B", ValueType::Str), ("C", ValueType::Str)]),
        );
        let q = Expr::table("R")
            .alias("r")
            .product(Expr::table("S").alias("s"))
            .select(dvm_algebra::Predicate::eq(
                dvm_algebra::col("r.B"),
                dvm_algebra::col("s.B"),
            ))
            .project(["A"]);

        let r_schema = provider["R"].clone();
        let s_schema = provider["S"].clone();
        let mut eta = FactoredSubstitution::new();
        eta.set(
            "R",
            Expr::empty(r_schema.clone()),
            Expr::literal(Bag::singleton(tuple!["a1", "b2"]), r_schema),
        );
        eta.set(
            "S",
            Expr::empty(s_schema.clone()),
            Expr::literal(Bag::singleton(tuple!["b2", "c2"]), s_schema),
        );

        let mut state: HashMap<String, Bag> = HashMap::new();
        state.insert("R".into(), Bag::singleton(tuple!["a1", "b1"]));
        state.insert("S".into(), Bag::singleton(tuple!["b2", "c1"]));

        let pair = differentiate(&q, &eta, &provider).unwrap();
        let add_val = eval(&compile(&pair.add, &provider).unwrap().plan, &state).unwrap();
        // The paper's correct pre-update answer: {[a1], [a1]}.
        assert_eq!(add_val.multiplicity(&tuple!["a1"]), 2);
        assert_eq!(add_val.len(), 2);
        check_theorem2(&q, &eta, &provider, &state);
    }

    #[test]
    fn theorem2_on_paper_monus_example() {
        // Example 1.3: U = R ∸ S (the paper's U = R - S with no duplicates),
        // T deletes [b] from R and inserts it into S.
        let mut provider: HashMap<String, Schema> = HashMap::new();
        let s1 = Schema::from_pairs(&[("x", ValueType::Str)]);
        provider.insert("R".into(), s1.clone());
        provider.insert("S".into(), s1.clone());
        let q = Expr::table("R").monus(Expr::table("S"));
        let mut eta = FactoredSubstitution::new();
        eta.set(
            "R",
            Expr::literal(Bag::singleton(tuple!["b"]), s1.clone()),
            Expr::empty(s1.clone()),
        );
        eta.set(
            "S",
            Expr::empty(s1.clone()),
            Expr::literal(Bag::singleton(tuple!["b"]), s1.clone()),
        );
        let mut state: HashMap<String, Bag> = HashMap::new();
        state.insert(
            "R".into(),
            Bag::from_tuples([tuple!["a"], tuple!["b"], tuple!["c"]]),
        );
        state.insert("S".into(), Bag::from_tuples([tuple!["c"], tuple!["d"]]));
        // Pre-update evaluation must delete [b] from the view.
        let pair = differentiate(&q, &eta, &provider).unwrap();
        let del_val = eval(&compile(&pair.del, &provider).unwrap().plan, &state).unwrap();
        assert_eq!(del_val, Bag::singleton(tuple!["b"]));
        check_theorem2(&q, &eta, &provider, &state);
    }

    #[test]
    fn dup_elim_delta() {
        // ε over a table where deleting one of two duplicates must NOT
        // remove the tuple from ε(R), but deleting both must.
        let u = Universe::small(1);
        let provider = u.provider();
        let mut state: HashMap<String, Bag> = HashMap::new();
        let mut r = Bag::new();
        r.insert_n(tuple![1, 1], 2);
        r.insert_n(tuple![2, 2], 1);
        state.insert("t0".into(), r);
        let q = Expr::table("t0").dedup();

        // delete one copy of [1,1]
        let mut eta = FactoredSubstitution::new();
        eta.set(
            "t0",
            Expr::literal(Bag::singleton(tuple![1, 1]), schema_ab()),
            Expr::empty(schema_ab()),
        );
        let pair = differentiate(&q, &eta, &provider).unwrap();
        let del_val = eval(&compile(&pair.del, &provider).unwrap().plan, &state).unwrap();
        assert!(del_val.is_empty(), "one surviving duplicate keeps ε entry");
        check_theorem2(&q, &eta, &provider, &state);

        // delete both copies
        let mut both = Bag::new();
        both.insert_n(tuple![1, 1], 2);
        let mut eta2 = FactoredSubstitution::new();
        eta2.set(
            "t0",
            Expr::literal(both, schema_ab()),
            Expr::empty(schema_ab()),
        );
        let pair2 = differentiate(&q, &eta2, &provider).unwrap();
        let del_val2 = eval(&compile(&pair2.del, &provider).unwrap().plan, &state).unwrap();
        assert_eq!(del_val2, Bag::singleton(tuple![1, 1]));
        check_theorem2(&q, &eta2, &provider, &state);
    }

    #[test]
    fn simplified_deltas_do_not_mention_unchanged_only_terms() {
        // A view over t0 ⊎ t1 where only t0 changes: the deltas must not
        // reference t1 at all after simplification.
        let u = Universe::small(2);
        let provider = u.provider();
        let q = Expr::table("t0").union(Expr::table("t1"));
        let mut eta = FactoredSubstitution::new();
        eta.set(
            "t0",
            Expr::empty(schema_ab()),
            Expr::literal(Bag::singleton(tuple![1, 1]), schema_ab()),
        );
        let pair = differentiate(&q, &eta, &provider).unwrap();
        assert!(!pair.del.tables().contains("t1"));
        assert!(!pair.add.tables().contains("t1"));
    }

    #[test]
    fn theorem2_randomized() {
        // Theorem 2 over 300 random (state, query, weakly minimal η).
        let u = Universe::small(3);
        let provider = u.provider();
        let mut rng = Rng::new(2024);
        for i in 0..300 {
            let state = u.state(&mut rng, 4);
            let q = u.expr(&mut rng, 2);
            let eta = u.weakly_minimal_subst(&mut rng, &state);
            let _ = i;
            check_theorem2(&q, &eta, &provider, &state);
        }
    }

    #[test]
    fn theorem2_randomized_deeper() {
        let u = Universe::small(2);
        let provider = u.provider();
        let mut rng = Rng::new(77);
        for _ in 0..60 {
            let state = u.state(&mut rng, 3);
            let q = u.expr(&mut rng, 3);
            let eta = u.weakly_minimal_subst(&mut rng, &state);
            check_theorem2(&q, &eta, &provider, &state);
        }
    }

    #[test]
    fn theorem2_on_aggregate_views_randomized() {
        // Theorem 2 for GroupAggregate views over 300 random instances
        // with NULL-bearing states: NULL group keys and NULL aggregate
        // arguments flow through the monus differential rule. States are
        // built from literal-safe tuples (NULLs but no Doubles) because η's
        // deletion deltas are sampled from the state as schema-checked
        // literals. EXCEPT-bearing queries are included: the semijoin
        // expansion now joins on null-safe `<=>`, matching the direct
        // operator's value identity on NULL rows (previously skipped).
        let u = Universe::mixed(3);
        let provider = u.provider();
        let mut rng = Rng::new(0x05EE_DA66);
        for _ in 0..300 {
            let state: HashMap<String, Bag> = u
                .tables
                .iter()
                .map(|t| (t.clone(), u.bag(&mut rng, 4)))
                .collect();
            let q = u.agg_expr(&mut rng, 2);
            let eta = u.weakly_minimal_subst(&mut rng, &state);
            check_theorem2(&q, &eta, &provider, &state);
        }
    }

    #[test]
    fn aggregate_over_unchanged_tables_has_empty_deltas() {
        let u = Universe::small(2);
        let provider = u.provider();
        let q = Expr::table("t0").group_aggregate(
            vec![dvm_algebra::ColRef::new("a")],
            vec![dvm_algebra::AggCall::count_star()],
        );
        // Only t1 changes: the aggregate over t0 must not be touched.
        let mut eta = FactoredSubstitution::new();
        eta.set(
            "t1",
            Expr::empty(schema_ab()),
            Expr::literal(Bag::singleton(tuple![1, 1]), schema_ab()),
        );
        let pair = differentiate(&q, &eta, &provider).unwrap();
        assert!(pair.del.is_empty_literal());
        assert!(pair.add.is_empty_literal());
    }

    #[test]
    fn raw_matches_simplified_semantics() {
        let u = Universe::small(2);
        let provider = u.provider();
        let mut rng = Rng::new(3);
        for _ in 0..100 {
            let state = u.state(&mut rng, 4);
            let q = u.expr(&mut rng, 2);
            let eta = u.weakly_minimal_subst(&mut rng, &state);
            let raw = differentiate_raw(&q, &eta, &provider).unwrap();
            let simp = differentiate(&q, &eta, &provider).unwrap();
            let raw_del = eval(&compile(&raw.del, &provider).unwrap().plan, &state).unwrap();
            let simp_del = eval(&compile(&simp.del, &provider).unwrap().plan, &state).unwrap();
            assert_eq!(raw_del, simp_del);
            let raw_add = eval(&compile(&raw.add, &provider).unwrap().plan, &state).unwrap();
            let simp_add = eval(&compile(&simp.add, &provider).unwrap().plan, &state).unwrap();
            assert_eq!(raw_add, simp_add);
            assert!(simp.size() <= raw.size(), "simplification never grows");
        }
    }

    #[test]
    fn identity_substitution_yields_empty_deltas_after_simplify() {
        let u = Universe::small(2);
        let provider = u.provider();
        let mut rng = Rng::new(8);
        for _ in 0..50 {
            let q = u.expr(&mut rng, 2);
            let eta = FactoredSubstitution::new();
            let pair = differentiate(&q, &eta, &provider).unwrap();
            assert!(
                pair.del.is_empty_literal(),
                "Del(id, {q}) should simplify to φ, got {}",
                pair.del
            );
            assert!(pair.add.is_empty_literal());
        }
    }
}
