//! Dependency-free JSON: a tiny writer (string building helpers used by
//! the exporters) and a full recursive-descent parser (used by the CI
//! schema gate to validate every `results/*.json` the experiment binaries
//! emit, with no `jq` or registry crates).

use std::collections::BTreeMap;
use std::fmt;

// ---------------------------------------------------------------- writer

/// Escape `s` as a JSON string literal (with quotes).
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An unsigned integer literal.
pub fn num_u(n: u64) -> String {
    n.to_string()
}

/// A float literal with one decimal (NaN/∞ degrade to 0, which JSON
/// cannot represent).
pub fn num_f(f: f64) -> String {
    if f.is_finite() {
        format!("{f:.1}")
    } else {
        "0".to_string()
    }
}

/// A bool literal.
pub fn boolean(b: bool) -> String {
    b.to_string()
}

/// Build an object from `(key, already-serialized value)` pairs.
pub fn object<'a>(fields: impl IntoIterator<Item = (&'a str, String)>) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&string(k));
        out.push(':');
        out.push_str(&v);
    }
    out.push('}');
    out
}

/// Build an array from already-serialized values.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, v) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v);
    }
    out.push(']');
    out
}

// ---------------------------------------------------------------- parser

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (insertion order not preserved; keyed lookup only).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing non-whitespace is an error).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_shapes() {
        assert_eq!(string("a\"b\n"), "\"a\\\"b\\n\"");
        assert_eq!(num_u(42), "42");
        assert_eq!(num_f(1.25), "1.2");
        assert_eq!(num_f(f64::NAN), "0");
        assert_eq!(
            object([("a", num_u(1)), ("b", string("x"))]),
            "{\"a\":1,\"b\":\"x\"}"
        );
        assert_eq!(array([num_u(1), num_u(2)]), "[1,2]");
        assert_eq!(object([]), "{}");
        assert_eq!(array([]), "[]");
    }

    #[test]
    fn writer_output_parses_back() {
        let doc = object([
            ("name", string("exp/α \"quoted\"")),
            ("n", num_u(7)),
            ("mean", num_f(12.5)),
            ("ok", boolean(true)),
            ("items", array([num_u(1), string("two")])),
        ]);
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str().unwrap(), "exp/α \"quoted\"");
        assert_eq!(v.get("n").unwrap().as_f64().unwrap(), 7.0);
        assert_eq!(v.get("items").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn parses_standard_documents() {
        let v = parse(r#" {"a": [1, -2.5e3, null], "b": {"c": false}} "#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[1].as_f64().unwrap(), -2500.0);
        assert_eq!(a[2], Value::Null);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(false)));
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = parse(r#""é\t""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é\t");
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn error_reports_position() {
        let e = parse("[1, oops]").unwrap_err();
        assert_eq!(e.pos, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
