//! # deferred-view-maintenance (`dvm`)
//!
//! A production-quality Rust implementation of **"Algorithms for Deferred
//! View Maintenance"** (Colby, Griffin, Libkin, Mumick, Trickey — SIGMOD
//! 1996): materialized views over a bag-relational engine, maintained
//! immediately or deferred via base logs, view differential tables, or
//! both, with post-update differential algorithms that avoid the *state
//! bug* and refresh policies that minimize view downtime.
//!
//! ```
//! use dvm::{Database, Scenario, Transaction, SqlSession};
//! use dvm_storage::{tuple, Schema, ValueType};
//!
//! let db = Database::new();
//! db.create_table("sales", Schema::from_pairs(&[
//!     ("custId", ValueType::Int), ("quantity", ValueType::Int),
//! ])).unwrap();
//!
//! // Define a view in SQL, maintained deferred with logs + differentials.
//! let session = SqlSession::new(&db).with_default_scenario(Scenario::Combined);
//! session.run("CREATE VIEW big AS SELECT custId FROM sales WHERE quantity > 5").unwrap();
//!
//! // Updates only pay a log append…
//! db.execute(&Transaction::new().insert_tuple("sales", tuple![1, 9])).unwrap();
//! assert!(db.query_view("big").unwrap().is_empty()); // still stale
//!
//! // …until the view is refreshed.
//! db.refresh("big").unwrap();
//! assert_eq!(db.query_view("big").unwrap().len(), 1);
//! ```
//!
//! The heavy lifting lives in the member crates, re-exported here:
//!
//! * [`dvm_storage`] — bag-relational storage with instrumented locks;
//! * [`dvm_algebra`] — the bag algebra `BA`, evaluation, substitutions;
//! * [`dvm_delta`] — the Figure-2 differential algorithms (pre- and
//!   post-update), composition and cancellation lemmas;
//! * [`dvm_core`] — scenarios, invariants, `makesafe`/`refresh`/
//!   `propagate`/`partial_refresh`, policies;
//! * [`dvm_sql`] — the SQL front end;
//! * [`dvm_workload`] — the Example-1.1 retail workload and measurement
//!   harness.

#![warn(missing_docs)]

pub use dvm_algebra::{self, Expr, Predicate};
pub use dvm_core::{
    self, Database, ExecReport, IngestGauges, InvariantReport, Minimality, Observability,
    PolicyDriver, RecoveryReport, RefreshPolicy, Scenario, StalenessGauges, ViewMetricsSnapshot,
    ViewObservability,
};
pub use dvm_durability::{self, DurabilityPolicy, WalOptions};
pub use dvm_ingest::{
    self, Admission, ChangeEvent, IngestConfig, IngestError, IngestPipeline, IngestStats,
};
pub use dvm_obs::{self, EventKind, Tracer};
pub use dvm_delta::{self, LogTables, PostDeltas, Transaction};
pub use dvm_sql::{self, LoweredStatement, SqlError};
pub use dvm_storage::{self, Bag, Catalog, Schema, Tuple, Value, ValueType};
pub use dvm_workload as workload;

pub mod repl;

use std::fmt;

/// Top-level error: SQL or engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DvmError {
    /// SQL front-end error.
    Sql(SqlError),
    /// Engine error.
    Core(dvm_core::CoreError),
}

impl fmt::Display for DvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DvmError::Sql(e) => write!(f, "{e}"),
            DvmError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DvmError {}

impl From<SqlError> for DvmError {
    fn from(e: SqlError) -> Self {
        DvmError::Sql(e)
    }
}

impl From<dvm_core::CoreError> for DvmError {
    fn from(e: dvm_core::CoreError) -> Self {
        DvmError::Core(e)
    }
}

/// What a SQL statement produced.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlOutcome {
    /// `CREATE TABLE` succeeded.
    TableCreated(String),
    /// `CREATE VIEW` succeeded.
    ViewCreated(String),
    /// A query's result rows.
    Rows(Bag),
    /// Number of tuple occurrences inserted.
    Inserted(u64),
    /// Number of tuple occurrences deleted.
    Deleted(u64),
}

/// Executes SQL statements against a [`Database`].
///
/// Views created through the session are maintained under the session's
/// default scenario (configure with
/// [`SqlSession::with_default_scenario`]).
pub struct SqlSession<'a> {
    db: &'a Database,
    default_scenario: Scenario,
    default_minimality: Minimality,
}

impl<'a> SqlSession<'a> {
    /// A session creating views under [`Scenario::Combined`].
    pub fn new(db: &'a Database) -> Self {
        SqlSession {
            db,
            default_scenario: Scenario::Combined,
            default_minimality: Minimality::Weak,
        }
    }

    /// Set the scenario used by `CREATE VIEW`.
    pub fn with_default_scenario(mut self, scenario: Scenario) -> Self {
        self.default_scenario = scenario;
        self
    }

    /// Set the minimality discipline used by `CREATE VIEW`.
    pub fn with_default_minimality(mut self, minimality: Minimality) -> Self {
        self.default_minimality = minimality;
        self
    }

    /// Parse, lower, and execute one statement.
    pub fn run(&self, sql: &str) -> Result<SqlOutcome, DvmError> {
        match dvm_sql::sql_to_statement(sql)? {
            LoweredStatement::CreateTable { name, schema } => {
                self.db.create_table(&name, schema)?;
                Ok(SqlOutcome::TableCreated(name))
            }
            LoweredStatement::CreateView { name, definition } => {
                self.db.create_view_with(
                    &name,
                    definition,
                    self.default_scenario,
                    self.default_minimality,
                )?;
                Ok(SqlOutcome::ViewCreated(name))
            }
            LoweredStatement::Query(expr) => {
                let expr = self.resolve_views(&expr);
                Ok(SqlOutcome::Rows(self.db.eval(&expr)?))
            }
            LoweredStatement::Insert { table, rows } => {
                let bag: Bag = rows.into_iter().collect();
                let n = bag.len();
                self.db.execute(&Transaction::new().insert(table, bag))?;
                Ok(SqlOutcome::Inserted(n))
            }
            LoweredStatement::Delete { table, selection } => {
                let victims = self.db.eval(&selection)?;
                let n = victims.len();
                self.db
                    .execute(&Transaction::new().delete(table, victims))?;
                Ok(SqlOutcome::Deleted(n))
            }
        }
    }

    /// Rewrite references to view names into their materialized tables, so
    /// ad-hoc queries can `SELECT … FROM viewname` (reading the possibly
    /// stale materialization, exactly like the paper's decision-support
    /// readers).
    fn resolve_views(&self, expr: &Expr) -> Expr {
        let mut subst = dvm_algebra::Substitution::new();
        for name in self.db.view_names() {
            if expr.tables().contains(&name) {
                if let Ok(view) = self.db.view(&name) {
                    subst.set(name, Expr::table(view.mv_table()));
                }
            }
        }
        subst.apply(expr)
    }

    /// Run several `;`-separated statements, returning each outcome.
    /// Semicolons inside single-quoted string literals do not split.
    pub fn run_script(&self, sql: &str) -> Result<Vec<SqlOutcome>, DvmError> {
        let mut out = Vec::new();
        for stmt in split_statements(sql) {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            out.push(self.run(stmt)?);
        }
        Ok(out)
    }
}

/// Split a script on `;`, ignoring semicolons inside single-quoted string
/// literals (with `''` as the quote escape, matching the lexer).
fn split_statements(sql: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = sql.as_bytes();
    let mut start = 0;
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' => {
                if in_string && bytes.get(i + 1) == Some(&b'\'') {
                    i += 1; // escaped quote, stay in string
                } else {
                    in_string = !in_string;
                }
            }
            b';' if !in_string => {
                out.push(&sql[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    out.push(&sql[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let d = Database::new();
        d.create_table(
            "sales",
            Schema::from_pairs(&[("custId", ValueType::Int), ("quantity", ValueType::Int)]),
        )
        .unwrap();
        d
    }

    #[test]
    fn sql_session_end_to_end() {
        let d = db();
        let s = SqlSession::new(&d).with_default_scenario(Scenario::BaseLog);
        assert_eq!(
            s.run("CREATE VIEW v AS SELECT custId FROM sales WHERE quantity > 2")
                .unwrap(),
            SqlOutcome::ViewCreated("v".into())
        );
        assert_eq!(
            s.run("INSERT INTO sales VALUES (1, 5), (2, 1)").unwrap(),
            SqlOutcome::Inserted(2)
        );
        // query goes against base tables (fresh), view table is stale
        let SqlOutcome::Rows(rows) = s
            .run("SELECT custId FROM sales WHERE quantity > 2")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(rows.len(), 1);
        assert!(d.query_view("v").unwrap().is_empty());
        d.refresh("v").unwrap();
        assert_eq!(d.query_view("v").unwrap(), rows);
    }

    #[test]
    fn sql_delete_with_predicate() {
        let d = db();
        let s = SqlSession::new(&d);
        s.run("INSERT INTO sales VALUES (1, 0), (2, 3)").unwrap();
        assert_eq!(
            s.run("DELETE FROM sales WHERE quantity = 0").unwrap(),
            SqlOutcome::Deleted(1)
        );
        assert_eq!(d.catalog().require("sales").unwrap().len(), 1);
    }

    #[test]
    fn run_script_multiple_statements() {
        let d = db();
        let s = SqlSession::new(&d);
        let outcomes = s
            .run_script(
                "INSERT INTO sales VALUES (1, 1); \
                 CREATE VIEW v AS SELECT custId FROM sales; \
                 SELECT custId FROM sales;",
            )
            .unwrap();
        assert_eq!(outcomes.len(), 3);
        assert!(matches!(outcomes[1], SqlOutcome::ViewCreated(_)));
    }

    #[test]
    fn script_split_respects_string_literals() {
        let d = Database::new();
        d.create_table("t", Schema::from_pairs(&[("a", ValueType::Str)]))
            .unwrap();
        let s = SqlSession::new(&d);
        let outcomes = s
            .run_script("INSERT INTO t VALUES ('a;b'); INSERT INTO t VALUES ('it''s; fine')")
            .unwrap();
        assert_eq!(outcomes.len(), 2);
        let SqlOutcome::Rows(rows) = s.run("SELECT a FROM t").unwrap() else {
            panic!()
        };
        assert!(rows.contains(&dvm_storage::tuple!["a;b"]));
        assert!(rows.contains(&dvm_storage::tuple!["it's; fine"]));
    }

    #[test]
    fn errors_surface() {
        let d = db();
        let s = SqlSession::new(&d);
        assert!(matches!(s.run("SELECT FROM"), Err(DvmError::Sql(_))));
        assert!(matches!(
            s.run("SELECT x FROM missing_table"),
            Err(DvmError::Core(_))
        ));
    }
}
