//! Quickstart: define tables and a deferred materialized view, run
//! transactions, observe staleness, refresh, and check invariants.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dvm::{Database, Scenario, SqlOutcome, SqlSession, Transaction};
use dvm_storage::{tuple, Schema, ValueType};

fn main() {
    let db = Database::new();

    // 1. Base tables (Example 1.1's retail schema, simplified).
    db.create_table(
        "customer",
        Schema::from_pairs(&[
            ("custId", ValueType::Int),
            ("name", ValueType::Str),
            ("score", ValueType::Str),
        ]),
    )
    .unwrap();
    db.create_table(
        "sales",
        Schema::from_pairs(&[
            ("custId", ValueType::Int),
            ("itemNo", ValueType::Int),
            ("quantity", ValueType::Int),
        ]),
    )
    .unwrap();

    // 2. A view over the join, maintained DEFERRED with base logs and view
    //    differential tables (the paper's INV_C scenario).
    let session = SqlSession::new(&db).with_default_scenario(Scenario::Combined);
    session
        .run(
            "CREATE VIEW hot_sales AS \
             SELECT c.name, s.itemNo, s.quantity \
             FROM customer c, sales s \
             WHERE c.custId = s.custId AND c.score = 'High' AND s.quantity != 0",
        )
        .unwrap();
    println!("created view 'hot_sales' (scenario C: logs + differential tables)");

    // 3. Load data through SQL.
    session
        .run_script(
            "INSERT INTO customer VALUES (1, 'alice', 'High'), (2, 'bob', 'Low'); \
             INSERT INTO sales VALUES (1, 100, 2), (1, 101, 0), (2, 100, 7);",
        )
        .unwrap();

    // The view was initialized empty (created before the data) and update
    // transactions only appended to its logs — it is stale by design:
    println!(
        "after inserts, materialized view has {} rows (stale), truth has {}",
        db.query_view("hot_sales").unwrap().len(),
        db.recompute_view("hot_sales").unwrap().len(),
    );

    // 4. The invariant INV_C nevertheless holds at all times:
    let report = db.check_invariant("hot_sales").unwrap();
    println!("invariant check: {report}");
    assert!(report.ok());

    // 5. propagate_C moves the incremental work out of the refresh path…
    db.propagate("hot_sales").unwrap();
    println!("propagated logged changes into differential tables");

    // …and partial_refresh applies precomputed differentials: minimal
    // downtime.
    db.partial_refresh("hot_sales").unwrap();
    let rows = db.query_view("hot_sales").unwrap();
    println!("after partial refresh, view rows:");
    for (t, m) in rows.sorted_entries() {
        println!("  {t} ×{m}");
    }
    assert_eq!(rows, db.recompute_view("hot_sales").unwrap());

    // 6. Direct (non-SQL) transactions work too, including deletions.
    db.execute(&Transaction::new().delete_tuple("sales", tuple![1, 100, 2]))
        .unwrap();
    db.refresh("hot_sales").unwrap();
    println!(
        "after a deletion + full refresh: {} rows",
        db.query_view("hot_sales").unwrap().len()
    );

    // 7. Maintenance cost accounting is built in.
    let m = db.view_metrics("hot_sales").unwrap();
    println!(
        "metrics: {} transactions paid {:.1}µs mean overhead; {} refreshes, {} propagates",
        m.makesafe_count,
        m.mean_makesafe_nanos() / 1000.0,
        m.refresh_count,
        m.propagate_count,
    );
    let session_outcome = session
        .run("SELECT name, itemNo FROM hot_sales")
        .map(|o| match o {
            SqlOutcome::Rows(b) => b.len(),
            _ => 0,
        });
    println!(
        "ad-hoc SQL against the view table: {:?} rows",
        session_outcome.unwrap()
    );
}
