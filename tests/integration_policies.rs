//! Policy behaviour end-to-end (Section 5.3): Policies 1 and 2, periodic
//! refresh, on-query refresh — staleness bounds and correctness on the
//! retail workload.

use dvm::workload::{view_expr, RetailConfig, RetailGen};
use dvm::{Database, PolicyDriver, RefreshPolicy, Scenario};

fn build() -> (Database, RetailGen) {
    let db = Database::new();
    let mut gen = RetailGen::new(RetailConfig {
        customers: 200,
        items: 80,
        initial_sales: 1_000,
        high_fraction: 0.2,
        theta: 0.8,
        seed: 31,
    });
    gen.install(&db).unwrap();
    (db, gen)
}

#[test]
fn policy1_full_consistency_every_m_ticks() {
    let (db, mut gen) = build();
    db.create_view("v", view_expr(), Scenario::Combined)
        .unwrap();
    let mut driver = PolicyDriver::new(&db);
    driver
        .add_view("v", RefreshPolicy::Policy1 { k: 3, m: 12 })
        .unwrap();
    for tick in 1..=36u64 {
        db.execute(&gen.mixed_batch(8, 2)).unwrap();
        driver.tick().unwrap();
        if tick % 12 == 0 {
            assert_eq!(
                db.query_view("v").unwrap(),
                db.recompute_view("v").unwrap(),
                "Policy 1 refresh at tick {tick} must be fully consistent"
            );
        }
        assert!(db.check_invariant("v").unwrap().ok());
    }
}

#[test]
fn policy2_staleness_bounded_by_k() {
    let (db, mut gen) = build();
    db.create_view("v", view_expr(), Scenario::Combined)
        .unwrap();
    let mut driver = PolicyDriver::new(&db);
    // k = 1: propagate every tick → partial refresh is at most one tick old.
    driver
        .add_view("v", RefreshPolicy::Policy2 { k: 1, m: 6 })
        .unwrap();
    let mut truth_before_tick;
    for tick in 1..=18u64 {
        truth_before_tick = db.recompute_view("v").unwrap();
        db.execute(&gen.sales_batch(10)).unwrap();
        driver.tick().unwrap();
        if tick % 6 == 0 {
            // with k = 1 the propagate at this tick covered this tick's tx,
            // so the partial refresh is fully fresh
            let v = db.query_view("v").unwrap();
            assert_eq!(v, db.recompute_view("v").unwrap(), "tick {tick}");
            let _ = truth_before_tick;
        }
    }
}

#[test]
fn policy2_with_slow_propagation_lags_at_most_one_interval() {
    let (db, mut gen) = build();
    db.create_view("v", view_expr(), Scenario::Combined)
        .unwrap();
    let mut driver = PolicyDriver::new(&db);
    driver
        .add_view("v", RefreshPolicy::Policy2 { k: 4, m: 8 })
        .unwrap();
    let mut value_at_propagate = db.recompute_view("v").unwrap();
    for tick in 1..=8u64 {
        db.execute(&gen.sales_batch(5)).unwrap();
        if tick % 4 == 0 {
            // the driver will propagate on this tick: the view value as of
            // now is what a later partial refresh can expose at most
            value_at_propagate = db.recompute_view("v").unwrap();
        }
        driver.tick().unwrap();
    }
    // tick 8: propagate ran (covers everything through tick 8), then
    // partial refresh applied → view equals the value at the last propagate.
    assert_eq!(db.query_view("v").unwrap(), value_at_propagate);
}

#[test]
fn on_query_policy_always_fresh() {
    let (db, mut gen) = build();
    db.create_view("v", view_expr(), Scenario::BaseLog).unwrap();
    let mut driver = PolicyDriver::new(&db);
    driver.add_view("v", RefreshPolicy::OnQuery).unwrap();
    for _ in 0..5 {
        db.execute(&gen.mixed_batch(10, 3)).unwrap();
        let via_policy = driver.query("v").unwrap();
        assert_eq!(via_policy, db.recompute_view("v").unwrap());
    }
}

#[test]
fn periodic_refresh_amortizes_log() {
    let (db, mut gen) = build();
    db.create_view("v", view_expr(), Scenario::BaseLog).unwrap();
    let mut driver = PolicyDriver::new(&db);
    driver
        .add_view("v", RefreshPolicy::PeriodicRefresh { every: 5 })
        .unwrap();
    let mut max_log = 0;
    for _ in 0..25u64 {
        db.execute(&gen.sales_batch(4)).unwrap();
        driver.tick().unwrap();
        let (log, _) = db.aux_sizes("v").unwrap();
        max_log = max_log.max(log);
    }
    assert!(
        max_log <= 5 * 4,
        "log never exceeds one refresh period of changes: {max_log}"
    );
}
