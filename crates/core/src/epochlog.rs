//! A shared, epoch-stamped change log (paper Section 7, second future-work
//! question).
//!
//! The paper asks: *"How should log information be stored so that the work
//! done by `makesafe_BL[T]` is minimal, and independent of the number of
//! views supported?"* With per-view log tables (the default), a transaction
//! pays one log-append per relevant view. A [`SharedLog`] amortizes that:
//! each transaction appends its per-table `(∇R, ΔR)` **once**, stamped with
//! a global epoch; every shared view keeps a *cursor* (the epoch through
//! which it has consumed the log) and, at propagate/refresh time, folds the
//! suffix beyond its cursor with the composition lemma — recovering exactly
//! the `(▼R, ▲R)` bags its private log would have held.
//!
//! Entries consumed by every registered view are reclaimed by
//! [`SharedLog::vacuum`].

use dvm_delta::compose_into;
use dvm_delta::Transaction;
use dvm_storage::Bag;
use dvm_testkit::sync::Mutex;
use std::collections::BTreeMap;

/// Exported per-table log entries — `(epoch, ∇R, ΔR)` triples in epoch
/// order — as produced by [`SharedLog::export_state`] and consumed by
/// [`SharedLog::restore_state`] and the checkpoint codec.
pub type ExportedEntries = BTreeMap<String, Vec<(u64, Bag, Bag)>>;

/// One logged change set for one table.
#[derive(Debug, Clone)]
struct Entry {
    epoch: u64,
    del: Bag,
    ins: Bag,
}

/// Append-only, epoch-stamped per-table change log shared by many views.
#[derive(Debug, Default)]
pub struct SharedLog {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    /// Per-table entries, in epoch order.
    by_table: BTreeMap<String, Vec<Entry>>,
    /// Last assigned epoch (0 = nothing logged yet).
    epoch: u64,
}

impl SharedLog {
    /// An empty log at epoch 0.
    pub fn new() -> Self {
        SharedLog::default()
    }

    /// Append a (weakly minimal) transaction's changes, one entry per
    /// touched table, all under the same fresh epoch. Returns that epoch.
    /// The cost is independent of how many views read this log.
    pub fn append(&self, tx: &Transaction) -> u64 {
        let mut inner = self.inner.lock();
        inner.epoch += 1;
        let epoch = inner.epoch;
        for table in tx.tables() {
            let (del, ins) = tx.get(table).expect("listed table");
            if del.is_empty() && ins.is_empty() {
                continue;
            }
            inner
                .by_table
                .entry(table.clone())
                .or_default()
                .push(Entry {
                    epoch,
                    del: del.clone(),
                    ins: ins.clone(),
                });
        }
        epoch
    }

    /// The epoch of the most recent append.
    pub fn current_epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Fold all entries for `table` with epoch `> after` into a single
    /// `(▼R, ▲R)` pair via the composition lemma, in epoch order. Returns
    /// empty bags when nothing is pending.
    pub fn fold_suffix(&self, table: &str, after: u64) -> (Bag, Bag) {
        let inner = self.inner.lock();
        let mut del = Bag::new();
        let mut ins = Bag::new();
        if let Some(entries) = inner.by_table.get(table) {
            for e in entries {
                if e.epoch > after {
                    compose_into(&mut del, &mut ins, &e.del, &e.ins);
                }
            }
        }
        (del, ins)
    }

    /// Fold suffixes for several tables at one consistent point, returning
    /// the folds and the epoch they cover (use it as the new cursor).
    pub fn fold_suffixes<'a, I>(&self, tables: I, after: u64) -> (BTreeMap<String, (Bag, Bag)>, u64)
    where
        I: IntoIterator<Item = &'a String>,
    {
        let inner = self.inner.lock();
        let mut out = BTreeMap::new();
        for table in tables {
            let mut del = Bag::new();
            let mut ins = Bag::new();
            if let Some(entries) = inner.by_table.get(table) {
                for e in entries {
                    if e.epoch > after {
                        compose_into(&mut del, &mut ins, &e.del, &e.ins);
                    }
                }
            }
            out.insert(table.clone(), (del, ins));
        }
        (out, inner.epoch)
    }

    /// `(entries, tuple volume)` retained beyond epoch `after` for the
    /// given tables — the backlog one view (cursor = `after`) still has to
    /// fold, without materializing the fold. Feeds the per-view staleness
    /// gauges.
    pub fn suffix_stats<'a, I>(&self, tables: I, after: u64) -> (u64, u64)
    where
        I: IntoIterator<Item = &'a String>,
    {
        let inner = self.inner.lock();
        let mut entries = 0u64;
        let mut volume = 0u64;
        for table in tables {
            if let Some(es) = inner.by_table.get(table) {
                for e in es.iter().filter(|e| e.epoch > after) {
                    entries += 1;
                    volume += e.del.len() + e.ins.len();
                }
            }
        }
        (entries, volume)
    }

    /// Drop every entry with epoch `≤ min_cursor` (already consumed by all
    /// views). Returns the number of entries reclaimed.
    pub fn vacuum(&self, min_cursor: u64) -> usize {
        let mut inner = self.inner.lock();
        let mut reclaimed = 0;
        for entries in inner.by_table.values_mut() {
            let before = entries.len();
            entries.retain(|e| e.epoch > min_cursor);
            reclaimed += before - entries.len();
        }
        inner.by_table.retain(|_, v| !v.is_empty());
        reclaimed
    }

    /// Total retained entries (all tables).
    pub fn len(&self) -> usize {
        self.inner.lock().by_table.values().map(Vec::len).sum()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Export the full log state — `(current epoch, per-table entries as
    /// `(epoch, ∇R, ΔR)` triples in epoch order)` — for checkpointing.
    pub fn export_state(&self) -> (u64, ExportedEntries) {
        let inner = self.inner.lock();
        let by_table = inner
            .by_table
            .iter()
            .map(|(t, es)| {
                (
                    t.clone(),
                    es.iter()
                        .map(|e| (e.epoch, e.del.clone(), e.ins.clone()))
                        .collect(),
                )
            })
            .collect();
        (inner.epoch, by_table)
    }

    /// Replace the log's state with a previously exported one (recovery).
    pub fn restore_state(&self, epoch: u64, by_table: ExportedEntries) {
        let mut inner = self.inner.lock();
        inner.epoch = epoch;
        inner.by_table = by_table
            .into_iter()
            .map(|(t, es)| {
                (
                    t,
                    es.into_iter()
                        .map(|(epoch, del, ins)| Entry { epoch, del, ins })
                        .collect(),
                )
            })
            .collect();
    }

    /// Total tuple occurrences retained (metric for experiments).
    pub fn retained_volume(&self) -> u64 {
        self.inner
            .lock()
            .by_table
            .values()
            .flat_map(|v| v.iter())
            .map(|e| e.del.len() + e.ins.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_storage::tuple;

    fn tx_ins(table: &str, v: i64) -> Transaction {
        Transaction::new().insert_tuple(table, tuple![v])
    }

    fn tx_del(table: &str, v: i64) -> Transaction {
        Transaction::new().delete_tuple(table, tuple![v])
    }

    #[test]
    fn epochs_are_monotone() {
        let log = SharedLog::new();
        assert_eq!(log.current_epoch(), 0);
        let e1 = log.append(&tx_ins("r", 1));
        let e2 = log.append(&tx_ins("r", 2));
        assert!(e2 > e1);
        assert_eq!(log.current_epoch(), e2);
    }

    #[test]
    fn fold_suffix_composes_in_order() {
        let log = SharedLog::new();
        log.append(&tx_ins("r", 1)); // epoch 1
        log.append(&tx_del("r", 1)); // epoch 2: cancels via composition
        log.append(&tx_ins("r", 2)); // epoch 3
        let (del, ins) = log.fold_suffix("r", 0);
        assert!(del.is_empty(), "insert-then-delete cancels: {del}");
        assert_eq!(ins, Bag::singleton(tuple![2]));
    }

    #[test]
    fn cursors_partition_the_log() {
        let log = SharedLog::new();
        let e1 = log.append(&tx_ins("r", 1));
        log.append(&tx_ins("r", 2));
        // a view that consumed through e1 only sees the later insert
        let (del, ins) = log.fold_suffix("r", e1);
        assert!(del.is_empty());
        assert_eq!(ins, Bag::singleton(tuple![2]));
        // a fully caught-up view sees nothing
        let (del, ins) = log.fold_suffix("r", log.current_epoch());
        assert!(del.is_empty() && ins.is_empty());
    }

    #[test]
    fn fold_suffixes_consistent_point() {
        let log = SharedLog::new();
        log.append(&tx_ins("r", 1));
        log.append(&tx_ins("s", 9));
        let tables = ["r".to_string(), "s".to_string()];
        let (folds, upto) = log.fold_suffixes(tables.iter(), 0);
        assert_eq!(upto, 2);
        assert_eq!(folds["r"].1, Bag::singleton(tuple![1]));
        assert_eq!(folds["s"].1, Bag::singleton(tuple![9]));
    }

    #[test]
    fn vacuum_reclaims_consumed_entries() {
        let log = SharedLog::new();
        log.append(&tx_ins("r", 1));
        log.append(&tx_ins("r", 2));
        let e3 = log.append(&tx_ins("s", 3));
        assert_eq!(log.len(), 3);
        // all views have consumed through epoch 2
        assert_eq!(log.vacuum(2), 2);
        assert_eq!(log.len(), 1);
        // the s entry (epoch 3) survives and still folds
        let (_, ins) = log.fold_suffix("s", 0);
        assert_eq!(ins, Bag::singleton(tuple![3]));
        assert_eq!(log.vacuum(e3), 1);
        assert!(log.is_empty());
    }

    #[test]
    fn empty_transactions_add_no_entries() {
        let log = SharedLog::new();
        log.append(&Transaction::new());
        assert_eq!(log.len(), 0);
        assert_eq!(log.current_epoch(), 1, "epoch still advances");
    }

    #[test]
    fn suffix_stats_count_backlog_per_cursor() {
        let log = SharedLog::new();
        let tables = ["r".to_string(), "s".to_string()];
        assert_eq!(log.suffix_stats(tables.iter(), 0), (0, 0));
        let e1 = log.append(&Transaction::new().insert("r", Bag::from_tuples([tuple![1], tuple![2]])));
        log.append(&tx_ins("s", 9));
        assert_eq!(log.suffix_stats(tables.iter(), 0), (2, 3));
        assert_eq!(log.suffix_stats(tables.iter(), e1), (1, 1));
        assert_eq!(log.suffix_stats(tables.iter(), log.current_epoch()), (0, 0));
        // a view over r alone doesn't count s's backlog
        let r_only = ["r".to_string()];
        assert_eq!(log.suffix_stats(r_only.iter(), 0), (1, 2));
    }

    #[test]
    fn retained_volume_counts_tuples() {
        let log = SharedLog::new();
        log.append(&Transaction::new().insert("r", Bag::from_tuples([tuple![1], tuple![2]])));
        log.append(&tx_del("r", 1));
        assert_eq!(log.retained_volume(), 3);
    }
}
