//! Aggregate views under deferred maintenance: the incremental machinery
//! (propagate / partial refresh / refresh over the monus-shaped aggregate
//! deltas from `dvm-delta`) must land every `GroupAggregate` view on the
//! same bag a from-scratch recompute of its definition produces — across
//! randomized insert/delete streams, NULL-bearing states, extremum
//! deletions, and every maintenance scenario of Figure 3.
//!
//! Queries containing `EXCEPT` are skipped when states carry NULLs: the
//! derived-operator expansion rewrites `EXCEPT` into a three-valued-`=`
//! semijoin whose NULL behaviour diverges from the direct physical
//! operator (a pre-existing property of the expansion, documented in
//! `dvm-delta`'s Theorem 2 aggregate test), so incremental and recomputed
//! results may legitimately disagree on NULL rows there.

use dvm_algebra::testgen::{Rng, Universe};
use dvm_algebra::Expr;
use dvm_core::{Database, Minimality, Scenario};
use dvm_delta::Transaction;
use dvm_storage::Bag;

/// Base tables with random NULL-bearing contents, one aggregate view per
/// maintenance scenario over the same definition.
fn build_db(u: &Universe, rng: &mut Rng, def: &Expr) -> Option<Database> {
    let db = Database::new();
    for t in &u.tables {
        let table = db.create_table(t.clone(), u.schema.clone()).unwrap();
        table.replace(u.bag(rng, 5)).unwrap();
    }
    for (name, scenario) in [
        ("v_im", Scenario::Immediate),
        ("v_bl", Scenario::BaseLog),
        ("v_dt", Scenario::DiffTable),
        ("v_c", Scenario::Combined),
    ] {
        db.create_view_with(name, def.clone(), scenario, Minimality::Weak)
            .ok()?;
    }
    Some(db)
}

fn random_tx(u: &Universe, rng: &mut Rng, db: &Database) -> Transaction {
    let mut tx = Transaction::new();
    for t in &u.tables {
        if rng.chance(1, 2) {
            continue;
        }
        // Deletions drawn from current contents bias toward hitting the
        // group's current MIN/MAX row — the re-scan fallback path.
        let current = db.catalog().bag_of(t).unwrap();
        let mut del = Bag::new();
        for (tuple, mult) in current.iter() {
            if rng.chance(1, 3) {
                del.insert_n(tuple.clone(), 1 + rng.below(mult));
            }
        }
        let ins = u.bag(rng, 3);
        tx = tx.delete(t.clone(), del).insert(t.clone(), ins);
    }
    tx
}

fn assert_invariants(db: &Database, context: &str) {
    let failures = db.check_all_invariants().unwrap();
    assert!(
        failures.is_empty(),
        "{context}: {}",
        failures
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );
}

/// Theorem-5 shape for aggregate definitions: the Figure-1 invariants hold
/// at every step, and a final refresh lands each scenario on the truth.
#[test]
fn aggregate_views_preserve_invariants_across_scenarios() {
    let u = Universe::mixed(3);
    let mut rng = Rng::new(0xA66_0005);
    let mut runs = 0;
    let mut attempts = 0;
    while runs < 20 {
        attempts += 1;
        assert!(attempts < 400, "generator starved");
        let def = u.agg_expr(&mut rng, 2);
        if def.to_string().contains("EXCEPT") {
            continue;
        }
        let Some(db) = build_db(&u, &mut rng, &def) else {
            continue;
        };
        runs += 1;
        assert_invariants(&db, "after init");
        for step in 0..8 {
            let tx = random_tx(&u, &mut rng, &db);
            db.execute(&tx).unwrap();
            assert_invariants(&db, &format!("view {def}, after tx {step}"));
            match rng.below(6) {
                0 => db.refresh("v_bl").unwrap(),
                1 => db.refresh("v_dt").unwrap(),
                2 => db.propagate("v_c").unwrap(),
                3 => db.partial_refresh("v_c").unwrap(),
                _ => {}
            }
            assert_invariants(&db, &format!("view {def}, after maintenance {step}"));
        }
        for v in ["v_bl", "v_dt", "v_c"] {
            db.refresh(v).unwrap();
            assert_eq!(
                db.query_view(v).unwrap(),
                db.recompute_view(v).unwrap(),
                "{v} after final refresh of {def}"
            );
        }
        assert_eq!(
            db.query_view("v_im").unwrap(),
            db.recompute_view("v_im").unwrap(),
            "immediate aggregate view tracks truth for {def}"
        );
        assert_invariants(&db, "after final refreshes");
    }
}

/// The headline oracle: on a Combined-scenario aggregate view, incremental
/// maintenance (propagate + partial refresh at random points) followed by
/// refresh equals a full from-scratch recompute — and `read_through`
/// answers with the exact current truth at *every* step, without waiting
/// for any maintenance at all. 320 random definitions × 4 transactions.
#[test]
fn incremental_aggregate_propagate_matches_full_recompute() {
    let u = Universe::mixed(3);
    let mut rng = Rng::new(0xA66_0006);
    let mut runs = 0;
    let mut attempts = 0;
    while runs < 320 {
        attempts += 1;
        assert!(attempts < 4000, "generator starved");
        let def = u.agg_expr(&mut rng, 2);
        if def.to_string().contains("EXCEPT") {
            continue;
        }
        let db = Database::new();
        for t in &u.tables {
            let table = db.create_table(t.clone(), u.schema.clone()).unwrap();
            table.replace(u.bag(&mut rng, 4)).unwrap();
        }
        if db
            .create_view_with("v", def.clone(), Scenario::Combined, Minimality::Weak)
            .is_err()
        {
            continue;
        }
        runs += 1;
        for step in 0..4 {
            let tx = random_tx(&u, &mut rng, &db);
            db.execute(&tx).unwrap();
            match rng.below(3) {
                0 => db.propagate("v").unwrap(),
                1 => db.partial_refresh("v").unwrap(),
                _ => {}
            }
            assert_eq!(
                db.read_through("v").unwrap(),
                db.recompute_view("v").unwrap(),
                "read-through diverged from recompute on {def} at step {step}"
            );
        }
        db.refresh("v").unwrap();
        assert_eq!(
            db.query_view("v").unwrap(),
            db.recompute_view("v").unwrap(),
            "refreshed MV diverged from recompute on {def}"
        );
    }
}
