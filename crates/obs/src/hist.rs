//! Log-bucketed latency histograms over lock-free atomic buckets.
//!
//! ### Bucket scheme
//!
//! HDR-style base-2 buckets with `SUB_BITS = 4` significant bits: values
//! below 16 get one exact bucket each; every power-of-two octave above
//! that is split into 16 sub-buckets, so any recorded value lands in a
//! bucket whose width is at most 1/16 of its magnitude (≤ 6.25% relative
//! quantile error). The whole range of `u64` nanoseconds (584 years) fits
//! in [`NUM_BUCKETS`] = 976 buckets ≈ 8 KiB of `AtomicU64`s per
//! histogram.
//!
//! ### Concurrency
//!
//! [`Histogram::record`] is wait-free apart from the [`atomic_max`] CAS
//! loop: relaxed `fetch_add`s into the bucket, count, and sum cells. A
//! concurrent [`Histogram::snapshot`] may observe a recording mid-flight
//! (bucket incremented, sum not yet), so a snapshot can be skewed by at
//! most one in-flight sample per recording thread — never torn into
//! nonsense like a permanently lost total.
//!
//! ### Reset
//!
//! [`Histogram::reset`] does **not** zero the live cells (six independent
//! `store(0)`s can interleave with a concurrent `record`, permanently
//! desynchronizing count/sum pairs — the `ViewMetrics::reset` bug this
//! crate replaces). Instead it snapshots the monotone counters as a
//! *baseline* and [`Histogram::snapshot`] subtracts it, so resets are
//! linearizable against recordings up to the same ≤ one in-flight sample
//! per thread tolerance. The `max` cell is the one exception: it is a
//! single self-contained word, so reset stores 0 and a racing recording's
//! maximum may be attributed to the pre-reset phase.

use crate::atomic_max;
use crate::json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Sub-bucket resolution: 2^4 = 16 sub-buckets per octave.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;

/// Total bucket count for the full `u64` range.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize) * SUB + SUB;

/// Bucket index for a value (monotone in `v`).
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // ≥ SUB_BITS
    let shift = top - SUB_BITS;
    let sub = ((v >> shift) & (SUB as u64 - 1)) as usize;
    (top - SUB_BITS + 1) as usize * SUB + sub
}

/// Largest value mapping to bucket `i` (inverse of [`bucket_index`]).
fn bucket_high(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let octave = (i / SUB - 1) as u32;
    let sub = (i % SUB) as u64;
    let high = ((SUB as u64 + sub + 1) as u128) << octave;
    u64::try_from(high - 1).unwrap_or(u64::MAX)
}

/// A concurrent log-bucketed histogram of `u64` samples (nanoseconds, by
/// convention). All recording is lock-free; see the module docs for the
/// bucket scheme and reset semantics.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Subtracted from the monotone cells by `snapshot` (reset baseline).
    baseline: Mutex<Option<HistogramSnapshot>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .field("max", &s.max)
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            baseline: Mutex::new(None),
        }
    }

    /// Record one sample. Lock-free; safe from any thread.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        atomic_max(&self.max, value);
    }

    fn raw_snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Copy the current distribution (since the last [`Histogram::reset`]).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let raw = self.raw_snapshot();
        match self.baseline.lock().unwrap_or_else(|p| p.into_inner()).as_ref() {
            Some(base) => raw.saturating_sub(base),
            None => raw,
        }
    }

    /// Start a new measurement phase: subsequent snapshots only cover
    /// samples recorded from here on (snapshot-and-subtract — the live
    /// cells stay monotone, so a concurrent `record` is never torn).
    pub fn reset(&self) {
        let raw = self.raw_snapshot();
        *self.baseline.lock().unwrap_or_else(|p| p.into_inner()) = Some(raw);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// containing the ⌈q·count⌉-th smallest sample (≤ 6.25% above the true
    /// quantile; exact for values below 16). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // clamp to the observed maximum (the top bucket's upper
                // bound can overshoot the largest sample in it)
                return if self.max > 0 {
                    bucket_high(i).min(self.max)
                } else {
                    bucket_high(i)
                };
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Per-bucket difference (`self - base`), saturating at zero — the
    /// distribution recorded since `base` was taken.
    pub fn saturating_sub(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&base.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(base.count),
            sum: self.sum.saturating_sub(base.sum),
            // max is phase-local (the live cell is zeroed on reset);
            // subtracting maxima is meaningless, keep ours.
            max: self.max,
        }
    }

    /// Accumulate another snapshot into this one (bucket-wise add).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Summary as a JSON object:
    /// `{"count","sum_ns","mean_ns","p50_ns","p95_ns","p99_ns","max_ns"}`.
    pub fn to_json(&self) -> String {
        json::object([
            ("count", json::num_u(self.count)),
            ("sum_ns", json::num_u(self.sum)),
            ("mean_ns", json::num_f(self.mean())),
            ("p50_ns", json::num_u(self.p50())),
            ("p95_ns", json::num_u(self.p95())),
            ("p99_ns", json::num_u(self.p99())),
            ("max_ns", json::num_u(self.max)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_invertible() {
        let mut last = 0usize;
        for shift in 0..64u32 {
            for off in [0u64, 1, 7] {
                let v = (1u64 << shift).saturating_add(off << shift.saturating_sub(4));
                let i = bucket_index(v);
                assert!(i >= last || v < 16, "monotone at {v}");
                last = last.max(i);
                assert!(bucket_high(i) >= v || bucket_high(i) == u64::MAX);
                assert!(i < NUM_BUCKETS);
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        // exact small values
        for v in 0..16u64 {
            assert_eq!(bucket_high(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_relative_error_bounded() {
        for v in [100u64, 1_000, 50_000, 1_000_000, u64::MAX / 2] {
            let high = bucket_high(bucket_index(v));
            assert!(high >= v);
            assert!((high - v) as f64 <= v as f64 / 16.0 + 1.0, "{v} → {high}");
        }
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 100_000);
        let p50 = s.p50();
        assert!((46_000..=56_000).contains(&p50), "p50 = {p50}");
        let p99 = s.p99();
        assert!((95_000..=106_000).contains(&p99), "p99 = {p99}");
        assert!(s.p95() <= p99 && p99 <= s.max + s.max / 16);
        assert!((s.mean() - 50_500.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn reset_starts_a_new_phase() {
        let h = Histogram::new();
        h.record(1_000);
        h.record(2_000);
        h.reset();
        assert!(h.snapshot().is_empty());
        h.record(5_000);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 5_000);
        assert_eq!(s.max, 5_000);
        assert!(s.p50() >= 5_000);
    }

    #[test]
    fn concurrent_records_and_reset_never_desynchronize() {
        // The torn-reset regression: with store(0)-style resets a
        // concurrent record could leave count and sum permanently
        // inconsistent (count=1, sum=0). With snapshot-subtract the skew
        // is bounded by one in-flight sample per thread and disappears
        // once recording stops.
        const THREADS: u64 = 4;
        const PER: u64 = 5_000;
        const V: u64 = 1_000;
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..PER {
                        h.record(V);
                    }
                });
            }
            for _ in 0..50 {
                h.reset();
                let snap = h.snapshot();
                // mid-flight skew ≤ one sample per recording thread
                assert!(
                    snap.sum.abs_diff(snap.count * V) <= THREADS * V,
                    "count={}, sum={}",
                    snap.count,
                    snap.sum
                );
                std::thread::yield_now();
            }
        });
        // quiescent: phase totals are exactly consistent
        let snap = h.snapshot();
        assert_eq!(snap.sum, snap.count * V);
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.sum, 1_000_010);
    }

    #[test]
    fn json_summary_shape() {
        let h = Histogram::new();
        h.record(42);
        let j = h.snapshot().to_json();
        for key in ["count", "sum_ns", "mean_ns", "p50_ns", "p95_ns", "p99_ns", "max_ns"] {
            assert!(j.contains(&format!("\"{key}\"")), "{j}");
        }
    }
}
