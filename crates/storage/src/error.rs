//! Storage-layer errors.

use crate::value::ValueType;
use std::fmt;

/// Errors raised by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table with this name already exists in the catalog.
    DuplicateTable(String),
    /// No table with this name exists in the catalog.
    NoSuchTable(String),
    /// A schema declared the same column name twice.
    DuplicateColumn {
        /// Table (or qualifier) in which the duplicate appeared.
        table: String,
        /// The duplicated column name.
        column: String,
    },
    /// A referenced column does not exist in the schema.
    NoSuchColumn {
        /// The unresolved reference.
        column: String,
    },
    /// A column name resolved to more than one position.
    AmbiguousColumn {
        /// The ambiguous reference.
        column: String,
    },
    /// A tuple's arity does not match the schema's.
    ArityMismatch {
        /// Schema arity.
        expected: usize,
        /// Tuple arity.
        got: usize,
    },
    /// A tuple field's type does not match the column type.
    TypeMismatch {
        /// Offending column name.
        column: String,
        /// Declared column type.
        expected: ValueType,
        /// Actual value type (`None` for typeless values).
        got: Option<ValueType>,
    },
    /// Snapshot decoding failed (corrupt or truncated buffer).
    CorruptSnapshot(String),
    /// Filesystem I/O failed while saving or loading a snapshot.
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::DuplicateTable(n) => write!(f, "table '{n}' already exists"),
            StorageError::NoSuchTable(n) => write!(f, "no such table '{n}'"),
            StorageError::DuplicateColumn { table, column } => {
                write!(f, "duplicate column '{column}' in table '{table}'")
            }
            StorageError::NoSuchColumn { column } => write!(f, "no such column '{column}'"),
            StorageError::AmbiguousColumn { column } => {
                write!(f, "ambiguous column reference '{column}'")
            }
            StorageError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple arity {got} does not match schema arity {expected}"
                )
            }
            StorageError::TypeMismatch {
                column,
                expected,
                got,
            } => match got {
                Some(g) => write!(f, "column '{column}' expects {expected}, got {g}"),
                None => write!(
                    f,
                    "column '{column}' expects {expected}, got NULL-only value"
                ),
            },
            StorageError::CorruptSnapshot(msg) => write!(f, "corrupt snapshot: {msg}"),
            StorageError::Io(msg) => write!(f, "snapshot I/O error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            StorageError::NoSuchTable("t".into()).to_string(),
            "no such table 't'"
        );
        assert_eq!(
            StorageError::ArityMismatch {
                expected: 2,
                got: 3
            }
            .to_string(),
            "tuple arity 3 does not match schema arity 2"
        );
        let e = StorageError::TypeMismatch {
            column: "a".into(),
            expected: ValueType::Int,
            got: Some(ValueType::Str),
        };
        assert_eq!(e.to_string(), "column 'a' expects INT, got STRING");
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&StorageError::NoSuchTable("x".into()));
    }
}
