//! Database-state snapshots: deep copies of every table's bag, with a
//! compact binary encoding.
//!
//! Snapshots serve two roles in this reproduction:
//!
//! 1. **Time travel for verification.** The paper's correctness statements
//!    compare queries across states (`Q(s_p) = PAST(L,Q)(s_c)`). Tests take a
//!    snapshot at `s_p`, run transactions to reach `s_c`, and evaluate both
//!    sides.
//! 2. **Persistence.** [`Snapshot::encode`]/[`Snapshot::decode`] provide a
//!    stable binary format so long experiments can checkpoint state.

use crate::bag::Bag;
use crate::error::{Result, StorageError};
use crate::tuple::Tuple;
use crate::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A deep copy of a database state: table name → bag.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    bags: BTreeMap<String, Bag>,
}

impl Snapshot {
    /// Build from a name → bag map.
    pub fn from_bags(bags: BTreeMap<String, Bag>) -> Self {
        Snapshot { bags }
    }

    /// The bag recorded for `table`, if any.
    pub fn bag(&self, table: &str) -> Option<&Bag> {
        self.bags.get(table)
    }

    /// Iterate over `(name, bag)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Bag)> {
        self.bags.iter()
    }

    /// Number of tables recorded.
    pub fn len(&self) -> usize {
        self.bags.len()
    }

    /// Whether the snapshot records no tables.
    pub fn is_empty(&self) -> bool {
        self.bags.is_empty()
    }

    /// Tables whose contents differ between `self` and `other` (union of
    /// both key sets; a table missing on one side counts as empty).
    pub fn changed_tables(&self, other: &Snapshot) -> Vec<String> {
        let empty = Bag::new();
        let mut names: Vec<&String> = self.bags.keys().chain(other.bags.keys()).collect();
        names.sort();
        names.dedup();
        names
            .into_iter()
            .filter(|n| self.bags.get(*n).unwrap_or(&empty) != other.bags.get(*n).unwrap_or(&empty))
            .cloned()
            .collect()
    }

    // ---- binary format ----------------------------------------------------
    //
    //   u8  version (=1)
    //   u32 table count
    //   per table: str name, u32 distinct tuples,
    //     per tuple: u64 multiplicity, u16 arity, values
    //   value: u8 tag, payload (see encode_value)
    //   str: u32 length + UTF-8 bytes

    const VERSION: u8 = 1;

    /// Encode to a compact binary buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u8(Self::VERSION);
        buf.put_u32(self.bags.len() as u32);
        for (name, bag) in &self.bags {
            put_str(&mut buf, name);
            buf.put_u32(bag.distinct_len() as u32);
            for (tuple, mult) in bag.sorted_entries() {
                buf.put_u64(mult);
                buf.put_u16(tuple.arity() as u16);
                for v in tuple.values() {
                    encode_value(&mut buf, v);
                }
            }
        }
        buf.freeze()
    }

    /// Decode a buffer produced by [`Snapshot::encode`].
    pub fn decode(mut buf: Bytes) -> Result<Self> {
        let version = get_u8(&mut buf)?;
        if version != Self::VERSION {
            return Err(StorageError::CorruptSnapshot(format!(
                "unsupported version {version}"
            )));
        }
        let ntables = get_u32(&mut buf)? as usize;
        let mut bags = BTreeMap::new();
        for _ in 0..ntables {
            let name = get_str(&mut buf)?;
            let ntuples = get_u32(&mut buf)? as usize;
            let mut bag = Bag::with_capacity(ntuples);
            for _ in 0..ntuples {
                let mult = get_u64(&mut buf)?;
                let arity = get_u16(&mut buf)? as usize;
                let mut vals = Vec::with_capacity(arity);
                for _ in 0..arity {
                    vals.push(decode_value(&mut buf)?);
                }
                bag.insert_n(Tuple::new(vals), mult);
            }
            bags.insert(name, bag);
        }
        if buf.has_remaining() {
            return Err(StorageError::CorruptSnapshot(format!(
                "{} trailing bytes",
                buf.remaining()
            )));
        }
        Ok(Snapshot { bags })
    }
}

impl Snapshot {
    /// Persist the binary encoding to a file (atomic: written to a
    /// temporary sibling then renamed).
    pub fn save_to(&self, path: &std::path::Path) -> Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.encode()).map_err(|e| StorageError::Io(e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| StorageError::Io(e.to_string()))
    }

    /// Load a snapshot previously written by [`Snapshot::save_to`].
    pub fn load_from(path: &std::path::Path) -> Result<Snapshot> {
        let data = std::fs::read(path).map_err(|e| StorageError::Io(e.to_string()))?;
        Snapshot::decode(Bytes::from(data))
    }
}

fn encode_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(2);
            buf.put_i64(*i);
        }
        Value::Double(d) => {
            buf.put_u8(3);
            buf.put_u64(d.to_bits());
        }
        Value::Str(s) => {
            buf.put_u8(4);
            put_str(buf, s);
        }
    }
}

fn decode_value(buf: &mut Bytes) -> Result<Value> {
    match get_u8(buf)? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Bool(get_u8(buf)? != 0)),
        2 => Ok(Value::Int(get_u64(buf)? as i64)),
        3 => Ok(Value::Double(f64::from_bits(get_u64(buf)?))),
        4 => Ok(Value::Str(Arc::from(get_str(buf)?.as_str()))),
        tag => Err(StorageError::CorruptSnapshot(format!(
            "unknown value tag {tag}"
        ))),
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn need(buf: &Bytes, n: usize) -> Result<()> {
    if buf.remaining() < n {
        Err(StorageError::CorruptSnapshot(format!(
            "need {n} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

fn get_u8(buf: &mut Bytes) -> Result<u8> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut Bytes) -> Result<u16> {
    need(buf, 2)?;
    Ok(buf.get_u16())
}

fn get_u32(buf: &mut Bytes) -> Result<u32> {
    need(buf, 4)?;
    Ok(buf.get_u32())
}

fn get_u64(buf: &mut Bytes) -> Result<u64> {
    need(buf, 8)?;
    Ok(buf.get_u64())
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    let len = get_u32(buf)? as usize;
    need(buf, len)?;
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec())
        .map_err(|e| StorageError::CorruptSnapshot(format!("bad utf8: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn sample() -> Snapshot {
        let mut r = Bag::new();
        r.insert_n(tuple![1, "a"], 2);
        r.insert_n(tuple![2, "b"], 1);
        let mut s = Bag::new();
        s.insert_n(
            Tuple::new(vec![Value::Null, Value::Bool(true), Value::Double(1.25)]),
            7,
        );
        let mut bags = BTreeMap::new();
        bags.insert("r".to_string(), r);
        bags.insert("s".to_string(), s);
        Snapshot::from_bags(bags)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample();
        let bytes = snap.encode();
        let back = Snapshot::decode(bytes).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn empty_roundtrip() {
        let snap = Snapshot::default();
        assert_eq!(Snapshot::decode(snap.encode()).unwrap(), snap);
    }

    #[test]
    fn truncated_buffer_errors() {
        let bytes = sample().encode();
        for cut in [0, 1, 5, bytes.len() - 1] {
            let truncated = bytes.slice(0..cut);
            assert!(
                Snapshot::decode(truncated).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_errors() {
        let mut buf = BytesMut::from(&sample().encode()[..]);
        buf.put_u8(0xff);
        assert!(Snapshot::decode(buf.freeze()).is_err());
    }

    #[test]
    fn bad_version_errors() {
        let mut buf = BytesMut::from(&sample().encode()[..]);
        buf[0] = 99;
        assert!(Snapshot::decode(buf.freeze()).is_err());
    }

    #[test]
    fn changed_tables() {
        let a = sample();
        let mut b = a.clone();
        b.bags.get_mut("r").unwrap().insert(tuple![9, "z"]);
        assert_eq!(a.changed_tables(&b), vec!["r".to_string()]);
        assert!(a.changed_tables(&a).is_empty());
    }

    #[test]
    fn changed_tables_with_disjoint_keys() {
        let a = sample();
        let mut bags = BTreeMap::new();
        bags.insert("extra".to_string(), Bag::singleton(tuple![1]));
        let b = Snapshot::from_bags(bags);
        let changed = a.changed_tables(&b);
        assert!(changed.contains(&"extra".to_string()));
        assert!(changed.contains(&"r".to_string()));
    }

    #[test]
    fn missing_table_treated_as_empty_in_diff() {
        let mut bags = BTreeMap::new();
        bags.insert("t".to_string(), Bag::new());
        let a = Snapshot::from_bags(bags);
        let b = Snapshot::default();
        assert!(
            a.changed_tables(&b).is_empty(),
            "empty table equals missing table"
        );
    }

    #[test]
    fn file_roundtrip() {
        let snap = sample();
        let dir = std::env::temp_dir().join(format!("dvm-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.dvmsnap");
        snap.save_to(&path).unwrap();
        assert_eq!(Snapshot::load_from(&path).unwrap(), snap);
        // overwrite is atomic-ish: the tmp file does not linger
        snap.save_to(&path).unwrap();
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = Snapshot::load_from(std::path::Path::new("/nonexistent/xyz.snap"));
        assert!(matches!(err, Err(StorageError::Io(_))));
    }

    #[test]
    fn nan_survives_roundtrip() {
        let mut bags = BTreeMap::new();
        bags.insert(
            "t".to_string(),
            Bag::singleton(Tuple::new(vec![Value::Double(f64::NAN)])),
        );
        let snap = Snapshot::from_bags(bags);
        assert_eq!(Snapshot::decode(snap.encode()).unwrap(), snap);
    }
}
