//! Crash-recovery fault injection: every interesting crash point — torn
//! frame, post-append-pre-fsync power loss, bit rot, crash mid-checkpoint
//! rename — must recover to a state where every view's invariant holds and
//! the database is indistinguishable from a never-crashed twin that simply
//! executed fewer transactions.
//!
//! The scripted workload below is chosen so that **each op appends exactly
//! one WAL record**; op `k` therefore carries LSN `k`, and a WAL prefix of
//! `k` complete frames recovers precisely `twin(k)`.

use dvm_algebra::{col, lit, AggCall, AggFunc, ColRef, Expr, Predicate};
use dvm_core::{Database, Minimality, Scenario};
use dvm_delta::Transaction;
use dvm_durability::{CrashFs, DurabilityPolicy, WalOptions};
use dvm_storage::{tuple, Schema, ValueType};
use dvm_testkit::Prop;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dvm-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn schema_ab() -> Schema {
    Schema::from_pairs(&[("a", ValueType::Int), ("b", ValueType::Int)])
}

fn def_r() -> Expr {
    Expr::table("r").select(Predicate::gt(col("b"), lit(2)))
}

fn def_s() -> Expr {
    Expr::table("s").select(Predicate::le(col("b"), lit(40)))
}

fn def_union() -> Expr {
    def_r().union(def_s())
}

fn def_agg() -> Expr {
    Expr::table("r").group_aggregate(
        vec![ColRef::new("a")],
        vec![
            AggCall::count_star(),
            AggCall::new(AggFunc::Sum, ColRef::new("b")),
            AggCall::new(AggFunc::Avg, ColRef::new("b")),
            AggCall::new(AggFunc::Min, ColRef::new("b")),
            AggCall::new(AggFunc::Max, ColRef::new("b")),
        ],
    )
}

type Op = (&'static str, fn(&Database));

/// The scripted workload: one WAL record per op, covering all four
/// scenarios, the shared epoch log, and every maintenance verb.
const OPS: &[Op] = &[
    ("create r", |db| {
        db.create_table("r", schema_ab()).unwrap();
    }),
    ("create s", |db| {
        db.create_table("s", schema_ab()).unwrap();
    }),
    ("view v_im", |db| {
        db.create_view("v_im", def_r(), Scenario::Immediate).unwrap();
    }),
    ("view v_bl", |db| {
        db.create_view("v_bl", def_r(), Scenario::BaseLog).unwrap();
    }),
    ("view v_dt", |db| {
        db.create_view("v_dt", def_s(), Scenario::DiffTable).unwrap();
    }),
    ("view v_c", |db| {
        db.create_view_with("v_c", def_union(), Scenario::Combined, Minimality::Strong)
            .unwrap();
    }),
    ("view v_sh", |db| {
        db.create_view_shared("v_sh", def_r(), Minimality::Weak)
            .unwrap();
    }),
    ("tx ins r", |db| {
        db.execute(
            &Transaction::new()
                .insert_tuple("r", tuple![1, 5])
                .insert_tuple("r", tuple![2, 1]),
        )
        .unwrap();
    }),
    ("tx ins s", |db| {
        db.execute(&Transaction::new().insert_tuple("s", tuple![3, 10]))
            .unwrap();
    }),
    ("tx move r", |db| {
        db.execute(
            &Transaction::new()
                .delete_tuple("r", tuple![2, 1])
                .insert_tuple("r", tuple![4, 7]),
        )
        .unwrap();
    }),
    ("propagate v_c", |db| {
        db.propagate("v_c").unwrap();
    }),
    ("tx ins s wide", |db| {
        db.execute(&Transaction::new().insert_tuple("s", tuple![5, 100]))
            .unwrap();
    }),
    ("partial_refresh v_c", |db| {
        db.partial_refresh("v_c").unwrap();
    }),
    ("tx del s", |db| {
        db.execute(&Transaction::new().delete_tuple("s", tuple![3, 10]))
            .unwrap();
    }),
    ("refresh v_bl", |db| {
        db.refresh("v_bl").unwrap();
    }),
    ("propagate v_sh", |db| {
        db.propagate("v_sh").unwrap();
    }),
    ("tx ins r late", |db| {
        db.execute(&Transaction::new().insert_tuple("r", tuple![6, 3]))
            .unwrap();
    }),
    ("refresh v_c", |db| {
        db.refresh("v_c").unwrap();
    }),
    ("vacuum", |db| {
        db.vacuum_shared_log();
    }),
    ("tx ins r tail", |db| {
        db.execute(&Transaction::new().insert_tuple("r", tuple![7, 9]))
            .unwrap();
    }),
    ("refresh v_sh", |db| {
        db.refresh("v_sh").unwrap();
    }),
    // Aggregate view under the same crash matrix: the WAL must replay
    // the γ definition (Expr codec tag 12), its diff tables, and every
    // maintenance verb so each cut recovers the exact possibly-stale
    // state of the never-crashed twin.
    ("view v_agg", |db| {
        db.create_view_with("v_agg", def_agg(), Scenario::Combined, Minimality::Weak)
            .unwrap();
    }),
    ("tx ins r agg", |db| {
        db.execute(
            &Transaction::new()
                .insert_tuple("r", tuple![1, 6])
                .insert_tuple("r", tuple![2, 2]),
        )
        .unwrap();
    }),
    ("propagate v_agg", |db| {
        db.propagate("v_agg").unwrap();
    }),
    ("tx del r extremum", |db| {
        // Removes group a=7's only row — its MIN and MAX — so replaying
        // this op forces the aggregate delta to retire a whole group;
        // v_agg stays stale until the next op refreshes it.
        db.execute(
            &Transaction::new()
                .delete_tuple("r", tuple![7, 9])
                .insert_tuple("r", tuple![1, 4]),
        )
        .unwrap();
    }),
    ("refresh v_agg", |db| {
        db.refresh("v_agg").unwrap();
    }),
];

fn apply_ops(db: &Database, n: usize) {
    for (name, op) in &OPS[..n] {
        let _ = name;
        op(db);
    }
}

/// A never-crashed in-memory twin that ran the first `n` ops.
fn twin(n: usize) -> Database {
    let db = Database::new();
    apply_ops(&db, n);
    db
}

/// Recovered state must be indistinguishable from the twin: same tables
/// (bases, MVs, logs, differentials — `Internal` tables included), same
/// views with the same materializations and read-through answers, same
/// shared-log backlog, and every invariant intact.
fn assert_equiv(got: &Database, want: &Database, ctx: &str) {
    assert_eq!(
        got.catalog().table_names(),
        want.catalog().table_names(),
        "{ctx}: table set"
    );
    for name in got.catalog().table_names() {
        assert_eq!(
            got.catalog().bag_of(&name).unwrap(),
            want.catalog().bag_of(&name).unwrap(),
            "{ctx}: table {name}"
        );
    }
    assert_eq!(got.view_names(), want.view_names(), "{ctx}: view set");
    for v in got.view_names() {
        assert_eq!(
            got.query_view(&v).unwrap(),
            want.query_view(&v).unwrap(),
            "{ctx}: MV of {v}"
        );
        assert_eq!(
            got.read_through(&v).unwrap(),
            want.read_through(&v).unwrap(),
            "{ctx}: read_through {v}"
        );
    }
    assert_eq!(
        got.shared_log_stats(),
        want.shared_log_stats(),
        "{ctx}: shared log"
    );
    let failures = got.check_all_invariants().unwrap();
    assert!(failures.is_empty(), "{ctx}: invariants broken: {failures:?}");
}

/// The acceptance bar beyond state equality: after recovery the engine must
/// keep working — a fresh transaction and a full refresh land the recovered
/// database and the twin on identical, invariant-clean states.
fn assert_equiv_after_resume(got: &Database, want: &Database, ctx: &str) {
    let tx = Transaction::new().insert_tuple("r", tuple![9, 9]);
    got.execute(&tx).unwrap();
    want.execute(&tx).unwrap();
    got.refresh_all().unwrap();
    want.refresh_all().unwrap();
    for v in got.view_names() {
        assert_eq!(
            got.query_view(&v).unwrap(),
            want.query_view(&v).unwrap(),
            "{ctx}: post-resume MV of {v}"
        );
    }
    let failures = got.check_all_invariants().unwrap();
    assert!(failures.is_empty(), "{ctx}: post-resume invariants: {failures:?}");
}

fn wal_off() -> WalOptions {
    WalOptions {
        policy: DurabilityPolicy::Off,
        segment_bytes: 1 << 20,
    }
}

/// Build the full scripted workload durably at `dir` and return the frame
/// boundaries of its (single) WAL segment.
fn build_base(dir: &PathBuf) -> Vec<u64> {
    let db = Database::open_with_options(dir, wal_off()).unwrap();
    apply_ops(&db, OPS.len());
    drop(db);
    let tail = CrashFs::tail_segment(dir).unwrap().expect("wal segment");
    let bounds = CrashFs::frame_boundaries(&tail).unwrap();
    assert_eq!(bounds.len(), OPS.len() + 1, "one frame per op");
    bounds
}

#[test]
fn torn_tail_matrix_recovers_at_every_crash_point() {
    let base = tmpdir("matrix");
    let bounds = build_base(&base);

    // Crash points: every frame boundary (clean prefix) plus two cuts
    // strictly inside every frame (torn length field, torn payload).
    let mut cuts: Vec<(u64, usize, bool)> = Vec::new(); // (cut, expected ops, torn?)
    for k in 0..OPS.len() + 1 {
        cuts.push((bounds[k], k, false));
        if k < OPS.len() {
            cuts.push((bounds[k] + 1, k, true));
            if bounds[k + 1] - 1 > bounds[k] + 1 {
                cuts.push((bounds[k + 1] - 1, k, true));
            }
        }
    }

    for (i, &(cut, expect, torn)) in cuts.iter().enumerate() {
        let clone = tmpdir(&format!("matrix-{i}"));
        CrashFs::clone_dir(&base, &clone).unwrap();
        CrashFs::truncate_wal_tail(&clone, cut).unwrap();

        let ctx = format!("cut at byte {cut} ({expect} ops survive)");
        let recovered = Database::open_with_options(&clone, wal_off())
            .unwrap_or_else(|e| panic!("{ctx}: open failed: {e}"));
        let report = recovered.recovery_report().unwrap();
        assert_eq!(report.checkpoint_lsn, 0, "{ctx}");
        assert_eq!(report.wal_records_replayed, expect as u64, "{ctx}");
        assert_eq!(report.wal_bytes_replayed, bounds[expect] - bounds[0], "{ctx}");
        assert_eq!(report.torn_bytes_dropped, cut - bounds[expect], "{ctx}");
        assert_eq!(report.torn_bytes_dropped > 0, torn, "{ctx}");

        let reference = twin(expect);
        assert_equiv(&recovered, &reference, &ctx);
        // Resuming work is only meaningful once the base tables exist.
        if expect >= 2 {
            assert_equiv_after_resume(&recovered, &reference, &ctx);
        }
        let _ = std::fs::remove_dir_all(&clone);
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn power_loss_drops_exactly_the_unsynced_suffix() {
    let dir = tmpdir("unsynced");
    let db = Database::open_with_options(
        &dir,
        WalOptions {
            policy: DurabilityPolicy::EveryN(4),
            segment_bytes: 1 << 20,
        },
    )
    .unwrap();
    apply_ops(&db, OPS.len());
    let (status, _) = db.wal_status().unwrap();
    assert!(
        status.synced_lsn < OPS.len() as u64,
        "workload must end between fsync batches for this test to bite"
    );

    // Crash with the write-back cache lost: clone while the original is
    // still live, then discard everything past the last fsync.
    let clone = tmpdir("unsynced-crash");
    CrashFs::clone_dir(&dir, &clone).unwrap();
    CrashFs::drop_unsynced(&clone, status.active_synced_bytes).unwrap();
    drop(db);

    let recovered = Database::open(&clone).unwrap();
    let report = recovered.recovery_report().unwrap();
    assert_eq!(report.wal_records_replayed, status.synced_lsn);
    assert_eq!(report.torn_bytes_dropped, 0, "fsync boundary is a clean cut");
    let reference = twin(status.synced_lsn as usize);
    assert_equiv(&recovered, &reference, "power loss at fsync boundary");
    assert_equiv_after_resume(&recovered, &reference, "power loss at fsync boundary");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&clone);
}

#[test]
fn bit_rot_in_tail_drops_the_corrupted_suffix() {
    let base = tmpdir("rot");
    let bounds = build_base(&base);

    // Corrupt (a) the last frame's payload and (b) an interior frame's CRC
    // region; scanning stops at the first bad frame, so recovery keeps the
    // valid prefix in both cases.
    let last = OPS.len();
    for (i, &(offset, expect)) in [
        (bounds[last - 1] + 16, last - 1), // payload byte of the final frame
        (bounds[4] + 12, 4),               // CRC byte of frame 5
    ]
    .iter()
    .enumerate()
    {
        let clone = tmpdir(&format!("rot-{i}"));
        CrashFs::clone_dir(&base, &clone).unwrap();
        CrashFs::corrupt_wal_byte(&clone, offset).unwrap();

        let ctx = format!("bit rot at byte {offset}");
        let recovered = Database::open_with_options(&clone, wal_off()).unwrap();
        let report = recovered.recovery_report().unwrap();
        assert_eq!(report.wal_records_replayed, expect as u64, "{ctx}");
        assert!(report.torn_bytes_dropped > 0, "{ctx}");
        assert_equiv(&recovered, &twin(expect), &ctx);
        let _ = std::fs::remove_dir_all(&clone);
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn checkpoint_crash_points_recover() {
    const CKPT_AT: usize = 14;
    let base = tmpdir("ckpt");
    let db = Database::open_with_options(&base, wal_off()).unwrap();
    apply_ops(&db, CKPT_AT);
    let lsn = db.checkpoint().unwrap();
    assert_eq!(lsn, CKPT_AT as u64, "one WAL record per op before the cut");
    for (_, op) in &OPS[CKPT_AT..] {
        op(&db);
    }
    drop(db);

    // (a) Clean restart: checkpoint + full WAL suffix.
    {
        let clone = tmpdir("ckpt-clean");
        CrashFs::clone_dir(&base, &clone).unwrap();
        let recovered = Database::open_with_options(&clone, wal_off()).unwrap();
        let report = recovered.recovery_report().unwrap();
        assert_eq!(report.checkpoint_lsn, CKPT_AT as u64);
        assert_eq!(report.wal_records_replayed, (OPS.len() - CKPT_AT) as u64);
        assert_equiv(&recovered, &twin(OPS.len()), "clean restart from checkpoint");
        let _ = std::fs::remove_dir_all(&clone);
    }

    // (b) Crash mid-checkpoint: a partial successor checkpoint sits in
    // checkpoint.dvm.tmp, never renamed. Recovery ignores and removes it.
    {
        let clone = tmpdir("ckpt-tmp");
        CrashFs::clone_dir(&base, &clone).unwrap();
        CrashFs::partial_checkpoint_tmp(&clone, &[0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
        let recovered = Database::open_with_options(&clone, wal_off()).unwrap();
        assert_eq!(
            recovered.recovery_report().unwrap().checkpoint_lsn,
            CKPT_AT as u64
        );
        assert_equiv(&recovered, &twin(OPS.len()), "partial checkpoint tmp");
        assert!(
            !clone.join(dvm_durability::CHECKPOINT_TMP).exists(),
            "stale tmp must be cleared"
        );
        let _ = std::fs::remove_dir_all(&clone);
    }

    // (c) Torn tail after the checkpoint: cutting below the checkpoint LSN
    // loses nothing the checkpoint already holds; cutting above it loses
    // only the torn suffix.
    {
        let tail = CrashFs::tail_segment(&base).unwrap().unwrap();
        let bounds = CrashFs::frame_boundaries(&tail).unwrap();
        for &(k, mid) in &[(8usize, true), (CKPT_AT, false), (OPS.len() - 2, true)] {
            let cut = if mid { bounds[k] + 3 } else { bounds[k] };
            let clone = tmpdir(&format!("ckpt-torn-{k}"));
            CrashFs::clone_dir(&base, &clone).unwrap();
            CrashFs::truncate_wal_tail(&clone, cut).unwrap();
            let recovered = Database::open_with_options(&clone, wal_off()).unwrap();
            let expect = k.max(CKPT_AT);
            let ctx = format!("torn tail at frame {k} with checkpoint at {CKPT_AT}");
            assert_eq!(
                recovered.recovery_report().unwrap().wal_records_replayed,
                (expect - CKPT_AT) as u64,
                "{ctx}"
            );
            let reference = twin(expect);
            assert_equiv(&recovered, &reference, &ctx);
            assert_equiv_after_resume(&recovered, &reference, &ctx);
            let _ = std::fs::remove_dir_all(&clone);
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn vacuum_never_truncates_past_the_checkpoint() {
    // Tiny segments force rotation, so sealed segments exist for vacuum
    // and checkpoint to (not) reclaim.
    let options = WalOptions {
        policy: DurabilityPolicy::Always,
        segment_bytes: 96,
    };
    let dir = tmpdir("vacuum");
    let db = Database::open_with_options(&dir, options).unwrap();
    apply_ops(&db, OPS.len());
    let (status, ckpt_lsn) = db.wal_status().unwrap();
    assert!(status.sealed_segments > 0, "workload must rotate segments");
    assert_eq!(ckpt_lsn, 0);

    // Without a checkpoint, vacuum may reclaim shared-log entries but must
    // not drop a single WAL segment — the WAL is the only copy.
    db.vacuum_shared_log();
    let (status2, _) = db.wal_status().unwrap();
    assert_eq!(
        status2.sealed_segments, status.sealed_segments,
        "no checkpoint ⇒ no WAL reclamation"
    );
    drop(db);
    let reference = {
        let t = twin(OPS.len());
        t.vacuum_shared_log();
        t
    };
    let recovered = Database::open_with_options(&dir, options).unwrap();
    assert_equiv(&recovered, &reference, "vacuum before any checkpoint");

    // After a checkpoint, the superseded segments go away; the tail (and
    // recovery) are unaffected.
    recovered.checkpoint().unwrap();
    let (status3, ckpt_lsn) = recovered.wal_status().unwrap();
    assert_eq!(status3.sealed_segments, 0, "checkpoint reclaims sealed WAL");
    assert!(ckpt_lsn > 0);
    recovered.execute(&Transaction::new().insert_tuple("r", tuple![8, 8]))
        .unwrap();
    recovered.vacuum_shared_log();
    drop(recovered);
    reference
        .execute(&Transaction::new().insert_tuple("r", tuple![8, 8]))
        .unwrap();
    reference.vacuum_shared_log();
    let reopened = Database::open_with_options(&dir, options).unwrap();
    assert_equiv(&reopened, &reference, "vacuum after checkpoint");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn save_to_dir_then_open_roundtrips() {
    // Export from a purely in-memory database…
    let db = twin(OPS.len());
    let dir = tmpdir("save");
    db.save_to_dir(&dir).unwrap();
    let reopened = Database::open(&dir).unwrap();
    let report = reopened.recovery_report().unwrap();
    assert_eq!(report.wal_records_replayed, 0, "snapshot carries everything");
    assert_equiv(&reopened, &db, "save_to_dir roundtrip");
    assert!(reopened.is_durable() && !db.is_durable());

    // …and re-export from the recovered database into a dirty directory
    // (stale WAL segments from a previous life must not replay on top).
    reopened
        .execute(&Transaction::new().insert_tuple("r", tuple![8, 8]))
        .unwrap();
    let other = tmpdir("save-other");
    {
        let scratch = Database::open(&other).unwrap();
        scratch.create_table("junk", schema_ab()).unwrap();
    }
    reopened.save_to_dir(&other).unwrap();
    let third = Database::open(&other).unwrap();
    assert_equiv(&third, &reopened, "export over a dirty directory");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&other);
}

#[test]
fn clean_close_property_roundtrip() {
    let case = std::sync::atomic::AtomicUsize::new(0);
    Prop::new("durable-roundtrip").cases(4).run(|rng| {
        let i = case.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let dir = tmpdir(&format!("prop-{i}"));
        let policy = match rng.below(3) {
            0 => DurabilityPolicy::Always,
            1 => DurabilityPolicy::EveryN(1 + rng.below(8)),
            _ => DurabilityPolicy::Off,
        };
        let options = WalOptions {
            policy,
            segment_bytes: 256 + rng.below(4096),
        };
        let db = Database::open_with_options(&dir, options).unwrap();
        let mem = Database::new();
        for d in [&db, &mem] {
            d.create_table("r", schema_ab()).unwrap();
            d.create_table("s", schema_ab()).unwrap();
            d.create_view("v_bl", def_r(), Scenario::BaseLog).unwrap();
            d.create_view_with("v_c", def_union(), Scenario::Combined, Minimality::Weak)
                .unwrap();
            d.create_view_shared("v_sh", def_s(), Minimality::Strong)
                .unwrap();
            d.create_view_with("v_agg", def_agg(), Scenario::Combined, Minimality::Weak)
                .unwrap();
        }
        for _ in 0..30 {
            match rng.below(10) {
                0..=5 => {
                    // A random transaction, derived from the (identical)
                    // current state so deletes always hit live tuples.
                    let mut tx = Transaction::new();
                    for t in ["r", "s"] {
                        if rng.chance(1, 2) {
                            continue;
                        }
                        let current = mem.catalog().bag_of(t).unwrap();
                        let mut del = dvm_storage::Bag::new();
                        for (tuple, mult) in current.iter() {
                            if rng.chance(1, 4) {
                                del.insert_n(tuple.clone(), 1 + rng.below(mult));
                            }
                        }
                        tx = tx.delete(t, del);
                        for _ in 0..rng.below(3) {
                            tx = tx.insert_tuple(t, tuple![rng.range(0, 9), rng.range(0, 50)]);
                        }
                    }
                    db.execute(&tx).unwrap();
                    mem.execute(&tx).unwrap();
                }
                6 => {
                    let v = *rng.choice(&["v_bl", "v_c", "v_sh", "v_agg"]);
                    db.refresh(v).unwrap();
                    mem.refresh(v).unwrap();
                }
                7 => {
                    let v = *rng.choice(&["v_c", "v_sh", "v_agg"]);
                    db.propagate(v).unwrap();
                    mem.propagate(v).unwrap();
                }
                8 => {
                    db.vacuum_shared_log();
                    mem.vacuum_shared_log();
                }
                _ => {
                    // Checkpoints are logically invisible; only the durable
                    // database takes one.
                    db.checkpoint().unwrap();
                }
            }
        }
        drop(db);
        let reopened = Database::open_with_options(&dir, options).unwrap();
        assert_equiv(&reopened, &mem, "property roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// Crash at every frame boundary (and inside every frame) of a
/// group-committed batch: `execute_batch` appends one WAL frame per
/// batched transaction in serialization order and syncs once at the end,
/// so a crash mid-batch must lose exactly a suffix — the recovered
/// database is indistinguishable from a twin that executed just the
/// surviving prefix per-op.
#[test]
fn group_commit_crash_matrix_recovers_batch_prefix() {
    const BATCH: usize = 6;
    const PRELUDE_FRAMES: usize = 3;
    let prelude = |db: &Database| {
        db.create_table("r", schema_ab()).unwrap();
        db.create_view_with("v_c", def_r(), Scenario::Combined, Minimality::Weak)
            .unwrap();
        db.execute(&Transaction::new().insert_tuple("r", tuple![0, 9]))
            .unwrap();
    };
    let batch: Vec<Transaction> = (0..BATCH as i64)
        .map(|i| {
            let tx = Transaction::new().insert_tuple("r", tuple![i + 1, i + 3]);
            if i == 4 {
                // A return inside the batch: deletes a row an earlier
                // batched transaction inserted, so prefix recovery must
                // preserve the insert-before-delete order.
                tx.delete_tuple("r", tuple![2, 4])
            } else {
                tx
            }
        })
        .collect();

    let base = tmpdir("group-base");
    let db = Database::open_with_options(&base, wal_off()).unwrap();
    prelude(&db);
    db.execute_batch(&batch).unwrap();
    drop(db);
    let tail = CrashFs::tail_segment(&base).unwrap().expect("wal segment");
    let bounds = CrashFs::frame_boundaries(&tail).unwrap();
    assert_eq!(
        bounds.len(),
        PRELUDE_FRAMES + BATCH + 1,
        "one frame per batched transaction"
    );

    let twin_prefix = |k: usize| {
        let t = Database::new();
        prelude(&t);
        for tx in &batch[..k] {
            t.execute(tx).unwrap();
        }
        t
    };

    for k in 0..=BATCH {
        let frame = PRELUDE_FRAMES + k;
        let mut cuts = vec![bounds[frame]]; // crash exactly at the boundary
        if k < BATCH {
            cuts.push(bounds[frame] + 1); // torn header of batched tx k+1
            cuts.push(bounds[frame + 1] - 1); // torn payload of batched tx k+1
        }
        for (j, &cut) in cuts.iter().enumerate() {
            let clone = tmpdir(&format!("group-{k}-{j}"));
            CrashFs::clone_dir(&base, &clone).unwrap();
            CrashFs::truncate_wal_tail(&clone, cut).unwrap();
            let ctx = format!("crash after {k}/{BATCH} batched txs (cut at byte {cut})");
            let recovered = Database::open_with_options(&clone, wal_off())
                .unwrap_or_else(|e| panic!("{ctx}: open failed: {e}"));
            assert_eq!(
                recovered.recovery_report().unwrap().wal_records_replayed,
                (PRELUDE_FRAMES + k) as u64,
                "{ctx}"
            );
            let reference = twin_prefix(k);
            assert_equiv(&recovered, &reference, &ctx);
            assert_equiv_after_resume(&recovered, &reference, &ctx);
            let _ = std::fs::remove_dir_all(&clone);
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}
