//! # dvm-algebra — the bag algebra `BA`
//!
//! The query language of *"Algorithms for Deferred View Maintenance"*
//! (Section 2): flat bags of tuples under selection `σ`, projection `Π`,
//! duplicate elimination `ε`, additive union `⊎`, monus `∸`, and product
//! `×`, with the derived operations `EXCEPT`, `min`, and `max`.
//!
//! Layers:
//!
//! * [`expr`] — the logical AST with fluent constructors;
//! * [`predicate`] — quantifier-free predicates over named columns;
//! * [`infer`] — schema inference and compilation to positional plans;
//! * [`plan`] / [`eval`](mod@eval) — physical plans evaluated against pinned catalog
//!   state, snapshots, or plain maps;
//! * [`simplify`](mod@simplify) — `φ`-propagation and constant folding (what keeps
//!   incremental queries small);
//! * [`subst`] — general and factored substitutions, whose two readings are
//!   the paper's `FUTURE(T,Q)` and `PAST(L,Q)`.

#![warn(missing_docs)]

pub mod aggregate;
pub mod display;
pub mod error;
pub mod eval;
pub mod explain;
pub mod expr;
pub mod infer;
pub mod plan;
pub mod plan_opt;
pub mod predicate;
pub mod simplify;
pub mod subst;
pub mod testgen;

pub use aggregate::{group_aggregate_bag, group_entry, AggCall, AggFunc, GroupAggregateState};
pub use error::{AlgebraError, Result};
pub use eval::{
    eval, eval_in_catalog, eval_mode, eval_reference, eval_streaming, set_eval_mode, BagSource,
    EvalMode, PinnedState,
};
pub use explain::{explain_plan, explain_query};
pub use expr::Expr;
pub use infer::{compile, compile_unoptimized, infer_schema, CompiledQuery, SchemaProvider};
pub use plan::Plan;
pub use plan_opt::{fuse, FusedOp, FusedPlan, FusedSource};
pub use predicate::{col, lit, lit_str, CmpOp, ColRef, Operand, Predicate};
pub use simplify::simplify;
pub use subst::{FactoredSubstitution, Substitution};
