//! Grouping aggregates: COUNT / SUM / AVG / MIN / MAX over grouping keys.
//!
//! Two evaluation paths share one set of scalar accumulators ([`AggAcc`]):
//!
//! * [`group_aggregate_bag`] — the from-scratch evaluation both executors
//!   (streaming and reference) call for the `GroupAggregate` pipeline
//!   breaker, and the oracle every incremental result is checked against;
//! * [`GroupAggregateState`] — a **count-annotated** incremental maintainer:
//!   each group carries its total row multiplicity plus per-aggregate
//!   accumulators, so an insert/delete delta updates in O(|Δ|). MIN/MAX keep
//!   the current per-group extremum with its multiplicity and fall back to a
//!   re-scan of the group's retained rows only when the extremum's
//!   multiplicity drops to zero.
//!
//! Semantics match SQL `GROUP BY`:
//!
//! * NULL group keys group together (structural tuple equality, not the
//!   three-valued `=` of predicates);
//! * `COUNT(*)` counts rows (multiplicity-weighted), `COUNT(c)` counts
//!   non-NULL values of `c`; SUM/AVG/MIN/MAX skip NULLs and yield NULL on
//!   an all-NULL group;
//! * groups with no remaining rows vanish from the output;
//! * SUM over an INT column stays INT; any DOUBLE contribution coerces the
//!   result to DOUBLE (tracked by a count, so deleting the last double row
//!   restores INT output exactly as a recompute would); AVG is always
//!   DOUBLE.
//!
//! MIN/MAX compare with the storage total order ([`Value::cmp`]), which
//! restricted to one typed column coincides with SQL comparison and keeps
//! both evaluation paths deterministic.

use crate::predicate::ColRef;
use dvm_storage::{Bag, FxHashMap, Tuple, Value};
use std::cmp::Ordering;
use std::fmt;

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(c)`.
    Count,
    /// `SUM(c)` over a numeric column.
    Sum,
    /// `AVG(c)` over a numeric column (always DOUBLE).
    Avg,
    /// `MIN(c)`.
    Min,
    /// `MAX(c)`.
    Max,
}

impl AggFunc {
    /// Lower-case SQL name (`count`, `sum`, …).
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One aggregate in a `GroupAggregate`'s select list: a function plus its
/// argument column (`None` only for `COUNT(*)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggCall {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument column; `None` means `COUNT(*)`.
    pub arg: Option<ColRef>,
}

impl AggCall {
    /// `COUNT(*)`.
    pub fn count_star() -> AggCall {
        AggCall {
            func: AggFunc::Count,
            arg: None,
        }
    }

    /// `func(col)`.
    pub fn new(func: AggFunc, arg: ColRef) -> AggCall {
        AggCall {
            func,
            arg: Some(arg),
        }
    }

    /// Generated output column name: `count` for `COUNT(*)`, otherwise
    /// `{func}_{column}` (`sum_b`, `min_quantity`, …).
    pub fn output_name(&self) -> String {
        match &self.arg {
            None => "count".to_string(),
            Some(c) => format!("{}_{}", self.func.name(), c.name),
        }
    }
}

impl fmt::Display for AggCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            None => write!(f, "count(*)"),
            Some(c) => write!(f, "{}({c})", self.func),
        }
    }
}

/// Get-or-insert-default on a slice-keyed group map, looking up by borrowed
/// key so the boxed key is only allocated the first time a group appears.
/// This is the one grouping primitive shared by the aggregate accumulators
/// and both hash-join build paths in `eval.rs`.
pub fn group_entry<'m, V: Default>(
    map: &'m mut FxHashMap<Box<[Value]>, V>,
    key: &[Value],
) -> &'m mut V {
    if !map.contains_key(key) {
        map.insert(key.to_vec().into_boxed_slice(), V::default());
    }
    map.get_mut(key).expect("group key just ensured")
}

/// Per-(group, aggregate) scalar accumulator. One shape serves every
/// function; unused fields stay zero.
#[derive(Debug, Clone, Default)]
struct AggAcc {
    /// Total multiplicity of rows whose argument is non-NULL.
    nonnull: u64,
    /// Integer part of the running sum.
    sum_i: i64,
    /// Double part of the running sum.
    sum_f: f64,
    /// Multiplicity of rows that contributed a DOUBLE (coercion marker —
    /// counted, not latched, so deletes can restore INT output).
    doubles: u64,
    /// Current extremum for MIN/MAX.
    ext: Option<Value>,
    /// Multiplicity of rows whose argument equals the extremum.
    ext_mult: u64,
}

impl AggAcc {
    /// Fold `m` copies of argument value `v` in.
    fn add(&mut self, func: AggFunc, v: &Value, m: u64) {
        if v.is_null() {
            return;
        }
        self.nonnull += m;
        match func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => match v {
                Value::Int(x) => self.sum_i = self.sum_i.wrapping_add(x.wrapping_mul(m as i64)),
                Value::Double(x) => {
                    self.sum_f += x * m as f64;
                    self.doubles += m;
                }
                // Non-numeric SUM/AVG arguments are rejected at compile time.
                _ => {}
            },
            AggFunc::Min | AggFunc::Max => {
                let better = self.ext.as_ref().map(|e| match func {
                    AggFunc::Min => v.cmp(e) == Ordering::Less,
                    _ => v.cmp(e) == Ordering::Greater,
                });
                match better {
                    None | Some(true) => {
                        self.ext = Some(v.clone());
                        self.ext_mult = m;
                    }
                    Some(false) => {
                        if self.ext.as_ref() == Some(v) {
                            self.ext_mult += m;
                        }
                    }
                }
            }
        }
    }

    /// Remove `m` copies of argument value `v`. Returns `true` when the
    /// MIN/MAX extremum's multiplicity just dropped to zero and the caller
    /// must re-scan the group.
    fn sub(&mut self, func: AggFunc, v: &Value, m: u64) -> bool {
        if v.is_null() {
            return false;
        }
        self.nonnull -= m;
        match func {
            AggFunc::Count => false,
            AggFunc::Sum | AggFunc::Avg => {
                match v {
                    Value::Int(x) => {
                        self.sum_i = self.sum_i.wrapping_sub(x.wrapping_mul(m as i64));
                    }
                    Value::Double(x) => {
                        self.sum_f -= x * m as f64;
                        self.doubles -= m;
                        if self.doubles == 0 {
                            // All double contributions are gone; clear the
                            // residue so INT output is bit-exact again.
                            self.sum_f = 0.0;
                        }
                    }
                    _ => {}
                }
                false
            }
            AggFunc::Min | AggFunc::Max => {
                if self.ext.as_ref() == Some(v) {
                    self.ext_mult -= m;
                    if self.ext_mult == 0 {
                        self.ext = None;
                        return true;
                    }
                }
                false
            }
        }
    }

    /// Final output value; `group_total` is the group's total row
    /// multiplicity (for `COUNT(*)`).
    fn finalize(&self, func: AggFunc, arg: Option<usize>, group_total: u64) -> Value {
        match func {
            AggFunc::Count => match arg {
                None => Value::Int(group_total as i64),
                Some(_) => Value::Int(self.nonnull as i64),
            },
            AggFunc::Sum => {
                if self.nonnull == 0 {
                    Value::Null
                } else if self.doubles > 0 {
                    Value::Double(self.sum_i as f64 + self.sum_f)
                } else {
                    Value::Int(self.sum_i)
                }
            }
            AggFunc::Avg => {
                if self.nonnull == 0 {
                    Value::Null
                } else {
                    Value::Double((self.sum_i as f64 + self.sum_f) / self.nonnull as f64)
                }
            }
            AggFunc::Min | AggFunc::Max => self.ext.clone().unwrap_or(Value::Null),
        }
    }
}

/// Insert-only accumulation shared by [`group_aggregate_bag`] and the bulk
/// loader: fold one `(tuple, multiplicity)` into a group's accumulators.
fn accumulate(
    total: &mut u64,
    accs: &mut [AggAcc],
    aggs: &[(AggFunc, Option<usize>)],
    t: &Tuple,
    m: u64,
) {
    *total += m;
    for (acc, (func, arg)) in accs.iter_mut().zip(aggs) {
        if let Some(i) = arg {
            acc.add(*func, &t[*i], m);
        }
    }
}

/// Render one group's output row: key values followed by finalized
/// aggregates.
fn output_row(
    key: &[Value],
    total: u64,
    accs: &[AggAcc],
    aggs: &[(AggFunc, Option<usize>)],
) -> Tuple {
    let mut vals: Vec<Value> = Vec::with_capacity(key.len() + aggs.len());
    vals.extend_from_slice(key);
    for (acc, (func, arg)) in accs.iter().zip(aggs) {
        vals.push(acc.finalize(*func, *arg, total));
    }
    Tuple::new(vals)
}

/// From-scratch evaluation of `γ_{keys; aggs}(input)`: one output row per
/// non-empty group, multiplicity 1. This is the single definition of
/// aggregate semantics — the streaming executor, the reference evaluator
/// and the incremental oracle checks all call it.
pub fn group_aggregate_bag(input: &Bag, keys: &[usize], aggs: &[(AggFunc, Option<usize>)]) -> Bag {
    let mut groups: FxHashMap<Box<[Value]>, (u64, Vec<AggAcc>)> = FxHashMap::default();
    let mut scratch: Vec<Value> = Vec::with_capacity(keys.len());
    for (t, m) in input.iter() {
        scratch.clear();
        scratch.extend(keys.iter().map(|&i| t[i].clone()));
        let (total, accs) = group_entry(&mut groups, &scratch);
        if accs.is_empty() {
            accs.resize_with(aggs.len(), AggAcc::default);
        }
        accumulate(total, accs, aggs, t, m);
    }
    let mut out = Bag::new();
    for (key, (total, accs)) in &groups {
        out.insert(output_row(key, *total, accs, aggs));
    }
    out
}

/// One group's incremental state: total row multiplicity, retained rows
/// (the re-scan fallback source), and per-aggregate accumulators.
#[derive(Debug, Clone, Default)]
struct GroupState {
    total: u64,
    rows: FxHashMap<Tuple, u64>,
    accs: Vec<AggAcc>,
}

/// Count-annotated incremental maintainer for one `GroupAggregate`.
///
/// [`insert`](Self::insert) / [`delete`](Self::delete) cost O(1) per delta
/// tuple except when a delete removes the last copy of a group's MIN/MAX
/// extremum, which triggers a re-scan of that group's retained rows
/// (counted in [`rescans`](Self::rescans)). [`snapshot`](Self::snapshot)
/// renders the current output bag, bag-equal to
/// [`group_aggregate_bag`] over the maintained input — the property the
/// differential oracle tests enforce.
#[derive(Debug, Clone)]
pub struct GroupAggregateState {
    keys: Vec<usize>,
    aggs: Vec<(AggFunc, Option<usize>)>,
    groups: FxHashMap<Box<[Value]>, GroupState>,
    rescans: u64,
}

impl GroupAggregateState {
    /// Empty maintainer over the given key/aggregate positions.
    pub fn new(keys: Vec<usize>, aggs: Vec<(AggFunc, Option<usize>)>) -> Self {
        GroupAggregateState {
            keys,
            aggs,
            groups: FxHashMap::default(),
            rescans: 0,
        }
    }

    /// Bulk-load a maintainer from an initial input bag.
    pub fn from_bag(keys: Vec<usize>, aggs: Vec<(AggFunc, Option<usize>)>, input: &Bag) -> Self {
        let mut s = GroupAggregateState::new(keys, aggs);
        for (t, m) in input.iter() {
            s.insert(t, m);
        }
        s
    }

    fn key_of(&self, t: &Tuple) -> Vec<Value> {
        self.keys.iter().map(|&i| t[i].clone()).collect()
    }

    /// Fold `m` copies of input row `t` in.
    pub fn insert(&mut self, t: &Tuple, m: u64) {
        if m == 0 {
            return;
        }
        let key = self.key_of(t);
        let g = group_entry(&mut self.groups, &key);
        if g.accs.is_empty() {
            g.accs.resize_with(self.aggs.len(), AggAcc::default);
        }
        accumulate(&mut g.total, &mut g.accs, &self.aggs, t, m);
        *g.rows.entry(t.clone()).or_insert(0) += m;
    }

    /// Remove `m` copies of input row `t` (which must be present with at
    /// least that multiplicity — deltas are weakly minimal by the engine's
    /// boundary normalization).
    ///
    /// # Panics
    /// Panics when the row (or multiplicity) is not present.
    pub fn delete(&mut self, t: &Tuple, m: u64) {
        if m == 0 {
            return;
        }
        let key = self.key_of(t);
        let g = self
            .groups
            .get_mut(key.as_slice())
            .expect("delete of a row in an unknown group");
        let cur = g.rows.get_mut(t).expect("delete of an absent row");
        assert!(*cur >= m, "delete multiplicity exceeds retained count");
        *cur -= m;
        if *cur == 0 {
            g.rows.remove(t);
        }
        g.total -= m;
        if g.total == 0 {
            // The group vanished; no accumulator bookkeeping needed.
            self.groups.remove(key.as_slice());
            return;
        }
        let mut need_rescan: Vec<usize> = Vec::new();
        for (i, (acc, (func, arg))) in g.accs.iter_mut().zip(&self.aggs).enumerate() {
            if let Some(c) = arg {
                if acc.sub(*func, &t[*c], m) {
                    need_rescan.push(i);
                }
            }
        }
        // Fallback: the deleted value was the last copy of the extremum —
        // recompute MIN/MAX for exactly the affected aggregates from the
        // group's retained rows.
        for i in need_rescan {
            self.rescans += 1;
            let (func, arg) = self.aggs[i];
            let col = arg.expect("extremum aggregates always have an argument");
            let acc = &mut g.accs[i];
            acc.ext = None;
            acc.ext_mult = 0;
            for (row, mult) in &g.rows {
                let v = &row[col];
                if v.is_null() {
                    continue;
                }
                let better = match &acc.ext {
                    None => true,
                    Some(e) => match func {
                        AggFunc::Min => v.cmp(e) == Ordering::Less,
                        _ => v.cmp(e) == Ordering::Greater,
                    },
                };
                if better {
                    acc.ext = Some(v.clone());
                    acc.ext_mult = *mult;
                } else if acc.ext.as_ref() == Some(v) {
                    acc.ext_mult += *mult;
                }
            }
        }
    }

    /// Apply a weakly minimal delta pair: `del` first, then `add`.
    pub fn apply(&mut self, del: &Bag, add: &Bag) {
        for (t, m) in del.iter() {
            self.delete(t, m);
        }
        for (t, m) in add.iter() {
            self.insert(t, m);
        }
    }

    /// Render the current aggregate output (one row per live group).
    pub fn snapshot(&self) -> Bag {
        let mut out = Bag::new();
        for (key, g) in &self.groups {
            out.insert(output_row(key, g.total, &g.accs, &self.aggs));
        }
        out
    }

    /// Number of live groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// How many extremum re-scans deletes have forced so far.
    pub fn rescans(&self) -> u64 {
        self.rescans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_storage::tuple;

    fn agg_all() -> Vec<(AggFunc, Option<usize>)> {
        vec![
            (AggFunc::Count, None),
            (AggFunc::Count, Some(1)),
            (AggFunc::Sum, Some(1)),
            (AggFunc::Avg, Some(1)),
            (AggFunc::Min, Some(1)),
            (AggFunc::Max, Some(1)),
        ]
    }

    fn null_row(a: i64) -> Tuple {
        Tuple::new(vec![Value::Int(a), Value::Null])
    }

    #[test]
    fn recompute_groups_and_skips_nulls() {
        let mut b = Bag::new();
        b.insert_n(tuple![1, 10], 2);
        b.insert(tuple![1, 30]);
        b.insert(null_row(1));
        b.insert(null_row(2)); // NULL-only group
        let out = group_aggregate_bag(&b, &[0], &agg_all());
        assert_eq!(out.len(), 2);
        // group a=1: count(*)=4, count(b)=3, sum=50, avg=50/3, min=10, max=30
        assert!(out.contains(&Tuple::new(vec![
            Value::Int(1),
            Value::Int(4),
            Value::Int(3),
            Value::Int(50),
            Value::Double(50.0 / 3.0),
            Value::Int(10),
            Value::Int(30),
        ])));
        // group a=2 is all-NULL: count(*)=1, count(b)=0, rest NULL
        assert!(out.contains(&Tuple::new(vec![
            Value::Int(2),
            Value::Int(1),
            Value::Int(0),
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ])));
    }

    #[test]
    fn null_keys_group_together() {
        let mut b = Bag::new();
        b.insert(Tuple::new(vec![Value::Null, Value::Int(1)]));
        b.insert(Tuple::new(vec![Value::Null, Value::Int(2)]));
        let out = group_aggregate_bag(&b, &[0], &[(AggFunc::Count, None)]);
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::new(vec![Value::Null, Value::Int(2)])));
    }

    #[test]
    fn extremum_delete_triggers_rescan_and_recovers() {
        let mut s = GroupAggregateState::new(vec![0], vec![(AggFunc::Min, Some(1))]);
        s.insert(&tuple![1, 10], 1);
        s.insert(&tuple![1, 20], 2);
        assert_eq!(s.rescans(), 0);
        s.delete(&tuple![1, 10], 1);
        assert_eq!(s.rescans(), 1, "last copy of the minimum forces a re-scan");
        assert!(s.snapshot().contains(&tuple![1, 20]));
        // Deleting a non-extremum copy does not re-scan.
        s.delete(&tuple![1, 20], 1);
        assert_eq!(s.rescans(), 1);
        assert!(s.snapshot().contains(&tuple![1, 20]));
    }

    #[test]
    fn groups_vanish_at_zero() {
        let mut s = GroupAggregateState::new(vec![0], vec![(AggFunc::Count, None)]);
        s.insert(&tuple![7, 1], 3);
        s.delete(&tuple![7, 1], 3);
        assert_eq!(s.group_count(), 0);
        assert!(s.snapshot().is_empty());
    }

    #[test]
    fn sum_coerces_to_double_and_back() {
        let mut s = GroupAggregateState::new(vec![0], vec![(AggFunc::Sum, Some(1))]);
        s.insert(&tuple![1, 2], 1);
        s.insert(&tuple![1, 1.5], 1);
        assert!(s.snapshot().contains(&tuple![1, 3.5]));
        s.delete(&tuple![1, 1.5], 1);
        // The last double contribution is gone: output is INT again, exactly
        // as a recompute would produce.
        assert!(s.snapshot().contains(&tuple![1, 2]));
    }

    #[test]
    fn incremental_matches_recompute_on_random_streams() {
        use crate::testgen::Rng;
        let mut rng = Rng::new(0xA66);
        for _case in 0..200 {
            let aggs = agg_all();
            let mut state = GroupAggregateState::new(vec![0], aggs.clone());
            let mut base = Bag::new();
            for _op in 0..40 {
                if !base.is_empty() && rng.below(3) == 0 {
                    // Delete an existing row (possibly partially).
                    let rows: Vec<(Tuple, u64)> =
                        base.iter().map(|(t, m)| (t.clone(), m)).collect();
                    let (t, m) = &rows[rng.below(rows.len() as u64) as usize];
                    let k = 1 + rng.below(*m);
                    base.remove_n(t, k);
                    state.delete(t, k);
                } else {
                    let a = rng.below(3) as i64;
                    let b = match rng.below(5) {
                        0 => Value::Null,
                        1 => Value::Double(rng.below(8) as f64 / 2.0),
                        _ => Value::Int(rng.below(20) as i64 - 10),
                    };
                    let t = Tuple::new(vec![Value::Int(a), b]);
                    let m = 1 + rng.below(3);
                    base.insert_n(t.clone(), m);
                    state.insert(&t, m);
                }
                assert_eq!(
                    state.snapshot(),
                    group_aggregate_bag(&base, &[0], &aggs),
                    "incremental state diverged from recompute"
                );
            }
        }
    }

    #[test]
    fn output_names() {
        assert_eq!(AggCall::count_star().output_name(), "count");
        assert_eq!(
            AggCall::new(AggFunc::Sum, ColRef::new("b")).output_name(),
            "sum_b"
        );
        assert_eq!(AggCall::count_star().to_string(), "count(*)");
        assert_eq!(
            AggCall::new(AggFunc::Max, ColRef::qualified("s", "q")).to_string(),
            "max(s.q)"
        );
    }
}
