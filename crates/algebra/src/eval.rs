//! Plan evaluation: a pull-based streaming executor with a retained
//! materializing reference evaluator.
//!
//! Table contents come from a [`BagSource`]; the production source is
//! [`PinnedState`], which acquires one read lock per distinct table *up
//! front in sorted name order* — so a query never takes a recursive read
//! lock (self-joins scan the same pinned bag twice) and concurrent
//! evaluations cannot deadlock.
//!
//! Two evaluators share that interface:
//!
//! * [`eval_streaming`] (the default) executes the
//!   [`crate::plan_opt::fuse`]d plan: operators yield `(tuple,
//!   multiplicity)` pairs and fused `Filter`/`Project` chains run per
//!   tuple, so selective change queries allocate **no** intermediate bags.
//!   Pipeline breakers (`∸`, `ε`, `min`, `max`, `EXCEPT`, `×`) still
//!   materialize — with the exact same bag primitives the reference
//!   evaluator uses, so their multiplicity semantics (including `×`'s
//!   saturating arithmetic) cannot drift. Hash-join build sides are
//!   materialized once and, when the source exposes table epochs and a
//!   [`JoinBuildCache`], reused across evaluations and views.
//! * [`eval_reference`] is the original strict bottom-up materializing
//!   evaluator, kept as the differential-testing oracle and selectable at
//!   runtime via [`set_eval_mode`] for apples-to-apples benchmarks.
//!
//! Both normalize join keys identically: `Int` coerces to `Double` (so
//! hash-equality coincides with `sql_cmp`'s comparison coercion) and NULL
//! never joins.

use crate::aggregate::{group_aggregate_bag, group_entry};
use crate::error::Result;
use crate::infer::CompiledQuery;
use crate::plan::{PhysPredicate, Plan};
use crate::plan_opt::{fuse, FusedOp, FusedPlan, FusedSource};
use dvm_storage::lock::OwnedReadGuard;
use dvm_storage::{
    Bag, BuildDeps, Catalog, FxHashMap, JoinBuild, JoinBuildCache, Snapshot, StorageError, Tuple,
    Value,
};
use std::borrow::Cow;
use std::time::Instant;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Read access to named bags for the duration of one evaluation.
pub trait BagSource {
    /// Borrow the bag backing `table`.
    fn bag(&self, table: &str) -> Result<&Bag>;

    /// The data epoch of `table`'s contents, when known and guaranteed
    /// stable for this source's lifetime (e.g. read locks are held).
    /// `None` disables join-build caching for plans scanning the table.
    fn epoch_of(&self, _table: &str) -> Option<u64> {
        None
    }

    /// The join-build cache shared with other evaluations over the same
    /// underlying state, if any.
    fn join_cache(&self) -> Option<&JoinBuildCache> {
        None
    }

    /// Whether `table` is a *base* (external) table pinned at a stable
    /// epoch. Base tables change rarely relative to the engine's internal
    /// log/differential tables, so a join subtree scanning only base
    /// tables is the side worth building and caching. Implementations
    /// returning `true` must also report an epoch for the table.
    fn is_base(&self, _table: &str) -> bool {
        false
    }
}

/// A set of tables pinned with read locks for consistent evaluation.
///
/// Locks are acquired in sorted table-name order; drop the `PinnedState`
/// to release them. The pin map is keyed by the tables' shared `Arc<str>`
/// names (refcount bump, no string clone) and records each table's data
/// epoch, which — together with the catalog's [`JoinBuildCache`] — lets
/// repeated evaluations reuse hash-join build tables.
pub struct PinnedState {
    guards: FxHashMap<Arc<str>, PinnedTable>,
    cache: Option<Arc<JoinBuildCache>>,
}

struct PinnedTable {
    guard: OwnedReadGuard<Bag>,
    epoch: u64,
    is_base: bool,
}

impl PinnedState {
    /// Pin all `tables` from the catalog (sorted acquisition order).
    pub fn pin(catalog: &Catalog, tables: &BTreeSet<String>) -> Result<Self> {
        let mut guards = FxHashMap::default();
        guards.reserve(tables.len());
        for name in tables {
            let table = catalog.require(name)?;
            let guard = table.read_owned();
            // Read under the read guard: writers are excluded, so this
            // epoch describes exactly the pinned contents.
            let epoch = table.data_epoch();
            let is_base = table.kind() == dvm_storage::TableKind::External;
            guards.insert(table.name_shared(), PinnedTable { guard, epoch, is_base });
        }
        Ok(PinnedState {
            guards,
            cache: Some(Arc::clone(catalog.join_cache())),
        })
    }

    /// Pin exactly the tables a plan scans.
    pub fn pin_for(catalog: &Catalog, plan: &Plan) -> Result<Self> {
        Self::pin(catalog, &plan.tables())
    }
}

impl BagSource for PinnedState {
    fn bag(&self, table: &str) -> Result<&Bag> {
        self.guards
            .get(table)
            .map(|p| &*p.guard)
            .ok_or_else(|| StorageError::NoSuchTable(table.to_string()).into())
    }

    fn epoch_of(&self, table: &str) -> Option<u64> {
        self.guards.get(table).map(|p| p.epoch)
    }

    fn join_cache(&self) -> Option<&JoinBuildCache> {
        self.cache.as_deref()
    }

    fn is_base(&self, table: &str) -> bool {
        self.guards.get(table).is_some_and(|p| p.is_base)
    }
}

/// A [`BagSource`] that resolves some tables from runtime-bound
/// **parameter** bags and everything else from pinned catalog state.
///
/// This is what lets a plan be compiled once and re-executed against
/// fresh inputs: the compiled plan scans fixed table *names* (e.g. a
/// view's log tables), and each execution binds the current contents of
/// those names as parameters without recompiling. Parameter tables report
/// no epoch and are never "base" — their contents differ per execution,
/// so any join subtree scanning one is excluded from build caching, while
/// subtrees over purely pinned tables keep their stable epochs (and hence
/// their [`JoinBuildCache`] entries).
pub struct ParamSource<'a> {
    pinned: PinnedState,
    params: &'a HashMap<String, Bag>,
}

impl<'a> ParamSource<'a> {
    /// Wrap an already-pinned state with parameter bindings. The pinned
    /// set need not avoid the parameter names — parameters shadow pins.
    pub fn new(pinned: PinnedState, params: &'a HashMap<String, Bag>) -> Self {
        ParamSource { pinned, params }
    }

    /// Pin every table in `tables` that is not parameter-bound, then wrap.
    pub fn pin(
        catalog: &Catalog,
        tables: &BTreeSet<String>,
        params: &'a HashMap<String, Bag>,
    ) -> Result<Self> {
        let to_pin: BTreeSet<String> = tables
            .iter()
            .filter(|t| !params.contains_key(*t))
            .cloned()
            .collect();
        Ok(ParamSource {
            pinned: PinnedState::pin(catalog, &to_pin)?,
            params,
        })
    }
}

impl BagSource for ParamSource<'_> {
    fn bag(&self, table: &str) -> Result<&Bag> {
        match self.params.get(table) {
            Some(b) => Ok(b),
            None => self.pinned.bag(table),
        }
    }

    fn epoch_of(&self, table: &str) -> Option<u64> {
        // Parameter contents have no stable catalog epoch: reporting None
        // disables join-build caching for any subtree scanning them, while
        // subtrees over purely pinned tables stay cacheable.
        if self.params.contains_key(table) {
            None
        } else {
            self.pinned.epoch_of(table)
        }
    }

    fn join_cache(&self) -> Option<&JoinBuildCache> {
        self.pinned.join_cache()
    }

    fn is_base(&self, table: &str) -> bool {
        !self.params.contains_key(table) && self.pinned.is_base(table)
    }
}

impl BagSource for Snapshot {
    fn bag(&self, table: &str) -> Result<&Bag> {
        Snapshot::bag(self, table)
            .ok_or_else(|| StorageError::NoSuchTable(table.to_string()).into())
    }
}

impl BagSource for HashMap<String, Bag> {
    fn bag(&self, table: &str) -> Result<&Bag> {
        self.get(table)
            .ok_or_else(|| StorageError::NoSuchTable(table.to_string()).into())
    }
}

/// Which evaluator [`eval`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// The fused streaming executor (default).
    Streaming,
    /// The materializing reference evaluator (oracle / baseline).
    Reference,
}

static EVAL_MODE: AtomicU8 = AtomicU8::new(0);

/// Select the evaluator used by [`eval`] (process-wide). Intended for
/// benchmark binaries comparing the two executors; tests comparing them
/// should call [`eval_streaming`]/[`eval_reference`] directly instead, so
/// they stay correct under parallel test execution.
pub fn set_eval_mode(mode: EvalMode) {
    EVAL_MODE.store(mode as u8, Ordering::SeqCst);
}

/// The currently selected evaluator.
pub fn eval_mode() -> EvalMode {
    if EVAL_MODE.load(Ordering::SeqCst) == EvalMode::Reference as u8 {
        EvalMode::Reference
    } else {
        EvalMode::Streaming
    }
}

/// Evaluate a plan against a bag source, returning an owned bag. Dispatches
/// on [`eval_mode`] (streaming unless a benchmark flipped it).
pub fn eval(plan: &Plan, src: &dyn BagSource) -> Result<Bag> {
    match eval_mode() {
        EvalMode::Streaming => eval_streaming(plan, src),
        EvalMode::Reference => eval_reference(plan, src),
    }
}

/// Evaluate a compiled query against the current catalog state, pinning the
/// tables it reads.
pub fn eval_in_catalog(query: &CompiledQuery, catalog: &Catalog) -> Result<Bag> {
    let pinned = PinnedState::pin_for(catalog, &query.plan)?;
    eval(&query.plan, &pinned)
}

// ---- streaming executor ---------------------------------------------------

/// Evaluate with the fused streaming executor.
///
/// When `dvm_obs` profiling is enabled, the profiled twin runs instead: it
/// produces the identical bag while building an `EXPLAIN ANALYZE`-style
/// [`dvm_obs::OpProf`] tree (rows in/out and wall nanos per operator),
/// deposited in the calling thread's capture buffer for the maintenance
/// driver to claim. The disabled path pays one relaxed atomic load.
pub fn eval_streaming(plan: &Plan, src: &dyn BagSource) -> Result<Bag> {
    if dvm_obs::profiling_on() {
        let t = Instant::now();
        let (bag, mut tree) = prof::eval_to_bag_prof(plan, src)?;
        let bag = bag.into_owned();
        // Per-operator timers cannot see the driver's own work (pipeline
        // setup, result materialization, tree assembly), so lift the
        // root's inclusive time to the call's wall time — the difference
        // becomes root self time and the tree telescopes to what the
        // caller actually waited.
        tree.nanos = tree.nanos.max(t.elapsed().as_nanos() as u64);
        dvm_obs::profile::record_eval(tree);
        return Ok(bag);
    }
    Ok(eval_to_bag(plan, src)?.into_owned())
}

/// A pull-based stream of `(tuple, multiplicity)` pairs. Errors (missing
/// tables, multiplicity overflow) flow through as items.
type TupleStream<'s> = Box<dyn Iterator<Item = Result<(Tuple, u64)>> + 's>;

/// Evaluate a plan to a bag, streaming wherever the fused shape allows and
/// falling back to the exact bag primitives at pipeline breakers.
fn eval_to_bag<'a>(plan: &'a Plan, src: &'a dyn BagSource) -> Result<Cow<'a, Bag>> {
    Ok(match plan {
        Plan::Scan(name) => Cow::Borrowed(src.bag(name)?),
        Plan::Literal(bag) => Cow::Borrowed(bag),
        // Pipeline breakers: exact bag primitives, streaming children.
        Plan::DupElim(a) => Cow::Owned(eval_to_bag(a, src)?.dedup()),
        Plan::Monus(a, b) => {
            let x = eval_to_bag(a, src)?;
            let y = eval_to_bag(b, src)?;
            match x {
                Cow::Owned(mut owned) => {
                    owned.monus_assign(&y);
                    Cow::Owned(owned)
                }
                Cow::Borrowed(b_ref) => Cow::Owned(b_ref.monus(&y)),
            }
        }
        Plan::Product(a, b) => {
            let x = eval_to_bag(a, src)?;
            let y = eval_to_bag(b, src)?;
            Cow::Owned(x.product(&y))
        }
        Plan::MinIntersect(a, b) => {
            let x = eval_to_bag(a, src)?;
            let y = eval_to_bag(b, src)?;
            Cow::Owned(x.min_intersect(&y))
        }
        Plan::MaxUnion(a, b) => {
            let x = eval_to_bag(a, src)?;
            let y = eval_to_bag(b, src)?;
            Cow::Owned(x.max_union(&y))
        }
        Plan::Except(a, b) => {
            let x = eval_to_bag(a, src)?;
            let y = eval_to_bag(b, src)?;
            Cow::Owned(x.except_all_occurrences(&y))
        }
        Plan::GroupAggregate { keys, aggs, input } => {
            let b = eval_to_bag(input, src)?;
            Cow::Owned(group_aggregate_bag(&b, keys, aggs))
        }
        // Streamable shapes: fuse and drain the pipeline into one bag.
        Plan::Filter(..) | Plan::Project(..) | Plan::Union(..) | Plan::HashJoin { .. } => {
            let fused = fuse(plan);
            let mut out = Bag::new();
            for item in stream(&fused, src)? {
                let (t, m) = item?;
                out.insert_n(t, m);
            }
            Cow::Owned(out)
        }
    })
}

/// Instantiate a fused pipeline as a pull stream. Bag-backed sources apply
/// the op chain on *borrowed* tuples ([`apply_ops_ref`]): a tuple rejected
/// by a leading filter is never cloned, and the first projection allocates
/// directly from the borrow — the selective-change-query hot path does no
/// work at all for non-qualifying tuples.
fn stream<'s>(fp: &'s FusedPlan<'s>, src: &'s dyn BagSource) -> Result<TupleStream<'s>> {
    let ops = fp.ops.as_slice();
    let over_bag = |bag: &'s Bag| -> TupleStream<'s> {
        Box::new(
            bag.iter()
                .filter_map(move |(t, m)| apply_ops_ref(t, m, ops).map(Ok)),
        )
    };
    Ok(match &fp.source {
        FusedSource::Scan(name) => over_bag(src.bag(name)?),
        FusedSource::Literal(bag) => over_bag(bag),
        FusedSource::Union(a, b) => {
            let sa = stream(a, src)?;
            let sb = stream(b, src)?;
            apply_ops(Box::new(sa.chain(sb)), ops)
        }
        FusedSource::Join {
            left,
            left_plan,
            right,
            right_plan,
            left_keys,
            right_keys,
            residual,
        } => {
            // Build the side worth caching. The right side is the default
            // (the differential rules put the small delta there), but when
            // it scans churning internal tables while the left side is all
            // stable base tables, flip: the base-side build is the one
            // that survives epoch validation across evaluations, so the
            // cache turns every later evaluation into pure probing.
            let build_left = src.join_cache().is_some()
                && reusable_build(left_plan, src)
                && !reusable_build(right_plan, src);
            let (build_plan, build_keys, probe_fp, probe_keys) = if build_left {
                (*left_plan, *left_keys, &**right, *right_keys)
            } else {
                (*right_plan, *right_keys, &**left, *left_keys)
            };
            let table = build_join_table(build_plan, build_keys, src)?;
            apply_ops(
                Box::new(JoinProbe {
                    probe: stream(probe_fp, src)?,
                    build: table,
                    probe_keys,
                    residual,
                    build_left,
                    scratch: Vec::with_capacity(probe_keys.len()),
                    out: VecDeque::new(),
                }),
                ops,
            )
        }
        FusedSource::Breaker(plan) => match eval_to_bag(plan, src)? {
            Cow::Borrowed(bag) => over_bag(bag),
            Cow::Owned(bag) => apply_ops(Box::new(bag.into_iter().map(Ok)), ops),
        },
    })
}

/// Apply a fused op chain to a *borrowed* tuple. Leading filters run on the
/// borrow; the tuple is cloned only if it survives them, and a first
/// projection replaces the clone entirely (it allocates the projected tuple
/// straight from the borrow).
fn apply_ops_ref(t: &Tuple, m: u64, ops: &[FusedOp]) -> Option<(Tuple, u64)> {
    let mut i = 0;
    while i < ops.len() {
        match &ops[i] {
            FusedOp::Filter(pred) => {
                if !pred.eval(t) {
                    return None;
                }
                i += 1;
            }
            FusedOp::Project(cols) => {
                let mut owned = t.project(cols);
                i += 1;
                while i < ops.len() {
                    match &ops[i] {
                        FusedOp::Filter(pred) => {
                            if !pred.eval(&owned) {
                                return None;
                            }
                        }
                        FusedOp::Project(cols) => owned = owned.project(cols),
                    }
                    i += 1;
                }
                return Some((owned, m));
            }
        }
    }
    Some((t.clone(), m))
}

/// Wrap a stream of owned tuples with a fused per-tuple op chain. One
/// closure, no per-operator boxing, no intermediate bags.
fn apply_ops<'s>(base: TupleStream<'s>, ops: &'s [FusedOp<'s>]) -> TupleStream<'s> {
    if ops.is_empty() {
        return base;
    }
    Box::new(base.filter_map(move |item| {
        let (mut t, m) = match item {
            Ok(pair) => pair,
            Err(e) => return Some(Err(e)),
        };
        for op in ops {
            match op {
                FusedOp::Filter(pred) => {
                    if !pred.eval(&t) {
                        return None;
                    }
                }
                FusedOp::Project(cols) => t = t.project(cols),
            }
        }
        Some(Ok((t, m)))
    }))
}

/// Whether a join side is worth materializing as a *cached* build: it must
/// scan at least one table, and every table it scans must be a stable base
/// table of the source (which implies its epoch is known, so the cached
/// build is reusable until that table is actually written).
fn reusable_build(plan: &Plan, src: &dyn BagSource) -> bool {
    let tables = plan.tables();
    !tables.is_empty() && tables.iter().all(|t| src.is_base(t))
}

/// Normalize a tuple's key positions into `scratch` (reused across probe
/// tuples — no allocation). Returns `false` when any key is NULL, which
/// never joins. `Int` coerces to `Double` so hash-equality coincides with
/// `sql_cmp`'s numeric comparison.
fn normalize_key_into(t: &Tuple, keys: &[usize], scratch: &mut Vec<Value>) -> bool {
    scratch.clear();
    for &i in keys {
        match &t[i] {
            Value::Null => return false,
            Value::Int(v) => scratch.push(Value::Double(*v as f64)),
            other => scratch.push(other.clone()),
        }
    }
    true
}

/// Materialize (or fetch from the cache) a join build table: normalized key
/// → the build tuples carrying it.
///
/// Caching requires the source to expose both a [`JoinBuildCache`] and a
/// stable epoch for *every* table the build subtree scans; the entry key is
/// the build plan's 128-bit fingerprint salted with the key positions, and
/// the entry is valid only at exactly the observed epochs. Overlay-style
/// sources that override some tables simply report no epoch for them,
/// which disables caching for affected subtrees.
fn build_join_table(
    build_plan: &Plan,
    right_keys: &[usize],
    src: &dyn BagSource,
) -> Result<Arc<JoinBuild>> {
    let cache_ctx = src.join_cache().and_then(|cache| {
        let mut deps: BuildDeps = Vec::new();
        for table in build_plan.tables() {
            match src.epoch_of(&table) {
                Some(epoch) => deps.push((table, epoch)),
                None => return None,
            }
        }
        Some((build_plan.fingerprint128(right_keys), deps, cache))
    });
    if let Some((key, deps, cache)) = &cache_ctx {
        if let Some(hit) = cache.lookup(*key, deps) {
            return Ok(hit);
        }
    }

    let bag = eval_to_bag(build_plan, src)?;
    let mut table = JoinBuild::default();
    let mut scratch: Vec<Value> = Vec::with_capacity(right_keys.len());
    for (t, m) in bag.iter() {
        if !normalize_key_into(t, right_keys, &mut scratch) {
            continue;
        }
        group_entry(&mut table, &scratch).push((t.clone(), m));
    }
    let table = Arc::new(table);
    if let Some((key, deps, cache)) = cache_ctx {
        cache.insert(key, deps, Arc::clone(&table));
    }
    Ok(table)
}

/// Streaming probe side of a hash join: pulls probe tuples, normalizes
/// their keys into a reusable scratch buffer, looks the keys up by
/// borrowed slice, and yields residual-filtered concatenations with
/// checked multiplicity products.
///
/// The output tuple is always `left ++ right` regardless of which side was
/// built: when the build side is the *left* subtree, each match is emitted
/// as `build_tuple ++ probe_tuple`.
struct JoinProbe<'s> {
    probe: TupleStream<'s>,
    build: Arc<JoinBuild>,
    probe_keys: &'s [usize],
    residual: &'s PhysPredicate,
    /// The build table holds the plan's left side (flipped join).
    build_left: bool,
    scratch: Vec<Value>,
    /// Joined tuples from the current probe tuple, drained before pulling
    /// the next one. Reused across probe tuples.
    out: VecDeque<Result<(Tuple, u64)>>,
}

impl Iterator for JoinProbe<'_> {
    type Item = Result<(Tuple, u64)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(item) = self.out.pop_front() {
                return Some(item);
            }
            let (pt, pm) = match self.probe.next()? {
                Ok(pair) => pair,
                Err(e) => return Some(Err(e)),
            };
            if !normalize_key_into(&pt, self.probe_keys, &mut self.scratch) {
                continue;
            }
            let Some(matches) = self.build.get(self.scratch.as_slice()) else {
                continue;
            };
            for (bt, bm) in matches {
                let joined = if self.build_left {
                    bt.concat(&pt)
                } else {
                    pt.concat(bt)
                };
                if self.residual.eval(&joined) {
                    // Error fields stay in plan order (left × right).
                    let (lm, rm) = if self.build_left { (*bm, pm) } else { (pm, *bm) };
                    self.out.push_back(match pm.checked_mul(*bm) {
                        Some(m) => Ok((joined, m)),
                        None => Err(crate::AlgebraError::MultiplicityOverflow {
                            left: lm,
                            right: rm,
                        }),
                    });
                }
            }
        }
    }
}

// ---- profiled streaming executor ------------------------------------------

mod prof {
    //! A profiled twin of the streaming executor: same fused shapes, same
    //! bag primitives, same build-side selection — so its output is
    //! byte-identical to [`eval_streaming`]'s — but every pipeline stage
    //! and every materializing breaker is wrapped in rows/nanos counters
    //! that assemble into one [`OpProf`] tree per evaluation.
    //!
    //! Timing model: a [`Timed`] stage accumulates the wall time spent
    //! inside its `next()` calls, which *includes* the upstream stages it
    //! pulls from — i.e. streamed cells measure inclusive time directly.
    //! Work done eagerly before a pipeline starts (breaker materialization,
    //! hash-join builds) is invisible to the cells, so it is carried as
    //! finished [`OpProf`] children plus an `extra` credit on the node that
    //! triggered it; [`PNode::finish`] reconciles both so that exclusive
    //! times telescope back to the root's inclusive total.

    use super::*;
    use dvm_obs::OpProf;
    use std::cell::Cell;
    use std::rc::Rc;
    use std::time::Instant;

    /// Live counters shared between a [`Timed`] wrapper and its [`PNode`].
    #[derive(Default)]
    struct Counter {
        rows: Cell<u64>,
        nanos: Cell<u64>,
    }

    /// Counts yielded pairs and accumulates wall time spent inside
    /// `next()` — inclusive of every streamed stage upstream.
    struct Timed<'s> {
        inner: TupleStream<'s>,
        cell: Rc<Counter>,
    }

    impl Iterator for Timed<'_> {
        type Item = Result<(Tuple, u64)>;

        fn next(&mut self) -> Option<Self::Item> {
            let start = Instant::now();
            let item = self.inner.next();
            self.cell
                .nanos
                .set(self.cell.nanos.get() + start.elapsed().as_nanos() as u64);
            if item.is_some() {
                self.cell.rows.set(self.cell.rows.get() + 1);
            }
            item
        }
    }

    /// A child of an in-flight profile node: `Live` stages stream inside
    /// the same pull pipeline (their cell time is contained in the
    /// parent's cell), `Done` subtrees were evaluated eagerly before the
    /// pipeline started (their time is *not* in any cell).
    enum PChild {
        Live(PNode),
        Done(OpProf),
    }

    /// One in-flight stage of the profiled pipeline.
    struct PNode {
        label: String,
        cell: Rc<Counter>,
        /// Eager nanos attributed to this node but invisible to its cell
        /// (e.g. the hash-join build that ran before probing started).
        extra: u64,
        children: Vec<PChild>,
    }

    impl PNode {
        /// Convert the drained pipeline into a finished [`OpProf`] tree.
        fn finish(self) -> OpProf {
            let children: Vec<OpProf> = self
                .children
                .into_iter()
                .map(|c| match c {
                    PChild::Live(n) => n.finish(),
                    PChild::Done(op) => op,
                })
                .collect();
            let rows_in = children.iter().map(|c| c.rows_out).sum();
            let child_sum: u64 = children.iter().map(|c| c.nanos).sum();
            // The cell observed all streamed work below it; `extra` adds
            // the eager work it triggered. Deeper eager work (under a
            // live child) is invisible to both, so inclusive time is at
            // least the children's total.
            let nanos = (self.cell.nanos.get() + self.extra).max(child_sum);
            OpProf {
                label: self.label,
                rows_in,
                rows_out: self.cell.rows.get(),
                nanos,
                children,
            }
        }
    }

    /// Wrap a stream in a [`Timed`] stage and its profile node.
    fn timed<'s>(
        label: impl Into<String>,
        inner: TupleStream<'s>,
        children: Vec<PChild>,
        extra: u64,
    ) -> (TupleStream<'s>, PNode) {
        let cell = Rc::new(Counter::default());
        let stream: TupleStream<'s> = Box::new(Timed {
            inner,
            cell: Rc::clone(&cell),
        });
        (
            stream,
            PNode {
                label: label.into(),
                cell,
                extra,
                children,
            },
        )
    }

    /// A finished node for an eagerly-computed operator: inclusive time is
    /// its own primitive time plus the children's inclusive totals.
    fn eager(label: &str, own_nanos: u64, rows_out: u64, children: Vec<OpProf>) -> OpProf {
        let rows_in = children.iter().map(|c| c.rows_out).sum();
        let nanos = own_nanos + children.iter().map(|c| c.nanos).sum::<u64>();
        OpProf {
            label: label.to_string(),
            rows_in,
            rows_out,
            nanos,
            children,
        }
    }

    /// Profiled twin of [`eval_to_bag`]: identical result, plus the
    /// annotated tree.
    pub(super) fn eval_to_bag_prof<'a>(
        plan: &'a Plan,
        src: &'a dyn BagSource,
    ) -> Result<(Cow<'a, Bag>, OpProf)> {
        Ok(match plan {
            Plan::Scan(name) => {
                let bag = src.bag(name)?;
                let p = OpProf::leaf(format!("Scan {name}"), bag.distinct_len() as u64, 0);
                (Cow::Borrowed(bag), p)
            }
            Plan::Literal(bag) => {
                let p = OpProf::leaf("Literal", bag.distinct_len() as u64, 0);
                (Cow::Borrowed(bag), p)
            }
            Plan::DupElim(a) => {
                let (x, px) = eval_to_bag_prof(a, src)?;
                let t = Instant::now();
                let out = x.dedup();
                let own = t.elapsed().as_nanos() as u64;
                let p = eager("DupElim (ε)", own, out.distinct_len() as u64, vec![px]);
                (Cow::Owned(out), p)
            }
            Plan::Monus(a, b) => {
                let (x, px) = eval_to_bag_prof(a, src)?;
                let (y, py) = eval_to_bag_prof(b, src)?;
                let t = Instant::now();
                let out = match x {
                    Cow::Owned(mut owned) => {
                        owned.monus_assign(&y);
                        owned
                    }
                    Cow::Borrowed(b_ref) => b_ref.monus(&y),
                };
                let own = t.elapsed().as_nanos() as u64;
                let p = eager("Monus (∸)", own, out.distinct_len() as u64, vec![px, py]);
                (Cow::Owned(out), p)
            }
            Plan::Product(a, b) => {
                let (x, px) = eval_to_bag_prof(a, src)?;
                let (y, py) = eval_to_bag_prof(b, src)?;
                let t = Instant::now();
                let out = x.product(&y);
                let own = t.elapsed().as_nanos() as u64;
                let p = eager("Product (×)", own, out.distinct_len() as u64, vec![px, py]);
                (Cow::Owned(out), p)
            }
            Plan::MinIntersect(a, b) => {
                let (x, px) = eval_to_bag_prof(a, src)?;
                let (y, py) = eval_to_bag_prof(b, src)?;
                let t = Instant::now();
                let out = x.min_intersect(&y);
                let own = t.elapsed().as_nanos() as u64;
                let p = eager("MinIntersect (min)", own, out.distinct_len() as u64, vec![px, py]);
                (Cow::Owned(out), p)
            }
            Plan::MaxUnion(a, b) => {
                let (x, px) = eval_to_bag_prof(a, src)?;
                let (y, py) = eval_to_bag_prof(b, src)?;
                let t = Instant::now();
                let out = x.max_union(&y);
                let own = t.elapsed().as_nanos() as u64;
                let p = eager("MaxUnion (max)", own, out.distinct_len() as u64, vec![px, py]);
                (Cow::Owned(out), p)
            }
            Plan::Except(a, b) => {
                let (x, px) = eval_to_bag_prof(a, src)?;
                let (y, py) = eval_to_bag_prof(b, src)?;
                let t = Instant::now();
                let out = x.except_all_occurrences(&y);
                let own = t.elapsed().as_nanos() as u64;
                let p = eager("Except", own, out.distinct_len() as u64, vec![px, py]);
                (Cow::Owned(out), p)
            }
            Plan::GroupAggregate { keys, aggs, input } => {
                let (b, pb) = eval_to_bag_prof(input, src)?;
                let t = Instant::now();
                let out = group_aggregate_bag(&b, keys, aggs);
                let own = t.elapsed().as_nanos() as u64;
                let p = eager("GroupAggregate", own, out.distinct_len() as u64, vec![pb]);
                (Cow::Owned(out), p)
            }
            Plan::Filter(..) | Plan::Project(..) | Plan::Union(..) | Plan::HashJoin { .. } => {
                let fused = fuse(plan);
                let (s, node) = stream_prof(&fused, src)?;
                let mut out = Bag::new();
                for item in s {
                    let (t, m) = item?;
                    out.insert_n(t, m);
                }
                (Cow::Owned(out), node.finish())
            }
        })
    }

    /// Profiled twin of [`stream`]: each fused op is its own timed stage.
    ///
    /// Bag-backed sources clone tuples up front (a refcount bump each)
    /// instead of using [`apply_ops_ref`]'s borrow fast path — the small
    /// price of per-operator attribution, paid only while profiling.
    fn stream_prof<'s>(
        fp: &'s FusedPlan<'s>,
        src: &'s dyn BagSource,
    ) -> Result<(TupleStream<'s>, PNode)> {
        fn clone_bag<'s>(bag: &'s Bag) -> TupleStream<'s> {
            Box::new(bag.iter().map(|(t, m)| Ok((t.clone(), m))))
        }
        let (mut s, mut node) = match &fp.source {
            FusedSource::Scan(name) => {
                let bag = src.bag(name)?;
                timed(format!("Scan {name}"), clone_bag(bag), Vec::new(), 0)
            }
            FusedSource::Literal(bag) => timed("Literal", clone_bag(bag), Vec::new(), 0),
            FusedSource::Union(a, b) => {
                let (sa, na) = stream_prof(a, src)?;
                let (sb, nb) = stream_prof(b, src)?;
                timed(
                    "Union (⊎)",
                    Box::new(sa.chain(sb)),
                    vec![PChild::Live(na), PChild::Live(nb)],
                    0,
                )
            }
            FusedSource::Join {
                left,
                left_plan,
                right,
                right_plan,
                left_keys,
                right_keys,
                residual,
            } => {
                // Same build-side selection as the unprofiled executor.
                let build_left = src.join_cache().is_some()
                    && reusable_build(left_plan, src)
                    && !reusable_build(right_plan, src);
                let (build_plan, build_keys, probe_fp, probe_keys) = if build_left {
                    (*left_plan, *left_keys, &**right, *right_keys)
                } else {
                    (*right_plan, *right_keys, &**left, *left_keys)
                };
                let (table, build_prof) = build_join_table_prof(build_plan, build_keys, src)?;
                let (probe_s, probe_node) = stream_prof(probe_fp, src)?;
                let extra = build_prof.nanos;
                let label = if build_left {
                    "HashJoin (build=left)"
                } else {
                    "HashJoin (build=right)"
                };
                timed(
                    label,
                    Box::new(JoinProbe {
                        probe: probe_s,
                        build: table,
                        probe_keys,
                        residual,
                        build_left,
                        scratch: Vec::with_capacity(probe_keys.len()),
                        out: VecDeque::new(),
                    }),
                    vec![PChild::Done(build_prof), PChild::Live(probe_node)],
                    extra,
                )
            }
            FusedSource::Breaker(plan) => {
                let (bag, bp) = eval_to_bag_prof(plan, src)?;
                let extra = bp.nanos;
                let stream: TupleStream<'s> = match bag {
                    Cow::Borrowed(b) => clone_bag(b),
                    Cow::Owned(b) => Box::new(b.into_iter().map(Ok)),
                };
                // The wrapper's cell times the drain of the materialized
                // result into the pipeline; the eval itself is the child.
                timed("Stream", stream, vec![PChild::Done(bp)], extra)
            }
        };
        for op in fp.ops.iter() {
            let label = match op {
                FusedOp::Filter(_) => "Filter".to_string(),
                FusedOp::Project(cols) => format!("Project [{}]", cols.len()),
            };
            let staged = apply_ops(s, std::slice::from_ref(op));
            let (ns, nn) = timed(label, staged, vec![PChild::Live(node)], 0);
            s = ns;
            node = nn;
        }
        Ok((s, node))
    }

    /// Profiled twin of [`build_join_table`]: identical cache behavior
    /// (same fingerprint, same epoch deps), plus a finished build node —
    /// a cache hit becomes a leaf labeled `JoinBuild (cached)` whose time
    /// is just the lookup.
    fn build_join_table_prof(
        build_plan: &Plan,
        right_keys: &[usize],
        src: &dyn BagSource,
    ) -> Result<(Arc<JoinBuild>, OpProf)> {
        let t0 = Instant::now();
        let cache_ctx = src.join_cache().and_then(|cache| {
            let mut deps: BuildDeps = Vec::new();
            for table in build_plan.tables() {
                match src.epoch_of(&table) {
                    Some(epoch) => deps.push((table, epoch)),
                    None => return None,
                }
            }
            Some((build_plan.fingerprint128(right_keys), deps, cache))
        });
        if let Some((key, deps, cache)) = &cache_ctx {
            if let Some(hit) = cache.lookup(*key, deps) {
                let rows = hit.values().map(|v| v.len() as u64).sum();
                let p = OpProf::leaf(
                    "JoinBuild (cached)",
                    rows,
                    t0.elapsed().as_nanos() as u64,
                );
                return Ok((hit, p));
            }
        }

        let (bag, child) = eval_to_bag_prof(build_plan, src)?;
        let t1 = Instant::now();
        let mut table = JoinBuild::default();
        let mut scratch: Vec<Value> = Vec::with_capacity(right_keys.len());
        let mut rows = 0u64;
        for (t, m) in bag.iter() {
            if !normalize_key_into(t, right_keys, &mut scratch) {
                continue;
            }
            group_entry(&mut table, &scratch).push((t.clone(), m));
            rows += 1;
        }
        let table = Arc::new(table);
        if let Some((key, deps, cache)) = cache_ctx {
            cache.insert(key, deps, Arc::clone(&table));
        }
        let own = t1.elapsed().as_nanos() as u64;
        let p = eager("JoinBuild", own, rows, vec![child]);
        Ok((table, p))
    }
}

// ---- reference evaluator --------------------------------------------------

/// Evaluate with the materializing reference evaluator: strictly bottom-up,
/// one owned/borrowed bag per operator. Retained as the oracle the
/// streaming executor is differentially tested against, and as the
/// benchmark baseline.
pub fn eval_reference(plan: &Plan, src: &dyn BagSource) -> Result<Bag> {
    Ok(eval_cow(plan, src)?.into_owned())
}

fn eval_cow<'a>(plan: &'a Plan, src: &'a dyn BagSource) -> Result<Cow<'a, Bag>> {
    Ok(match plan {
        Plan::Scan(name) => Cow::Borrowed(src.bag(name)?),
        Plan::Literal(bag) => Cow::Borrowed(bag),
        Plan::Filter(pred, input) => {
            let b = eval_cow(input, src)?;
            Cow::Owned(b.select(|t| pred.eval(t)))
        }
        Plan::Project(indices, input) => {
            let b = eval_cow(input, src)?;
            Cow::Owned(b.project(indices))
        }
        Plan::DupElim(input) => {
            let b = eval_cow(input, src)?;
            Cow::Owned(b.dedup())
        }
        Plan::Union(a, b) => {
            let x = eval_cow(a, src)?;
            let y = eval_cow(b, src)?;
            Cow::Owned(x.union(&y))
        }
        Plan::Monus(a, b) => {
            let x = eval_cow(a, src)?;
            let y = eval_cow(b, src)?;
            // Avoid cloning the left side when it is already owned.
            match x {
                Cow::Owned(mut owned) => {
                    owned.monus_assign(&y);
                    Cow::Owned(owned)
                }
                Cow::Borrowed(b_ref) => Cow::Owned(b_ref.monus(&y)),
            }
        }
        Plan::Product(a, b) => {
            let x = eval_cow(a, src)?;
            let y = eval_cow(b, src)?;
            Cow::Owned(x.product(&y))
        }
        Plan::MinIntersect(a, b) => {
            let x = eval_cow(a, src)?;
            let y = eval_cow(b, src)?;
            Cow::Owned(x.min_intersect(&y))
        }
        Plan::MaxUnion(a, b) => {
            let x = eval_cow(a, src)?;
            let y = eval_cow(b, src)?;
            Cow::Owned(x.max_union(&y))
        }
        Plan::Except(a, b) => {
            let x = eval_cow(a, src)?;
            let y = eval_cow(b, src)?;
            Cow::Owned(x.except_all_occurrences(&y))
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => {
            let l = eval_cow(left, src)?;
            let r = eval_cow(right, src)?;
            Cow::Owned(hash_join(&l, &r, left_keys, right_keys, residual)?)
        }
        Plan::GroupAggregate { keys, aggs, input } => {
            let b = eval_cow(input, src)?;
            Cow::Owned(group_aggregate_bag(&b, keys, aggs))
        }
    })
}

/// Hash equi-join: build on the right side, probe with the left.
/// Multiplicities multiply (checked — an overflow is surfaced as
/// [`crate::AlgebraError::MultiplicityOverflow`], never clamped); `residual`
/// filters the concatenated tuple. Keys are normalized into a reusable
/// scratch buffer and looked up by borrowed slice — no per-tuple key
/// allocation on either the build or the probe side.
fn hash_join(
    left: &Bag,
    right: &Bag,
    left_keys: &[usize],
    right_keys: &[usize],
    residual: &PhysPredicate,
) -> Result<Bag> {
    let mut build: FxHashMap<Box<[Value]>, Vec<(&Tuple, u64)>> = FxHashMap::default();
    build.reserve(right.distinct_len());
    let mut scratch: Vec<Value> = Vec::with_capacity(right_keys.len().max(left_keys.len()));
    for (t, m) in right.iter() {
        if !normalize_key_into(t, right_keys, &mut scratch) {
            continue;
        }
        group_entry(&mut build, &scratch).push((t, m));
    }
    let mut out = Bag::new();
    for (lt, lm) in left.iter() {
        if !normalize_key_into(lt, left_keys, &mut scratch) {
            continue;
        }
        if let Some(matches) = build.get(scratch.as_slice()) {
            for (rt, rm) in matches {
                let joined = lt.concat(rt);
                if residual.eval(&joined) {
                    let m = lm.checked_mul(*rm).ok_or(
                        crate::AlgebraError::MultiplicityOverflow {
                            left: lm,
                            right: *rm,
                        },
                    )?;
                    out.insert_n(joined, m);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::infer::compile;
    use crate::predicate::{col, lit, Predicate};
    use dvm_storage::{tuple, Schema, TableKind, ValueType};

    fn catalog() -> Catalog {
        let c = Catalog::new();
        let r = c
            .create_table(
                "r",
                Schema::from_pairs(&[("a", ValueType::Int), ("b", ValueType::Int)]),
                TableKind::External,
            )
            .unwrap();
        r.insert(tuple![1, 10]).unwrap();
        r.insert(tuple![1, 10]).unwrap();
        r.insert(tuple![2, 20]).unwrap();
        let s = c
            .create_table(
                "s",
                Schema::from_pairs(&[("b", ValueType::Int), ("c", ValueType::Int)]),
                TableKind::External,
            )
            .unwrap();
        s.insert(tuple![10, 100]).unwrap();
        s.insert(tuple![30, 300]).unwrap();
        c
    }

    fn run(c: &Catalog, e: &Expr) -> Bag {
        let q = compile(e, c).unwrap();
        // Both executors must agree on every query these tests run.
        let pinned = PinnedState::pin_for(c, &q.plan).unwrap();
        let streamed = eval_streaming(&q.plan, &pinned).unwrap();
        let reference = eval_reference(&q.plan, &pinned).unwrap();
        assert_eq!(streamed, reference, "executor divergence on {e}");
        streamed
    }

    #[test]
    fn scan_and_filter() {
        let c = catalog();
        let out = run(
            &c,
            &Expr::table("r").select(Predicate::eq(col("a"), lit(1i64))),
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out.multiplicity(&tuple![1, 10]), 2);
    }

    #[test]
    fn join_via_product_preserves_duplicates() {
        let c = catalog();
        // R ⋈ S on r.b = s.b: [1,10] (×2) joins [10,100] → two results
        let e = Expr::table("r")
            .alias("r")
            .product(Expr::table("s").alias("s"))
            .select(Predicate::eq(col("r.b"), col("s.b")))
            .project(["a", "c"]);
        let out = run(&c, &e);
        assert_eq!(out.multiplicity(&tuple![1, 100]), 2);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn self_join_scans_pinned_bag_twice() {
        let c = catalog();
        let e = Expr::table("r")
            .alias("x")
            .product(Expr::table("r").alias("y"))
            .select(Predicate::eq(col("x.a"), col("y.a")));
        let out = run(&c, &e);
        // [1,10]×2 self-join on a=1: 2*2 = 4; plus [2,20]: 1. Total 5.
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn union_monus_dedup() {
        let c = catalog();
        let r = Expr::table("r");
        assert_eq!(run(&c, &r.clone().union(r.clone())).len(), 6);
        assert!(run(&c, &r.clone().monus(r.clone())).is_empty());
        assert_eq!(run(&c, &r.clone().dedup()).len(), 2);
    }

    #[test]
    fn projection_merges_duplicates() {
        let c = catalog();
        let out = run(&c, &Expr::table("r").project(["a"]));
        assert_eq!(out.multiplicity(&tuple![1]), 2);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn min_max_except() {
        let c = catalog();
        let two = Expr::table("r").union(Expr::table("r"));
        let one = Expr::table("r");
        let mn = run(&c, &two.clone().min_intersect(one.clone()));
        assert_eq!(mn.multiplicity(&tuple![1, 10]), 2);
        let mx = run(&c, &two.clone().max_union(one.clone()));
        assert_eq!(mx.multiplicity(&tuple![1, 10]), 4);
        // EXCEPT removes all occurrences
        let ex = run(
            &c,
            &two.except(Expr::table("r").select(Predicate::eq(col("a"), lit(1i64)))),
        );
        assert_eq!(ex.multiplicity(&tuple![1, 10]), 0);
        assert_eq!(ex.multiplicity(&tuple![2, 20]), 2);
    }

    #[test]
    fn eval_against_snapshot() {
        let c = catalog();
        let snap = c.snapshot();
        // mutate after snapshot
        c.get("r").unwrap().insert(tuple![9, 90]).unwrap();
        let q = compile(&Expr::table("r"), &c).unwrap();
        let now = eval_in_catalog(&q, &c).unwrap();
        let then = eval(&q.plan, &snap).unwrap();
        assert_eq!(now.len(), 4);
        assert_eq!(then.len(), 3, "snapshot sees the past state");
    }

    #[test]
    fn eval_missing_table_in_snapshot_errors() {
        let c = Catalog::new();
        let snap = c.snapshot();
        let plan = Plan::Scan("ghost".to_string());
        assert!(eval(&plan, &snap).is_err());
    }

    #[test]
    fn literal_eval() {
        let c = catalog();
        let s = Schema::from_pairs(&[("a", ValueType::Int), ("b", ValueType::Int)]);
        let e = Expr::literal(Bag::singleton(tuple![7, 70]), s);
        let out = run(&c, &e.union(Expr::table("r")));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn hash_join_multiplicity_overflow_is_an_error() {
        use crate::AlgebraError;
        let c = Catalog::new();
        for name in ["hl", "hr"] {
            let t = c
                .create_table(
                    name,
                    Schema::from_pairs(&[("k", ValueType::Int)]),
                    TableKind::External,
                )
                .unwrap();
            let mut huge = Bag::new();
            huge.insert_n(tuple![1], u64::MAX / 2);
            t.replace(huge).unwrap();
        }
        let e = Expr::table("hl")
            .alias("l")
            .product(Expr::table("hr").alias("r"))
            .select(Predicate::eq(col("l.k"), col("r.k")));
        let q = compile(&e, &c).unwrap();
        assert!(
            matches!(q.plan, Plan::HashJoin { .. }),
            "equi-join must compile to a hash join for this test to bite"
        );
        let pinned = PinnedState::pin_for(&c, &q.plan).unwrap();
        for result in [
            eval_streaming(&q.plan, &pinned),
            eval_reference(&q.plan, &pinned),
        ] {
            let err = result.unwrap_err();
            assert!(matches!(err, AlgebraError::MultiplicityOverflow { .. }));
            assert!(err.to_string().contains("overflows u64"));
        }
    }

    #[test]
    fn hash_join_large_but_representable_multiplicities_ok() {
        let c = Catalog::new();
        let mk = |name: &str, m: u64| {
            let t = c
                .create_table(
                    name,
                    Schema::from_pairs(&[("k", ValueType::Int)]),
                    TableKind::External,
                )
                .unwrap();
            let mut b = Bag::new();
            b.insert_n(tuple![1], m);
            t.replace(b).unwrap();
        };
        mk("gl", 1 << 32);
        mk("gr", (1 << 31) - 1);
        let e = Expr::table("gl")
            .alias("l")
            .product(Expr::table("gr").alias("r"))
            .select(Predicate::eq(col("l.k"), col("r.k")));
        let q = compile(&e, &c).unwrap();
        let out = run(&c, &e);
        assert!(matches!(q.plan, Plan::HashJoin { .. }));
        assert_eq!(out.multiplicity(&tuple![1, 1]), (1u64 << 32) * ((1 << 31) - 1));
    }

    #[test]
    fn hashmap_source() {
        let mut m = HashMap::new();
        m.insert("t".to_string(), Bag::singleton(tuple![1]));
        let plan = Plan::Scan("t".to_string());
        assert_eq!(eval(&plan, &m).unwrap().len(), 1);
        assert!(eval(&Plan::Scan("u".into()), &m).is_err());
    }

    #[test]
    fn null_join_keys_never_join_in_either_executor() {
        // HashMap sources skip schema validation, so NULLs and doubles can
        // sit in "Int" columns — exactly what delta tables may carry.
        let mut m = HashMap::new();
        m.insert(
            "l".to_string(),
            Bag::from_tuples([
                Tuple::new(vec![Value::Null, Value::Int(1)]),
                Tuple::new(vec![Value::Int(7), Value::Int(2)]),
            ]),
        );
        m.insert(
            "r".to_string(),
            Bag::from_tuples([
                Tuple::new(vec![Value::Null, Value::Int(3)]),
                Tuple::new(vec![Value::Int(7), Value::Int(4)]),
            ]),
        );
        let plan = Plan::HashJoin {
            left: Box::new(Plan::Scan("l".into())),
            right: Box::new(Plan::Scan("r".into())),
            left_keys: vec![0],
            right_keys: vec![0],
            residual: PhysPredicate::Const(true),
        };
        let streamed = eval_streaming(&plan, &m).unwrap();
        let reference = eval_reference(&plan, &m).unwrap();
        assert_eq!(streamed, reference);
        assert_eq!(streamed.len(), 1, "only the 7=7 pair joins: {streamed}");
    }

    #[test]
    fn int_double_key_coercion_joins_across_types() {
        let mut m = HashMap::new();
        m.insert(
            "l".to_string(),
            Bag::singleton(Tuple::new(vec![Value::Int(2)])),
        );
        m.insert(
            "r".to_string(),
            Bag::singleton(Tuple::new(vec![Value::Double(2.0)])),
        );
        let plan = Plan::HashJoin {
            left: Box::new(Plan::Scan("l".into())),
            right: Box::new(Plan::Scan("r".into())),
            left_keys: vec![0],
            right_keys: vec![0],
            residual: PhysPredicate::Const(true),
        };
        let streamed = eval_streaming(&plan, &m).unwrap();
        let reference = eval_reference(&plan, &m).unwrap();
        assert_eq!(streamed, reference);
        assert_eq!(streamed.len(), 1, "Int(2) must hash-join Double(2.0)");
    }

    #[test]
    fn join_build_cache_hits_and_invalidates_on_write() {
        let c = catalog();
        let e = Expr::table("r")
            .alias("r")
            .product(Expr::table("s").alias("s"))
            .select(Predicate::eq(col("r.b"), col("s.b")));
        let q = compile(&e, &c).unwrap();
        assert!(matches!(q.plan, Plan::HashJoin { .. }));

        let baseline = c.join_cache().stats();
        let first = eval_in_catalog(&q, &c).unwrap();
        let after_first = c.join_cache().stats();
        assert_eq!(after_first.misses, baseline.misses + 1, "cold build");
        let second = eval_in_catalog(&q, &c).unwrap();
        let after_second = c.join_cache().stats();
        assert_eq!(after_second.hits, after_first.hits + 1, "warm build");
        assert_eq!(first, second);

        // A write to the build-side table must invalidate via epochs.
        c.get("s").unwrap().insert(tuple![20, 200]).unwrap();
        let third = eval_in_catalog(&q, &c).unwrap();
        let after_third = c.join_cache().stats();
        assert_eq!(
            after_third.misses,
            after_second.misses + 1,
            "stale epoch must miss"
        );
        assert_eq!(third.len(), first.len() + 1, "new s row joins [2,20]");
        // And the reference evaluator agrees on the post-write state.
        let pinned = PinnedState::pin_for(&c, &q.plan).unwrap();
        assert_eq!(eval_reference(&q.plan, &pinned).unwrap(), third);
    }

    /// The maintenance hot-path shape: a stable base table joined with a
    /// churning internal (log-like) table on the build side. The executor
    /// must flip the build to the base side so the cached build survives
    /// log churn — and the flipped join must stay byte-identical to the
    /// reference evaluator (column order, duplicates, NULLs, residual).
    #[test]
    fn stable_base_build_is_flipped_and_cached_across_log_churn() {
        let c = Catalog::new();
        let base = c
            .create_table(
                "base",
                Schema::from_pairs(&[("a", ValueType::Int), ("b", ValueType::Int)]),
                TableKind::External,
            )
            .unwrap();
        for i in 0..50i64 {
            base.insert(tuple![i % 10, i]).unwrap();
        }
        base.insert(tuple![Value::Null, 99]).unwrap(); // NULL key: never joins
        let log = c
            .create_table(
                "lg",
                Schema::from_pairs(&[("a", ValueType::Int), ("c", ValueType::Int)]),
                TableKind::Internal,
            )
            .unwrap();

        // σ_{b<40}(base) ⋈_{a=a} lg, with a residual over both sides.
        let e = Expr::table("base")
            .alias("l")
            .product(Expr::table("lg").alias("r"))
            .select(
                Predicate::eq(col("l.a"), col("r.a"))
                    .and(Predicate::lt(col("l.b"), lit(40i64)))
                    .and(Predicate::ne(col("l.b"), col("r.c"))),
            );
        let q = compile(&e, &c).unwrap();
        assert!(matches!(q.plan, Plan::HashJoin { .. }));

        let baseline = c.join_cache().stats();
        for round in 0..3i64 {
            // Each round replaces the log contents (fresh epoch) — the
            // churn that makes the default right-side build uncacheable.
            let mut fresh = Bag::new();
            fresh.insert_n(tuple![round % 10, round], 2);
            fresh.insert(tuple![(round + 1) % 10, 40 + round]);
            fresh.insert(tuple![Value::Null, 7]);
            log.replace(fresh).unwrap();

            let pinned = PinnedState::pin_for(&c, &q.plan).unwrap();
            let streamed = eval_streaming(&q.plan, &pinned).unwrap();
            assert_eq!(streamed, eval_reference(&q.plan, &pinned).unwrap());
            assert!(!streamed.is_empty(), "round {round} joined something");
        }
        let stats = c.join_cache().stats();
        assert_eq!(stats.misses, baseline.misses + 1, "base side built once");
        assert_eq!(stats.hits, baseline.hits + 2, "then reused every round");
    }

    /// Search an annotated tree for a label prefix.
    fn tree_contains(p: &dvm_obs::OpProf, prefix: &str) -> bool {
        p.label.starts_with(prefix) || p.children.iter().any(|c| tree_contains(c, prefix))
    }

    /// The profiled executor must be a *twin*: identical bags on every
    /// shape (streamed chains, joins, breakers, aggregates), plus a
    /// well-formed tree whose exclusive times telescope to the root.
    #[test]
    fn profiled_executor_matches_streaming_and_reference() {
        let c = catalog();
        let exprs: Vec<Expr> = vec![
            Expr::table("r").select(Predicate::eq(col("a"), lit(1i64))),
            Expr::table("r")
                .alias("r")
                .product(Expr::table("s").alias("s"))
                .select(Predicate::eq(col("r.b"), col("s.b")))
                .project(["a", "c"]),
            Expr::table("r").union(Expr::table("s").project(["b", "c"])),
            Expr::table("r").monus(Expr::table("r").select(Predicate::eq(col("a"), lit(2i64)))),
            Expr::table("r").dedup().project(["a"]),
            Expr::table("r").union(Expr::table("r")).min_intersect(Expr::table("r")),
        ];
        for e in &exprs {
            let q = compile(e, &c).unwrap();
            let pinned = PinnedState::pin_for(&c, &q.plan).unwrap();
            let reference = eval_reference(&q.plan, &pinned).unwrap();

            dvm_obs::set_profiling(true);
            let _ = dvm_obs::profile::take_captured(); // clear stale captures
            let profiled = eval_streaming(&q.plan, &pinned).unwrap();
            let captured = dvm_obs::profile::take_captured();
            dvm_obs::set_profiling(false);
            let plain = eval_streaming(&q.plan, &pinned).unwrap();

            assert_eq!(profiled, reference, "profiled vs reference on {e}");
            assert_eq!(profiled, plain, "profiled vs plain streaming on {e}");
            assert_eq!(captured.evals.len(), 1, "one tree per evaluation on {e}");
            let tree = &captured.evals[0];
            assert_eq!(
                tree.total_exclusive_nanos(),
                tree.nanos,
                "exclusive times telescope to the root on {e}: {}",
                tree.render()
            );
            if !profiled.is_empty() {
                assert!(tree.rows_out > 0, "non-empty result, zero rows_out on {e}");
            }
        }
    }

    #[test]
    fn profiled_join_reports_cached_build_on_second_run() {
        let c = catalog();
        let e = Expr::table("r")
            .alias("r")
            .product(Expr::table("s").alias("s"))
            .select(Predicate::eq(col("r.b"), col("s.b")));
        let q = compile(&e, &c).unwrap();
        assert!(matches!(q.plan, Plan::HashJoin { .. }));

        dvm_obs::set_profiling(true);
        let _ = dvm_obs::profile::take_captured();
        let first = eval_in_catalog(&q, &c).unwrap();
        let cold = dvm_obs::profile::take_captured();
        let second = eval_in_catalog(&q, &c).unwrap();
        let warm = dvm_obs::profile::take_captured();
        dvm_obs::set_profiling(false);

        assert_eq!(first, second);
        assert!(
            tree_contains(&cold.evals[0], "JoinBuild"),
            "{}",
            cold.evals[0].render()
        );
        assert!(
            tree_contains(&warm.evals[0], "JoinBuild (cached)"),
            "{}",
            warm.evals[0].render()
        );
    }

    #[test]
    fn profiling_off_captures_nothing() {
        let c = catalog();
        dvm_obs::set_profiling(false);
        let _ = dvm_obs::profile::take_captured();
        let q = compile(&Expr::table("r").project(["a"]), &c).unwrap();
        eval_in_catalog(&q, &c).unwrap();
        assert!(dvm_obs::profile::take_captured().is_empty());
    }

    #[test]
    fn eval_mode_dispatch_roundtrip() {
        // Serial flip-and-restore; other tests never depend on Reference.
        assert_eq!(eval_mode(), EvalMode::Streaming);
        set_eval_mode(EvalMode::Reference);
        assert_eq!(eval_mode(), EvalMode::Reference);
        set_eval_mode(EvalMode::Streaming);
        assert_eq!(eval_mode(), EvalMode::Streaming);
    }
}
