//! Zipf-distributed sampling via inverse-CDF lookup.
//!
//! Retail point-of-sale data is heavily skewed — a few items and customers
//! account for most sales — so the workload generator draws customer and
//! item identifiers from a Zipf(θ) distribution over `[0, n)`. The CDF is
//! precomputed once; sampling is a binary search (O(log n)).

use dvm_testkit::Rng;

/// A Zipf(θ) distribution over ranks `0..n` (rank 0 most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution. `theta = 0` degenerates to uniform;
    /// `theta ≈ 1` is the classic heavy skew.
    ///
    /// # Panics
    /// Panics when `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        assert!(theta >= 0.0, "negative skew");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // guard against floating-point shortfall at the top
        *cdf.last_mut().expect("nonempty") = 1.0;
        Zipf { cdf }
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Sample a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u: f64 = rng.f64_unit();
        // first index with cdf[i] >= u
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("no NaN in cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Rng::new(1);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1500..2500).contains(&c), "uniform-ish: {counts:?}");
        }
    }

    #[test]
    fn skewed_when_theta_high() {
        let z = Zipf::new(100, 1.0);
        let mut rng = Rng::new(2);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > 5 * counts[50].max(1),
            "rank 0 must dominate rank 50: {} vs {}",
            counts[0],
            counts[50]
        );
        assert!(counts[0] > counts[1], "monotone head");
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(7, 1.2);
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
        assert_eq!(z.n(), 7);
    }

    #[test]
    #[should_panic]
    fn empty_domain_panics() {
        Zipf::new(0, 1.0);
    }
}
