//! # dvm-obs — hermetic observability primitives
//!
//! The paper's argument is quantitative: deferred maintenance trades
//! *per-transaction overhead* for *view downtime* and background
//! *propagate work* (Section 1.1, Policies 1/2). Means and totals hide
//! exactly the tail behavior those policies are supposed to control, so
//! this crate provides the distribution-aware building blocks the rest of
//! the workspace instruments itself with:
//!
//! * [`Histogram`] — log-bucketed (HDR-style) latency histograms over
//!   lock-free `AtomicU64` buckets, with p50/p95/p99/max and
//!   snapshot-subtract reset;
//! * [`Tracer`] — a bounded ring-buffer journal of structured maintenance
//!   events (`txn_execute`, `makesafe`, `propagate`, `refresh`,
//!   `lock_wait`, `vacuum`, …) with span nesting and per-thread ids, whose
//!   disabled path costs one relaxed atomic load;
//! * [`profile`] — the maintenance profiler's primitives: a process-wide
//!   profiling switch (one relaxed load when off), `EXPLAIN ANALYZE`-style
//!   per-operator cost trees, per-shard work profiles, and the
//!   thread-local capture channel between executor and driver;
//! * [`tseries`] — fixed-capacity downsampling time series for
//!   staleness-over-time and latency-over-time recording;
//! * [`json`] — a dependency-free JSON writer *and* parser (the parser
//!   backs the CI schema gate over `results/*.json`);
//! * [`TableReport`] / [`fmt_nanos`] — the fixed-width human exporter
//!   shared by the REPL and every `exp_*` binary.
//!
//! Like `dvm-testkit`, this crate is hermetic: `std` only, no registry
//! dependencies.

#![warn(missing_docs)]

pub mod hist;
pub mod json;
pub mod profile;
pub mod table;
pub mod trace;
pub mod tseries;

pub use hist::{Histogram, HistogramSnapshot};
pub use profile::{profiling_on, set_profiling, Captured, OpProf, ShardProfile};
pub use table::{fmt_nanos, TableReport};
pub use trace::{EventKind, Span, TraceEvent, Tracer};
pub use tseries::{TimeSeries, TsPoint};

use std::sync::atomic::{AtomicU64, Ordering};

/// Raise `cell` to at least `value` with a compare-exchange loop (the
/// `fetch_max` idiom, written out so the same helper serves every
/// max-tracking site: histogram maxima, `LockMetrics` max write-hold).
///
/// Relaxed ordering: maxima are monotone statistics, never used to
/// synchronize other memory.
pub fn atomic_max(cell: &AtomicU64, value: u64) {
    let mut seen = cell.load(Ordering::Relaxed);
    while seen < value {
        match cell.compare_exchange_weak(seen, value, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => seen = now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_max_raises_and_keeps() {
        let c = AtomicU64::new(5);
        atomic_max(&c, 3);
        assert_eq!(c.load(Ordering::Relaxed), 5);
        atomic_max(&c, 9);
        assert_eq!(c.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn atomic_max_concurrent_keeps_largest() {
        let c = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..1000 {
                        atomic_max(c, t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(c.load(Ordering::Relaxed), 3999);
    }
}
