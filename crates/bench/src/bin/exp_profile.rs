//! **Maintenance profiler experiment**: cost attribution on the Example-1.1
//! retail view under Scenario C, written to `results/BENCH_profile.json`.
//!
//! Three questions, one run:
//!
//! 1. **Attribution coverage** (the acceptance gate, self-checked): with
//!    profiling on, each propagate's per-operator nanos — evaluation trees
//!    plus the phase timers for delta derivation, compile/pin, the
//!    Lemma-3 fold, and log truncation — must sum to within 20% of the
//!    observed propagate latency (median across rounds).
//!    Attribution that misses a fifth of the wall time cannot be argued
//!    with; attribution above it is double-counting.
//! 2. **Profiling overhead**: `profile/propagate/off` vs
//!    `profile/propagate/on` medians over identical sales backlogs — what
//!    turning the profiler on costs the hot path it measures.
//! 3. **The time-series recorder**: `PolicyDriver` ticks under Policy 2
//!    sample staleness gauges and maintenance latency into downsampling
//!    rings; the full `ProfileReport` (operator trees, pool utilization,
//!    join-cache attribution, series) is embedded in the artifact under
//!    `profile`, next to the standard `benchmarks` array and host stamp.
//!
//! `--test` runs a single smoke round of everything (including the
//! coverage gate) and writes nothing — the `scripts/ci.sh` gate.

use dvm_bench::report::summary_table;
use dvm_bench::retail_db;
use dvm_core::{Database, MaintProfile, Minimality, PolicyDriver, RefreshPolicy, Scenario};
use dvm_testkit::bench::{to_json_report_with_host, Bench, Summary};
use dvm_workload::RetailGen;

/// Sales per propagate round: large enough that one propagate does real
/// operator work (µs–ms), so attribution ratios are not timer noise.
const BATCH: usize = 200;
const ROUNDS: usize = 7;
const TICKS: u64 = 24;
const COVERAGE_LO: f64 = 0.8;
const COVERAGE_HI: f64 = 1.2;

fn make() -> (Database, RetailGen) {
    retail_db(500, 2_000, Scenario::Combined, Minimality::Weak, 23)
}

fn median_coverage(props: &[&MaintProfile]) -> f64 {
    let mut covs: Vec<f64> = props.iter().map(|p| p.coverage()).collect();
    covs.sort_by(f64::total_cmp);
    covs[covs.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let bench = if quick { Bench::quick() } else { Bench::from_env() };

    // --- attribution coverage: profiled propagates over real backlogs ---
    let (db, mut gen) = make();
    db.set_profiling(true);
    let rounds = if quick { 3 } else { ROUNDS };
    for _ in 0..rounds {
        db.execute(&gen.sales_batch(BATCH)).unwrap();
        db.propagate("V").unwrap();
    }
    db.partial_refresh("V").unwrap();
    let cov_report = db.profile_report();
    let props: Vec<&MaintProfile> = cov_report
        .ops
        .iter()
        .filter(|o| o.op == "propagate")
        .collect();
    assert_eq!(props.len(), rounds, "every propagate must be profiled");
    let coverage = median_coverage(&props);
    println!(
        "exp_profile: {} profiled propagates, median attribution coverage {:.0}% \
         (gate: {:.0}%–{:.0}%)",
        props.len(),
        coverage * 100.0,
        COVERAGE_LO * 100.0,
        COVERAGE_HI * 100.0,
    );
    println!("\nlast profiled propagate:\n{}", props.last().unwrap().render());
    if !(COVERAGE_LO..=COVERAGE_HI).contains(&coverage) {
        eprintln!(
            "exp_profile: FAIL — per-operator nanos explain {:.0}% of observed propagate \
             latency, outside the {:.0}%–{:.0}% attribution budget",
            coverage * 100.0,
            COVERAGE_LO * 100.0,
            COVERAGE_HI * 100.0,
        );
        std::process::exit(1);
    }

    // --- time-series recorder: Policy 2 ticks on the same database ---
    let mut driver = PolicyDriver::new(&db);
    driver
        .add_view("V", RefreshPolicy::Policy2 { k: 1, m: 4 })
        .unwrap();
    let ticks = if quick { 4 } else { TICKS };
    for _ in 0..ticks {
        db.execute(&gen.sales_batch(20)).unwrap();
        driver.tick().unwrap();
    }
    let report = db.profile_report();
    db.set_profiling(false);
    for want in ["propagate_ns/V", "refresh_ns/V", "staleness_ns/V", "backlog_entries/V"] {
        assert!(
            report.series.iter().any(|s| s.name() == want),
            "missing time series `{want}`"
        );
    }
    println!(
        "time series after {ticks} policy ticks: {}",
        report
            .series
            .iter()
            .map(|s| format!("{} ({} samples)", s.name(), s.samples()))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // --- profiling overhead: identical propagate workloads, off vs on ---
    let mut out: Vec<Summary> = Vec::new();
    for (name, on) in [("profile/propagate/off", false), ("profile/propagate/on", true)] {
        out.push(bench.run_batched(
            name,
            || {
                let (db, mut gen) = make();
                db.set_profiling(on);
                db.execute(&gen.sales_batch(BATCH)).unwrap();
                db
            },
            |db| {
                db.propagate("V").unwrap();
                db.set_profiling(false);
            },
        ));
    }

    if quick {
        println!(
            "exp_profile: smoke OK — coverage gate passed, {} series recorded, \
             {} benchmarks ran",
            report.series.len(),
            out.len()
        );
        return;
    }
    summary_table(&out).print();
    let off = out[0].median_ns;
    let on = out[1].median_ns;
    println!(
        "\nprofiling overhead on propagate: {:.1}% (off median {}, on median {})",
        (on / off - 1.0) * 100.0,
        dvm_obs::fmt_nanos(off),
        dvm_obs::fmt_nanos(on),
    );

    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let par = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let body = to_json_report_with_host(&out, par);
        // Splice the profiling report in next to the host stamp and the
        // benchmarks array: {"profile":…, "host":…, "benchmarks":[…]}.
        let doc = format!("{{\"profile\":{},{}", report.to_json(), &body[1..]);
        let path = dir.join("BENCH_profile.json");
        match std::fs::write(&path, doc) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}
