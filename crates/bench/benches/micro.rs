//! Micro-benchmarks for the building blocks behind every experiment:
//! bag-algebra primitives, join evaluation, differential-query generation,
//! the composition lemma, and the three refresh paths.
//!
//! Runs on the in-workspace `dvm-testkit` bench harness (`harness = false`).
//! Invoked by `cargo bench` it takes full statistical samples, prints an
//! aligned table, and writes `results/BENCH_micro.json`; invoked by
//! `cargo test` (cargo passes `--test`) it smoke-runs every body once.

use dvm_algebra::infer::{compile, compile_unoptimized};
use dvm_algebra::testgen::{Rng, Universe};
use dvm_bench::report::{summary_table, write_json};
use dvm_bench::retail_db;
use dvm_core::{Minimality, Scenario};
use dvm_delta::{compose, post_update_deltas, pre_update_deltas};
use dvm_storage::{tuple, Bag};
use dvm_testkit::bench::{Bench, Summary};
use dvm_workload::view_expr;

fn bag_of_ints(n: i64, seed: i64) -> Bag {
    let mut b = Bag::new();
    for i in 0..n {
        b.insert_n(tuple![(i * 7 + seed) % n, i % 13], 1 + (i % 3) as u64);
    }
    b
}

fn bench_bag_ops(b: &Bench, out: &mut Vec<Summary>) {
    for &n in &[1_000i64, 10_000] {
        let x = bag_of_ints(n, 1);
        let y = bag_of_ints(n, 3);
        out.push(b.run(format!("bag_ops/union/{n}"), || x.union(&y)));
        out.push(b.run(format!("bag_ops/monus/{n}"), || x.monus(&y)));
        out.push(b.run(format!("bag_ops/min_intersect/{n}"), || x.min_intersect(&y)));
        out.push(b.run(format!("bag_ops/dedup/{n}"), || x.dedup()));
        let d2 = bag_of_ints(n / 10, 5);
        let i2 = bag_of_ints(n / 10, 7);
        out.push(b.run(format!("bag_ops/compose_lemma3/{n}"), || {
            compose(&x, &y, &d2, &i2)
        }));
    }
}

fn bench_join(b: &Bench, out: &mut Vec<Summary>) {
    let b = b.clone().samples(20);
    for &customers in &[1_000usize, 5_000] {
        let (db, _gen) = retail_db(
            customers,
            customers * 5,
            Scenario::BaseLog,
            Minimality::Weak,
            3,
        );
        let q = compile(&view_expr(), db.catalog()).unwrap();
        out.push(b.run(format!("retail_view_eval/hash_join/{customers}"), || {
            dvm_algebra::eval_in_catalog(&q, db.catalog()).unwrap()
        }));
        if customers <= 1_000 {
            let naive = compile_unoptimized(&view_expr(), db.catalog()).unwrap();
            out.push(b.run(format!("retail_view_eval/naive_product/{customers}"), || {
                dvm_algebra::eval_in_catalog(&naive, db.catalog()).unwrap()
            }));
        }
    }
}

fn bench_differentiation(b: &Bench, out: &mut Vec<Summary>) {
    // query-generation cost (what IM/DT pay per transaction, symbolically)
    let (db, mut gen) = retail_db(500, 2_000, Scenario::BaseLog, Minimality::Weak, 5);
    let tx = gen.sales_batch(10);
    out.push(b.run("differentiation/pre_update_deltas_retail", || {
        pre_update_deltas(&view_expr(), &tx, db.catalog()).unwrap()
    }));
    let view = db.view("V").unwrap();
    let log = view.log().unwrap().clone();
    out.push(b.run("differentiation/post_update_deltas_retail", || {
        post_update_deltas(&view_expr(), &log, db.catalog()).unwrap()
    }));
    // random deep expressions
    let u = Universe::small(3);
    let provider = u.provider();
    let mut rng = Rng::new(11);
    let state = u.state(&mut rng, 5);
    let q = u.expr(&mut rng, 4);
    let eta = u.weakly_minimal_subst(&mut rng, &state);
    out.push(b.run("differentiation/differentiate_depth4", || {
        dvm_delta::differentiate(&q, &eta, &provider).unwrap()
    }));
}

fn bench_refresh_paths(b: &Bench, out: &mut Vec<Summary>) {
    let b = b.clone().samples(10);
    // Each round builds its own deferred backlog, so use the batched shape.
    out.push(b.run_batched(
        "refresh_paths/refresh_BL_100tx",
        || {
            let (db, mut gen) = retail_db(1_000, 5_000, Scenario::BaseLog, Minimality::Weak, 8);
            for _ in 0..100 {
                db.execute(&gen.sales_batch(10)).unwrap();
            }
            db
        },
        |db| db.refresh("V").unwrap(),
    ));
    out.push(b.run_batched(
        "refresh_paths/partial_refresh_C_100tx",
        || {
            let (db, mut gen) = retail_db(1_000, 5_000, Scenario::Combined, Minimality::Weak, 8);
            for _ in 0..100 {
                db.execute(&gen.sales_batch(10)).unwrap();
            }
            db.propagate("V").unwrap();
            db
        },
        |db| db.partial_refresh("V").unwrap(),
    ));
    out.push(b.run_batched(
        "refresh_paths/recompute_100tx_backlog",
        || {
            let (db, mut gen) = retail_db(1_000, 5_000, Scenario::BaseLog, Minimality::Weak, 8);
            for _ in 0..100 {
                db.execute(&gen.sales_batch(10)).unwrap();
            }
            db
        },
        |db| db.recompute_view("V").unwrap(),
    ));
}

fn bench_makesafe(b: &Bench, out: &mut Vec<Summary>) {
    for (label, scenario) in [
        ("IM", Scenario::Immediate),
        ("BL", Scenario::BaseLog),
        ("DT", Scenario::DiffTable),
        ("C", Scenario::Combined),
    ] {
        out.push(b.run_batched(
            format!("makesafe_per_tx/{label}"),
            || {
                let (db, mut gen) = retail_db(1_000, 5_000, scenario, Minimality::Weak, 13);
                let tx = gen.mixed_batch(10, 2);
                (db, tx)
            },
            |(db, tx)| db.execute(&tx).unwrap(),
        ));
    }
}

fn bench_sql(b: &Bench, out: &mut Vec<Summary>) {
    out.push(b.run("sql/parse_lower_example_1_1", || {
        dvm_sql::sql_to_statement(dvm_workload::VIEW_SQL).unwrap()
    }));
}

fn main() {
    // `cargo test` runs bench targets with `--test` (criterion's smoke-mode
    // convention); there, run every body once and skip reporting.
    let quick = std::env::args().any(|a| a == "--test");
    let bench = if quick { Bench::quick() } else { Bench::from_env() };
    let mut out = Vec::new();
    bench_bag_ops(&bench, &mut out);
    bench_join(&bench, &mut out);
    bench_differentiation(&bench, &mut out);
    bench_refresh_paths(&bench, &mut out);
    bench_makesafe(&bench, &mut out);
    bench_sql(&bench, &mut out);
    if quick {
        println!("micro: {} benchmarks smoke-ran", out.len());
        return;
    }
    summary_table(&out).print();
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("BENCH_micro.json");
        match write_json(&path, &out) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
        }
    }
}
