//! The bag algebra `BA` of Section 2.1, as a logical expression tree.
//!
//! Grammar (paper):
//!
//! ```text
//! Q ::= R | φ | {x} | σ_p(Q) | Π_A(Q) | ε(Q) | Q ⊎ Q | Q ∸ Q | Q × Q
//! ```
//!
//! plus the derived operations `EXCEPT`, `min` (minimal intersection) and
//! `max` (maximal union), which we keep as native nodes for efficiency —
//! [`Expr::expand_derived`] rewrites them into the core grammar using the
//! paper's defining equations, and property tests check the equivalence.
//!
//! [`Expr::Alias`] is a naming device (`FROM customer c`): it re-qualifies
//! the output columns and is a runtime no-op, but makes self-joins
//! expressible — which matters, because self-joins are exactly where the
//! *state bug* shows up (Section 4.2, Remark 1).

use crate::aggregate::AggCall;
use crate::error::{AlgebraError, Result};
use crate::predicate::{ColRef, Predicate};
use dvm_storage::{Bag, Schema, Tuple};
use std::collections::BTreeSet;

/// A logical bag-algebra expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A base (or auxiliary) table reference `R`.
    Table(String),
    /// A constant bag with an explicit schema; `φ` when the bag is empty,
    /// `{x}` when it is a singleton.
    Literal {
        /// The constant contents.
        bag: Bag,
        /// Declared schema (validated at compile time).
        schema: Schema,
    },
    /// Re-qualify output columns with a table alias (`FROM R AS a`).
    Alias {
        /// The alias.
        alias: String,
        /// Input expression.
        input: Box<Expr>,
    },
    /// Selection `σ_p(E)`.
    Select {
        /// Filter predicate.
        pred: Predicate,
        /// Input expression.
        input: Box<Expr>,
    },
    /// Projection `Π_A(E)` — duplicates preserved (bag projection).
    Project {
        /// Output columns, resolved against the input schema.
        cols: Vec<ColRef>,
        /// Input expression.
        input: Box<Expr>,
    },
    /// Duplicate elimination `ε(E)`.
    DupElim(Box<Expr>),
    /// Additive union `E ⊎ F`.
    Union(Box<Expr>, Box<Expr>),
    /// Monus `E ∸ F` (multiplicity-saturating difference).
    Monus(Box<Expr>, Box<Expr>),
    /// Cartesian product `E × F`.
    Product(Box<Expr>, Box<Expr>),
    /// Minimal intersection `E min F` (derived: `E ∸ (E ∸ F)`).
    MinIntersect(Box<Expr>, Box<Expr>),
    /// Maximal union `E max F` (derived: `E ⊎ (F ∸ E)`).
    MaxUnion(Box<Expr>, Box<Expr>),
    /// SQL `EXCEPT`: remove *all* occurrences of tuples present in `F`.
    Except(Box<Expr>, Box<Expr>),
    /// Grouping aggregate `γ_{keys; aggs}(E)`: partition the input by the
    /// key columns and emit one row per non-empty group — the key values
    /// followed by one aggregate value per [`AggCall`]. Not part of the
    /// paper's `BA` grammar; its differential rules live in `dvm-delta`.
    GroupAggregate {
        /// Grouping key columns, resolved against the input schema. NULL
        /// keys form a group of their own (SQL `GROUP BY` semantics).
        keys: Vec<ColRef>,
        /// Aggregate functions over the input, in output order.
        aggs: Vec<AggCall>,
        /// Input expression.
        input: Box<Expr>,
    },
}

impl Expr {
    /// Reference to a table.
    pub fn table(name: impl Into<String>) -> Expr {
        Expr::Table(name.into())
    }

    /// The empty bag `φ` with the given schema.
    pub fn empty(schema: Schema) -> Expr {
        Expr::Literal {
            bag: Bag::new(),
            schema,
        }
    }

    /// The singleton bag `{x}`.
    pub fn singleton(tuple: Tuple, schema: Schema) -> Expr {
        Expr::Literal {
            bag: Bag::singleton(tuple),
            schema,
        }
    }

    /// A constant bag.
    pub fn literal(bag: Bag, schema: Schema) -> Expr {
        Expr::Literal { bag, schema }
    }

    /// `σ_pred(self)`
    pub fn select(self, pred: Predicate) -> Expr {
        Expr::Select {
            pred,
            input: Box::new(self),
        }
    }

    /// `Π_cols(self)` — columns parsed from `"name"` / `"q.name"` strings.
    pub fn project<I, S>(self, cols: I) -> Expr
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Expr::Project {
            cols: cols
                .into_iter()
                .map(|s| ColRef::parse(s.as_ref()))
                .collect(),
            input: Box::new(self),
        }
    }

    /// `Π_cols(self)` from explicit references.
    pub fn project_refs(self, cols: Vec<ColRef>) -> Expr {
        Expr::Project {
            cols,
            input: Box::new(self),
        }
    }

    /// `ε(self)`
    pub fn dedup(self) -> Expr {
        Expr::DupElim(Box::new(self))
    }

    /// `self AS alias`
    pub fn alias(self, alias: impl Into<String>) -> Expr {
        Expr::Alias {
            alias: alias.into(),
            input: Box::new(self),
        }
    }

    /// `self ⊎ other`
    pub fn union(self, other: Expr) -> Expr {
        Expr::Union(Box::new(self), Box::new(other))
    }

    /// `self ∸ other`
    pub fn monus(self, other: Expr) -> Expr {
        Expr::Monus(Box::new(self), Box::new(other))
    }

    /// `self × other`
    pub fn product(self, other: Expr) -> Expr {
        Expr::Product(Box::new(self), Box::new(other))
    }

    /// `self min other`
    pub fn min_intersect(self, other: Expr) -> Expr {
        Expr::MinIntersect(Box::new(self), Box::new(other))
    }

    /// `self max other`
    pub fn max_union(self, other: Expr) -> Expr {
        Expr::MaxUnion(Box::new(self), Box::new(other))
    }

    /// `self EXCEPT other`
    pub fn except(self, other: Expr) -> Expr {
        Expr::Except(Box::new(self), Box::new(other))
    }

    /// `γ_{keys; aggs}(self)` — group by `keys`, computing `aggs`.
    pub fn group_aggregate(self, keys: Vec<ColRef>, aggs: Vec<AggCall>) -> Expr {
        Expr::GroupAggregate {
            keys,
            aggs,
            input: Box::new(self),
        }
    }

    /// Whether this is a literal empty bag `φ`.
    pub fn is_empty_literal(&self) -> bool {
        matches!(self, Expr::Literal { bag, .. } if bag.is_empty())
    }

    /// Names of all tables referenced (deduplicated, sorted).
    pub fn tables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Table(n) => {
                out.insert(n.clone());
            }
            Expr::Literal { .. } => {}
            Expr::Alias { input, .. }
            | Expr::Select { input, .. }
            | Expr::Project { input, .. }
            | Expr::GroupAggregate { input, .. } => input.collect_tables(out),
            Expr::DupElim(e) => e.collect_tables(out),
            Expr::Union(a, b)
            | Expr::Monus(a, b)
            | Expr::Product(a, b)
            | Expr::MinIntersect(a, b)
            | Expr::MaxUnion(a, b)
            | Expr::Except(a, b) => {
                a.collect_tables(out);
                b.collect_tables(out);
            }
        }
    }

    /// Count of AST nodes (used in tests and to report incremental-query
    /// sizes in experiments).
    pub fn size(&self) -> usize {
        match self {
            Expr::Table(_) | Expr::Literal { .. } => 1,
            Expr::Alias { input, .. }
            | Expr::Select { input, .. }
            | Expr::Project { input, .. }
            | Expr::GroupAggregate { input, .. } => 1 + input.size(),
            Expr::DupElim(e) => 1 + e.size(),
            Expr::Union(a, b)
            | Expr::Monus(a, b)
            | Expr::Product(a, b)
            | Expr::MinIntersect(a, b)
            | Expr::MaxUnion(a, b)
            | Expr::Except(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Whether this expression mentions any of the given tables. Expressions
    /// that touch no changed table have `Del = Add = φ`, which is what makes
    /// incremental queries small.
    pub fn mentions_any(&self, tables: &BTreeSet<String>) -> bool {
        self.tables().iter().any(|t| tables.contains(t))
    }

    /// Rewrite derived operators (`min`, `max`, `EXCEPT`) into the core
    /// grammar using the paper's defining equations:
    ///
    /// * `Q1 min Q2 ≝ Q1 ∸ (Q1 ∸ Q2)`
    /// * `Q1 max Q2 ≝ Q1 ⊎ (Q2 ∸ Q1)`
    /// * `Q1 EXCEPT Q2 ≝ Π₁(σ₁₌₂(Q1 × (ε(Q1) ∸ Q2)))` — realized with
    ///   aliases `__l`/`__r` and name-based equality over every column, which
    ///   requires the left schema (provided by the caller) to have distinct
    ///   column names.
    pub fn expand_derived(
        &self,
        left_schema_of_except: &dyn Fn(&Expr) -> Result<Schema>,
    ) -> Result<Expr> {
        Ok(match self {
            Expr::Table(_) | Expr::Literal { .. } => self.clone(),
            Expr::Alias { alias, input } => Expr::Alias {
                alias: alias.clone(),
                input: Box::new(input.expand_derived(left_schema_of_except)?),
            },
            Expr::Select { pred, input } => Expr::Select {
                pred: pred.clone(),
                input: Box::new(input.expand_derived(left_schema_of_except)?),
            },
            Expr::Project { cols, input } => Expr::Project {
                cols: cols.clone(),
                input: Box::new(input.expand_derived(left_schema_of_except)?),
            },
            Expr::DupElim(e) => Expr::DupElim(Box::new(e.expand_derived(left_schema_of_except)?)),
            Expr::Union(a, b) => Expr::Union(
                Box::new(a.expand_derived(left_schema_of_except)?),
                Box::new(b.expand_derived(left_schema_of_except)?),
            ),
            Expr::Monus(a, b) => Expr::Monus(
                Box::new(a.expand_derived(left_schema_of_except)?),
                Box::new(b.expand_derived(left_schema_of_except)?),
            ),
            Expr::Product(a, b) => Expr::Product(
                Box::new(a.expand_derived(left_schema_of_except)?),
                Box::new(b.expand_derived(left_schema_of_except)?),
            ),
            Expr::MinIntersect(a, b) => {
                let a = a.expand_derived(left_schema_of_except)?;
                let b = b.expand_derived(left_schema_of_except)?;
                a.clone().monus(a.monus(b))
            }
            Expr::MaxUnion(a, b) => {
                let a = a.expand_derived(left_schema_of_except)?;
                let b = b.expand_derived(left_schema_of_except)?;
                a.clone().union(b.monus(a))
            }
            Expr::Except(a, b) => {
                let a = a.expand_derived(left_schema_of_except)?;
                let b = b.expand_derived(left_schema_of_except)?;
                let schema = left_schema_of_except(&a)?;
                expand_except(&a, &b, &schema)?
            }
            // Not a derived operator: the aggregate has no defining equation
            // in the core grammar, so only its input is expanded.
            Expr::GroupAggregate { keys, aggs, input } => Expr::GroupAggregate {
                keys: keys.clone(),
                aggs: aggs.clone(),
                input: Box::new(input.expand_derived(left_schema_of_except)?),
            },
        })
    }
}

/// Expand `a EXCEPT b` per the paper's equation, joining `a` against
/// `ε(a) ∸ b` on all columns and projecting `a`'s side back out.
///
/// The per-column join predicate uses **null-safe equality** (`<=>`), not
/// `=`: the direct `Bag::except_all_occurrences` operator compares whole
/// tuples by value identity, under which two NULLs in the same position
/// match. Three-valued `=` would silently drop every NULL-bearing survivor
/// from the semijoin, making the expansion diverge from the operator it is
/// supposed to define (the PR 6 EXCEPT/NULL divergence).
fn expand_except(a: &Expr, b: &Expr, left_schema: &Schema) -> Result<Expr> {
    let names: Vec<&str> = left_schema
        .columns()
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    let mut distinct = names.clone();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() != names.len() || names.iter().any(|n| n.is_empty()) {
        return Err(AlgebraError::UnexpandableExcept(format!(
            "left schema needs distinct nonempty column names, got {left_schema}"
        )));
    }
    let left = a.clone().alias("__l");
    let right = b.clone();
    let survivors = a.clone().dedup().monus(right).alias("__r");
    let mut pred = Predicate::always();
    let mut first = true;
    for n in &names {
        let eq = Predicate::null_eq(
            crate::predicate::Operand::Col(ColRef::qualified("__l", *n)),
            crate::predicate::Operand::Col(ColRef::qualified("__r", *n)),
        );
        pred = if first { eq } else { pred.and(eq) };
        first = false;
    }
    let cols: Vec<ColRef> = names.iter().map(|n| ColRef::qualified("__l", *n)).collect();
    Ok(left.product(survivors).select(pred).project_refs(cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_storage::ValueType;

    #[test]
    fn builders_compose() {
        let e = Expr::table("customer")
            .alias("c")
            .product(Expr::table("sales").alias("s"))
            .select(Predicate::eq(
                crate::predicate::col("c.custId"),
                crate::predicate::col("s.custId"),
            ))
            .project(["c.custId", "s.itemNo"]);
        assert_eq!(
            e.tables().into_iter().collect::<Vec<_>>(),
            vec!["customer".to_string(), "sales".to_string()]
        );
        assert_eq!(e.size(), 7);
    }

    #[test]
    fn empty_literal_detection() {
        let s = Schema::from_pairs(&[("a", ValueType::Int)]);
        assert!(Expr::empty(s.clone()).is_empty_literal());
        assert!(!Expr::singleton(dvm_storage::tuple![1], s).is_empty_literal());
        assert!(!Expr::table("r").is_empty_literal());
    }

    #[test]
    fn mentions_any() {
        let e = Expr::table("r").union(Expr::table("s"));
        let mut set = BTreeSet::new();
        set.insert("s".to_string());
        assert!(e.mentions_any(&set));
        let mut other = BTreeSet::new();
        other.insert("zzz".to_string());
        assert!(!e.mentions_any(&other));
    }

    #[test]
    fn self_join_references_table_once_in_set() {
        let e = Expr::table("r")
            .alias("r1")
            .product(Expr::table("r").alias("r2"));
        assert_eq!(e.tables().len(), 1);
    }

    #[test]
    fn expand_min_max_shapes() {
        let schema = Schema::from_pairs(&[("a", ValueType::Int)]);
        let provider = move |_: &Expr| Ok(schema.clone());
        let e = Expr::table("r").min_intersect(Expr::table("s"));
        let expanded = e.expand_derived(&provider).unwrap();
        // r ∸ (r ∸ s)
        assert_eq!(
            expanded,
            Expr::table("r").monus(Expr::table("r").monus(Expr::table("s")))
        );
        let e = Expr::table("r").max_union(Expr::table("s"));
        let expanded = e.expand_derived(&provider).unwrap();
        assert_eq!(
            expanded,
            Expr::table("r").union(Expr::table("s").monus(Expr::table("r")))
        );
    }

    #[test]
    fn expand_except_requires_distinct_names() {
        let dup = Schema::new(vec![
            dvm_storage::Column::qualified("x", "a", ValueType::Int),
            dvm_storage::Column::qualified("y", "a", ValueType::Int),
        ])
        .unwrap();
        let provider = move |_: &Expr| Ok(dup.clone());
        let e = Expr::table("r").except(Expr::table("s"));
        assert!(matches!(
            e.expand_derived(&provider),
            Err(AlgebraError::UnexpandableExcept(_))
        ));
    }
}
