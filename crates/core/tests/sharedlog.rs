//! The shared epoch log (Section 7): correctness under random streams and
//! the central property — per-transaction maintenance work independent of
//! the number of views.

use dvm_algebra::testgen::{Rng, Universe};
use dvm_core::{Database, Minimality};
use dvm_delta::Transaction;
use dvm_storage::{tuple, Bag};

fn random_tx(u: &Universe, rng: &mut Rng, db: &Database) -> Transaction {
    let mut tx = Transaction::new();
    for t in &u.tables {
        if rng.chance(1, 2) {
            continue;
        }
        let current = db.catalog().bag_of(t).unwrap();
        let mut del = Bag::new();
        for (tuple, mult) in current.iter() {
            if rng.chance(1, 3) {
                del.insert_n(tuple.clone(), 1 + rng.below(mult));
            }
        }
        tx = tx.delete(t.clone(), del).insert(t.clone(), u.bag(rng, 3));
    }
    tx
}

#[test]
fn shared_views_preserve_invariants_under_random_streams() {
    let u = Universe::small(3);
    let mut rng = Rng::new(0x5A5A);
    let mut runs = 0;
    while runs < 15 {
        let def = u.expr(&mut rng, 2);
        let db = Database::new();
        for t in &u.tables {
            let table = db.create_table(t.clone(), u.schema.clone()).unwrap();
            table.replace(u.bag(&mut rng, 5)).unwrap();
        }
        if db
            .create_view_shared("s1", def.clone(), Minimality::Weak)
            .is_err()
        {
            continue;
        }
        db.create_view_shared("s2", def.clone(), Minimality::Strong)
            .unwrap();
        // a private-log twin over the same definition, as a correctness
        // reference
        db.create_view("p", def.clone(), dvm_core::Scenario::Combined)
            .unwrap();
        runs += 1;

        for step in 0..10 {
            let tx = random_tx(&u, &mut rng, &db);
            db.execute(&tx).unwrap();
            let failures = db.check_all_invariants().unwrap();
            assert!(failures.is_empty(), "step {step} of {def}: {failures:?}");
            // stagger the cursors: drain/refresh views at different times
            match rng.below(5) {
                0 => db.propagate("s1").unwrap(),
                1 => db.refresh("s2").unwrap(),
                2 => db.propagate("p").unwrap(),
                3 => db.partial_refresh("s1").unwrap(),
                _ => {}
            }
            let failures = db.check_all_invariants().unwrap();
            assert!(failures.is_empty(), "step {step} after maintenance");
            // read-through stays exact for shared views at any point
            assert_eq!(
                db.read_through("s1").unwrap(),
                db.recompute_view("s1").unwrap(),
                "read-through on shared view"
            );
        }
        for v in ["s1", "s2", "p"] {
            db.refresh(v).unwrap();
            assert_eq!(
                db.query_view(v).unwrap(),
                db.recompute_view(v).unwrap(),
                "{v} on {def}"
            );
        }
        db.vacuum_shared_log();
        assert_eq!(db.shared_log_stats().0, 0, "fully drained log vacuums away");
    }
}

#[test]
fn append_cost_independent_of_view_count() {
    // The observable contract: one transaction produces exactly one shared
    // append no matter how many shared views exist — but every relevant
    // shared view counts as maintained (it was!), and each one's metrics
    // carry an amortized slice of the append cost.
    let u = Universe::small(2);
    let mut rng = Rng::new(7);
    let def = || {
        dvm_algebra::Expr::table("t0").select(dvm_algebra::Predicate::gt(
            dvm_algebra::col("a"),
            dvm_algebra::lit(0i64),
        ))
    };
    let db = Database::new();
    for t in &u.tables {
        let table = db.create_table(t.clone(), u.schema.clone()).unwrap();
        table.replace(u.bag(&mut rng, 5)).unwrap();
    }
    for i in 0..8 {
        db.create_view_shared(format!("s{i}"), def(), Minimality::Weak)
            .unwrap();
    }
    let before = db.shared_log_stats();
    let report = db
        .execute(&Transaction::new().insert_tuple("t0", tuple![1, 1]))
        .unwrap();
    let after = db.shared_log_stats();
    assert_eq!(after.0 - before.0, 1, "ONE entry for 8 shared views");
    assert_eq!(
        report.views_maintained, 8,
        "every relevant shared view counts as maintained"
    );
    for i in 0..8 {
        let m = db.view_metrics(&format!("s{i}")).unwrap();
        assert_eq!(
            m.makesafe_count, 1,
            "s{i} is charged its amortized share of the single append"
        );
        assert!(m.makesafe_nanos > 0, "s{i} share is non-zero");
    }
    // every view still refreshes correctly from that single entry
    for i in 0..8 {
        let name = format!("s{i}");
        db.refresh(&name).unwrap();
        assert_eq!(
            db.query_view(&name).unwrap(),
            db.recompute_view(&name).unwrap()
        );
    }
}

#[test]
fn vacuum_respects_slowest_cursor() {
    let u = Universe::small(1);
    let mut rng = Rng::new(3);
    let db = Database::new();
    let table = db.create_table("t0", u.schema.clone()).unwrap();
    table.replace(u.bag(&mut rng, 4)).unwrap();
    let def = dvm_algebra::Expr::table("t0");
    db.create_view_shared("fast", def.clone(), Minimality::Weak)
        .unwrap();
    db.create_view_shared("slow", def, Minimality::Weak)
        .unwrap();

    db.execute(&Transaction::new().insert_tuple("t0", tuple![1, 2]))
        .unwrap();
    db.execute(&Transaction::new().insert_tuple("t0", tuple![3, 4]))
        .unwrap();
    // only `fast` drains
    db.propagate("fast").unwrap();
    let reclaimed = db.vacuum_shared_log();
    assert_eq!(reclaimed, 0, "`slow` still needs both entries");
    assert_eq!(db.shared_log_stats().0, 2);

    db.propagate("slow").unwrap();
    let reclaimed = db.vacuum_shared_log();
    assert_eq!(reclaimed, 2);
    // both views still land on the truth
    for v in ["fast", "slow"] {
        db.refresh(v).unwrap();
        assert_eq!(db.query_view(v).unwrap(), db.recompute_view(v).unwrap());
    }
}

#[test]
fn staggered_cursors_remain_individually_correct() {
    let u = Universe::small(1);
    let mut rng = Rng::new(13);
    let db = Database::new();
    let table = db.create_table("t0", u.schema.clone()).unwrap();
    table.replace(u.bag(&mut rng, 4)).unwrap();
    let def = dvm_algebra::Expr::table("t0");
    db.create_view_shared("a", def.clone(), Minimality::Weak)
        .unwrap();
    db.create_view_shared("b", def, Minimality::Weak).unwrap();

    db.execute(&Transaction::new().insert_tuple("t0", tuple![1, 1]))
        .unwrap();
    db.refresh("a").unwrap(); // a is fresh through epoch 1
    db.execute(&Transaction::new().insert_tuple("t0", tuple![2, 2]))
        .unwrap();
    db.refresh("b").unwrap(); // b is fresh through epoch 2

    assert!(db.query_view("a").unwrap().contains(&tuple![1, 1]));
    assert!(!db.query_view("a").unwrap().contains(&tuple![2, 2]));
    assert!(db.query_view("b").unwrap().contains(&tuple![2, 2]));
    assert!(db.check_invariant("a").unwrap().ok());
    assert!(db.check_invariant("b").unwrap().ok());

    db.refresh("a").unwrap();
    assert_eq!(db.query_view("a").unwrap(), db.query_view("b").unwrap());
}

#[test]
fn shared_flag_and_drop() {
    let db = Database::new();
    let u = Universe::small(1);
    db.create_table("t0", u.schema.clone()).unwrap();
    db.create_view_shared("s", dvm_algebra::Expr::table("t0"), Minimality::Weak)
        .unwrap();
    db.create_view(
        "p",
        dvm_algebra::Expr::table("t0"),
        dvm_core::Scenario::Combined,
    )
    .unwrap();
    assert!(db.is_shared_log_view("s"));
    assert!(!db.is_shared_log_view("p"));
    db.drop_view("s").unwrap();
    assert!(!db.is_shared_log_view("s"));
}
