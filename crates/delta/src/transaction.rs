//! Simple transactions (Section 2.2).
//!
//! A simple transaction has the form
//! `T = {R_i := (R_i ∸ ∇R_i) ⊎ ΔR_i}` — every table is simultaneously
//! updated by deleting the bag `∇R_i` and inserting the bag `ΔR_i`. The
//! paper notes this is without loss of generality: any abstract transaction
//! can be normalized to this shape.

use crate::error::{DeltaError, Result};
use dvm_algebra::eval::BagSource;
use dvm_algebra::infer::SchemaProvider;
use dvm_algebra::subst::FactoredSubstitution;
use dvm_algebra::Expr;
use dvm_storage::{Bag, Tuple};
use std::collections::BTreeMap;
use std::fmt;

/// A simple transaction: per-table delete and insert bags (`∇R`, `ΔR`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Transaction {
    changes: BTreeMap<String, (Bag, Bag)>,
}

impl Transaction {
    /// The empty transaction.
    pub fn new() -> Self {
        Transaction::default()
    }

    /// Add deletions for `table` (accumulates).
    pub fn delete(mut self, table: impl Into<String>, bag: Bag) -> Self {
        let entry = self.changes.entry(table.into()).or_default();
        entry.0.union_assign(&bag);
        self
    }

    /// Add insertions for `table` (accumulates).
    pub fn insert(mut self, table: impl Into<String>, bag: Bag) -> Self {
        let entry = self.changes.entry(table.into()).or_default();
        entry.1.union_assign(&bag);
        self
    }

    /// Delete a single tuple occurrence.
    pub fn delete_tuple(self, table: impl Into<String>, t: Tuple) -> Self {
        self.delete(table, Bag::singleton(t))
    }

    /// Insert a single tuple occurrence.
    pub fn insert_tuple(self, table: impl Into<String>, t: Tuple) -> Self {
        self.insert(table, Bag::singleton(t))
    }

    /// Tables touched by this transaction.
    pub fn tables(&self) -> impl Iterator<Item = &String> {
        self.changes.keys()
    }

    /// `(∇R, ΔR)` for a table, if it is touched.
    pub fn get(&self, table: &str) -> Option<(&Bag, &Bag)> {
        self.changes.get(table).map(|(d, i)| (d, i))
    }

    /// Whether the transaction changes nothing.
    pub fn is_empty(&self) -> bool {
        self.changes
            .values()
            .all(|(d, i)| d.is_empty() && i.is_empty())
    }

    /// Total tuple occurrences deleted + inserted (workload metric).
    pub fn change_volume(&self) -> u64 {
        self.changes.values().map(|(d, i)| d.len() + i.len()).sum()
    }

    /// Normalize against the current state: `∇R := ∇R min R`, so deleting an
    /// absent tuple is a no-op and the result is **weakly minimal**
    /// (`∇R ⊑ R`). The paper (Section 4.1) notes any transaction can be so
    /// transformed.
    pub fn make_weakly_minimal(&self, state: &dyn BagSource) -> Result<Transaction> {
        let mut out = Transaction::new();
        for (table, (del, ins)) in &self.changes {
            let current = state
                .bag(table)
                .map_err(|_| DeltaError::UnknownTable(table.clone()))?;
            let del = del.min_intersect(current);
            out.changes.insert(table.clone(), (del, ins.clone()));
        }
        Ok(out)
    }

    /// Whether `∇R ⊑ R` holds in `state` for every touched table.
    pub fn is_weakly_minimal(&self, state: &dyn BagSource) -> Result<bool> {
        for (table, (del, _)) in &self.changes {
            let current = state
                .bag(table)
                .map_err(|_| DeltaError::UnknownTable(table.clone()))?;
            if !del.is_subbag_of(current) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Normalize to **strong** minimality of the transaction itself:
    /// additionally cancel tuples that are both deleted and inserted
    /// (`∇R min ΔR` removed from both sides). Semantics preserved only when
    /// weak minimality holds first, so this calls
    /// [`Transaction::make_weakly_minimal`] internally.
    pub fn make_strongly_minimal(&self, state: &dyn BagSource) -> Result<Transaction> {
        let weak = self.make_weakly_minimal(state)?;
        let mut out = Transaction::new();
        for (table, (del, ins)) in &weak.changes {
            let overlap = del.min_intersect(ins);
            out.changes
                .insert(table.clone(), (del.monus(&overlap), ins.monus(&overlap)));
        }
        Ok(out)
    }

    /// The factored substitution `T̂` (Section 2.4): every touched table
    /// maps to `(R ∸ ∇R) ⊎ ΔR` with the bags as literals.
    pub fn to_subst(&self, provider: &dyn SchemaProvider) -> Result<FactoredSubstitution> {
        let mut f = FactoredSubstitution::new();
        for (table, (del, ins)) in &self.changes {
            let schema = provider
                .schema_of(table)
                .map_err(|_| DeltaError::UnknownTable(table.clone()))?;
            f.set(
                table.clone(),
                Expr::literal(del.clone(), schema.clone()),
                Expr::literal(ins.clone(), schema),
            );
        }
        Ok(f)
    }

    /// Apply to an in-memory state map (tests / simulation): simultaneous
    /// `R := (R ∸ ∇R) ⊎ ΔR` for every touched table.
    pub fn apply_to_map(&self, state: &mut std::collections::HashMap<String, Bag>) {
        for (table, (del, ins)) in &self.changes {
            if let Some(bag) = state.get_mut(table) {
                bag.apply_delta(del, ins);
            }
        }
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (table, (del, ins))) in self.changes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{table} := ({table} ∸ {del}) ⊎ {ins}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_storage::tuple;
    use std::collections::HashMap;

    fn state() -> HashMap<String, Bag> {
        let mut m = HashMap::new();
        let mut r = Bag::new();
        r.insert_n(tuple![1], 2);
        r.insert(tuple![2]);
        m.insert("r".to_string(), r);
        m.insert("s".to_string(), Bag::singleton(tuple![9]));
        m
    }

    #[test]
    fn builder_accumulates() {
        let t = Transaction::new()
            .insert_tuple("r", tuple![1])
            .insert_tuple("r", tuple![1])
            .delete_tuple("r", tuple![2]);
        let (d, i) = t.get("r").unwrap();
        assert_eq!(i.multiplicity(&tuple![1]), 2);
        assert_eq!(d.multiplicity(&tuple![2]), 1);
        assert_eq!(t.change_volume(), 3);
        assert!(!t.is_empty());
        assert!(Transaction::new().is_empty());
    }

    #[test]
    fn weak_minimality_normalization() {
        let s = state();
        // delete [1]×5 (only 2 present) and [7] (absent)
        let mut del = Bag::new();
        del.insert_n(tuple![1], 5);
        del.insert(tuple![7]);
        let t = Transaction::new().delete("r", del);
        assert!(!t.is_weakly_minimal(&s).unwrap());
        let w = t.make_weakly_minimal(&s).unwrap();
        assert!(w.is_weakly_minimal(&s).unwrap());
        let (d, _) = w.get("r").unwrap();
        assert_eq!(d.multiplicity(&tuple![1]), 2);
        assert_eq!(d.multiplicity(&tuple![7]), 0);
    }

    #[test]
    fn strong_minimality_cancels_churn() {
        let s = state();
        let t = Transaction::new()
            .delete_tuple("r", tuple![1])
            .insert_tuple("r", tuple![1])
            .insert_tuple("r", tuple![3]);
        let strong = t.make_strongly_minimal(&s).unwrap();
        let (d, i) = strong.get("r").unwrap();
        assert!(d.is_empty(), "delete+reinsert cancels");
        assert_eq!(i.multiplicity(&tuple![1]), 0);
        assert_eq!(i.multiplicity(&tuple![3]), 1);
    }

    #[test]
    fn strong_and_weak_apply_identically() {
        let s = state();
        let t = Transaction::new()
            .delete_tuple("r", tuple![1])
            .insert_tuple("r", tuple![1])
            .delete_tuple("r", tuple![2])
            .insert_tuple("s", tuple![4]);
        let mut after_weak = state();
        t.make_weakly_minimal(&s)
            .unwrap()
            .apply_to_map(&mut after_weak);
        let mut after_strong = state();
        t.make_strongly_minimal(&s)
            .unwrap()
            .apply_to_map(&mut after_strong);
        assert_eq!(after_weak, after_strong);
    }

    #[test]
    fn unknown_table_errors() {
        let s = state();
        let t = Transaction::new().insert_tuple("ghost", tuple![1]);
        assert!(matches!(
            t.make_weakly_minimal(&s),
            Err(DeltaError::UnknownTable(_))
        ));
    }

    #[test]
    fn apply_to_map_simultaneous_delta() {
        let mut s = state();
        let t = Transaction::new()
            .delete_tuple("r", tuple![1])
            .insert_tuple("r", tuple![5]);
        t.apply_to_map(&mut s);
        assert_eq!(s["r"].multiplicity(&tuple![1]), 1);
        assert_eq!(s["r"].multiplicity(&tuple![5]), 1);
    }

    #[test]
    fn display() {
        let t = Transaction::new().insert_tuple("r", tuple![1]);
        assert_eq!(t.to_string(), "{r := (r ∸ {}) ⊎ {[1]}}");
    }
}
