//! Shared binary codec: big-endian writers over a byte vector and a
//! bounds-checked, **offset-tracking** reader, plus encoders for the
//! storage primitives ([`Value`], [`Schema`], [`Bag`]) that every durable
//! artifact (snapshots, checkpoints, WAL records) is built from.
//!
//! Every decode error reports the absolute byte offset at which decoding
//! failed, so a corrupt frame in a multi-megabyte checkpoint can be
//! located without a hex dump.

use crate::bag::Bag;
use crate::error::{Result, StorageError};
use crate::schema::{Column, Schema};
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};
use std::sync::Arc;

// ---- writers --------------------------------------------------------------

/// Append a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a big-endian `u16`.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Append a big-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Append a big-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Append a length-prefixed UTF-8 string (`u32` length + bytes).
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Append an optional length-prefixed string (`u8` presence tag).
pub fn put_opt_str(buf: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => put_u8(buf, 0),
        Some(s) => {
            put_u8(buf, 1);
            put_str(buf, s);
        }
    }
}

// ---- reader ---------------------------------------------------------------

/// Bounds-checked big-endian reader over a byte slice. Tracks the absolute
/// offset of the next unread byte so every error can say *where* the
/// buffer went bad.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a buffer; offsets are reported relative to its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Absolute offset of the next unread byte.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// A [`StorageError::CorruptSnapshot`] stamped with the current offset.
    pub fn corrupt(&self, msg: impl std::fmt::Display) -> StorageError {
        StorageError::CorruptSnapshot(format!("at byte {}: {msg}", self.pos))
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.corrupt(format_args!("need {n} bytes, have {}", self.remaining())));
        }
        let head = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(head)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    /// Read a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let start = self.pos;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| {
            StorageError::CorruptSnapshot(format!("at byte {start}: bad utf8: {e}"))
        })
    }

    /// Read an optional string written by [`put_opt_str`].
    pub fn opt_str(&mut self) -> Result<Option<String>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            tag => Err(self.corrupt(format_args!("bad option tag {tag}"))),
        }
    }

    /// Fail unless the whole buffer was consumed — rejects trailing
    /// garbage, reporting where the valid prefix ended.
    pub fn expect_end(&self) -> Result<()> {
        if !self.is_empty() {
            return Err(self.corrupt(format_args!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

// ---- storage-primitive codecs ---------------------------------------------

/// Encode a [`Value`] (tag byte + payload).
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(buf, 0),
        Value::Bool(b) => {
            put_u8(buf, 1);
            put_u8(buf, *b as u8);
        }
        Value::Int(i) => {
            put_u8(buf, 2);
            put_u64(buf, *i as u64);
        }
        Value::Double(d) => {
            put_u8(buf, 3);
            put_u64(buf, d.to_bits());
        }
        Value::Str(s) => {
            put_u8(buf, 4);
            put_str(buf, s);
        }
    }
}

/// Decode a [`Value`] written by [`put_value`].
pub fn get_value(r: &mut Reader<'_>) -> Result<Value> {
    let at = r.offset();
    match r.u8()? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Bool(r.u8()? != 0)),
        2 => Ok(Value::Int(r.u64()? as i64)),
        3 => Ok(Value::Double(f64::from_bits(r.u64()?))),
        4 => Ok(Value::Str(Arc::from(r.str()?.as_str()))),
        tag => Err(StorageError::CorruptSnapshot(format!(
            "at byte {at}: unknown value tag {tag}"
        ))),
    }
}

/// Encode a [`ValueType`].
pub fn put_value_type(buf: &mut Vec<u8>, ty: ValueType) {
    put_u8(
        buf,
        match ty {
            ValueType::Bool => 0,
            ValueType::Int => 1,
            ValueType::Double => 2,
            ValueType::Str => 3,
        },
    );
}

/// Decode a [`ValueType`].
pub fn get_value_type(r: &mut Reader<'_>) -> Result<ValueType> {
    let at = r.offset();
    match r.u8()? {
        0 => Ok(ValueType::Bool),
        1 => Ok(ValueType::Int),
        2 => Ok(ValueType::Double),
        3 => Ok(ValueType::Str),
        tag => Err(StorageError::CorruptSnapshot(format!(
            "at byte {at}: unknown value type tag {tag}"
        ))),
    }
}

/// Encode a [`Schema`] (column count + per-column qualifier/name/type).
pub fn put_schema(buf: &mut Vec<u8>, schema: &Schema) {
    put_u16(buf, schema.arity() as u16);
    for col in schema.columns() {
        put_opt_str(buf, col.qualifier.as_deref());
        put_str(buf, &col.name);
        put_value_type(buf, col.ty);
    }
}

/// Decode a [`Schema`] written by [`put_schema`].
pub fn get_schema(r: &mut Reader<'_>) -> Result<Schema> {
    let at = r.offset();
    let arity = r.u16()? as usize;
    let mut cols = Vec::with_capacity(arity);
    for _ in 0..arity {
        let qualifier = r.opt_str()?;
        let name = r.str()?;
        let ty = get_value_type(r)?;
        cols.push(match qualifier {
            Some(q) => Column::qualified(q, name, ty),
            None => Column::new(name, ty),
        });
    }
    Schema::new(cols)
        .map_err(|e| StorageError::CorruptSnapshot(format!("at byte {at}: invalid schema: {e}")))
}

/// Encode a [`Bag`] (distinct count + per-tuple multiplicity/arity/values).
pub fn put_bag(buf: &mut Vec<u8>, bag: &Bag) {
    put_u32(buf, bag.distinct_len() as u32);
    for (tuple, mult) in bag.sorted_entries() {
        put_u64(buf, mult);
        put_u16(buf, tuple.arity() as u16);
        for v in tuple.values() {
            put_value(buf, v);
        }
    }
}

/// Decode a [`Bag`] written by [`put_bag`].
pub fn get_bag(r: &mut Reader<'_>) -> Result<Bag> {
    let ntuples = r.u32()? as usize;
    let mut bag = Bag::with_capacity(ntuples);
    for _ in 0..ntuples {
        let mult = r.u64()?;
        let arity = r.u16()? as usize;
        let mut vals = Vec::with_capacity(arity);
        for _ in 0..arity {
            vals.push(get_value(r)?);
        }
        bag.insert_n(Tuple::new(vals), mult);
    }
    Ok(bag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn scalar_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 300);
        put_u32(&mut buf, 70_000);
        put_u64(&mut buf, u64::MAX - 1);
        put_str(&mut buf, "héllo");
        put_opt_str(&mut buf, None);
        put_opt_str(&mut buf, Some("x"));
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.opt_str().unwrap(), None);
        assert_eq!(r.opt_str().unwrap(), Some("x".to_string()));
        r.expect_end().unwrap();
    }

    #[test]
    fn errors_carry_byte_offset() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 9); // claims 9 string bytes…
        buf.extend_from_slice(b"abc"); // …but only 3 follow
        let mut r = Reader::new(&buf);
        let err = r.str().unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("at byte 4"), "offset missing from: {msg}");
    }

    #[test]
    fn trailing_bytes_report_offset() {
        let buf = [0u8, 1, 2];
        let mut r = Reader::new(&buf);
        r.u8().unwrap();
        let msg = format!("{}", r.expect_end().unwrap_err());
        assert!(msg.contains("at byte 1"), "offset missing from: {msg}");
        assert!(msg.contains("2 trailing bytes"), "count missing from: {msg}");
    }

    #[test]
    fn value_roundtrip_all_tags() {
        let values = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-5),
            Value::Double(f64::NAN),
            Value::Str(Arc::from("s")),
        ];
        let mut buf = Vec::new();
        for v in &values {
            put_value(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for v in &values {
            let got = get_value(&mut r).unwrap();
            // NaN ≠ NaN under PartialEq; compare bit patterns for doubles.
            match (v, &got) {
                (Value::Double(a), Value::Double(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(*v, got),
            }
        }
        r.expect_end().unwrap();
    }

    #[test]
    fn schema_roundtrip() {
        let schema = Schema::new(vec![
            Column::qualified("c", "custId", ValueType::Int),
            Column::new("name", ValueType::Str),
            Column::new("active", ValueType::Bool),
            Column::new("score", ValueType::Double),
        ])
        .unwrap();
        let mut buf = Vec::new();
        put_schema(&mut buf, &schema);
        let mut r = Reader::new(&buf);
        assert_eq!(get_schema(&mut r).unwrap(), schema);
        r.expect_end().unwrap();
    }

    #[test]
    fn bag_roundtrip() {
        let mut bag = Bag::new();
        bag.insert_n(tuple![1, "a"], 3);
        bag.insert_n(tuple![2, "b"], 1);
        let mut buf = Vec::new();
        put_bag(&mut buf, &bag);
        let mut r = Reader::new(&buf);
        assert_eq!(get_bag(&mut r).unwrap(), bag);
        r.expect_end().unwrap();
    }

    #[test]
    fn unknown_tags_rejected_with_offset() {
        let buf = [9u8]; // bogus value tag at offset 0
        let mut r = Reader::new(&buf);
        let msg = format!("{}", get_value(&mut r).unwrap_err());
        assert!(msg.contains("at byte 0"), "offset missing from: {msg}");
    }
}
