//! End-to-end pipeline tests: admission control, concurrent producers,
//! twin equivalence against per-op `execute`, and group-commit fsync
//! coalescing on a durable database.

use dvm_algebra::Expr;
use dvm_core::{Database, Scenario};
use dvm_durability::{DurabilityPolicy, WalOptions};
use dvm_ingest::{Admission, ChangeEvent, IngestConfig, IngestError, IngestPipeline};
use dvm_storage::{tuple, Schema, ValueType};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dvm-ingest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn schema_a() -> Schema {
    Schema::from_pairs(&[("a", ValueType::Int)])
}

/// In-memory db with table `r` and a Combined-scenario view over it.
fn db_with_view() -> Database {
    let d = Database::new();
    d.create_table("r", schema_a()).unwrap();
    d.create_view("v", Expr::table("r"), Scenario::Combined).unwrap();
    d
}

#[test]
fn rejects_unknown_tables_at_construction_and_submit() {
    let d = db_with_view();
    assert_eq!(
        IngestPipeline::new(&d, &["nope"], IngestConfig::default()).err(),
        Some(IngestError::UnknownTable("nope".into()))
    );
    let p = IngestPipeline::new(&d, &["r"], IngestConfig::default()).unwrap();
    let err = p
        .producer()
        .submit(ChangeEvent::insert("s", tuple![1]))
        .unwrap_err();
    assert_eq!(err, IngestError::UnknownTable("s".into()));
}

#[test]
fn shed_mode_drops_and_counts_when_full() {
    let d = db_with_view();
    let cfg = IngestConfig {
        queue_capacity: 2,
        admission: Admission::Shed,
        ..IngestConfig::default()
    };
    let pipe = IngestPipeline::new(&d, &["r"], cfg).unwrap();
    let prod = pipe.producer();
    // No worker running: the queue fills at 2, the rest shed.
    let accepted: usize = (0..5)
        .map(|i| prod.submit(ChangeEvent::insert("r", tuple![i])).unwrap() as usize)
        .sum();
    assert_eq!(accepted, 2);
    assert_eq!(prod.shed_count(), 3);
    pipe.close();
    let stats = pipe.run_worker().unwrap();
    assert_eq!(stats.ingested, 2);
    assert_eq!(stats.shed, 3);
    assert_eq!(d.catalog().bag_of("r").unwrap().len(), 2);
}

#[test]
fn blocking_admission_delivers_everything_under_backpressure() {
    let d = db_with_view();
    let cfg = IngestConfig {
        queue_capacity: 2, // force producers to wait on the worker
        max_batch: 4,
        admission: Admission::Block,
    };
    let pipe = IngestPipeline::new(&d, &["r"], cfg).unwrap();
    const STREAMS: i64 = 4;
    const PER_STREAM: i64 = 50;
    std::thread::scope(|s| {
        let worker = s.spawn(|| pipe.run_worker());
        let producers: Vec<_> = (0..STREAMS)
            .map(|w| {
                let prod = pipe.producer();
                s.spawn(move || {
                    for i in 0..PER_STREAM {
                        prod.submit(ChangeEvent::insert("r", tuple![w * PER_STREAM + i]))
                            .unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        pipe.close();
        let stats = worker.join().unwrap().unwrap();
        assert_eq!(stats.submitted, (STREAMS * PER_STREAM) as u64);
        assert_eq!(stats.ingested, stats.submitted);
        assert_eq!(stats.shed, 0);
        assert!(stats.max_queue_depth <= 2, "bounded queue never overfilled");
    });
    // Twin: the same 200 inserts per-op. Inserts commute, so bag equality
    // holds whatever order the streams interleaved in.
    let twin = db_with_view();
    for w in 0..STREAMS {
        for i in 0..PER_STREAM {
            twin.execute(
                &dvm_delta::Transaction::new().insert_tuple("r", tuple![w * PER_STREAM + i]),
            )
            .unwrap();
        }
    }
    assert_eq!(d.catalog().bag_of("r").unwrap(), twin.catalog().bag_of("r").unwrap());
    // INV_C held through concurrent ingestion; the deferred view refreshes
    // to the full contents.
    assert!(d.check_invariant("v").unwrap().ok());
    d.refresh("v").unwrap();
    assert_eq!(d.query_view("v").unwrap().len(), (STREAMS * PER_STREAM) as u64);
}

#[test]
fn mixed_deletes_and_inserts_match_per_op_twin() {
    let d = db_with_view();
    let pipe = IngestPipeline::new(&d, &["r"], IngestConfig::default()).unwrap();
    let prod = pipe.producer();
    // Same single-producer event sequence on both sides, so even
    // non-commuting ops compare exactly.
    let events = |mut sink: Box<dyn FnMut(ChangeEvent)>| {
        for i in 0..20 {
            sink(ChangeEvent::insert("r", tuple![i % 7]));
            if i % 3 == 0 {
                sink(ChangeEvent::delete("r", tuple![i % 7]));
            }
        }
    };
    events(Box::new(|ev| {
        prod.submit(ev).unwrap();
    }));
    pipe.close();
    pipe.run_worker().unwrap();
    let twin = db_with_view();
    events(Box::new(|ev| {
        twin.execute(&ev.into_transaction()).unwrap();
    }));
    assert_eq!(d.catalog().bag_of("r").unwrap(), twin.catalog().bag_of("r").unwrap());
    d.refresh("v").unwrap();
    twin.refresh("v").unwrap();
    assert_eq!(d.query_view("v").unwrap(), twin.query_view("v").unwrap());
    assert!(d.check_invariant("v").unwrap().ok());
}

#[test]
fn group_commit_coalesces_fsyncs_under_always() {
    let dir = tmpdir("group-commit");
    let options = WalOptions {
        policy: DurabilityPolicy::Always,
        ..WalOptions::default()
    };
    let d = Database::open_with_options(&dir, options).unwrap();
    d.create_table("r", schema_a()).unwrap();
    d.set_profiling(true); // count real fsyncs via the WAL sync histogram
    let baseline_syncs = d.profile_report().wal_sync.map(|h| h.count).unwrap_or(0);
    let pipe = IngestPipeline::new(&d, &["r"], IngestConfig::default()).unwrap();
    let prod = pipe.producer();
    const N: i64 = 40;
    for i in 0..N {
        prod.submit(ChangeEvent::insert("r", tuple![i])).unwrap();
    }
    pipe.close();
    let stats = pipe.run_worker().unwrap();
    d.set_profiling(false);
    assert_eq!(stats.ingested, N as u64);
    assert_eq!(stats.wal_syncs, stats.batches);
    assert!(
        stats.batches < N as u64,
        "events were batched, not committed one-by-one ({} batches)",
        stats.batches
    );
    let syncs = d.profile_report().wal_sync.map(|h| h.count).unwrap_or(0) - baseline_syncs;
    assert!(
        syncs <= stats.batches + 1,
        "one fsync per batch, not per event: {syncs} syncs for {} batches",
        stats.batches
    );
    // The batch-final sync leaves no open group-commit window.
    let (wal, _) = d.wal_status().unwrap();
    assert_eq!(wal.unsynced_appends, 0);
    // Everything acknowledged is durable: a reopen sees all N rows.
    drop(d);
    let re = Database::open(&dir).unwrap();
    assert_eq!(re.catalog().bag_of("r").unwrap().len(), N as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gauges_surface_in_observability_registry() {
    let d = db_with_view();
    let pipe = IngestPipeline::new(&d, &["r"], IngestConfig::default()).unwrap();
    let prod = pipe.producer();
    for i in 0..10 {
        prod.submit(ChangeEvent::insert("r", tuple![i])).unwrap();
    }
    pipe.close();
    pipe.run_worker().unwrap();
    let obs = d.observability();
    let g = obs.ingest.expect("worker published gauges");
    assert_eq!(g.queues, 1);
    assert_eq!(g.submitted, 10);
    assert_eq!(g.ingested, 10);
    assert_eq!(g.queue_depth, 0, "drained at close");
    assert!(obs.render().contains("ingest:"), "rendered in \\metrics");
    // The worker also put its batch sizes on the shared timeline.
    let report = d.profile_report();
    assert!(report.series.iter().any(|s| s.name() == "ingest/batch_size"));
}
