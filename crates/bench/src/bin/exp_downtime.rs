//! **E3 — refresh downtime ordering** (paper Sections 1.1, 3.3–3.5, 5.3).
//!
//! Claim: downtime (time the refresh transaction holds the view's write
//! lock) is ordered
//!
//! ```text
//! partial_refresh_C  <  refresh_C (Policy 1)  <  refresh_BL  ≪  recompute
//! ```
//!
//! because `refresh_BL` evaluates the post-update incremental queries
//! *inside* the lock, Policy 1's refresh only folds the last propagation
//! interval, and `partial_refresh_C` merely applies precomputed
//! differential tables.
//!
//! Two phases:
//!
//! 1. **ordering** — accumulate N deferred transactions, then measure the
//!    write-lock hold of one refresh, with 2 concurrent readers hammering
//!    the view (their total blocked time is also reported);
//! 2. **distributions** — run many refresh cycles per configuration and
//!    report p50/p95/p99 of downtime, reader wait (attributed to the
//!    waiting view's MV lock), and the maintenance operations, from the
//!    engine's observability registry. The same registry snapshot is
//!    written to `results/exp_downtime.json`.

use dvm_bench::report::{fmt_duration, fmt_nanos, TableReport};
use dvm_bench::{retail_db, retail_db_durable};
use dvm_core::{Database, Minimality, Scenario};
use dvm_durability::{DurabilityPolicy, WalOptions};
use dvm_obs::json;
use dvm_workload::with_concurrent_readers;
use std::time::Duration;

/// `EXP_DOWNTIME_QUICK=1` shrinks every phase to smoke-test size (the CI
/// crash-recovery gate runs the binary this way).
fn quick() -> bool {
    std::env::var("EXP_DOWNTIME_QUICK").is_ok_and(|v| v == "1")
}

fn sizes() -> (usize, usize) {
    if quick() {
        (300, 1_200)
    } else {
        (5_000, 25_000)
    }
}

/// Run `n_tx` deferred transactions, then measure one refresh op.
fn measure(
    scenario: Scenario,
    n_tx: usize,
    // propagate every `k` transactions (None = never)
    propagate_every: Option<usize>,
    // the refresh op to time at the end
    refresh: impl Fn(&Database) -> dvm_core::Result<()>,
) -> (Duration, Duration) {
    let (customers, initial_sales) = sizes();
    let (db, mut gen) = retail_db(customers, initial_sales, scenario, Minimality::Weak, 9);
    for i in 0..n_tx {
        db.execute(&gen.mixed_batch(10, 2)).unwrap();
        if let Some(k) = propagate_every {
            if (i + 1) % k == 0 {
                db.propagate("V").unwrap();
            }
        }
    }
    let before = db.mv_table("V").unwrap().lock_metrics().snapshot();
    let (_, readers) = with_concurrent_readers(&db, "V", 2, || refresh(&db)).unwrap();
    let after = db.mv_table("V").unwrap().lock_metrics().snapshot();
    // sanity: refresh landed on the truth
    assert_eq!(
        db.query_view("V").unwrap(),
        db.recompute_view("V").unwrap(),
        "{scenario:?} refresh incorrect"
    );
    let downtime = Duration::from_nanos(after.write_hold_nanos - before.write_hold_nanos);
    let blocked = Duration::from_nanos(readers.lock_delta.read_block_nanos);
    (downtime, blocked)
}

/// Full recompute baseline: MV := Q from scratch, evaluated under the
/// write lock (what a system without incremental maintenance does). The
/// log is then discarded — its contents are subsumed by the recompute.
fn recompute_refresh(db: &Database) -> dvm_core::Result<()> {
    let mv = db.mv_table("V")?;
    let mut guard = mv.write();
    let fresh = db.recompute_view("V")?;
    *guard = fresh;
    drop(guard);
    let view = db.view("V")?;
    if let Some(log) = view.log() {
        for base in log.bases() {
            let (d, i) = log.get(base).expect("listed base");
            db.catalog().require(d)?.clear();
            db.catalog().require(i)?.clear();
        }
    }
    Ok(())
}

fn phase1_ordering() {
    let mut table = TableReport::new([
        "N deferred tx",
        "recompute (BL)",
        "refresh_BL",
        "refresh_C (P1, k=N/10)",
        "partial_refresh_C (P2)",
        "readers blocked (BL)",
    ]);

    let tx_counts: &[usize] = if quick() { &[50] } else { &[100, 500, 2_000] };
    for &n_tx in tx_counts {
        let (recompute_dt, _) = measure(Scenario::BaseLog, n_tx, None, recompute_refresh);
        let (bl, bl_blocked) = measure(Scenario::BaseLog, n_tx, None, |db| db.refresh("V"));
        // Policy 1: propagation has happened periodically; final refresh_C
        // only folds the tail of the log, then applies.
        let k = (n_tx / 10).max(1);
        let (p1, _) = measure(Scenario::Combined, n_tx, Some(k), |db| db.refresh("V"));
        // Policy 2: fully propagated, partial refresh just applies the DTs.
        let (p2, _) = measure(Scenario::Combined, n_tx, Some(k), |db| {
            db.propagate("V")?;
            db.partial_refresh("V")
        });
        table.row([
            n_tx.to_string(),
            fmt_duration(recompute_dt),
            fmt_duration(bl),
            fmt_duration(p1),
            fmt_duration(p2),
            fmt_duration(bl_blocked),
        ]);
    }
    table.print();
}

/// One phase-2 configuration: many refresh cycles under a fixed policy.
struct CycleConfig {
    name: &'static str,
    scenario: Scenario,
    /// Propagate before each refresh (Policies 1/2).
    propagate_first: bool,
    /// Use `partial_refresh_C` instead of `refresh_*` (Policy 2).
    partial: bool,
}

fn cycles() -> (usize, usize) {
    if quick() {
        (5, 4)
    } else {
        (25, 10)
    }
}

/// Run the configured refresh cycles and return the registry's JSON for
/// the run, after printing the percentile rows.
fn phase2_distributions(cfg: &CycleConfig, table: &mut TableReport) -> String {
    let (n_cycles, txs_per_cycle) = cycles();
    let (db, mut gen) = if quick() {
        retail_db(300, 1_200, cfg.scenario, Minimality::Weak, 31)
    } else {
        retail_db(1_000, 5_000, cfg.scenario, Minimality::Weak, 31)
    };
    for _ in 0..n_cycles {
        for _ in 0..txs_per_cycle {
            db.execute(&gen.mixed_batch(10, 2)).unwrap();
        }
        // 2 concurrent readers per cycle: their lock waits land in the MV
        // lock's read-wait histogram, attributed to this view.
        let ((), _stats) = with_concurrent_readers(&db, "V", 2, || {
            if cfg.propagate_first {
                db.propagate("V")?;
            }
            if cfg.partial {
                db.partial_refresh("V")
            } else {
                db.refresh("V")
            }
        })
        .unwrap();
    }
    let obs = db.observability();
    let v = obs
        .views
        .iter()
        .find(|v| v.name == "V")
        .expect("view V observed");
    for (op, h) in [
        ("refresh", &v.latency.refresh),
        ("propagate", &v.latency.propagate),
        ("makesafe", &v.latency.makesafe),
        ("downtime (write-hold)", &v.mv_write_hold),
        ("reader wait (V)", &v.mv_read_wait),
    ] {
        if h.is_empty() {
            continue;
        }
        table.row([
            cfg.name.to_string(),
            op.to_string(),
            h.count.to_string(),
            fmt_nanos(h.p50() as f64),
            fmt_nanos(h.p95() as f64),
            fmt_nanos(h.p99() as f64),
            fmt_nanos(h.max as f64),
        ]);
    }
    json::object([
        ("name", json::string(cfg.name)),
        ("cycles", json::num_u(n_cycles as u64)),
        ("txs_per_cycle", json::num_u(txs_per_cycle as u64)),
        ("observability", obs.to_json()),
    ])
}

/// When `DVM_DURABLE_DIR` is set, re-run the downtime measurement against
/// a database that went through a full durability cycle: built durably,
/// loaded with deferred transactions, closed, and reopened from
/// checkpoint + WAL. The recovered engine must produce the same correct
/// refresh with comparable downtime — recovery restores the deferred
/// state, it does not collapse it.
fn durable_reopen_phase(dir: &str) {
    let n_tx = if quick() { 50 } else { 500 };
    let (customers, initial_sales) = sizes();
    let path = std::path::Path::new(dir).join("exp_downtime");
    {
        let (db, mut gen) = retail_db_durable(
            &path,
            WalOptions {
                policy: DurabilityPolicy::EveryN(64),
                segment_bytes: 1 << 20,
            },
            customers,
            initial_sales,
            Scenario::Combined,
            Minimality::Weak,
            9,
        );
        let k = (n_tx / 10).max(1);
        for i in 0..n_tx {
            db.execute(&gen.mixed_batch(10, 2)).unwrap();
            if (i + 1) % k == 0 {
                db.propagate("V").unwrap();
            }
        }
    } // dropped: clean close, nothing refreshed

    let db = Database::open(&path).unwrap();
    let r = db.recovery_report().expect("durable open");
    let before = db.mv_table("V").unwrap().lock_metrics().snapshot();
    let (_, readers) = with_concurrent_readers(&db, "V", 2, || {
        db.propagate("V")?;
        db.partial_refresh("V")
    })
    .unwrap();
    let after = db.mv_table("V").unwrap().lock_metrics().snapshot();
    assert_eq!(
        db.query_view("V").unwrap(),
        db.recompute_view("V").unwrap(),
        "recovered database refreshes incorrectly"
    );
    assert!(db.check_all_invariants().unwrap().is_empty());
    println!(
        "\n=== recovered database (reopened from {}) ===\n\
         replayed {} wal record(s) ({} bytes) past checkpoint lsn {} in {}\n\
         partial_refresh_C downtime {}, readers blocked {}\n\
         refresh lands on the truth; all invariants hold",
        path.display(),
        r.wal_records_replayed,
        r.wal_bytes_replayed,
        r.checkpoint_lsn,
        fmt_nanos(r.recovery_nanos as f64),
        fmt_duration(Duration::from_nanos(
            after.write_hold_nanos - before.write_hold_nanos
        )),
        fmt_duration(Duration::from_nanos(readers.lock_delta.read_block_nanos)),
    );
    let _ = std::fs::remove_dir_all(&path);
}

fn main() {
    println!("=== E3: view downtime (write-lock hold during one refresh) ===\n");
    let (customers, initial_sales) = sizes();
    println!(
        "retail view over {customers} customers / {initial_sales}+ sales; N deferred tx of\n\
         (10 inserts + 2 deletes); 2 concurrent readers\n"
    );
    phase1_ordering();

    println!(
        "\npaper claim reproduced when each column is cheaper than the one to its\n\
         left: precomputing into differential tables moves work out of the lock;\n\
         Policy 2's downtime is just 'apply two bags', independent of how the\n\
         incremental changes were computed."
    );

    let (n_cycles, txs_per_cycle) = cycles();
    println!(
        "\n=== downtime & maintenance distributions ({n_cycles} refresh cycles, \
         {txs_per_cycle} tx/cycle, 2 readers) ===\n"
    );
    let configs = [
        CycleConfig {
            name: "refresh_BL",
            scenario: Scenario::BaseLog,
            propagate_first: false,
            partial: false,
        },
        CycleConfig {
            name: "refresh_C (P1)",
            scenario: Scenario::Combined,
            propagate_first: true,
            partial: false,
        },
        CycleConfig {
            name: "partial_refresh_C (P2)",
            scenario: Scenario::Combined,
            propagate_first: true,
            partial: true,
        },
    ];
    let mut table = TableReport::new(["configuration", "op", "count", "p50", "p95", "p99", "max"]);
    let mut docs = Vec::new();
    for cfg in &configs {
        docs.push(phase2_distributions(cfg, &mut table));
    }
    table.print();

    if quick() {
        println!("\n(quick mode: results/exp_downtime.json left untouched)");
    } else {
        let doc = json::object([
            ("experiment", json::string("exp_downtime")),
            ("configs", json::array(docs)),
        ]);
        std::fs::create_dir_all("results").expect("create results/");
        std::fs::write("results/exp_downtime.json", format!("{doc}\n")).expect("write results");
        println!("\nwrote results/exp_downtime.json");
    }

    if let Ok(dir) = std::env::var("DVM_DURABLE_DIR") {
        durable_reopen_phase(&dir);
    }
}
