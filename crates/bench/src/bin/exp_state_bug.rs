//! **E1 — the state bug** (paper Section 1.2, Examples 1.2 & 1.3;
//! Section 4.2, Remark 1).
//!
//! Three parts:
//!
//! 1. Replay the paper's two examples with its exact numbers.
//! 2. Randomized counterexample search over the *unrestricted* class
//!    (full bag algebra, self-joins, multi-table updates): the pre-update
//!    equations evaluated post-update fail on a substantial fraction of
//!    instances; the paper's post-update algorithm fails on none.
//! 3. The same search over the *restricted* class of Remark 1 (SPJ views
//!    without self-joins, single-table updates): there, both algorithms
//!    agree — explaining why earlier systems got away with the bug.

use dvm_algebra::eval::eval;
use dvm_algebra::infer::compile;
use dvm_algebra::testgen::{Rng, Universe};
use dvm_algebra::{col, Expr, FactoredSubstitution, Predicate};
use dvm_bench::report::TableReport;
use dvm_delta::{
    buggy_post_update_deltas, log_del_name, log_ins_name, post_update_deltas, LogTables,
};
use dvm_storage::{Bag, Schema};
use std::collections::HashMap;

struct SearchOutcome {
    instances: usize,
    buggy_wrong: usize,
    correct_wrong: usize,
}

fn provider_with_logs(u: &Universe) -> HashMap<String, Schema> {
    let mut p = u.provider();
    for t in &u.tables {
        p.insert(log_del_name(t), u.schema.clone());
        p.insert(log_ins_name(t), u.schema.clone());
    }
    p
}

/// Install the log of a single literal transaction into the post-state.
fn install_log(
    u: &Universe,
    f: &FactoredSubstitution,
    state: &mut HashMap<String, Bag>,
) -> LogTables {
    let mut log = LogTables::new();
    for t in &u.tables {
        log.add(t.clone());
        let (d, a) = match f.get(t) {
            Some((Expr::Literal { bag: d, .. }, Expr::Literal { bag: a, .. })) => {
                (d.clone(), a.clone())
            }
            None => (Bag::new(), Bag::new()),
            _ => unreachable!("literal deltas"),
        };
        state.insert(log_del_name(t), d);
        state.insert(log_ins_name(t), a);
    }
    log
}

fn run_search(
    u: &Universe,
    seed: u64,
    instances: usize,
    gen_query: impl Fn(&Universe, &mut Rng) -> Expr,
    gen_subst: impl Fn(&Universe, &mut Rng, &HashMap<String, Bag>) -> FactoredSubstitution,
) -> SearchOutcome {
    let provider = provider_with_logs(u);
    let mut rng = Rng::new(seed);
    let mut out = SearchOutcome {
        instances: 0,
        buggy_wrong: 0,
        correct_wrong: 0,
    };
    while out.instances < instances {
        let s_p = u.state(&mut rng, 4);
        let q = gen_query(u, &mut rng);
        let f = gen_subst(u, &mut rng, &s_p);
        if f.is_empty() {
            continue;
        }
        let mut s_c = u.apply_subst_to_state(&f, &s_p);
        let log = install_log(u, &f, &mut s_c);
        out.instances += 1;

        let q_plan = compile(&q, &provider).expect("typecheck").plan;
        let mv = eval(&q_plan, &s_p).expect("eval pre");
        let truth = eval(&q_plan, &s_c).expect("eval post");

        let ev = |e: &Expr| eval(&compile(e, &provider).expect("tc").plan, &s_c).expect("eval");

        let good = post_update_deltas(&q, &log, &provider).expect("deltas");
        let good_result = mv.monus(&ev(&good.del)).union(&ev(&good.ins));
        if good_result != truth {
            out.correct_wrong += 1;
        }

        let bad = buggy_post_update_deltas(&q, &log, &provider).expect("deltas");
        let bad_result = mv.monus(&ev(&bad.del)).union(&ev(&bad.ins));
        if bad_result != truth {
            out.buggy_wrong += 1;
        }
    }
    out
}

/// Restricted query class of Remark 1: SPJ over two *distinct* tables,
/// no self-join, no monus/dedup/derived ops.
fn restricted_query(u: &Universe, rng: &mut Rng) -> Expr {
    let i = rng.below(u.tables.len() as u64) as usize;
    let j = (i + 1 + rng.below(u.tables.len() as u64 - 1) as usize) % u.tables.len();
    let left = Expr::table(u.tables[i].clone()).alias("l");
    let right = Expr::table(u.tables[j].clone()).alias("r");
    let join = Predicate::eq(col("l.b"), col("r.a"));
    let extra = u.predicate(rng, &["l", "r"]);
    left.product(right)
        .select(join.and(extra))
        .project(["l.a", "r.b"])
}

/// Restricted updates: one table only (weakly minimal).
fn single_table_subst(
    u: &Universe,
    rng: &mut Rng,
    state: &HashMap<String, Bag>,
) -> FactoredSubstitution {
    // keep sampling until the full generator yields something, then keep
    // only one table's entry
    loop {
        let f = u.weakly_minimal_subst(rng, state);
        let first = f.tables().next().cloned();
        if let Some(t) = first {
            let (d, a) = f.get(&t).expect("listed");
            let mut single = FactoredSubstitution::new();
            let (d, a) = (d.clone(), a.clone());
            single.set(t, d, a);
            return single;
        }
    }
}

fn main() {
    println!("=== E1: the state bug (Examples 1.2, 1.3 + randomized search) ===\n");

    paper_examples();

    let u = Universe::small(3);
    let n = 10_000;

    println!("\nrandomized search, {n} instances each:\n");
    let unrestricted = run_search(
        &u,
        0xDEAD,
        n,
        |u, rng| u.expr(rng, 2),
        |u, rng, s| u.weakly_minimal_subst(rng, s),
    );
    let restricted = run_search(&u, 0xBEEF, n, restricted_query, single_table_subst);

    let mut t = TableReport::new([
        "instance class",
        "instances",
        "pre-update eqns wrong",
        "post-update algorithm wrong",
    ]);
    t.row([
        "unrestricted (full BA, multi-table tx)".to_string(),
        unrestricted.instances.to_string(),
        format!(
            "{} ({:.1}%)",
            unrestricted.buggy_wrong,
            100.0 * unrestricted.buggy_wrong as f64 / unrestricted.instances as f64
        ),
        unrestricted.correct_wrong.to_string(),
    ]);
    t.row([
        "Remark 1 (SPJ, no self-join, 1-table tx)".to_string(),
        restricted.instances.to_string(),
        format!(
            "{} ({:.1}%)",
            restricted.buggy_wrong,
            100.0 * restricted.buggy_wrong as f64 / restricted.instances as f64
        ),
        restricted.correct_wrong.to_string(),
    ]);
    t.print();

    assert_eq!(
        unrestricted.correct_wrong, 0,
        "our algorithm must never fail"
    );
    assert_eq!(restricted.correct_wrong, 0);
    assert!(unrestricted.buggy_wrong > 0, "the bug must reproduce");
    assert_eq!(
        restricted.buggy_wrong, 0,
        "Remark 1: pre-update equations are safe in the restricted class"
    );
    println!(
        "\npaper claim reproduced: the state bug appears as soon as the Remark-1\n\
         restrictions are relaxed, and the post-update algorithm never fails."
    );
}

fn paper_examples() {
    use dvm_storage::{tuple, ValueType};
    // Example 1.2 with the paper's exact numbers.
    let mut provider: HashMap<String, Schema> = HashMap::new();
    provider.insert(
        "R".into(),
        Schema::from_pairs(&[("A", ValueType::Str), ("B", ValueType::Str)]),
    );
    provider.insert(
        "S".into(),
        Schema::from_pairs(&[("B", ValueType::Str), ("C", ValueType::Str)]),
    );
    for t in ["R", "S"] {
        provider.insert(log_del_name(t), provider[t].clone());
        provider.insert(log_ins_name(t), provider[t].clone());
    }
    let mut log = LogTables::new();
    log.add("R").add("S");
    let q = Expr::table("R")
        .alias("r")
        .product(Expr::table("S").alias("s"))
        .select(Predicate::eq(col("r.B"), col("s.B")))
        .project(["A"]);
    let mut s_c: HashMap<String, Bag> = HashMap::new();
    s_c.insert(
        "R".into(),
        Bag::from_tuples([tuple!["a1", "b1"], tuple!["a1", "b2"]]),
    );
    s_c.insert(
        "S".into(),
        Bag::from_tuples([tuple!["b2", "c1"], tuple!["b2", "c2"]]),
    );
    s_c.insert(log_del_name("R"), Bag::new());
    s_c.insert(log_ins_name("R"), Bag::singleton(tuple!["a1", "b2"]));
    s_c.insert(log_del_name("S"), Bag::new());
    s_c.insert(log_ins_name("S"), Bag::singleton(tuple!["b2", "c2"]));
    let ev = |e: &Expr| eval(&compile(e, &provider).unwrap().plan, &s_c).unwrap();
    let good = post_update_deltas(&q, &log, &provider).unwrap();
    let bad = buggy_post_update_deltas(&q, &log, &provider).unwrap();
    let mut t = TableReport::new(["Example 1.2 (paper)", "ΔMU computed"]);
    t.row(["correct pre-update answer", "{[a1], [a1]}"]);
    t.row(["our post-update ▲(L,Q)", &ev(&good.ins).to_string()]);
    t.row(["pre-update eqn post-update", &ev(&bad.ins).to_string()]);
    t.print();
    assert_eq!(ev(&good.ins).len(), 2);
    assert_eq!(ev(&bad.ins).len(), 4);
}
