//! The `Database` facade: tables, views, transactions, and the Figure-3
//! maintenance operations behind one public API.
//!
//! ### Concurrency model
//!
//! Readers (`query_view`, `eval`) may run from any thread at any time; they
//! only take read locks and observe consistent table states. Update
//! transactions and maintenance operations (`execute`, `refresh`,
//! `propagate`, `partial_refresh`) must be driven from a single maintenance
//! thread — the paper assumes transactional isolation between updaters,
//! which this engine does not re-implement. This matches the experimental
//! setup: decision-support readers concurrent with a serialized update/
//! refresh stream (Example 1.1).

use crate::epochlog::SharedLog;
use crate::error::{CoreError, Result};
use crate::invariant::{check_view, check_view_with_log_overrides, InvariantReport};
use crate::metrics::ViewMetricsSnapshot;
use crate::scenario::{self, base_log, combined, diff_table, immediate};
use crate::view::{Minimality, Scenario, View};
use dvm_algebra::eval::PinnedState;
use dvm_algebra::infer::compile;
use dvm_algebra::Expr;
use dvm_delta::{compose_into, Transaction};
use dvm_storage::{Bag, Catalog, Schema, Table, TableKind};
use dvm_testkit::sync::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// Per-transaction execution report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecReport {
    /// Nanoseconds spent applying the bare transaction to base tables.
    pub base_apply_nanos: u64,
    /// Nanoseconds spent in maintenance hooks (all views combined) — the
    /// per-transaction overhead of Section 1.
    pub maintenance_nanos: u64,
    /// Number of views whose hooks ran.
    pub views_maintained: usize,
}

/// A database with deferred-view-maintenance support.
pub struct Database {
    catalog: Catalog,
    views: RwLock<BTreeMap<String, Arc<View>>>,
    /// The shared epoch log (Section 7): transactions append once,
    /// regardless of how many shared-log views exist.
    shared_log: SharedLog,
    /// Per-shared-view cursor: the epoch through which the view has
    /// consumed the shared log.
    shared_cursors: RwLock<BTreeMap<String, u64>>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database {
            catalog: Catalog::new(),
            views: RwLock::new(BTreeMap::new()),
            shared_log: SharedLog::new(),
            shared_cursors: RwLock::new(BTreeMap::new()),
        }
    }

    /// The underlying catalog (all tables, including internal ones).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Create a user (external) base table.
    pub fn create_table(&self, name: impl Into<String>, schema: Schema) -> Result<Arc<Table>> {
        Ok(self
            .catalog
            .create_table(name, schema, TableKind::External)?)
    }

    /// Create a materialized view maintained under `scenario` with weak
    /// minimality. The view is initialized to the definition's current
    /// value.
    pub fn create_view(
        &self,
        name: impl Into<String>,
        definition: Expr,
        scenario: Scenario,
    ) -> Result<()> {
        self.create_view_with(name, definition, scenario, Minimality::Weak)
    }

    /// Create a materialized view with an explicit minimality discipline.
    pub fn create_view_with(
        &self,
        name: impl Into<String>,
        definition: Expr,
        scenario: Scenario,
        minimality: Minimality,
    ) -> Result<()> {
        let name = name.into();
        {
            let views = self.views.read();
            if views.contains_key(&name) {
                return Err(CoreError::DuplicateView(name));
            }
        }
        let compiled = compile(&definition, &self.catalog)?;
        let view = View::new(&name, definition, compiled, scenario, minimality)?;
        // Create MV + auxiliary tables. The MV table gets the unqualified
        // output schema; logs mirror base-table schemas; differential
        // tables mirror the MV schema.
        let mv_schema = view.mv_schema();
        self.catalog
            .create_table(view.mv_table(), mv_schema.clone(), TableKind::Internal)?;
        if let Some(log) = view.log() {
            for base in log.bases() {
                let base_schema = self.catalog.require(base)?.schema().clone();
                let (d, i) = log.get(base).expect("listed base");
                self.catalog
                    .create_table(d, base_schema.clone(), TableKind::Internal)?;
                self.catalog
                    .create_table(i, base_schema, TableKind::Internal)?;
            }
        }
        if let Some((d, i)) = view.diff_tables() {
            self.catalog
                .create_table(d, mv_schema.clone(), TableKind::Internal)?;
            self.catalog
                .create_table(i, mv_schema, TableKind::Internal)?;
        }
        // Initialize MV := Q (evaluated now).
        let initial = scenario::recompute(&self.catalog, &view)?;
        self.catalog.require(view.mv_table())?.replace(initial)?;
        self.views.write().insert(name, Arc::new(view));
        Ok(())
    }

    /// Create a [`Scenario::Combined`] view that reads the **shared epoch
    /// log** instead of maintaining private logs per transaction (paper
    /// Section 7: makesafe work independent of the number of views).
    /// Transactions append their changes to the shared log once; this
    /// view's private log tables act as a staging area filled by
    /// [`Database::propagate`] when it drains the shared-log suffix.
    pub fn create_view_shared(
        &self,
        name: impl Into<String>,
        definition: Expr,
        minimality: Minimality,
    ) -> Result<()> {
        let name = name.into();
        self.create_view_with(&name, definition, Scenario::Combined, minimality)?;
        self.shared_cursors
            .write()
            .insert(name, self.shared_log.current_epoch());
        Ok(())
    }

    /// Whether a view consumes the shared epoch log.
    pub fn is_shared_log_view(&self, name: &str) -> bool {
        self.shared_cursors.read().contains_key(name)
    }

    /// `(retained entries, retained tuple volume)` of the shared log.
    pub fn shared_log_stats(&self) -> (usize, u64) {
        (self.shared_log.len(), self.shared_log.retained_volume())
    }

    /// Reclaim shared-log entries consumed by every shared view. Returns
    /// the number of entries dropped.
    pub fn vacuum_shared_log(&self) -> usize {
        let cursors = self.shared_cursors.read();
        let min_cursor = cursors
            .values()
            .copied()
            .min()
            .unwrap_or_else(|| self.shared_log.current_epoch());
        drop(cursors);
        self.shared_log.vacuum(min_cursor)
    }

    /// Drain the shared-log suffix for a shared view into its staging log
    /// tables (composition lemma), advancing its cursor.
    fn drain_shared(&self, view: &View) -> Result<()> {
        let mut cursors = self.shared_cursors.write();
        let Some(cursor) = cursors.get_mut(view.name()) else {
            return Ok(()); // not a shared view
        };
        let bases: Vec<String> = view.base_tables().iter().cloned().collect();
        let (folds, upto) = self.shared_log.fold_suffixes(bases.iter(), *cursor);
        let log = view.log().expect("shared views are Combined");
        for (table, (suffix_del, suffix_ins)) in folds {
            if suffix_del.is_empty() && suffix_ins.is_empty() {
                continue;
            }
            let (del_name, ins_name) = log.get(&table).expect("logged base");
            let del_table = self.catalog.require(del_name)?;
            let ins_table = self.catalog.require(ins_name)?;
            let mut del_guard = del_table.write();
            let mut ins_guard = ins_table.write();
            compose_into(&mut del_guard, &mut ins_guard, &suffix_del, &suffix_ins);
        }
        *cursor = upto;
        Ok(())
    }

    /// Effective log contents of a shared view: staging tables composed
    /// with the un-drained shared suffix — used to evaluate `PAST(L,Q)`
    /// and read-throughs without draining.
    fn shared_log_overrides(&self, view: &View) -> Result<HashMap<String, dvm_storage::Bag>> {
        let cursor = *self
            .shared_cursors
            .read()
            .get(view.name())
            .expect("caller checked is_shared_log_view");
        let bases: Vec<String> = view.base_tables().iter().cloned().collect();
        let (folds, _) = self.shared_log.fold_suffixes(bases.iter(), cursor);
        let log = view.log().expect("shared views are Combined");
        let mut overrides = HashMap::new();
        for (table, (suffix_del, suffix_ins)) in folds {
            let (del_name, ins_name) = log.get(&table).expect("logged base");
            let mut del = self.catalog.bag_of(del_name)?;
            let mut ins = self.catalog.bag_of(ins_name)?;
            compose_into(&mut del, &mut ins, &suffix_del, &suffix_ins);
            overrides.insert(del_name.to_string(), del);
            overrides.insert(ins_name.to_string(), ins);
        }
        Ok(overrides)
    }

    /// Drop a view and all its auxiliary tables.
    pub fn drop_view(&self, name: &str) -> Result<()> {
        let view = self
            .views
            .write()
            .remove(name)
            .ok_or_else(|| CoreError::NoSuchView(name.to_string()))?;
        self.shared_cursors.write().remove(name);
        for t in view.internal_tables() {
            self.catalog.drop_table(&t)?;
        }
        Ok(())
    }

    /// Names of all views.
    pub fn view_names(&self) -> Vec<String> {
        self.views.read().keys().cloned().collect()
    }

    /// Look up a view descriptor.
    pub fn view(&self, name: &str) -> Result<Arc<View>> {
        self.views
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| CoreError::NoSuchView(name.to_string()))
    }

    /// Execute a user transaction with maintenance: `makesafe_*[T]` for
    /// every view, per Figure 3.
    pub fn execute(&self, tx: &Transaction) -> Result<ExecReport> {
        // Reject writes to internal tables, unknown tables, and
        // schema-invalid tuples up front — BEFORE any maintenance hook
        // runs. Log tables are appended to through raw guards, so a tuple
        // that would only fail validation at base-table apply time would
        // otherwise already have poisoned the logs.
        for t in tx.tables() {
            let table = self.catalog.require(t)?;
            if table.kind() == TableKind::Internal {
                return Err(CoreError::InternalTableWrite(t.clone()));
            }
            let (del, ins) = tx.get(t).expect("listed table");
            table.validate_bag(del)?;
            table.validate_bag(ins)?;
        }
        // Normalize to weak minimality against the current state.
        let tx_tables = tx.tables().cloned().collect();
        let pinned = PinnedState::pin(&self.catalog, &tx_tables)?;
        let tx = tx.make_weakly_minimal(&pinned)?;
        drop(pinned);

        let views: Vec<Arc<View>> = self.views.read().values().cloned().collect();
        let mut report = ExecReport::default();

        // Pre-update maintenance phase.
        let shared_names: std::collections::BTreeSet<String> =
            self.shared_cursors.read().keys().cloned().collect();
        let mut pending_immediate: Vec<(Arc<View>, immediate::PendingMvUpdate)> = Vec::new();
        let mut any_shared_relevant = false;
        for view in &views {
            if !view.relevant_to(&tx_tables) {
                continue;
            }
            if shared_names.contains(view.name()) {
                // Shared-log views pay nothing here; the single shared
                // append below covers all of them.
                any_shared_relevant = true;
                continue;
            }
            let start = Instant::now();
            match view.scenario() {
                Scenario::Immediate => {
                    let pending = immediate::prepare(&self.catalog, view, &tx)?;
                    pending_immediate.push((Arc::clone(view), pending));
                }
                Scenario::BaseLog => base_log::extend_log(&self.catalog, view, &tx)?,
                Scenario::Combined => combined::extend_log(&self.catalog, view, &tx)?,
                Scenario::DiffTable => diff_table::fold_transaction(&self.catalog, view, &tx)?,
            }
            let nanos = start.elapsed().as_nanos() as u64;
            view.metrics().record_makesafe(nanos);
            report.maintenance_nanos += nanos;
            report.views_maintained += 1;
        }
        if any_shared_relevant {
            // One append, independent of the number of shared views.
            let start = Instant::now();
            self.shared_log.append(&tx);
            report.maintenance_nanos += start.elapsed().as_nanos() as u64;
            report.views_maintained += 1;
        }

        // Apply T itself.
        let start = Instant::now();
        for t in tx.tables() {
            let (d, i) = tx.get(t).expect("listed table");
            self.catalog.require(t)?.apply_delta(d, i)?;
        }
        report.base_apply_nanos = start.elapsed().as_nanos() as u64;

        // Post-update phase: immediate views apply their precomputed deltas.
        for (view, pending) in pending_immediate {
            let start = Instant::now();
            immediate::apply(&self.catalog, &view, &pending)?;
            let nanos = start.elapsed().as_nanos() as u64;
            view.metrics().record_makesafe(nanos);
            report.maintenance_nanos += nanos;
        }
        Ok(report)
    }

    /// Apply a transaction with **no** view maintenance (baseline for
    /// overhead measurements; views become silently inconsistent).
    pub fn execute_unmaintained(&self, tx: &Transaction) -> Result<u64> {
        for t in tx.tables() {
            if self.catalog.require(t)?.kind() == TableKind::Internal {
                return Err(CoreError::InternalTableWrite(t.clone()));
            }
        }
        let tx_tables = tx.tables().cloned().collect();
        let pinned = PinnedState::pin(&self.catalog, &tx_tables)?;
        let tx = tx.make_weakly_minimal(&pinned)?;
        drop(pinned);
        let start = Instant::now();
        for t in tx.tables() {
            let (d, i) = tx.get(t).expect("listed table");
            self.catalog.require(t)?.apply_delta(d, i)?;
        }
        Ok(start.elapsed().as_nanos() as u64)
    }

    /// `refresh_*`: bring the view fully up to date
    /// (`{INV_*} refresh_* {Q ≡ MV}`).
    pub fn refresh(&self, name: &str) -> Result<()> {
        let view = self.view(name)?;
        let start = Instant::now();
        match view.scenario() {
            Scenario::Immediate => {} // always consistent
            Scenario::BaseLog => base_log::refresh(&self.catalog, &view)?,
            Scenario::DiffTable => diff_table::apply_diff_tables(&self.catalog, &view)?,
            Scenario::Combined => {
                self.drain_shared(&view)?;
                combined::refresh(&self.catalog, &view)?;
            }
        }
        view.metrics()
            .record_refresh(start.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// `propagate_C`: fold logged changes into the differential tables
    /// without touching the `MV` lock. Only for [`Scenario::Combined`].
    pub fn propagate(&self, name: &str) -> Result<()> {
        let view = self.view(name)?;
        if view.scenario() != Scenario::Combined {
            return Err(CoreError::WrongScenario {
                view: name.to_string(),
                op: "propagate",
            });
        }
        let start = Instant::now();
        self.drain_shared(&view)?;
        combined::propagate(&self.catalog, &view)?;
        view.metrics()
            .record_propagate(start.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// `partial_refresh_C`: apply the differential tables, bringing `MV` to
    /// `PAST(L,Q)` (at most one propagation interval stale). Only for
    /// [`Scenario::Combined`].
    pub fn partial_refresh(&self, name: &str) -> Result<()> {
        let view = self.view(name)?;
        if view.scenario() != Scenario::Combined {
            return Err(CoreError::WrongScenario {
                view: name.to_string(),
                op: "partial_refresh",
            });
        }
        let start = Instant::now();
        combined::partial_refresh(&self.catalog, &view)?;
        view.metrics()
            .record_refresh(start.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Read the materialized contents of a view (possibly stale under
    /// deferred scenarios). Blocks while a refresh holds the write lock —
    /// the reader-visible face of view downtime.
    pub fn query_view(&self, name: &str) -> Result<Bag> {
        let view = self.view(name)?;
        Ok(self.catalog.bag_of(view.mv_table())?)
    }

    /// The **current** value of the view computed on the fly from `MV`
    /// plus auxiliary state (Section 7's "refresh only what a query
    /// needs", answered on the read path): fresh answers, zero downtime,
    /// nothing mutated.
    pub fn read_through(&self, name: &str) -> Result<Bag> {
        let view = self.view(name)?;
        if self.is_shared_log_view(name) {
            let overrides = self.shared_log_overrides(&view)?;
            crate::readthrough::read_through_with_log_overrides(
                &self.catalog,
                &view,
                None,
                &overrides,
            )
        } else {
            crate::readthrough::read_through(&self.catalog, &view)
        }
    }

    /// `σ_pred` over the current view value, with the predicate pushed
    /// into the materialization, differential tables, and incremental
    /// queries — only the matching part of the deferred work is computed.
    pub fn read_through_where(&self, name: &str, pred: &dvm_algebra::Predicate) -> Result<Bag> {
        let view = self.view(name)?;
        if self.is_shared_log_view(name) {
            let overrides = self.shared_log_overrides(&view)?;
            crate::readthrough::read_through_with_log_overrides(
                &self.catalog,
                &view,
                Some(pred),
                &overrides,
            )
        } else {
            crate::readthrough::read_through_where(&self.catalog, &view, pred)
        }
    }

    /// Recompute the view definition from scratch (ground truth; ignores
    /// the materialized table).
    pub fn recompute_view(&self, name: &str) -> Result<Bag> {
        let view = self.view(name)?;
        scenario::recompute(&self.catalog, &view)
    }

    /// Evaluate an ad-hoc query against the current state.
    pub fn eval(&self, query: &Expr) -> Result<Bag> {
        scenario::eval_expr(&self.catalog, query)
    }

    /// Check the view's Figure-1 invariant and minimality invariants.
    /// For shared-log views the *effective* log (staging tables composed
    /// with the un-drained shared suffix) is used.
    pub fn check_invariant(&self, name: &str) -> Result<InvariantReport> {
        let view = self.view(name)?;
        if self.is_shared_log_view(name) {
            let overrides = self.shared_log_overrides(&view)?;
            check_view_with_log_overrides(&self.catalog, &view, &overrides)
        } else {
            check_view(&self.catalog, &view)
        }
    }

    /// Check every view; returns the reports of any that fail.
    pub fn check_all_invariants(&self) -> Result<Vec<InvariantReport>> {
        let mut failures = Vec::new();
        for name in self.view_names() {
            let report = self.check_invariant(&name)?;
            if !report.ok() {
                failures.push(report);
            }
        }
        Ok(failures)
    }

    /// Human-readable EXPLAIN of a view: its definition, the optimized
    /// physical plan of `Q`, and — for log-based scenarios — the plans of
    /// the post-update refresh queries `▼(L,Q)` / `▲(L,Q)`.
    pub fn explain_view(&self, name: &str) -> Result<String> {
        use std::fmt::Write as _;
        let view = self.view(name)?;
        let mut out = String::new();
        writeln!(
            out,
            "view {name} [{}] = {}",
            view.scenario().label(),
            view.definition()
        )
        .expect("write to string");
        writeln!(out, "-- materialization plan --").expect("write to string");
        out.push_str(&dvm_algebra::explain_query(view.compiled()));
        if let Some(log) = view.log() {
            let deltas = dvm_delta::post_update_deltas(view.definition(), log, &self.catalog)?;
            let del = compile(&deltas.del, &self.catalog)?;
            let ins = compile(&deltas.ins, &self.catalog)?;
            writeln!(out, "-- refresh ▼(L,Q) plan --").expect("write to string");
            out.push_str(&dvm_algebra::explain_query(&del));
            writeln!(out, "-- refresh ▲(L,Q) plan --").expect("write to string");
            out.push_str(&dvm_algebra::explain_query(&ins));
        }
        Ok(out)
    }

    /// Maintenance metrics snapshot for a view.
    pub fn view_metrics(&self, name: &str) -> Result<ViewMetricsSnapshot> {
        Ok(self.view(name)?.metrics().snapshot())
    }

    /// The MV table of a view (for lock/downtime metrics).
    pub fn mv_table(&self, name: &str) -> Result<Arc<Table>> {
        let view = self.view(name)?;
        Ok(self.catalog.require(view.mv_table())?)
    }

    /// Size (total multiplicity) of a view's auxiliary state:
    /// `(log tuples, differential-table tuples)`.
    pub fn aux_sizes(&self, name: &str) -> Result<(u64, u64)> {
        let view = self.view(name)?;
        let mut log_size = 0;
        if let Some(log) = view.log() {
            for base in log.bases() {
                let (d, i) = log.get(base).expect("listed base");
                log_size += self.catalog.require(d)?.len();
                log_size += self.catalog.require(i)?.len();
            }
        }
        let mut dt_size = 0;
        if let Some((d, i)) = view.diff_tables() {
            dt_size += self.catalog.require(d)?.len();
            dt_size += self.catalog.require(i)?.len();
        }
        Ok((log_size, dt_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_storage::{tuple, ValueType};

    fn db_with_r() -> Database {
        let db = Database::new();
        let schema = Schema::from_pairs(&[("a", ValueType::Int)]);
        db.create_table("r", schema).unwrap();
        db.execute_unmaintained(
            &Transaction::new()
                .insert_tuple("r", tuple![1])
                .insert_tuple("r", tuple![2]),
        )
        .unwrap();
        db
    }

    #[test]
    fn view_initialized_to_current_value() {
        let db = db_with_r();
        db.create_view("v", Expr::table("r"), Scenario::BaseLog)
            .unwrap();
        assert_eq!(db.query_view("v").unwrap().len(), 2);
        assert!(db.check_invariant("v").unwrap().ok());
    }

    #[test]
    fn duplicate_view_rejected() {
        let db = db_with_r();
        db.create_view("v", Expr::table("r"), Scenario::Immediate)
            .unwrap();
        assert!(matches!(
            db.create_view("v", Expr::table("r"), Scenario::Immediate),
            Err(CoreError::DuplicateView(_))
        ));
    }

    #[test]
    fn invalid_transaction_leaves_logs_untouched() {
        // Regression (code review): a type-mismatched transaction used to
        // extend the view's log before failing at base-table apply time,
        // leaving phantom entries that broke INV_BL.
        let db = db_with_r();
        db.create_view("v", Expr::table("r"), Scenario::BaseLog)
            .unwrap();
        let bad = Transaction::new().insert_tuple("r", tuple!["not-an-int"]);
        assert!(db.execute(&bad).is_err());
        let (log_size, _) = db.aux_sizes("v").unwrap();
        assert_eq!(log_size, 0, "failed tx must not extend the log");
        assert!(db.check_invariant("v").unwrap().ok());
    }

    #[test]
    fn execute_unmaintained_rejects_internal_tables() {
        let db = db_with_r();
        db.create_view("v", Expr::table("r"), Scenario::BaseLog)
            .unwrap();
        assert!(matches!(
            db.execute_unmaintained(&Transaction::new().insert_tuple("__mv_v", tuple![9])),
            Err(CoreError::InternalTableWrite(_))
        ));
    }

    #[test]
    fn internal_table_writes_rejected() {
        let db = db_with_r();
        db.create_view("v", Expr::table("r"), Scenario::BaseLog)
            .unwrap();
        let tx = Transaction::new().insert_tuple("__mv_v", tuple![9]);
        assert!(matches!(
            db.execute(&tx),
            Err(CoreError::InternalTableWrite(_))
        ));
        let tx = Transaction::new().insert_tuple("__v_log_ins_r", tuple![9]);
        assert!(matches!(
            db.execute(&tx),
            Err(CoreError::InternalTableWrite(_))
        ));
    }

    #[test]
    fn immediate_view_stays_consistent() {
        let db = db_with_r();
        db.create_view("v", Expr::table("r"), Scenario::Immediate)
            .unwrap();
        db.execute(&Transaction::new().insert_tuple("r", tuple![3]))
            .unwrap();
        db.execute(&Transaction::new().delete_tuple("r", tuple![1]))
            .unwrap();
        assert_eq!(db.query_view("v").unwrap(), db.recompute_view("v").unwrap());
        assert!(db.check_invariant("v").unwrap().ok());
    }

    #[test]
    fn deferred_views_refresh_to_truth() {
        for scenario in [Scenario::BaseLog, Scenario::DiffTable, Scenario::Combined] {
            let db = db_with_r();
            db.create_view("v", Expr::table("r"), scenario).unwrap();
            db.execute(&Transaction::new().insert_tuple("r", tuple![3]))
                .unwrap();
            db.execute(&Transaction::new().delete_tuple("r", tuple![2]))
                .unwrap();
            assert!(db.check_invariant("v").unwrap().ok(), "{scenario:?}");
            if scenario != Scenario::DiffTable {
                // deferred: stale before refresh
                assert_ne!(
                    db.query_view("v").unwrap(),
                    db.recompute_view("v").unwrap(),
                    "{scenario:?} should be stale"
                );
            }
            db.refresh("v").unwrap();
            assert_eq!(
                db.query_view("v").unwrap(),
                db.recompute_view("v").unwrap(),
                "{scenario:?}"
            );
            assert!(db.check_invariant("v").unwrap().ok());
        }
    }

    #[test]
    fn combined_propagate_and_partial_refresh() {
        let db = db_with_r();
        db.create_view("v", Expr::table("r"), Scenario::Combined)
            .unwrap();
        db.execute(&Transaction::new().insert_tuple("r", tuple![3]))
            .unwrap();
        db.propagate("v").unwrap();
        db.execute(&Transaction::new().insert_tuple("r", tuple![4]))
            .unwrap();
        db.partial_refresh("v").unwrap();
        // view reflects state as of the propagate, not the later insert
        let v = db.query_view("v").unwrap();
        assert!(v.contains(&tuple![3]));
        assert!(!v.contains(&tuple![4]));
        assert!(db.check_invariant("v").unwrap().ok());
        db.refresh("v").unwrap();
        assert!(db.query_view("v").unwrap().contains(&tuple![4]));
    }

    #[test]
    fn propagate_on_wrong_scenario_rejected() {
        let db = db_with_r();
        db.create_view("v", Expr::table("r"), Scenario::BaseLog)
            .unwrap();
        assert!(matches!(
            db.propagate("v"),
            Err(CoreError::WrongScenario { .. })
        ));
        assert!(matches!(
            db.partial_refresh("v"),
            Err(CoreError::WrongScenario { .. })
        ));
    }

    #[test]
    fn multiple_views_over_same_base() {
        let db = db_with_r();
        db.create_view("im", Expr::table("r"), Scenario::Immediate)
            .unwrap();
        db.create_view("bl", Expr::table("r"), Scenario::BaseLog)
            .unwrap();
        db.create_view("c", Expr::table("r"), Scenario::Combined)
            .unwrap();
        let report = db
            .execute(&Transaction::new().insert_tuple("r", tuple![7]))
            .unwrap();
        assert_eq!(report.views_maintained, 3);
        assert!(db.check_all_invariants().unwrap().is_empty());
        db.refresh("bl").unwrap();
        db.refresh("c").unwrap();
        for v in ["im", "bl", "c"] {
            assert_eq!(db.query_view(v).unwrap(), db.recompute_view(v).unwrap());
        }
    }

    #[test]
    fn drop_view_removes_aux_tables() {
        let db = db_with_r();
        db.create_view("v", Expr::table("r"), Scenario::Combined)
            .unwrap();
        assert!(db.catalog().contains("__mv_v"));
        db.drop_view("v").unwrap();
        assert!(!db.catalog().contains("__mv_v"));
        assert!(!db.catalog().contains("__v_log_del_r"));
        assert!(!db.catalog().contains("__v_dt_del"));
        assert!(matches!(db.drop_view("v"), Err(CoreError::NoSuchView(_))));
    }

    #[test]
    fn metrics_and_aux_sizes() {
        let db = db_with_r();
        db.create_view("v", Expr::table("r"), Scenario::Combined)
            .unwrap();
        db.execute(&Transaction::new().insert_tuple("r", tuple![5]))
            .unwrap();
        let (log, dt) = db.aux_sizes("v").unwrap();
        assert_eq!(log, 1);
        assert_eq!(dt, 0);
        db.propagate("v").unwrap();
        let (log, dt) = db.aux_sizes("v").unwrap();
        assert_eq!(log, 0);
        assert_eq!(dt, 1);
        let m = db.view_metrics("v").unwrap();
        assert_eq!(m.makesafe_count, 1);
        assert_eq!(m.propagate_count, 1);
    }

    #[test]
    fn irrelevant_views_skip_maintenance() {
        let db = db_with_r();
        let schema = Schema::from_pairs(&[("x", ValueType::Int)]);
        db.create_table("other", schema).unwrap();
        db.create_view("v", Expr::table("r"), Scenario::BaseLog)
            .unwrap();
        let report = db
            .execute(&Transaction::new().insert_tuple("other", tuple![1]))
            .unwrap();
        assert_eq!(report.views_maintained, 0);
    }
}
