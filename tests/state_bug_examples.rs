//! The paper's *state bug* (Section 1.2, Examples 1.2 & 1.3; Section 4.2,
//! Remark 1) as tier-1 tests: evaluating pre-update delta equations in the
//! post-update state double-counts (insertions) or under-counts
//! (deletions), while the post-update algorithm of Section 4 is exact.
//!
//! Promoted from the `exp_state_bug` experiment binary so the claim is
//! checked on every `cargo test`, not only when experiments run.

use dvm_algebra::eval::eval;
use dvm_algebra::infer::compile;
use dvm_algebra::testgen::{Rng, Universe};
use dvm_algebra::{col, Expr, Predicate};
use dvm_delta::{
    buggy_post_update_deltas, log_del_name, log_ins_name, post_update_deltas, LogTables,
};
use dvm_storage::{tuple, Bag, Schema, ValueType};
use std::collections::HashMap;

/// The paper's view: Q = Π_A(σ_{r.B = s.B}(R × S)).
fn paper_query() -> Expr {
    Expr::table("R")
        .alias("r")
        .product(Expr::table("S").alias("s"))
        .select(Predicate::eq(col("r.B"), col("s.B")))
        .project(["A"])
}

fn paper_provider() -> HashMap<String, Schema> {
    let mut provider: HashMap<String, Schema> = HashMap::new();
    provider.insert(
        "R".into(),
        Schema::from_pairs(&[("A", ValueType::Str), ("B", ValueType::Str)]),
    );
    provider.insert(
        "S".into(),
        Schema::from_pairs(&[("B", ValueType::Str), ("C", ValueType::Str)]),
    );
    for t in ["R", "S"] {
        provider.insert(log_del_name(t), provider[t].clone());
        provider.insert(log_ins_name(t), provider[t].clone());
    }
    provider
}

fn paper_log() -> LogTables {
    let mut log = LogTables::new();
    log.add("R").add("S");
    log
}

/// Example 1.2: insertions into both join sides. The pre-update equations,
/// evaluated after the update, see each new tuple join with the *other*
/// side's new tuple as well and produce four `[a1]` rows instead of two.
#[test]
fn example_1_2_insertions_double_count() {
    let provider = paper_provider();
    let log = paper_log();
    let q = paper_query();

    // Post-update state: the transaction inserted [a1,b2] into R and
    // [b2,c2] into S (the paper's exact numbers).
    let mut s_c: HashMap<String, Bag> = HashMap::new();
    s_c.insert(
        "R".into(),
        Bag::from_tuples([tuple!["a1", "b1"], tuple!["a1", "b2"]]),
    );
    s_c.insert(
        "S".into(),
        Bag::from_tuples([tuple!["b2", "c1"], tuple!["b2", "c2"]]),
    );
    s_c.insert(log_del_name("R"), Bag::new());
    s_c.insert(log_ins_name("R"), Bag::singleton(tuple!["a1", "b2"]));
    s_c.insert(log_del_name("S"), Bag::new());
    s_c.insert(log_ins_name("S"), Bag::singleton(tuple!["b2", "c2"]));

    let ev = |e: &Expr| eval(&compile(e, &provider).unwrap().plan, &s_c).unwrap();

    // Correct change: V grows from φ ({[a1,b1]} × {[b2,c1]} has no match)
    // to {[a1], [a1]} — two new rows.
    let good = post_update_deltas(&q, &log, &provider).unwrap();
    assert_eq!(ev(&good.ins).len(), 2, "▲(L,Q) must produce two [a1] rows");
    assert!(ev(&good.del).is_empty());

    // The buggy equations count [a1,b2] ⋈ [b2,c1], [a1,b2] ⋈ [b2,c2],
    // [a1,b1..b2] ⋈ [b2,c2] — the new-joins-new pair twice: four rows.
    let bad = buggy_post_update_deltas(&q, &log, &provider).unwrap();
    assert_eq!(ev(&bad.ins).len(), 4, "the state bug must reproduce");
}

/// Example 1.3: U = R ∸ S; the transaction moves `[b]` from R to S. The
/// pre-update delete equation `∇U = (∇R ∸ S) ⊎ (ΔS min R)` evaluates to φ
/// in the post-update state ([b] is already in S and no longer in R), so
/// the stale `[b]` survives in the refreshed view.
#[test]
fn example_1_3_stale_tuple_survives() {
    let s1 = Schema::from_pairs(&[("x", ValueType::Str)]);
    let mut provider: HashMap<String, Schema> = HashMap::new();
    for t in ["R", "S"] {
        provider.insert(t.to_string(), s1.clone());
        provider.insert(log_del_name(t), s1.clone());
        provider.insert(log_ins_name(t), s1.clone());
    }
    let log = paper_log();
    let q = Expr::table("R").monus(Expr::table("S"));

    // Post-update state: R was {[a],[b],[c]}, S was {[c],[d]}; the
    // transaction deleted [b] from R and inserted it into S.
    let mut s_c: HashMap<String, Bag> = HashMap::new();
    s_c.insert("R".into(), Bag::from_tuples([tuple!["a"], tuple!["c"]]));
    s_c.insert(
        "S".into(),
        Bag::from_tuples([tuple!["b"], tuple!["c"], tuple!["d"]]),
    );
    s_c.insert(log_del_name("R"), Bag::singleton(tuple!["b"]));
    s_c.insert(log_ins_name("R"), Bag::new());
    s_c.insert(log_del_name("S"), Bag::new());
    s_c.insert(log_ins_name("S"), Bag::singleton(tuple!["b"]));

    let ev = |e: &Expr| eval(&compile(e, &provider).unwrap().plan, &s_c).unwrap();

    let mv = Bag::from_tuples([tuple!["a"], tuple!["b"]]); // U materialized pre-update
    let truth = ev(&q);
    assert_eq!(truth, Bag::singleton(tuple!["a"]));

    let good = post_update_deltas(&q, &log, &provider).unwrap();
    assert_eq!(
        mv.monus(&ev(&good.del)).union(&ev(&good.ins)),
        truth,
        "post-update refresh must remove the stale [b]"
    );

    let bad = buggy_post_update_deltas(&q, &log, &provider).unwrap();
    let bad_result = mv.monus(&ev(&bad.del)).union(&ev(&bad.ins));
    assert!(
        bad_result.contains(&tuple!["b"]),
        "pre-update equations post-update must leave the stale [b] behind"
    );
}

/// Bounded randomized search (a tier-1 slice of experiment E1): over the
/// unrestricted class the post-update algorithm never fails and the buggy
/// one does; over the Remark-1 restricted class both agree.
#[test]
fn randomized_search_confirms_remark_1() {
    let u = Universe::small(3);
    let mut provider = u.provider();
    for t in &u.tables {
        provider.insert(log_del_name(t), u.schema.clone());
        provider.insert(log_ins_name(t), u.schema.clone());
    }

    let mut rng = Rng::new(0xDEAD);
    let mut buggy_wrong = 0usize;
    let mut instances = 0usize;
    while instances < 400 {
        let s_p = u.state(&mut rng, 4);
        let q = u.expr(&mut rng, 2);
        let f = u.weakly_minimal_subst(&mut rng, &s_p);
        if f.is_empty() {
            continue;
        }
        instances += 1;
        let mut s_c = u.apply_subst_to_state(&f, &s_p);
        let mut log = LogTables::new();
        for t in &u.tables {
            log.add(t.clone());
            let (d, a) = match f.get(t) {
                Some((Expr::Literal { bag: d, .. }, Expr::Literal { bag: a, .. })) => {
                    (d.clone(), a.clone())
                }
                None => (Bag::new(), Bag::new()),
                _ => unreachable!("literal deltas"),
            };
            s_c.insert(log_del_name(t), d);
            s_c.insert(log_ins_name(t), a);
        }
        let q_plan = compile(&q, &provider).unwrap().plan;
        let mv = eval(&q_plan, &s_p).unwrap();
        let truth = eval(&q_plan, &s_c).unwrap();
        let ev = |e: &Expr| eval(&compile(e, &provider).unwrap().plan, &s_c).unwrap();

        let good = post_update_deltas(&q, &log, &provider).unwrap();
        assert_eq!(
            mv.monus(&ev(&good.del)).union(&ev(&good.ins)),
            truth,
            "post-update algorithm failed on {q}"
        );

        let bad = buggy_post_update_deltas(&q, &log, &provider).unwrap();
        if mv.monus(&ev(&bad.del)).union(&ev(&bad.ins)) != truth {
            buggy_wrong += 1;
        }
    }
    assert!(
        buggy_wrong > 0,
        "the state bug must reproduce somewhere in 400 unrestricted instances"
    );
}
