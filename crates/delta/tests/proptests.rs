//! Property tests for the differential layer: Theorem 2, the refresh
//! identity behind Contribution 2, Lemma 1, Lemma 3, and strong
//! minimality — run on the in-workspace `dvm-testkit` shrinking harness
//! (complementing the seeded randomized suites in each crate).

use dvm_algebra::eval::eval;
use dvm_algebra::infer::compile;
use dvm_algebra::testgen::Universe;
use dvm_algebra::Expr;
use dvm_delta::{compose, differentiate, strongify_bags, Transaction};
use dvm_storage::{Bag, Tuple, Value};
use dvm_testkit::{Prop, Rng};
use std::collections::HashMap;

fn arb_bag(rng: &mut Rng) -> Bag {
    let mut b = Bag::new();
    for _ in 0..rng.below(7) {
        b.insert_n(
            Tuple::new(vec![Value::Int(rng.range(0, 5)), Value::Int(rng.range(0, 5))]),
            1 + rng.below(3),
        );
    }
    b
}

fn arb_state_and_depth(rng: &mut Rng) -> (HashMap<String, Bag>, usize) {
    let mut state = HashMap::new();
    for i in 0..3 {
        state.insert(format!("t{i}"), arb_bag(rng));
    }
    let depth = rng.range_usize(1, 4);
    (state, depth)
}

/// Theorem 2 over harness-shrunk instances.
#[test]
fn theorem2() {
    let u = Universe::small(3);
    let provider = u.provider();
    Prop::new("theorem2").cases(96).run(|rng| {
        let (state, depth) = arb_state_and_depth(rng);
        let q = u.expr(rng, depth.min(2));
        let eta = u.weakly_minimal_subst(rng, &state);
        let pair = differentiate(&q, &eta, &provider).unwrap();
        let ev = |e: &Expr| eval(&compile(e, &provider).unwrap().plan, &state).unwrap();
        let q_val = ev(&q);
        let del = ev(&pair.del);
        let add = ev(&pair.add);
        assert_eq!(
            ev(&eta.apply(&q)),
            q_val.monus(&del).union(&add),
            "Theorem 2(a)"
        );
        assert!(del.is_subbag_of(&q_val), "Theorem 2(b)");
    });
}

/// The deferred-refresh identity (Contribution 2): MV holding Q(s_p)
/// refreshed with the post-update deltas equals Q(s_c).
#[test]
fn post_update_refresh_identity() {
    use dvm_delta::{log_del_name, log_ins_name, post_update_deltas, LogTables};
    let u = Universe::small(3);
    let mut provider = u.provider();
    for t in &u.tables {
        provider.insert(log_del_name(t), u.schema.clone());
        provider.insert(log_ins_name(t), u.schema.clone());
    }
    Prop::new("post_update_refresh_identity")
        .cases(96)
        .run(|rng| {
            let (s_p, depth) = arb_state_and_depth(rng);
            let q = u.expr(rng, depth.min(2));
            let f = u.weakly_minimal_subst(rng, &s_p);
            let mut s_c = u.apply_subst_to_state(&f, &s_p);
            let mut log = LogTables::new();
            for t in &u.tables {
                log.add(t.clone());
                let (d, a) = match f.get(t) {
                    Some((Expr::Literal { bag: d, .. }, Expr::Literal { bag: a, .. })) => {
                        (d.clone(), a.clone())
                    }
                    None => (Bag::new(), Bag::new()),
                    _ => unreachable!(),
                };
                s_c.insert(log_del_name(t), d);
                s_c.insert(log_ins_name(t), a);
            }
            let q_plan = compile(&q, &provider).unwrap().plan;
            let mv = eval(&q_plan, &s_p).unwrap();
            let truth = eval(&q_plan, &s_c).unwrap();
            let deltas = post_update_deltas(&q, &log, &provider).unwrap();
            let del = eval(&compile(&deltas.del, &provider).unwrap().plan, &s_c).unwrap();
            let ins = eval(&compile(&deltas.ins, &provider).unwrap().plan, &s_c).unwrap();
            assert_eq!(mv.monus(&del).union(&ins), truth);
        });
}

/// Lemma 1 (cancellation) for arbitrary bags.
#[test]
fn lemma1() {
    Prop::new("lemma1").cases(96).run(|rng| {
        let (o, d, i) = (arb_bag(rng), arb_bag(rng), arb_bag(rng));
        let n = o.monus(&d).union(&i);
        assert_eq!(n.monus(&i).union(&o.min_intersect(&d)), o);
    });
}

/// Lemma 3 (composition) with its side conditions.
#[test]
fn lemma3() {
    Prop::new("lemma3").cases(96).run(|rng| {
        let o = arb_bag(rng);
        let d1 = arb_bag(rng).min_intersect(&o); // D1 ⊑ O
        let i1 = arb_bag(rng);
        let mid = o.monus(&d1).union(&i1);
        let d2 = arb_bag(rng).min_intersect(&mid); // D2 ⊑ (O ∸ D1) ⊎ I1
        let i2 = arb_bag(rng);
        let (d3, i3) = compose(&d1, &i1, &d2, &i2);
        assert_eq!(
            mid.monus(&d2).union(&i2),
            o.monus(&d3).union(&i3),
            "Lemma 3(a)"
        );
        assert!(d3.is_subbag_of(&o), "Lemma 3(b)");
    });
}

/// Strong minimality preserves application and achieves disjointness.
#[test]
fn strongify() {
    Prop::new("strongify").cases(96).run(|rng| {
        let q = arb_bag(rng);
        let del = arb_bag(rng).min_intersect(&q); // weak minimality precondition
        let add = arb_bag(rng);
        let (d2, a2) = strongify_bags(&del, &add);
        assert_eq!(q.monus(&del).union(&add), q.monus(&d2).union(&a2));
        assert!(d2.min_intersect(&a2).is_empty());
        assert!(d2.is_subbag_of(&q));
    });
}

/// Transaction normalization: `make_weakly_minimal` changes the
/// deletion bags but never the applied result.
#[test]
fn weak_minimality_normalization_sound() {
    Prop::new("weak_minimality_normalization_sound")
        .cases(96)
        .run(|rng| {
            let mut s: HashMap<String, Bag> = HashMap::new();
            s.insert("t0".to_string(), arb_bag(rng));
            let tx = Transaction::new()
                .delete("t0", arb_bag(rng))
                .insert("t0", arb_bag(rng));
            let normalized = tx.make_weakly_minimal(&s).unwrap();
            assert!(normalized.is_weakly_minimal(&s).unwrap());
            let mut a = s.clone();
            tx.apply_to_map(&mut a);
            let mut b = s.clone();
            normalized.apply_to_map(&mut b);
            assert_eq!(a, b);
        });
}
