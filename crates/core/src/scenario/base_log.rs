//! `INV_BL` (Section 3.3): `PAST(L,Q) ≡ MV`.
//!
//! `makesafe_BL[T]` only extends the log — the cheapest possible
//! per-transaction hook:
//!
//! ```text
//! ▼R := ▼R ⊎ (∇R ∸ ▲R)
//! ▲R := (▲R ∸ ∇R) ⊎ ΔR
//! ```
//!
//! (an instance of the composition lemma, and exactly what keeps the log
//! weakly minimal, Lemma 4). `refresh_BL` pays the full incremental
//! computation under the `MV` write lock:
//!
//! ```text
//! MV := (MV ∸ ▼(L,Q)) ⊎ ▲(L,Q);   L := φ
//! ```

use crate::error::{CoreError, Result};
use crate::scenario::{eval_variant_bound, phase_end, phase_start};
use crate::view::View;
use dvm_delta::{compose_into, Transaction};
use dvm_storage::Catalog;

/// `makesafe_BL[T]`'s log-extension step: fold the (weakly minimal)
/// transaction's per-table changes into the view's log tables.
pub fn extend_log(catalog: &Catalog, view: &View, tx: &Transaction) -> Result<()> {
    let log = view.log().ok_or(CoreError::WrongScenario {
        view: view.name().to_string(),
        op: "extend_log",
    })?;
    for base in tx.tables() {
        let Some((del_name, ins_name)) = log.get(base) else {
            continue; // table not read by this view
        };
        let (tx_del, tx_ins) = tx.get(base).expect("listed table");
        if tx_del.is_empty() && tx_ins.is_empty() {
            continue;
        }
        let del_table = catalog.require(del_name)?;
        let ins_table = catalog.require(ins_name)?;
        // ▼R := ▼R ⊎ (∇R ∸ ▲R);  ▲R := (▲R ∸ ∇R) ⊎ ΔR — composition lemma.
        let mut del_guard = del_table.write();
        let mut ins_guard = ins_table.write();
        compose_into(&mut del_guard, &mut ins_guard, tx_del, tx_ins);
    }
    Ok(())
}

/// `refresh_BL`: bring `MV` up to date and empty the log. The incremental
/// queries are evaluated *inside* the `MV` write lock — that evaluation is
/// precisely the downtime this scenario suffers and `INV_C` eliminates.
pub fn refresh(catalog: &Catalog, view: &View) -> Result<()> {
    let log = view.log().ok_or(CoreError::WrongScenario {
        view: view.name().to_string(),
        op: "refresh_BL",
    })?;
    let program = view.delta_program(catalog)?;
    let mask = program.activity_mask(&|t| {
        catalog.get(t).map(|tbl| tbl.is_empty()).unwrap_or(false)
    });
    if mask == 0 {
        // Nothing logged since the last refresh: MV is already PAST(L,Q).
        return Ok(());
    }
    // The (rare) variant compile happens *outside* the MV lock — only plan
    // execution counts against downtime.
    let t = phase_start();
    let (variant, fresh) = program.variant(mask, catalog)?;
    if fresh {
        phase_end("CompileDelta", 0, t);
    }
    let active = program.active_log_tables(mask);

    let mv = catalog.require(view.mv_table())?;
    // Downtime starts: write-lock MV, then bind, evaluate and apply.
    let mut mv_guard = mv.write();
    let (del_bag, ins_bag) = eval_variant_bound(catalog, &variant, &active)?;
    program.record_bind();
    mv_guard.apply_delta(&del_bag, &ins_bag);
    // L := φ, still inside the refresh transaction.
    for base in log.bases() {
        let (d, i) = log.get(base).expect("listed base");
        catalog.require(d)?.clear();
        catalog.require(i)?.clear();
    }
    drop(mv_guard);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;
    use crate::scenario::recompute;
    use crate::view::{Minimality, Scenario};
    use dvm_algebra::eval::PinnedState;
    use dvm_algebra::Expr;
    use dvm_storage::{tuple, Bag, Schema, TableKind, ValueType};

    fn setup() -> (Catalog, View) {
        let c = Catalog::new();
        let schema = Schema::from_pairs(&[("a", ValueType::Int)]);
        let r = c
            .create_table("r", schema.clone(), TableKind::External)
            .unwrap();
        r.insert(tuple![1]).unwrap();
        let def = Expr::table("r");
        let compiled = dvm_algebra::infer::compile(&def, &c).unwrap();
        let view = View::new("v", def, compiled, Scenario::BaseLog, Minimality::Weak).unwrap();
        for t in view.internal_tables() {
            c.create_table(&t, schema.clone(), TableKind::Internal)
                .unwrap();
        }
        // MV starts consistent.
        c.require(view.mv_table())
            .unwrap()
            .insert(tuple![1])
            .unwrap();
        (c, view)
    }

    fn run_tx(c: &Catalog, view: &View, tx: &Transaction) {
        let pinned = PinnedState::pin(c, &tx.tables().cloned().collect()).unwrap();
        let tx = tx.make_weakly_minimal(&pinned).unwrap();
        drop(pinned);
        extend_log(c, view, &tx).unwrap();
        for t in tx.tables() {
            let (d, i) = tx.get(t).unwrap();
            c.require(t).unwrap().apply_delta(d, i).unwrap();
        }
    }

    #[test]
    fn log_then_refresh_reaches_truth() {
        let (c, view) = setup();
        run_tx(&c, &view, &Transaction::new().insert_tuple("r", tuple![2]));
        run_tx(
            &c,
            &view,
            &Transaction::new()
                .delete_tuple("r", tuple![1])
                .insert_tuple("r", tuple![3]),
        );
        // MV is stale before refresh.
        assert_eq!(
            c.bag_of(view.mv_table()).unwrap(),
            Bag::singleton(tuple![1])
        );
        refresh(&c, &view).unwrap();
        let truth = recompute(&c, &view).unwrap();
        assert_eq!(c.bag_of(view.mv_table()).unwrap(), truth);
        // log emptied
        for base in view.log().unwrap().bases() {
            let (d, i) = view.log().unwrap().get(base).unwrap();
            assert!(c.require(d).unwrap().is_empty());
            assert!(c.require(i).unwrap().is_empty());
        }
    }

    #[test]
    fn delete_then_reinsert_cancels_in_log() {
        let (c, view) = setup();
        run_tx(&c, &view, &Transaction::new().delete_tuple("r", tuple![1]));
        run_tx(&c, &view, &Transaction::new().insert_tuple("r", tuple![1]));
        let (d, i) = view.log().unwrap().get("r").unwrap();
        // ▼ has [1]; ▲ has [1]: composition does NOT cancel across the two
        // transactions (the deletion happened first), so the log holds both.
        assert_eq!(c.bag_of(d).unwrap(), Bag::singleton(tuple![1]));
        assert_eq!(c.bag_of(i).unwrap(), Bag::singleton(tuple![1]));
        refresh(&c, &view).unwrap();
        assert_eq!(
            c.bag_of(view.mv_table()).unwrap(),
            recompute(&c, &view).unwrap()
        );
    }

    #[test]
    fn insert_then_delete_cancels_in_log() {
        let (c, view) = setup();
        run_tx(&c, &view, &Transaction::new().insert_tuple("r", tuple![5]));
        run_tx(&c, &view, &Transaction::new().delete_tuple("r", tuple![5]));
        let (d, i) = view.log().unwrap().get("r").unwrap();
        // inserted-then-deleted: carried delete is absorbed by the pending
        // insert (composition lemma), leaving both sides clean.
        assert!(c.bag_of(d).unwrap().is_empty());
        assert!(c.bag_of(i).unwrap().is_empty());
    }

    #[test]
    fn log_weak_minimality_invariant() {
        // Lemma 4: ▲R ⊑ R after makesafe_BL.
        let (c, view) = setup();
        run_tx(&c, &view, &Transaction::new().insert_tuple("r", tuple![7]));
        run_tx(&c, &view, &Transaction::new().delete_tuple("r", tuple![7]));
        run_tx(&c, &view, &Transaction::new().insert_tuple("r", tuple![8]));
        let (_, i) = view.log().unwrap().get("r").unwrap();
        let ins_log = c.bag_of(i).unwrap();
        let base = c.bag_of("r").unwrap();
        assert!(ins_log.is_subbag_of(&base), "▲R ⊑ R violated");
    }

    #[test]
    fn wrong_scenario_rejected() {
        let c = Catalog::new();
        let schema = Schema::from_pairs(&[("a", ValueType::Int)]);
        c.create_table("r", schema.clone(), TableKind::External)
            .unwrap();
        let def = Expr::table("r");
        let compiled = dvm_algebra::infer::compile(&def, &c).unwrap();
        let view = View::new("v", def, compiled, Scenario::Immediate, Minimality::Weak).unwrap();
        assert!(matches!(
            extend_log(&c, &view, &Transaction::new()),
            Err(CoreError::WrongScenario { .. })
        ));
        assert!(matches!(
            refresh(&c, &view),
            Err(CoreError::WrongScenario { .. })
        ));
    }
}
