//! The retail workload of **Example 1.1**: point-of-sale `sales` stream
//! joined against a `customer` table, with the view over highly valued
//! customers.
//!
//! The paper's motivating data (Teradata/Walmart point-of-sale) is
//! proprietary; this generator substitutes a synthetic equivalent whose
//! knobs — table sizes, Zipf skew of customer/item popularity, duplicate
//! rate, fraction of "High"-score customers (the view's selectivity) —
//! cover everything the maintenance algorithms' costs depend on.

use crate::zipf::Zipf;
use dvm_algebra::predicate::{col, lit, lit_str, Predicate};
use dvm_algebra::Expr;
use dvm_core::{Database, Result};
use dvm_delta::Transaction;
use dvm_storage::{tuple, Bag, Schema, Tuple, ValueType};
use dvm_testkit::Rng;

/// Configuration for the retail generator.
#[derive(Debug, Clone)]
pub struct RetailConfig {
    /// Number of customers.
    pub customers: usize,
    /// Number of distinct items.
    pub items: usize,
    /// Initial number of sales rows.
    pub initial_sales: usize,
    /// Fraction of customers with score "High" (the view's selectivity).
    pub high_fraction: f64,
    /// Zipf skew for customer/item popularity.
    pub theta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RetailConfig {
    fn default() -> Self {
        RetailConfig {
            customers: 1_000,
            items: 500,
            initial_sales: 10_000,
            high_fraction: 0.1,
            theta: 1.0,
            seed: 7,
        }
    }
}

/// Generator state: deterministic stream of sales transactions.
pub struct RetailGen {
    cfg: RetailConfig,
    rng: Rng,
    customer_zipf: Zipf,
    item_zipf: Zipf,
    /// Recently inserted sales rows, for generating deletions/returns.
    live_sales: Vec<Tuple>,
}

/// Schema of the `customer` table.
pub fn customer_schema() -> Schema {
    Schema::from_pairs(&[
        ("custId", ValueType::Int),
        ("name", ValueType::Str),
        ("address", ValueType::Str),
        ("score", ValueType::Str),
    ])
}

/// Schema of the `sales` table.
pub fn sales_schema() -> Schema {
    Schema::from_pairs(&[
        ("custId", ValueType::Int),
        ("itemNo", ValueType::Int),
        ("quantity", ValueType::Int),
        ("salesPrice", ValueType::Double),
    ])
}

/// The paper's view `V` (Example 1.1) as SQL.
pub const VIEW_SQL: &str = "CREATE VIEW V AS \
    SELECT c.custId, c.name, c.score, s.itemNo, s.quantity \
    FROM customer c, sales s \
    WHERE c.custId = s.custId AND s.quantity != 0 AND c.score = 'High'";

/// The paper's view `V` (Example 1.1) as a bag-algebra expression.
pub fn view_expr() -> Expr {
    Expr::table("customer")
        .alias("c")
        .product(Expr::table("sales").alias("s"))
        .select(
            Predicate::eq(col("c.custId"), col("s.custId"))
                .and(Predicate::ne(col("s.quantity"), lit(0i64)))
                .and(Predicate::eq(col("c.score"), lit_str("High"))),
        )
        .project(["c.custId", "c.name", "c.score", "s.itemNo", "s.quantity"])
}

impl RetailGen {
    /// Build a generator.
    pub fn new(cfg: RetailConfig) -> Self {
        let rng = Rng::new(cfg.seed);
        let customer_zipf = Zipf::new(cfg.customers, cfg.theta);
        let item_zipf = Zipf::new(cfg.items, cfg.theta);
        RetailGen {
            cfg,
            rng,
            customer_zipf,
            item_zipf,
            live_sales: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RetailConfig {
        &self.cfg
    }

    /// Create `customer` and `sales` tables in `db` and load the initial
    /// data (customers enumerated, sales drawn from the generator).
    pub fn install(&mut self, db: &Database) -> Result<()> {
        db.create_table("customer", customer_schema())?;
        db.create_table("sales", sales_schema())?;
        let mut customers = Bag::with_capacity(self.cfg.customers);
        for id in 0..self.cfg.customers {
            customers.insert(self.customer_row(id));
        }
        db.catalog().require("customer")?.replace(customers)?;
        let mut sales = Bag::with_capacity(self.cfg.initial_sales);
        for _ in 0..self.cfg.initial_sales {
            let row = self.sale_row();
            self.live_sales.push(row.clone());
            sales.insert(row);
        }
        db.catalog().require("sales")?.replace(sales)?;
        Ok(())
    }

    fn customer_row(&mut self, id: usize) -> Tuple {
        let high = (id as f64 / self.cfg.customers as f64) < self.cfg.high_fraction;
        tuple![
            id as i64,
            format!("cust-{id}"),
            format!("{id} main st"),
            if high { "High" } else { "Low" }
        ]
    }

    /// One random sale row (Zipf-skewed customer and item).
    pub fn sale_row(&mut self) -> Tuple {
        let cust = self.customer_zipf.sample(&mut self.rng) as i64;
        let item = self.item_zipf.sample(&mut self.rng) as i64;
        // quantity 0 occurs (paper's predicate filters it); price in cents.
        let quantity = self.rng.range(0, 10);
        let price = (self.rng.range(50, 50_000) as f64) / 100.0;
        tuple![cust, item, quantity, price]
    }

    /// A transaction inserting `n` new sales (the paper's "insertions into
    /// the sales table are made continuously").
    pub fn sales_batch(&mut self, n: usize) -> Transaction {
        let mut ins = Bag::with_capacity(n);
        for _ in 0..n {
            let row = self.sale_row();
            self.live_sales.push(row.clone());
            ins.insert(row);
        }
        Transaction::new().insert("sales", ins)
    }

    /// A mixed transaction: `inserts` new sales plus `deletes` returns of
    /// previously inserted sales (exercises the deletion path).
    pub fn mixed_batch(&mut self, inserts: usize, deletes: usize) -> Transaction {
        let mut tx = self.sales_batch(inserts);
        let mut del = Bag::new();
        for _ in 0..deletes {
            if self.live_sales.is_empty() {
                break;
            }
            let idx = self.rng.index(self.live_sales.len());
            del.insert(self.live_sales.swap_remove(idx));
        }
        if !del.is_empty() {
            tx = tx.delete("sales", del);
        }
        tx
    }

    /// A churn transaction: delete `n` live rows and immediately reinsert
    /// them (pure delete/reinsert overlap — the workload where strong
    /// minimality pays, experiment E6).
    pub fn churn_batch(&mut self, n: usize) -> Transaction {
        let mut bag = Bag::new();
        for _ in 0..n {
            if self.live_sales.is_empty() {
                break;
            }
            let idx = self.rng.index(self.live_sales.len());
            bag.insert(self.live_sales[idx].clone());
        }
        Transaction::new()
            .delete("sales", bag.clone())
            .insert("sales", bag)
    }

    /// A transaction updating customer scores: promotes/demotes `n` random
    /// customers (touches the *other* join side).
    pub fn score_change_batch(&mut self, n: usize) -> Transaction {
        let mut del = Bag::new();
        let mut ins = Bag::new();
        for _ in 0..n {
            let id = self.rng.index(self.cfg.customers);
            let old = self.customer_row(id);
            // flip the score
            let flipped = if (id as f64 / self.cfg.customers as f64) < self.cfg.high_fraction {
                tuple![
                    id as i64,
                    format!("cust-{id}"),
                    format!("{id} main st"),
                    "Low"
                ]
            } else {
                tuple![
                    id as i64,
                    format!("cust-{id}"),
                    format!("{id} main st"),
                    "High"
                ]
            };
            del.insert(old);
            ins.insert(flipped);
        }
        Transaction::new()
            .delete("customer", del)
            .insert("customer", ins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_core::Scenario;

    fn small() -> RetailConfig {
        RetailConfig {
            customers: 50,
            items: 20,
            initial_sales: 200,
            ..RetailConfig::default()
        }
    }

    #[test]
    fn install_loads_tables() {
        let db = Database::new();
        let mut g = RetailGen::new(small());
        g.install(&db).unwrap();
        assert_eq!(db.catalog().require("customer").unwrap().len(), 50);
        assert_eq!(db.catalog().require("sales").unwrap().len(), 200);
    }

    #[test]
    fn view_sql_matches_expr() {
        use dvm_sql::sql_to_statement;
        let stmt = sql_to_statement(VIEW_SQL).unwrap();
        let dvm_sql::LoweredStatement::CreateView { name, definition } = stmt else {
            panic!()
        };
        assert_eq!(name, "V");
        assert_eq!(definition, view_expr());
    }

    #[test]
    fn view_over_generated_data_maintains() {
        let db = Database::new();
        let mut g = RetailGen::new(small());
        g.install(&db).unwrap();
        db.create_view("v", view_expr(), Scenario::Combined)
            .unwrap();
        for _ in 0..5 {
            db.execute(&g.mixed_batch(10, 3)).unwrap();
        }
        db.execute(&g.score_change_batch(5)).unwrap();
        assert!(db.check_invariant("v").unwrap().ok());
        db.refresh("v").unwrap();
        assert_eq!(db.query_view("v").unwrap(), db.recompute_view("v").unwrap());
    }

    #[test]
    fn batches_are_deterministic_per_seed() {
        let mut a = RetailGen::new(small());
        let mut b = RetailGen::new(small());
        assert_eq!(a.sales_batch(5), b.sales_batch(5));
        let mut c = RetailGen::new(RetailConfig {
            seed: 99,
            ..small()
        });
        assert_ne!(a.sales_batch(5), c.sales_batch(5));
    }

    #[test]
    fn churn_batch_deletes_and_reinserts_same_rows() {
        let db = Database::new();
        let mut g = RetailGen::new(small());
        g.install(&db).unwrap();
        let tx = g.churn_batch(5);
        let (d, i) = tx.get("sales").unwrap();
        assert_eq!(d, i);
        assert!(!d.is_empty());
    }

    #[test]
    fn high_fraction_controls_selectivity() {
        let db = Database::new();
        let mut g = RetailGen::new(RetailConfig {
            high_fraction: 0.5,
            ..small()
        });
        g.install(&db).unwrap();
        let high = db
            .eval(&Expr::table("customer").select(Predicate::eq(col("score"), lit_str("High"))))
            .unwrap();
        assert_eq!(high.len(), 25);
    }
}
