//! # dvm-storage — bag-relational storage engine
//!
//! The substrate under the deferred-view-maintenance reproduction of
//! *Colby, Griffin, Libkin, Mumick, Trickey, "Algorithms for Deferred View
//! Maintenance" (SIGMOD 1996)*.
//!
//! The paper assumes a relational engine with SQL **duplicate (bag)
//! semantics**: database states map table names to finite bags of tuples
//! (Section 2.1). This crate provides exactly that:
//!
//! * [`value::Value`] / [`tuple::Tuple`] — typed scalar values and immutable
//!   reference-counted rows;
//! * [`bag::Bag`] — multisets with native `⊎`, `∸`, `min`, `max`, `×`, `σ`,
//!   `Π`, `ε`;
//! * [`schema::Schema`] — named, typed, optionally qualified columns;
//! * [`table::Table`] — schema-validated bags behind instrumented RW locks
//!   (write-hold time = the paper's *view downtime*);
//! * [`catalog::Catalog`] — the database state, with deep
//!   [`snapshot::Snapshot`]s for cross-state verification and checkpointing.

#![warn(missing_docs)]

pub mod bag;
pub mod catalog;
pub mod error;
pub mod lock;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod table;
pub mod tuple;
pub mod value;

pub use bag::Bag;
pub use catalog::Catalog;
pub use error::{Result, StorageError};
pub use schema::{Column, Schema};
pub use snapshot::Snapshot;
pub use table::{Table, TableKind};
pub use tuple::Tuple;
pub use value::{Value, ValueType};

#[cfg(test)]
mod proptests {
    //! Property tests for the algebraic laws the paper relies on
    //! (commutativity/associativity of ⊎, the monus identities behind
    //! `min`/`max`, and the cancellation shape of Lemma 1 at the bag level).

    use crate::bag::Bag;
    use crate::tuple::Tuple;
    use crate::value::Value;
    use proptest::prelude::*;

    fn arb_bag() -> impl Strategy<Value = Bag> {
        proptest::collection::vec((0i64..6, 1u64..4), 0..8).prop_map(|items| {
            let mut b = Bag::new();
            for (v, m) in items {
                b.insert_n(Tuple::new(vec![Value::Int(v)]), m);
            }
            b
        })
    }

    proptest! {
        #[test]
        fn union_commutative(a in arb_bag(), b in arb_bag()) {
            prop_assert_eq!(a.union(&b), b.union(&a));
        }

        #[test]
        fn union_associative(a in arb_bag(), b in arb_bag(), c in arb_bag()) {
            prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        }

        #[test]
        fn monus_identity_and_annihilation(a in arb_bag()) {
            prop_assert_eq!(a.monus(&Bag::new()), a.clone());
            prop_assert!(Bag::new().monus(&a).is_empty());
            prop_assert!(a.monus(&a).is_empty());
        }

        #[test]
        fn min_via_double_monus(a in arb_bag(), b in arb_bag()) {
            // Q1 min Q2 = Q1 ∸ (Q1 ∸ Q2)  (Section 2.1)
            prop_assert_eq!(a.min_intersect(&b), a.monus(&a.monus(&b)));
        }

        #[test]
        fn max_via_union_monus(a in arb_bag(), b in arb_bag()) {
            // Q1 max Q2 = Q1 ⊎ (Q2 ∸ Q1)  (Section 2.1)
            prop_assert_eq!(a.max_union(&b), a.union(&b.monus(&a)));
        }

        #[test]
        fn union_then_monus_cancels(a in arb_bag(), b in arb_bag()) {
            // (A ⊎ B) ∸ B = A
            prop_assert_eq!(a.union(&b).monus(&b), a.clone());
        }

        #[test]
        fn cancellation_lemma_bag_level(o in arb_bag(), d in arb_bag(), i in arb_bag()) {
            // Lemma 1: if N = (O ∸ D) ⊎ I then O = (N ∸ I) ⊎ (O min D),
            // for arbitrary bags (no minimality restriction needed).
            let n = o.monus(&d).union(&i);
            let restored = n.monus(&i).union(&o.min_intersect(&d));
            prop_assert_eq!(restored, o.clone());
        }

        #[test]
        fn apply_delta_matches_formula(o in arb_bag(), d in arb_bag(), i in arb_bag()) {
            let mut applied = o.clone();
            applied.apply_delta(&d, &i);
            prop_assert_eq!(applied, o.monus(&d).union(&i));
        }

        #[test]
        fn subbag_of_union(a in arb_bag(), b in arb_bag()) {
            prop_assert!(a.is_subbag_of(&a.union(&b)));
            prop_assert!(a.monus(&b).is_subbag_of(&a));
            prop_assert!(a.min_intersect(&b).is_subbag_of(&a));
            prop_assert!(a.is_subbag_of(&a.max_union(&b)));
        }

        #[test]
        fn product_distributes_over_union(a in arb_bag(), b in arb_bag(), c in arb_bag()) {
            // A × (B ⊎ C) = (A × B) ⊎ (A × C)
            prop_assert_eq!(
                a.product(&b.union(&c)),
                a.product(&b).union(&a.product(&c))
            );
        }

        #[test]
        fn dedup_idempotent(a in arb_bag()) {
            prop_assert_eq!(a.dedup().dedup(), a.dedup());
        }

        #[test]
        fn snapshot_roundtrip(a in arb_bag(), b in arb_bag()) {
            use std::collections::BTreeMap;
            let mut bags = BTreeMap::new();
            bags.insert("r".to_string(), a);
            bags.insert("s".to_string(), b);
            let snap = crate::snapshot::Snapshot::from_bags(bags);
            prop_assert_eq!(crate::snapshot::Snapshot::decode(snap.encode()).unwrap(), snap);
        }
    }
}
