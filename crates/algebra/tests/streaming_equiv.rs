//! Differential testing of the fused streaming executor against the
//! materializing reference evaluator.
//!
//! The streaming executor (`eval_streaming`) is the production hot path;
//! the reference evaluator (`eval_reference`) is the strict bottom-up
//! oracle it must agree with — bag-exactly, multiplicities included — on
//! every plan the optimizer can emit. Random plans come from
//! [`dvm_algebra::testgen`], including self-joins, pipeline breakers under
//! fused chains, and (in the mixed universe) states carrying NULL join
//! keys and `Double` values that coerce to equal `Int`s.

use dvm_algebra::infer::{compile, compile_unoptimized};
use dvm_algebra::testgen::Universe;
use dvm_algebra::{eval_reference, eval_streaming};
use dvm_testkit::Prop;

/// Streaming ≡ reference on optimizer output over plain integer states.
#[test]
fn streaming_matches_reference_on_random_plans() {
    let u = Universe::small(3);
    let provider = u.provider();
    Prop::new("streaming_matches_reference_on_random_plans")
        .cases(256)
        .run(|rng| {
            let state = u.state(rng, 5);
            let e = u.expr(rng, 3);
            let plan = compile(&e, &provider).expect("typecheck").plan;
            let streamed = eval_streaming(&plan, &state).expect("streaming eval");
            let reference = eval_reference(&plan, &state).expect("reference eval");
            assert_eq!(streamed, reference, "executors diverged on {e}");
        });
}

/// Same, over mixed-type states: NULL join keys must never join, and
/// integral doubles must hash-join their coerced `Int` equals — in both
/// executors, identically.
#[test]
fn streaming_matches_reference_with_null_and_double_keys() {
    let u = Universe::mixed(3);
    let provider = u.provider();
    Prop::new("streaming_matches_reference_with_null_and_double_keys")
        .cases(256)
        .run(|rng| {
            let state = u.state(rng, 5);
            let e = u.expr(rng, 3);
            let plan = compile(&e, &provider).expect("typecheck").plan;
            let streamed = eval_streaming(&plan, &state).expect("streaming eval");
            let reference = eval_reference(&plan, &state).expect("reference eval");
            assert_eq!(streamed, reference, "executors diverged on {e}");
        });
}

/// Aggregate plans: `GroupAggregate` is a pipeline breaker in both
/// executors, but the fused chains feeding it differ — the streaming path
/// pipelines σ/Π/ε into the grouping hash table while the reference
/// evaluator materializes every intermediate bag. Both must emit the same
/// set of groups with the same COUNT/SUM/AVG/MIN/MAX values, including
/// NULL grouping keys (which group together) and `Double` contributions
/// (which coerce SUM to Double and must agree bit-for-bit — the mixed
/// universe only emits dyadic doubles, so sums are exact).
#[test]
fn streaming_matches_reference_on_aggregate_plans() {
    let u = Universe::mixed(3);
    let provider = u.provider();
    Prop::new("streaming_matches_reference_on_aggregate_plans")
        .cases(400)
        .run(|rng| {
            let state = u.state(rng, 5);
            let e = u.agg_expr(rng, 2);
            let optimized = compile(&e, &provider).expect("typecheck").plan;
            let naive = compile_unoptimized(&e, &provider).expect("typecheck").plan;
            let streamed = eval_streaming(&optimized, &state).expect("streaming eval");
            let reference = eval_reference(&naive, &state).expect("reference eval");
            assert_eq!(streamed, reference, "executors diverged on {e}");
        });
}

/// EXCEPT over NULL-bearing states: the paper's semijoin expansion
/// `Π(σ(Q1 × (ε(Q1) ∸ Q2)))` must agree with the direct bag operator in
/// *both* executors. The expansion joins on null-safe `<=>`, so a NULL-
/// bearing row of Q1 finds its own image in the survivor side exactly like
/// the direct operator's value-identity comparison does. (Previously the
/// expansion used three-valued `=`, silently dropping NULL rows — the
/// PR 6 divergence this fixes.)
#[test]
fn except_expansion_matches_direct_operator_on_null_rows() {
    use dvm_algebra::infer::infer_schema;
    let u = Universe::mixed(3);
    let provider = u.provider();
    Prop::new("except_expansion_matches_direct_operator_on_null_rows")
        .cases(256)
        .run(|rng| {
            let state = u.state(rng, 5);
            let q1 = u.expr(rng, 2);
            let q2 = u.expr(rng, 2);
            let direct = q1.clone().except(q2.clone());
            let schema_of = |e: &dvm_algebra::Expr| infer_schema(e, &provider);
            let expanded = direct.expand_derived(&schema_of).expect("expandable");

            let direct_plan = compile(&direct, &provider).expect("typecheck").plan;
            let expanded_plan = compile(&expanded, &provider).expect("typecheck").plan;
            let direct_streamed = eval_streaming(&direct_plan, &state).expect("eval");
            let expanded_streamed = eval_streaming(&expanded_plan, &state).expect("eval");
            let direct_reference = eval_reference(&direct_plan, &state).expect("eval");
            let expanded_reference = eval_reference(&expanded_plan, &state).expect("eval");
            assert_eq!(
                direct_streamed, expanded_streamed,
                "streaming: expansion diverged from direct EXCEPT on {direct}"
            );
            assert_eq!(
                direct_reference, expanded_reference,
                "reference: expansion diverged from direct EXCEPT on {direct}"
            );
            assert_eq!(direct_streamed, direct_reference, "executors diverged");
        });
}

/// Sharded ≡ unsharded: forcing every table bag into the hash-partitioned
/// representation must not change any query result, in either executor.
/// Random plans over the mixed universe cover NULL join keys, coercing
/// Int/Double keys, and every operator the optimizer can emit.
#[test]
fn sharded_state_matches_flat_on_random_plans() {
    let u = Universe::mixed(3);
    let provider = u.provider();
    Prop::new("sharded_state_matches_flat_on_random_plans")
        .cases(192)
        .run(|rng| {
            let flat_state = u.state(rng, 5);
            let mut sharded_state = flat_state.clone();
            for bag in sharded_state.values_mut() {
                bag.ensure_sharded();
            }
            let e = u.expr(rng, 3);
            let plan = compile(&e, &provider).expect("typecheck").plan;
            let flat = eval_streaming(&plan, &flat_state).expect("eval");
            let sharded = eval_streaming(&plan, &sharded_state).expect("eval");
            assert_eq!(flat, sharded, "streaming diverged on sharded state: {e}");
            let flat_ref = eval_reference(&plan, &flat_state).expect("eval");
            let sharded_ref = eval_reference(&plan, &sharded_state).expect("eval");
            assert_eq!(flat_ref, sharded_ref, "reference diverged on sharded state: {e}");
            assert_eq!(flat, flat_ref, "executors diverged: {e}");
        });
}

/// Sharded ≡ unsharded on aggregate plans: grouping hashes whole key
/// prefixes, orthogonal to the shard routing hash — results must be
/// identical when inputs are pre-sharded.
#[test]
fn sharded_state_matches_flat_on_aggregate_plans() {
    let u = Universe::mixed(3);
    let provider = u.provider();
    Prop::new("sharded_state_matches_flat_on_aggregate_plans")
        .cases(192)
        .run(|rng| {
            let flat_state = u.state(rng, 5);
            let mut sharded_state = flat_state.clone();
            for bag in sharded_state.values_mut() {
                bag.ensure_sharded();
            }
            let e = u.agg_expr(rng, 2);
            let plan = compile(&e, &provider).expect("typecheck").plan;
            let flat = eval_streaming(&plan, &flat_state).expect("eval");
            let sharded = eval_streaming(&plan, &sharded_state).expect("eval");
            assert_eq!(flat, sharded, "streaming diverged on sharded state: {e}");
            let sharded_ref = eval_reference(&plan, &sharded_state).expect("eval");
            assert_eq!(flat, sharded_ref, "reference diverged on sharded state: {e}");
        });
}

/// The streaming executor over the *optimized* plan still agrees with the
/// reference evaluator over the *unoptimized* plan — fusion composes with
/// join extraction and filter pushdown without changing semantics.
#[test]
fn streaming_optimized_matches_reference_unoptimized() {
    let u = Universe::mixed(3);
    let provider = u.provider();
    Prop::new("streaming_optimized_matches_reference_unoptimized")
        .cases(192)
        .run(|rng| {
            let state = u.state(rng, 5);
            let e = u.expr(rng, 3);
            let optimized = compile(&e, &provider).expect("typecheck").plan;
            let naive = compile_unoptimized(&e, &provider).expect("typecheck").plan;
            let streamed = eval_streaming(&optimized, &state).expect("streaming eval");
            let reference = eval_reference(&naive, &state).expect("reference eval");
            assert_eq!(
                streamed, reference,
                "fused+optimized diverged from naive reference on {e}"
            );
        });
}
