//! Bags (multisets) of tuples — the storage representation behind every
//! table, log, and differential table.
//!
//! A [`Bag`] maps each distinct tuple to its multiplicity. All of the paper's
//! bag-algebra primitives are implemented natively here:
//!
//! * additive union `⊎` ([`Bag::union`]),
//! * monus `∸` ([`Bag::monus`]),
//! * minimal intersection `min` ([`Bag::min_intersect`]),
//! * maximal union `max` ([`Bag::max_union`]),
//! * cartesian product `×` ([`Bag::product`]),
//! * selection `σ` ([`Bag::select`]),
//! * projection `Π` ([`Bag::project`]),
//! * duplicate elimination `ε` ([`Bag::dedup`]).
//!
//! The total cardinality is cached so `len()` is O(1).

use crate::hasher::{FxBuildHasher, FxHashMap};
use crate::tuple::Tuple;
use std::collections::HashMap;
use std::fmt;

/// A finite multiset of tuples.
///
/// Tuples are hashed with the workspace [`crate::hasher::FxHasher`] rather
/// than std's SipHash: bag contents are internal maintenance state, and
/// tuple hashing dominates the maintenance hot path (see DESIGN.md §11).
#[derive(Debug, Clone, Default)]
pub struct Bag {
    items: FxHashMap<Tuple, u64>,
    /// Cached total multiplicity (sum over `items` values).
    len: u64,
}

impl Bag {
    /// The empty bag `φ`.
    pub fn new() -> Self {
        Bag::default()
    }

    /// An empty bag with capacity for `n` distinct tuples.
    pub fn with_capacity(n: usize) -> Self {
        Bag {
            items: HashMap::with_capacity_and_hasher(n, FxBuildHasher::default()),
            len: 0,
        }
    }

    /// A singleton bag `{x}`.
    pub fn singleton(t: Tuple) -> Self {
        let mut b = Bag::new();
        b.insert(t);
        b
    }

    /// Build from an iterator of tuples, accumulating multiplicities.
    pub fn from_tuples<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let mut b = Bag::new();
        for t in iter {
            b.insert(t);
        }
        b
    }

    /// Total cardinality, counting duplicates.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Number of distinct tuples.
    pub fn distinct_len(&self) -> usize {
        self.items.len()
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Multiplicity of `t` (0 when absent).
    pub fn multiplicity(&self, t: &Tuple) -> u64 {
        self.items.get(t).copied().unwrap_or(0)
    }

    /// Whether `t` occurs at least once.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.multiplicity(t) > 0
    }

    /// Insert one occurrence of `t`.
    pub fn insert(&mut self, t: Tuple) {
        self.insert_n(t, 1);
    }

    /// Insert `n` occurrences of `t`.
    pub fn insert_n(&mut self, t: Tuple, n: u64) {
        if n == 0 {
            return;
        }
        *self.items.entry(t).or_insert(0) += n;
        self.len += n;
    }

    /// Remove up to `n` occurrences of `t`; returns how many were removed.
    pub fn remove_n(&mut self, t: &Tuple, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        match self.items.get_mut(t) {
            None => 0,
            Some(m) => {
                let removed = (*m).min(n);
                *m -= removed;
                if *m == 0 {
                    self.items.remove(t);
                }
                self.len -= removed;
                removed
            }
        }
    }

    /// Remove one occurrence of `t`; returns whether one was removed.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.remove_n(t, 1) == 1
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.items.clear();
        self.len = 0;
    }

    /// Iterate over `(tuple, multiplicity)` pairs in hash order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, u64)> {
        self.items.iter().map(|(t, &m)| (t, m))
    }

    /// Iterate over tuples, each repeated by its multiplicity.
    pub fn iter_expanded(&self) -> impl Iterator<Item = &Tuple> {
        self.items
            .iter()
            .flat_map(|(t, &m)| std::iter::repeat_n(t, m as usize))
    }

    /// Entries sorted by tuple — deterministic order for display and tests.
    pub fn sorted_entries(&self) -> Vec<(Tuple, u64)> {
        let mut v: Vec<(Tuple, u64)> = self.items.iter().map(|(t, &m)| (t.clone(), m)).collect();
        v.sort();
        v
    }

    /// Fold `self` with an order-independent combiner — a hash of the
    /// bag's *contents* that never sorts. Each `(tuple, multiplicity)`
    /// entry is hashed independently by `per_entry` and the results are
    /// combined with wrapping addition, which is commutative, so any
    /// iteration order yields the same value. Used by plan fingerprinting
    /// to hash `Literal` bags without an O(n log n) sort.
    pub fn fold_entry_hashes<F: Fn(&Tuple, u64) -> u64>(&self, per_entry: F) -> u64 {
        self.items
            .iter()
            .fold(0u64, |acc, (t, &m)| acc.wrapping_add(per_entry(t, m)))
    }

    // ---- bag algebra primitives ------------------------------------------

    /// Additive union `self ⊎ other`: multiplicities add.
    pub fn union(&self, other: &Bag) -> Bag {
        let (big, small) = if self.distinct_len() >= other.distinct_len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = big.clone();
        out.union_assign(small);
        out
    }

    /// In-place additive union.
    pub fn union_assign(&mut self, other: &Bag) {
        for (t, m) in other.iter() {
            self.insert_n(t.clone(), m);
        }
    }

    /// Monus `self ∸ other`: multiplicity of `x` is `max(0, n - m)`.
    pub fn monus(&self, other: &Bag) -> Bag {
        let mut out = self.clone();
        out.monus_assign(other);
        out
    }

    /// In-place monus.
    pub fn monus_assign(&mut self, other: &Bag) {
        for (t, m) in other.iter() {
            self.remove_n(t, m);
        }
    }

    /// Minimal intersection: multiplicity is `min(n, m)`.
    ///
    /// Definable as `Q1 ∸ (Q1 ∸ Q2)` (Section 2.1); the native form avoids
    /// two clones. The equivalence is property-tested.
    pub fn min_intersect(&self, other: &Bag) -> Bag {
        let (small, big) = if self.distinct_len() <= other.distinct_len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = Bag::with_capacity(small.distinct_len());
        for (t, m) in small.iter() {
            let k = m.min(big.multiplicity(t));
            if k > 0 {
                out.insert_n(t.clone(), k);
            }
        }
        out
    }

    /// Maximal union: multiplicity is `max(n, m)`.
    ///
    /// Definable as `Q1 ⊎ (Q2 ∸ Q1)` (Section 2.1).
    pub fn max_union(&self, other: &Bag) -> Bag {
        let mut out = self.clone();
        for (t, m) in other.iter() {
            let cur = out.multiplicity(t);
            if m > cur {
                out.insert_n(t.clone(), m - cur);
            }
        }
        out
    }

    /// Cartesian product `self × other` with tuple concatenation;
    /// multiplicities multiply.
    pub fn product(&self, other: &Bag) -> Bag {
        // Cap the pre-allocation: the true result size is the full cross
        // product, which can be enormous; let the map grow instead of
        // reserving gigabytes up front.
        let cap = self
            .distinct_len()
            .saturating_mul(other.distinct_len())
            .min(1 << 20);
        let mut out = Bag::with_capacity(cap);
        for (a, m) in self.iter() {
            for (b, n) in other.iter() {
                // saturating: astronomically large multiplicities clamp
                // rather than wrapping (and panicking in debug builds)
                out.insert_n(a.concat(b), m.saturating_mul(n));
            }
        }
        out
    }

    /// Selection `σ_p`: keep tuples satisfying the predicate, multiplicities
    /// unchanged.
    pub fn select<F: Fn(&Tuple) -> bool>(&self, pred: F) -> Bag {
        let mut out = Bag::new();
        for (t, m) in self.iter() {
            if pred(t) {
                out.insert_n(t.clone(), m);
            }
        }
        out
    }

    /// Projection `Π` onto positions — duplicates are *preserved* (bag
    /// semantics), so distinct inputs may merge and multiplicities add.
    pub fn project(&self, indices: &[usize]) -> Bag {
        let mut out = Bag::new();
        for (t, m) in self.iter() {
            out.insert_n(t.project(indices), m);
        }
        out
    }

    /// Duplicate elimination `ε`: every present tuple gets multiplicity 1.
    pub fn dedup(&self) -> Bag {
        let mut out = Bag::with_capacity(self.distinct_len());
        for (t, _) in self.iter() {
            out.insert_n(t.clone(), 1);
        }
        out
    }

    /// SQL `EXCEPT`-style difference: remove *all* occurrences of any tuple
    /// present in `other`, regardless of multiplicity (Section 2.1 contrasts
    /// this with monus).
    pub fn except_all_occurrences(&self, other: &Bag) -> Bag {
        self.select(|t| !other.contains(t))
    }

    /// Subbag test `self ⊑ other`: every multiplicity in `self` is ≤ the
    /// corresponding multiplicity in `other`.
    pub fn is_subbag_of(&self, other: &Bag) -> bool {
        self.iter().all(|(t, m)| m <= other.multiplicity(t))
    }

    /// Apply a delta: `self := (self ∸ del) ⊎ ins`, in place.
    pub fn apply_delta(&mut self, del: &Bag, ins: &Bag) {
        self.monus_assign(del);
        self.union_assign(ins);
    }
}

impl PartialEq for Bag {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self.items.len() == other.items.len()
            && self.iter().all(|(t, m)| other.multiplicity(t) == m)
    }
}

impl Eq for Bag {}

impl FromIterator<Tuple> for Bag {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        Bag::from_tuples(iter)
    }
}

/// Consume the bag, yielding owned `(tuple, multiplicity)` pairs in hash
/// order. Lets the streaming executor turn a materialized pipeline-breaker
/// result back into a stream without cloning tuples.
impl IntoIterator for Bag {
    type Item = (Tuple, u64);
    type IntoIter = std::collections::hash_map::IntoIter<Tuple, u64>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl fmt::Display for Bag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (t, m)) in self.sorted_entries().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if *m == 1 {
                write!(f, "{t}")?;
            } else {
                write!(f, "{t}×{m}")?;
            }
        }
        write!(f, "}}")
    }
}

/// Convenience constructor: `bag![tuple![1], tuple![2]; tuple![1] => 3]`.
/// Plain items get multiplicity 1; `expr => n` items get multiplicity `n`.
#[macro_export]
macro_rules! bag {
    () => { $crate::bag::Bag::new() };
    ($($t:expr),+ $(,)?) => {{
        let mut b = $crate::bag::Bag::new();
        $(b.insert($t);)+
        b
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn b(items: &[(i64, u64)]) -> Bag {
        let mut bag = Bag::new();
        for &(v, m) in items {
            bag.insert_n(tuple![v], m);
        }
        bag
    }

    #[test]
    fn insert_remove_multiplicity() {
        let mut bag = Bag::new();
        bag.insert_n(tuple![1], 3);
        assert_eq!(bag.len(), 3);
        assert_eq!(bag.distinct_len(), 1);
        assert_eq!(bag.multiplicity(&tuple![1]), 3);
        assert_eq!(bag.remove_n(&tuple![1], 2), 2);
        assert_eq!(bag.multiplicity(&tuple![1]), 1);
        assert_eq!(bag.remove_n(&tuple![1], 5), 1, "remove saturates");
        assert!(!bag.contains(&tuple![1]));
        assert!(bag.is_empty());
    }

    #[test]
    fn remove_absent_is_zero() {
        let mut bag = b(&[(1, 1)]);
        assert_eq!(bag.remove_n(&tuple![9], 4), 0);
        assert_eq!(bag.len(), 1);
    }

    #[test]
    fn insert_zero_is_noop() {
        let mut bag = Bag::new();
        bag.insert_n(tuple![1], 0);
        assert!(bag.is_empty());
        assert_eq!(bag.distinct_len(), 0, "no phantom zero-multiplicity entry");
    }

    #[test]
    fn union_adds_multiplicities() {
        let x = b(&[(1, 2), (2, 1)]);
        let y = b(&[(1, 1), (3, 4)]);
        let u = x.union(&y);
        assert_eq!(u, b(&[(1, 3), (2, 1), (3, 4)]));
        assert_eq!(u.len(), 8);
    }

    #[test]
    fn monus_saturates() {
        let x = b(&[(1, 2), (2, 1)]);
        let y = b(&[(1, 5), (3, 1)]);
        assert_eq!(x.monus(&y), b(&[(2, 1)]));
        // monus is not symmetric
        assert_eq!(y.monus(&x), b(&[(1, 3), (3, 1)]));
    }

    #[test]
    fn min_and_max() {
        let x = b(&[(1, 2), (2, 3)]);
        let y = b(&[(1, 5), (2, 1), (3, 7)]);
        assert_eq!(x.min_intersect(&y), b(&[(1, 2), (2, 1)]));
        assert_eq!(x.max_union(&y), b(&[(1, 5), (2, 3), (3, 7)]));
        // symmetry
        assert_eq!(x.min_intersect(&y), y.min_intersect(&x));
        assert_eq!(x.max_union(&y), y.max_union(&x));
    }

    #[test]
    fn min_max_definable_via_monus_and_union() {
        // Q1 min Q2 = Q1 ∸ (Q1 ∸ Q2);  Q1 max Q2 = Q1 ⊎ (Q2 ∸ Q1)
        let x = b(&[(1, 2), (2, 3), (4, 1)]);
        let y = b(&[(1, 5), (2, 1), (3, 7)]);
        assert_eq!(x.min_intersect(&y), x.monus(&x.monus(&y)));
        assert_eq!(x.max_union(&y), x.union(&y.monus(&x)));
    }

    #[test]
    fn product_multiplies() {
        let x = b(&[(1, 2)]);
        let mut y = Bag::new();
        y.insert_n(tuple!["a"], 3);
        let p = x.product(&y);
        assert_eq!(p.multiplicity(&tuple![1, "a"]), 6);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn product_with_empty_is_empty() {
        let x = b(&[(1, 2)]);
        assert!(x.product(&Bag::new()).is_empty());
        assert!(Bag::new().product(&x).is_empty());
    }

    #[test]
    fn select_keeps_multiplicity() {
        let x = b(&[(1, 2), (2, 3)]);
        let s = x.select(|t| t[0] == crate::value::Value::Int(2));
        assert_eq!(s, b(&[(2, 3)]));
    }

    #[test]
    fn project_merges_and_adds() {
        let mut x = Bag::new();
        x.insert_n(tuple![1, "a"], 2);
        x.insert_n(tuple![1, "b"], 3);
        let p = x.project(&[0]);
        assert_eq!(p.multiplicity(&tuple![1]), 5);
    }

    #[test]
    fn dedup_sets_multiplicity_one() {
        let x = b(&[(1, 5), (2, 1)]);
        let d = x.dedup();
        assert_eq!(d, b(&[(1, 1), (2, 1)]));
    }

    #[test]
    fn except_all_occurrences_ignores_multiplicity() {
        let x = b(&[(1, 5), (2, 2)]);
        let y = b(&[(1, 1)]);
        assert_eq!(x.except_all_occurrences(&y), b(&[(2, 2)]));
    }

    #[test]
    fn subbag() {
        let x = b(&[(1, 2)]);
        let y = b(&[(1, 3), (2, 1)]);
        assert!(x.is_subbag_of(&y));
        assert!(!y.is_subbag_of(&x));
        assert!(Bag::new().is_subbag_of(&x));
        assert!(x.is_subbag_of(&x));
    }

    #[test]
    fn apply_delta_is_monus_then_union() {
        let mut x = b(&[(1, 2), (2, 1)]);
        let del = b(&[(1, 1)]);
        let ins = b(&[(3, 2)]);
        x.apply_delta(&del, &ins);
        assert_eq!(x, b(&[(1, 1), (2, 1), (3, 2)]));
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let mut x = Bag::new();
        x.insert(tuple![1]);
        x.insert(tuple![2]);
        let mut y = Bag::new();
        y.insert(tuple![2]);
        y.insert(tuple![1]);
        assert_eq!(x, y);
    }

    #[test]
    fn len_cache_consistent_after_mixed_ops() {
        let mut x = Bag::new();
        for i in 0i64..100 {
            x.insert_n(tuple![i % 7], (i % 3) as u64 + 1);
        }
        for i in 0i64..50 {
            x.remove_n(&tuple![i % 7], (i % 4) as u64);
        }
        let recomputed: u64 = x.iter().map(|(_, m)| m).sum();
        assert_eq!(x.len(), recomputed);
    }

    #[test]
    fn iter_expanded_repeats() {
        let x = b(&[(1, 3)]);
        assert_eq!(x.iter_expanded().count(), 3);
    }

    #[test]
    fn display_sorted() {
        let x = b(&[(2, 1), (1, 3)]);
        assert_eq!(x.to_string(), "{[1]×3, [2]}");
    }

    #[test]
    fn singleton_and_macro() {
        assert_eq!(Bag::singleton(tuple![1]).len(), 1);
        let m = crate::bag![tuple![1], tuple![1], tuple![2]];
        assert_eq!(m.multiplicity(&tuple![1]), 2);
    }
}
