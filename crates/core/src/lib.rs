//! # dvm-core — the deferred view maintenance engine
//!
//! Contribution 1 of *"Algorithms for Deferred View Maintenance"* (Colby,
//! Griffin, Libkin, Mumick, Trickey — SIGMOD 1996): view maintenance cast
//! as the preservation of **database invariants** (Figure 1), with the
//! algorithms of **Figure 3** and the refresh **policies** of Section 5.3.
//!
//! | scenario | invariant | per-tx overhead | refresh downtime |
//! |---|---|---|---|
//! | [`Scenario::Immediate`] | `Q ≡ MV` | high (incremental queries per tx) | — |
//! | [`Scenario::BaseLog`] | `PAST(L,Q) ≡ MV` | minimal (log append) | high (incremental queries under lock) |
//! | [`Scenario::DiffTable`] | `Q ≡ (MV ∸ ∇MV) ⊎ ΔMV` | high | minimal (apply precomputed) |
//! | [`Scenario::Combined`] | `PAST(L,Q) ≡ (MV ∸ ∇MV) ⊎ ΔMV` | minimal | minimal (Policies 1 & 2) |
//!
//! Start with [`Database`]: create tables, create views under a scenario,
//! [`Database::execute`] transactions, and drive refreshes by hand or with
//! a [`PolicyDriver`].

#![warn(missing_docs)]

pub mod database;
pub mod durable;
pub mod epochlog;
pub mod error;
pub mod invariant;
pub mod metrics;
pub mod obs;
pub mod policy;
pub mod profile;
pub mod readthrough;
pub mod scenario;
pub mod view;

pub use database::{Database, ExecReport};
pub use durable::{DurableOp, RecoveryReport, StateImage};
pub use epochlog::SharedLog;
pub use error::{CoreError, Result};
pub use invariant::{check_view, InvariantReport};
pub use metrics::{ViewHistograms, ViewMetrics, ViewMetricsSnapshot};
pub use obs::{IngestGauges, Observability, StalenessGauges, ViewObservability};
pub use policy::{PolicyDriver, RefreshPolicy, TickActions};
pub use profile::{MaintProfile, ProfileReport};
pub use readthrough::{read_through, read_through_where};
pub use view::{Minimality, Scenario, View};
