//! Schema inference and compilation: logical [`Expr`] → positional [`Plan`].
//!
//! Compilation resolves every column reference to a position, checks
//! union-compatibility of binary bag operators, verifies literal bags
//! against their declared schemas, and type-checks predicate comparisons.

use crate::error::{AlgebraError, Result};
use crate::expr::Expr;
use crate::plan::{PhysOperand, PhysPredicate, Plan};
use crate::predicate::{Operand, Predicate};
use dvm_storage::{Catalog, Column, Schema, StorageError, ValueType};
use std::collections::HashMap;

/// Anything that can report the schema of a named table.
pub trait SchemaProvider {
    /// Schema of the table, or an error when it does not exist.
    fn schema_of(&self, table: &str) -> Result<Schema>;
}

impl SchemaProvider for Catalog {
    fn schema_of(&self, table: &str) -> Result<Schema> {
        Ok(self.require(table)?.schema().clone())
    }
}

impl SchemaProvider for HashMap<String, Schema> {
    fn schema_of(&self, table: &str) -> Result<Schema> {
        self.get(table)
            .cloned()
            .ok_or_else(|| AlgebraError::Storage(StorageError::NoSuchTable(table.to_string())))
    }
}

/// A compiled query: positional plan plus output schema.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledQuery {
    /// The executable plan.
    pub plan: Plan,
    /// The output schema.
    pub schema: Schema,
}

/// Infer the output schema without building a plan.
pub fn infer_schema(expr: &Expr, provider: &dyn SchemaProvider) -> Result<Schema> {
    Ok(compile_unoptimized(expr, provider)?.schema)
}

/// Compile a logical expression into an **optimized** physical plan:
/// type-check, resolve columns, then run selection pushdown / hash-join
/// formation ([`crate::plan_opt::optimize`]).
pub fn compile(expr: &Expr, provider: &dyn SchemaProvider) -> Result<CompiledQuery> {
    let c = compile_unoptimized(expr, provider)?;
    let mut scan_arity = dvm_storage::FxHashMap::default();
    for table in c.plan.tables() {
        scan_arity.insert(table.clone(), provider.schema_of(&table)?.arity());
    }
    Ok(CompiledQuery {
        plan: crate::plan_opt::optimize(c.plan, &scan_arity),
        schema: c.schema,
    })
}

/// Compile without the optimization pass (used by tests that compare the
/// optimizer against naive evaluation, and by schema-only queries).
pub fn compile_unoptimized(expr: &Expr, provider: &dyn SchemaProvider) -> Result<CompiledQuery> {
    match expr {
        Expr::Table(name) => Ok(CompiledQuery {
            plan: Plan::Scan(name.clone()),
            schema: provider.schema_of(name)?,
        }),
        Expr::Literal { bag, schema } => {
            for (t, _) in bag.iter() {
                schema
                    .validate(t)
                    .map_err(|e| AlgebraError::BadLiteral(e.to_string()))?;
            }
            Ok(CompiledQuery {
                plan: Plan::Literal(bag.clone()),
                schema: schema.clone(),
            })
        }
        Expr::Alias { alias, input } => {
            let c = compile_unoptimized(input, provider)?;
            Ok(CompiledQuery {
                plan: c.plan,
                schema: c.schema.with_qualifier(alias),
            })
        }
        Expr::Select { pred, input } => {
            let c = compile_unoptimized(input, provider)?;
            let phys = compile_predicate(pred, &c.schema)?;
            Ok(CompiledQuery {
                plan: Plan::Filter(phys, Box::new(c.plan)),
                schema: c.schema,
            })
        }
        Expr::Project { cols, input } => {
            let c = compile_unoptimized(input, provider)?;
            let mut positions = Vec::with_capacity(cols.len());
            let mut out_cols = Vec::with_capacity(cols.len());
            for col in cols {
                let idx = c.schema.resolve(col.qualifier.as_deref(), &col.name)?;
                positions.push(idx);
                let src = c.schema.column(idx).expect("resolved index in range");
                // SQL result columns are unqualified: `SELECT c.custId`
                // yields a column named `custId`.
                out_cols.push(Column::new(src.name.clone(), src.ty));
            }
            let schema = Schema::new(out_cols)?;
            Ok(CompiledQuery {
                plan: Plan::Project(positions, Box::new(c.plan)),
                schema,
            })
        }
        Expr::DupElim(e) => {
            let c = compile_unoptimized(e, provider)?;
            Ok(CompiledQuery {
                plan: Plan::DupElim(Box::new(c.plan)),
                schema: c.schema,
            })
        }
        Expr::Union(a, b) => compile_binary(a, b, provider, "⊎", Plan::Union),
        Expr::Monus(a, b) => compile_binary(a, b, provider, "∸", Plan::Monus),
        Expr::MinIntersect(a, b) => compile_binary(a, b, provider, "min", Plan::MinIntersect),
        Expr::MaxUnion(a, b) => compile_binary(a, b, provider, "max", Plan::MaxUnion),
        Expr::Except(a, b) => compile_binary(a, b, provider, "EXCEPT", Plan::Except),
        Expr::Product(a, b) => {
            let ca = compile_unoptimized(a, provider)?;
            let cb = compile_unoptimized(b, provider)?;
            Ok(CompiledQuery {
                plan: Plan::Product(Box::new(ca.plan), Box::new(cb.plan)),
                schema: ca.schema.concat(&cb.schema),
            })
        }
        Expr::GroupAggregate { keys, aggs, input } => {
            let c = compile_unoptimized(input, provider)?;
            let mut key_pos = Vec::with_capacity(keys.len());
            let mut out_cols = Vec::with_capacity(keys.len() + aggs.len());
            for col in keys {
                let idx = c.schema.resolve(col.qualifier.as_deref(), &col.name)?;
                key_pos.push(idx);
                let src = c.schema.column(idx).expect("resolved index in range");
                // Like projection, output key columns are unqualified.
                out_cols.push(Column::new(src.name.clone(), src.ty));
            }
            let mut agg_pos = Vec::with_capacity(aggs.len());
            for call in aggs {
                let (pos, ty) = match &call.arg {
                    None => {
                        if call.func != crate::aggregate::AggFunc::Count {
                            return Err(AlgebraError::BadAggregate(format!(
                                "{}(*) is not a thing; only COUNT takes `*`",
                                call.func
                            )));
                        }
                        (None, ValueType::Int)
                    }
                    Some(col) => {
                        let idx = c.schema.resolve(col.qualifier.as_deref(), &col.name)?;
                        let arg_ty = c.schema.column(idx).expect("resolved index in range").ty;
                        use crate::aggregate::AggFunc;
                        let out_ty = match call.func {
                            AggFunc::Count => ValueType::Int,
                            AggFunc::Avg => ValueType::Double,
                            AggFunc::Sum => {
                                if !matches!(arg_ty, ValueType::Int | ValueType::Double) {
                                    return Err(AlgebraError::BadAggregate(format!(
                                        "SUM({col}) needs a numeric argument, got {arg_ty}"
                                    )));
                                }
                                arg_ty
                            }
                            AggFunc::Min | AggFunc::Max => arg_ty,
                        };
                        if call.func == crate::aggregate::AggFunc::Avg
                            && !matches!(arg_ty, ValueType::Int | ValueType::Double)
                        {
                            return Err(AlgebraError::BadAggregate(format!(
                                "AVG({col}) needs a numeric argument, got {arg_ty}"
                            )));
                        }
                        (Some(idx), out_ty)
                    }
                };
                agg_pos.push((call.func, pos));
                out_cols.push(Column::new(call.output_name(), ty));
            }
            // Schema::new rejects duplicate output names (two aggregates
            // over the same column, or a key clashing with `sum_b`).
            let schema = Schema::new(out_cols)?;
            Ok(CompiledQuery {
                plan: Plan::GroupAggregate {
                    keys: key_pos,
                    aggs: agg_pos,
                    input: Box::new(c.plan),
                },
                schema,
            })
        }
    }
}

fn compile_binary(
    a: &Expr,
    b: &Expr,
    provider: &dyn SchemaProvider,
    op: &'static str,
    build: fn(Box<Plan>, Box<Plan>) -> Plan,
) -> Result<CompiledQuery> {
    let ca = compile_unoptimized(a, provider)?;
    let cb = compile_unoptimized(b, provider)?;
    if !ca.schema.union_compatible(&cb.schema) {
        return Err(AlgebraError::NotUnionCompatible {
            op,
            left: ca.schema.to_string(),
            right: cb.schema.to_string(),
        });
    }
    Ok(CompiledQuery {
        plan: build(Box::new(ca.plan), Box::new(cb.plan)),
        schema: ca.schema,
    })
}

/// Compile a predicate against an input schema, resolving columns and
/// type-checking comparisons.
pub fn compile_predicate(pred: &Predicate, schema: &Schema) -> Result<PhysPredicate> {
    Ok(match pred {
        Predicate::Const(b) => PhysPredicate::Const(*b),
        Predicate::Cmp(l, op, r) => {
            let (pl, tl) = compile_operand(l, schema)?;
            let (pr, tr) = compile_operand(r, schema)?;
            if let (Some(tl), Some(tr)) = (tl, tr) {
                if !comparable(tl, tr) {
                    return Err(AlgebraError::IncomparableOperands {
                        left: format!("{l} ({tl})"),
                        right: format!("{r} ({tr})"),
                    });
                }
            }
            PhysPredicate::Cmp(pl, *op, pr)
        }
        Predicate::And(a, b) => PhysPredicate::And(
            Box::new(compile_predicate(a, schema)?),
            Box::new(compile_predicate(b, schema)?),
        ),
        Predicate::Or(a, b) => PhysPredicate::Or(
            Box::new(compile_predicate(a, schema)?),
            Box::new(compile_predicate(b, schema)?),
        ),
        Predicate::Not(a) => PhysPredicate::Not(Box::new(compile_predicate(a, schema)?)),
    })
}

fn compile_operand(op: &Operand, schema: &Schema) -> Result<(PhysOperand, Option<ValueType>)> {
    match op {
        Operand::Col(c) => {
            let idx = schema.resolve(c.qualifier.as_deref(), &c.name)?;
            let ty = schema.column(idx).expect("resolved index in range").ty;
            Ok((PhysOperand::Col(idx), Some(ty)))
        }
        Operand::Const(v) => Ok((PhysOperand::Const(v.clone()), v.value_type())),
    }
}

/// Whether two operand types can be compared (`Int` and `Double` coerce).
fn comparable(a: ValueType, b: ValueType) -> bool {
    a == b
        || matches!(
            (a, b),
            (ValueType::Int, ValueType::Double) | (ValueType::Double, ValueType::Int)
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{col, lit, lit_str};
    use dvm_storage::{tuple, Bag};

    fn provider() -> HashMap<String, Schema> {
        let mut m = HashMap::new();
        m.insert(
            "customer".to_string(),
            Schema::from_pairs(&[
                ("custId", ValueType::Int),
                ("name", ValueType::Str),
                ("score", ValueType::Str),
            ]),
        );
        m.insert(
            "sales".to_string(),
            Schema::from_pairs(&[
                ("custId", ValueType::Int),
                ("itemNo", ValueType::Int),
                ("quantity", ValueType::Int),
            ]),
        );
        m
    }

    #[test]
    fn compile_paper_view() {
        // Example 1.1: SELECT c.custId, c.name, c.score, s.itemNo, s.quantity
        // FROM customer c, sales s WHERE ...
        let p = provider();
        let view = Expr::table("customer")
            .alias("c")
            .product(Expr::table("sales").alias("s"))
            .select(
                Predicate::eq(col("c.custId"), col("s.custId"))
                    .and(Predicate::ne(col("s.quantity"), lit(0i64)))
                    .and(Predicate::eq(col("c.score"), lit_str("High"))),
            )
            .project(["c.custId", "c.name", "c.score", "s.itemNo", "s.quantity"]);
        let c = compile(&view, &p).unwrap();
        assert_eq!(c.schema.arity(), 5);
        assert_eq!(c.schema.column(0).unwrap().name, "custId");
        assert!(c.schema.column(0).unwrap().qualifier.is_none());
        assert_eq!(c.plan.tables().len(), 2);
    }

    #[test]
    fn missing_table_errors() {
        let p = provider();
        assert!(compile(&Expr::table("nope"), &p).is_err());
    }

    #[test]
    fn unresolvable_column_errors() {
        let p = provider();
        let e = Expr::table("customer").project(["ghost"]);
        assert!(compile(&e, &p).is_err());
    }

    #[test]
    fn ambiguous_column_in_product_errors() {
        let p = provider();
        let e = Expr::table("customer")
            .alias("a")
            .product(Expr::table("customer").alias("b"))
            .project(["custId"]);
        assert!(matches!(
            compile(&e, &p),
            Err(AlgebraError::Storage(StorageError::AmbiguousColumn { .. }))
        ));
    }

    #[test]
    fn self_join_with_aliases_compiles() {
        let p = provider();
        let e = Expr::table("customer")
            .alias("a")
            .product(Expr::table("customer").alias("b"))
            .select(Predicate::eq(col("a.custId"), col("b.custId")))
            .project(["a.name"]);
        let c = compile(&e, &p).unwrap();
        assert_eq!(c.schema.arity(), 1);
    }

    #[test]
    fn union_compatibility_enforced() {
        let p = provider();
        let ok = Expr::table("customer").union(Expr::table("customer"));
        assert!(compile(&ok, &p).is_ok());
        let bad = Expr::table("customer").union(Expr::table("sales"));
        assert!(matches!(
            compile(&bad, &p),
            Err(AlgebraError::NotUnionCompatible { .. })
        ));
        let bad2 = Expr::table("customer").monus(Expr::table("sales"));
        assert!(compile(&bad2, &p).is_err());
    }

    #[test]
    fn literal_validated() {
        let p = provider();
        let s = Schema::from_pairs(&[("a", ValueType::Int)]);
        let good = Expr::literal(Bag::singleton(tuple![1]), s.clone());
        assert!(compile(&good, &p).is_ok());
        let bad = Expr::literal(Bag::singleton(tuple!["x"]), s);
        assert!(matches!(
            compile(&bad, &p),
            Err(AlgebraError::BadLiteral(_))
        ));
    }

    #[test]
    fn predicate_type_check() {
        let p = provider();
        let bad = Expr::table("customer").select(Predicate::eq(col("custId"), lit_str("x")));
        assert!(matches!(
            compile(&bad, &p),
            Err(AlgebraError::IncomparableOperands { .. })
        ));
        // int vs double is fine
        let ok = Expr::table("customer").select(Predicate::lt(col("custId"), lit(1.5)));
        assert!(compile(&ok, &p).is_ok());
    }

    #[test]
    fn project_strips_qualifier() {
        let p = provider();
        let e = Expr::table("customer").alias("c").project(["c.name"]);
        let c = compile(&e, &p).unwrap();
        assert_eq!(c.schema.column(0).unwrap().qualifier, None);
        assert_eq!(c.schema.column(0).unwrap().name, "name");
    }

    #[test]
    fn duplicate_projection_names_rejected() {
        let p = provider();
        let e = Expr::table("customer")
            .alias("a")
            .product(Expr::table("customer").alias("b"))
            .project(["a.name", "b.name"]);
        assert!(compile(&e, &p).is_err(), "duplicate output names rejected");
    }

    #[test]
    fn product_schema_concat() {
        let p = provider();
        let e = Expr::table("customer")
            .alias("c")
            .product(Expr::table("sales").alias("s"));
        let c = compile(&e, &p).unwrap();
        assert_eq!(c.schema.arity(), 6);
        assert_eq!(c.schema.resolve(Some("s"), "custId").unwrap(), 3);
    }
}
