//! SQL tokens.

use std::fmt;

/// A lexical token with its source position (byte offset).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the input where the token starts.
    pub offset: usize,
}

/// Token kinds for the supported SQL dialect.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword (uppercased during lexing).
    Keyword(Keyword),
    /// Identifier (table, alias, or column name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (single-quoted, quotes stripped).
    Str(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semicolon,
    /// End of input.
    Eof,
}

/// Recognized keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the variants are the keywords themselves
pub enum Keyword {
    Select,
    Distinct,
    From,
    Where,
    And,
    Or,
    Not,
    As,
    Union,
    Except,
    Intersect,
    All,
    Create,
    View,
    Table,
    Int,
    String_,
    Double,
    Boolean,
    Insert,
    Into,
    Values,
    Delete,
    True,
    False,
    Null,
    Group,
    By,
}

impl Keyword {
    /// Parse an uppercased word into a keyword.
    pub fn from_upper(s: &str) -> Option<Keyword> {
        Some(match s {
            "SELECT" => Keyword::Select,
            "DISTINCT" => Keyword::Distinct,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "AS" => Keyword::As,
            "UNION" => Keyword::Union,
            "EXCEPT" => Keyword::Except,
            "INTERSECT" => Keyword::Intersect,
            "ALL" => Keyword::All,
            "CREATE" => Keyword::Create,
            "VIEW" => Keyword::View,
            "TABLE" => Keyword::Table,
            "INT" | "INTEGER" | "BIGINT" => Keyword::Int,
            "STRING" | "TEXT" | "VARCHAR" => Keyword::String_,
            "DOUBLE" | "FLOAT" | "REAL" => Keyword::Double,
            "BOOL" | "BOOLEAN" => Keyword::Boolean,
            "INSERT" => Keyword::Insert,
            "INTO" => Keyword::Into,
            "VALUES" => Keyword::Values,
            "DELETE" => Keyword::Delete,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            "NULL" => Keyword::Null,
            "GROUP" => Keyword::Group,
            "BY" => Keyword::By,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k:?}"),
            TokenKind::Ident(s) => write!(f, "identifier '{s}'"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Float(v) => write!(f, "float {v}"),
            TokenKind::Str(s) => write!(f, "string '{s}'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::Dot => write!(f, "'.'"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::Star => write!(f, "'*'"),
            TokenKind::Eq => write!(f, "'='"),
            TokenKind::Ne => write!(f, "'!='"),
            TokenKind::Lt => write!(f, "'<'"),
            TokenKind::Le => write!(f, "'<='"),
            TokenKind::Gt => write!(f, "'>'"),
            TokenKind::Ge => write!(f, "'>='"),
            TokenKind::Semicolon => write!(f, "';'"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(Keyword::from_upper("SELECT"), Some(Keyword::Select));
        assert_eq!(Keyword::from_upper("FROB"), None);
    }

    #[test]
    fn display() {
        assert_eq!(TokenKind::Comma.to_string(), "','");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier 'x'");
    }
}
