//! Differential testing of the fused streaming executor against the
//! materializing reference evaluator.
//!
//! The streaming executor (`eval_streaming`) is the production hot path;
//! the reference evaluator (`eval_reference`) is the strict bottom-up
//! oracle it must agree with — bag-exactly, multiplicities included — on
//! every plan the optimizer can emit. Random plans come from
//! [`dvm_algebra::testgen`], including self-joins, pipeline breakers under
//! fused chains, and (in the mixed universe) states carrying NULL join
//! keys and `Double` values that coerce to equal `Int`s.

use dvm_algebra::infer::{compile, compile_unoptimized};
use dvm_algebra::testgen::Universe;
use dvm_algebra::{eval_reference, eval_streaming};
use dvm_testkit::Prop;

/// Streaming ≡ reference on optimizer output over plain integer states.
#[test]
fn streaming_matches_reference_on_random_plans() {
    let u = Universe::small(3);
    let provider = u.provider();
    Prop::new("streaming_matches_reference_on_random_plans")
        .cases(256)
        .run(|rng| {
            let state = u.state(rng, 5);
            let e = u.expr(rng, 3);
            let plan = compile(&e, &provider).expect("typecheck").plan;
            let streamed = eval_streaming(&plan, &state).expect("streaming eval");
            let reference = eval_reference(&plan, &state).expect("reference eval");
            assert_eq!(streamed, reference, "executors diverged on {e}");
        });
}

/// Same, over mixed-type states: NULL join keys must never join, and
/// integral doubles must hash-join their coerced `Int` equals — in both
/// executors, identically.
#[test]
fn streaming_matches_reference_with_null_and_double_keys() {
    let u = Universe::mixed(3);
    let provider = u.provider();
    Prop::new("streaming_matches_reference_with_null_and_double_keys")
        .cases(256)
        .run(|rng| {
            let state = u.state(rng, 5);
            let e = u.expr(rng, 3);
            let plan = compile(&e, &provider).expect("typecheck").plan;
            let streamed = eval_streaming(&plan, &state).expect("streaming eval");
            let reference = eval_reference(&plan, &state).expect("reference eval");
            assert_eq!(streamed, reference, "executors diverged on {e}");
        });
}

/// Aggregate plans: `GroupAggregate` is a pipeline breaker in both
/// executors, but the fused chains feeding it differ — the streaming path
/// pipelines σ/Π/ε into the grouping hash table while the reference
/// evaluator materializes every intermediate bag. Both must emit the same
/// set of groups with the same COUNT/SUM/AVG/MIN/MAX values, including
/// NULL grouping keys (which group together) and `Double` contributions
/// (which coerce SUM to Double and must agree bit-for-bit — the mixed
/// universe only emits dyadic doubles, so sums are exact).
#[test]
fn streaming_matches_reference_on_aggregate_plans() {
    let u = Universe::mixed(3);
    let provider = u.provider();
    Prop::new("streaming_matches_reference_on_aggregate_plans")
        .cases(400)
        .run(|rng| {
            let state = u.state(rng, 5);
            let e = u.agg_expr(rng, 2);
            let optimized = compile(&e, &provider).expect("typecheck").plan;
            let naive = compile_unoptimized(&e, &provider).expect("typecheck").plan;
            let streamed = eval_streaming(&optimized, &state).expect("streaming eval");
            let reference = eval_reference(&naive, &state).expect("reference eval");
            assert_eq!(streamed, reference, "executors diverged on {e}");
        });
}

/// The streaming executor over the *optimized* plan still agrees with the
/// reference evaluator over the *unoptimized* plan — fusion composes with
/// join extraction and filter pushdown without changing semantics.
#[test]
fn streaming_optimized_matches_reference_unoptimized() {
    let u = Universe::mixed(3);
    let provider = u.provider();
    Prop::new("streaming_optimized_matches_reference_unoptimized")
        .cases(192)
        .run(|rng| {
            let state = u.state(rng, 5);
            let e = u.expr(rng, 3);
            let optimized = compile(&e, &provider).expect("typecheck").plan;
            let naive = compile_unoptimized(&e, &provider).expect("typecheck").plan;
            let streamed = eval_streaming(&optimized, &state).expect("streaming eval");
            let reference = eval_reference(&naive, &state).expect("reference eval");
            assert_eq!(
                streamed, reference,
                "fused+optimized diverged from naive reference on {e}"
            );
        });
}
