//! The CDC ingest pipeline: bounded per-table queues in front of a
//! group-committing worker.
//!
//! ```text
//!  producers (any threads)             ingest worker (one thread)
//!  ┌──────────┐  submit   ┌─────────┐  drain (round-robin,
//!  │ stream 1 │──────────▸│ q:sales │──┐ ≤ max_batch events)
//!  └──────────┘           └─────────┘  │   ┌──────────────────────┐
//!  ┌──────────┐           ┌─────────┐  ├──▸│ Database::execute_   │
//!  │ stream 2 │──────────▸│ q:custs │──┘   │ batch  — full view   │
//!  └──────────┘  Block:   └─────────┘      │ maintenance per tx,  │
//!     ...        wait while full           │ ONE wal fsync at the │
//!                Shed: drop + count        │ end (group commit)   │
//!                                          └──────────────────────┘
//! ```
//!
//! **Ordering.** Each event becomes one [`Transaction`] and runs the
//! normal `execute` path — commit claims are taken and the WAL record is
//! appended while they are held, so *WAL order = serialization order*
//! exactly as for per-op execution; grouping only defers the fsync. A
//! crash inside a batch therefore loses a suffix of that batch and
//! nothing else; once [`IngestPipeline::run_worker`] has counted a batch
//! as ingested, it is durable (`execute_batch` synced before returning).
//!
//! **Backpressure.** [`Admission::Block`] parks producers on the full
//! queue's condvar — sustained overload slows sources down.
//! [`Admission::Shed`] never blocks: the event is dropped and counted
//! ([`IngestStats::shed`]), for sources that prefer loss over latency.

use crate::queue::{BoundedQueue, PushError};
use crate::{ChangeEvent, IngestError};
use dvm_core::{Database, IngestGauges};
use dvm_delta::Transaction;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What a producer does when its table's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Wait for the worker to free space (backpressure).
    Block,
    /// Drop the event and count it ([`IngestStats::shed`]).
    Shed,
}

/// Pipeline tunables.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Capacity of each per-table queue.
    pub queue_capacity: usize,
    /// Most events drained into one group-committed batch.
    pub max_batch: usize,
    /// Full-queue producer behaviour.
    pub admission: Admission,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            queue_capacity: 256,
            max_batch: 64,
            admission: Admission::Block,
        }
    }
}

/// Monotone pipeline counters (a point-in-time snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Events accepted into a queue.
    pub submitted: u64,
    /// Events committed through the database.
    pub ingested: u64,
    /// Events dropped by [`Admission::Shed`].
    pub shed: u64,
    /// Group-committed batches executed.
    pub batches: u64,
    /// Largest single batch.
    pub max_batch: u64,
    /// High-water mark of any single queue's depth.
    pub max_queue_depth: u64,
    /// WAL syncs issued (one per batch on a durable database).
    pub wal_syncs: u64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    ingested: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
    max_queue_depth: AtomicU64,
    wal_syncs: AtomicU64,
}

impl Counters {
    fn raise_max(cell: &AtomicU64, v: u64) {
        cell.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> IngestStats {
        IngestStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            ingested: self.ingested.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            wal_syncs: self.wal_syncs.load(Ordering::Relaxed),
        }
    }
}

/// State shared by producers and the worker — holds no database
/// reference, so [`Producer`] handles are `'static` and move freely
/// into producer threads.
struct Shared {
    queues: BTreeMap<String, BoundedQueue<ChangeEvent>>,
    admission: Admission,
    counters: Counters,
    /// Worker park/wake: producers set the flag and notify after every
    /// accepted event; `close` notifies too so the worker can finish.
    work_flag: Mutex<bool>,
    work_cv: Condvar,
}

impl Shared {
    fn wake_worker(&self) {
        *self.work_flag.lock().unwrap() = true;
        self.work_cv.notify_one();
    }
}

/// Cloneable producer handle: submit change events from any thread.
#[derive(Clone)]
pub struct Producer {
    shared: Arc<Shared>,
}

impl Producer {
    /// Submit one event to its table's queue. Returns `Ok(true)` when
    /// accepted, `Ok(false)` when shed by admission control (the drop is
    /// counted), [`IngestError::Closed`] after the pipeline closed, and
    /// [`IngestError::UnknownTable`] for a table the pipeline does not
    /// ingest.
    pub fn submit(&self, event: ChangeEvent) -> Result<bool, IngestError> {
        let q = self
            .shared
            .queues
            .get(&event.table)
            .ok_or_else(|| IngestError::UnknownTable(event.table.clone()))?;
        let outcome = match self.shared.admission {
            Admission::Block => q.push_blocking(event).map(|()| true),
            Admission::Shed => match q.try_push(event) {
                Ok(()) => Ok(true),
                Err(PushError::Full(_)) => {
                    self.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                    return Ok(false);
                }
                Err(e) => Err(e),
            },
        };
        match outcome {
            Ok(true) => {
                self.shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Counters::raise_max(&self.shared.counters.max_queue_depth, q.len() as u64);
                self.shared.wake_worker();
                Ok(true)
            }
            Ok(false) => unreachable!("blocking push has no shed outcome"),
            Err(PushError::Closed(_)) | Err(PushError::Full(_)) => Err(IngestError::Closed),
        }
    }

    /// Events dropped by shed-mode admission so far.
    pub fn shed_count(&self) -> u64 {
        self.shared.counters.shed.load(Ordering::Relaxed)
    }
}

/// The pipeline: owns the queues and drives the worker loop against a
/// borrowed [`Database`]. Spawn [`IngestPipeline::run_worker`] on a
/// scoped thread, feed [`Producer`]s from others, then
/// [`IngestPipeline::close`] and join.
pub struct IngestPipeline<'a> {
    db: &'a Database,
    shared: Arc<Shared>,
    max_batch: usize,
}

impl<'a> IngestPipeline<'a> {
    /// A pipeline ingesting into `tables` (each must exist in `db`).
    pub fn new(
        db: &'a Database,
        tables: &[&str],
        config: IngestConfig,
    ) -> Result<Self, IngestError> {
        let known = db.catalog().table_names();
        let mut queues = BTreeMap::new();
        for t in tables {
            if !known.iter().any(|k| k == t) {
                return Err(IngestError::UnknownTable((*t).to_string()));
            }
            queues.insert((*t).to_string(), BoundedQueue::new(config.queue_capacity));
        }
        Ok(IngestPipeline {
            db,
            shared: Arc::new(Shared {
                queues,
                admission: config.admission,
                counters: Counters::default(),
                work_flag: Mutex::new(false),
                work_cv: Condvar::new(),
            }),
            max_batch: config.max_batch.max(1),
        })
    }

    /// A new producer handle (cheap; clone freely across threads).
    pub fn producer(&self) -> Producer {
        Producer {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Close every queue: producers start failing with
    /// [`IngestError::Closed`]; the worker drains what is queued and
    /// returns.
    pub fn close(&self) {
        for q in self.shared.queues.values() {
            q.close();
        }
        self.shared.wake_worker();
    }

    /// Counter snapshot (safe mid-traffic).
    pub fn stats(&self) -> IngestStats {
        self.shared.counters.snapshot()
    }

    /// Current gauges in the shape the observability registry publishes.
    pub fn gauges(&self) -> IngestGauges {
        let s = self.stats();
        IngestGauges {
            queues: self.shared.queues.len() as u64,
            queue_depth: self.shared.queues.values().map(|q| q.len() as u64).sum(),
            max_queue_depth: s.max_queue_depth,
            submitted: s.submitted,
            ingested: s.ingested,
            shed: s.shed,
            batches: s.batches,
            max_batch: s.max_batch,
            wal_syncs: s.wal_syncs,
        }
    }

    /// One round-robin sweep over the queues, at most `max_batch` events.
    fn drain_batch(&self) -> Vec<ChangeEvent> {
        let mut batch = Vec::new();
        loop {
            let mut drained_any = false;
            for q in self.shared.queues.values() {
                if batch.len() >= self.max_batch {
                    return batch;
                }
                if let Some(ev) = q.pop() {
                    batch.push(ev);
                    drained_any = true;
                }
            }
            if !drained_any {
                return batch;
            }
        }
    }

    /// The worker loop: drain → group-commit → publish gauges, until the
    /// pipeline is closed *and* drained. Returns the final stats. Call on
    /// its own (scoped) thread; a database error aborts the loop with the
    /// events of the failed batch unacknowledged.
    pub fn run_worker(&self) -> Result<IngestStats, IngestError> {
        let durable = self.db.is_durable();
        loop {
            let batch = self.drain_batch();
            if batch.is_empty() {
                let closed = self.shared.queues.values().all(|q| q.is_closed());
                if closed {
                    break;
                }
                // Park until a producer notifies (or poll after 1ms: a
                // producer may have raced the flag before we parked).
                let g = self.shared.work_flag.lock().unwrap();
                let (mut g, _) = self
                    .shared
                    .work_cv
                    .wait_timeout(g, Duration::from_millis(1))
                    .unwrap();
                *g = false;
                continue;
            }
            let n = batch.len() as u64;
            let txs: Vec<Transaction> = batch.into_iter().map(ChangeEvent::into_transaction).collect();
            self.db.execute_batch(&txs)?;
            let c = &self.shared.counters;
            c.ingested.fetch_add(n, Ordering::Relaxed);
            c.batches.fetch_add(1, Ordering::Relaxed);
            Counters::raise_max(&c.max_batch, n);
            if durable {
                c.wal_syncs.fetch_add(1, Ordering::Relaxed);
            }
            self.db.record_series("ingest/batch_size", n as f64);
            self.db.record_series(
                "ingest/queue_depth",
                self.shared.queues.values().map(|q| q.len()).sum::<usize>() as f64,
            );
            self.db.set_ingest_gauges(self.gauges());
        }
        self.db.set_ingest_gauges(self.gauges());
        Ok(self.stats())
    }
}
