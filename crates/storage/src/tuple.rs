//! Tuples: immutable, reference-counted rows.
//!
//! A [`Tuple`] is an `Arc<[Value]>`, so cloning a tuple (which bag operations
//! do constantly) is a reference-count bump, never a deep copy.

use crate::value::Value;
use std::fmt;
use std::ops::Index;
use std::sync::Arc;

/// An immutable row of scalar values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values.into())
    }

    /// The empty (0-ary) tuple.
    pub fn empty() -> Self {
        Tuple(Arc::from(Vec::new()))
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Field at position `i`, if present.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// All fields as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Concatenate two tuples (used by the product operator).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v.into())
    }

    /// Project onto the given positions (duplicate positions allowed, order
    /// preserved — this is bag projection, so no deduplication happens here).
    ///
    /// # Panics
    /// Panics if any index is out of range; projections are validated against
    /// the schema before evaluation.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        let v: Vec<Value> = indices.iter().map(|&i| self.0[i].clone()).collect();
        Tuple(v.into())
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Convenience constructor: `tuple![1, "a", 2.5]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_access() {
        let t = tuple![1, "a", true];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::Int(1));
        assert_eq!(t[1], Value::str("a"));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn empty_tuple() {
        let t = Tuple::empty();
        assert_eq!(t.arity(), 0);
        assert_eq!(t.to_string(), "[]");
    }

    #[test]
    fn concat() {
        let a = tuple![1, 2];
        let b = tuple!["x"];
        let c = a.concat(&b);
        assert_eq!(c, tuple![1, 2, "x"]);
        assert_eq!(a.arity(), 2, "concat must not mutate operands");
    }

    #[test]
    fn project_preserves_order_and_duplicates() {
        let t = tuple![10, 20, 30];
        assert_eq!(t.project(&[2, 0]), tuple![30, 10]);
        assert_eq!(t.project(&[1, 1]), tuple![20, 20]);
        assert_eq!(t.project(&[]), Tuple::empty());
    }

    #[test]
    #[should_panic]
    fn project_out_of_range_panics() {
        tuple![1].project(&[1]);
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(tuple![1, "a"], tuple![1, "a"]);
        assert_ne!(tuple![1, "a"], tuple!["a", 1]);
    }

    #[test]
    fn display() {
        assert_eq!(tuple![1, "a"].to_string(), "[1, 'a']");
    }

    #[test]
    fn clone_is_shallow() {
        let t = tuple![1, 2, 3];
        let u = t.clone();
        assert!(Arc::ptr_eq(&t.0, &u.0));
    }
}
