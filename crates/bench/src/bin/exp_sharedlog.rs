//! **E7 — shared vs private logs** (paper Section 7, second future-work
//! question).
//!
//! The paper asks how log information should be stored so that
//! `makesafe_BL[T]`'s work is *minimal and independent of the number of
//! views supported*. With private per-view logs, every transaction pays
//! one log extension per relevant view; with the shared epoch log it pays
//! one append total, and views fold their suffix lazily at propagate time.
//!
//! Sweep the number of views over the same base tables and measure mean
//! per-transaction maintenance overhead under both storage schemes.

use dvm_bench::report::TableReport;
use dvm_core::{Database, Minimality, Scenario};
use dvm_workload::{view_expr, RetailConfig, RetailGen};

const TXS: usize = 300;

fn build(n_views: usize, shared: bool) -> (Database, RetailGen) {
    let db = Database::new();
    let mut gen = RetailGen::new(RetailConfig {
        customers: 1_000,
        items: 300,
        initial_sales: 5_000,
        high_fraction: 0.1,
        theta: 1.0,
        seed: 17,
    });
    gen.install(&db).unwrap();
    for i in 0..n_views {
        let name = format!("v{i}");
        if shared {
            db.create_view_shared(name, view_expr(), Minimality::Weak)
                .unwrap();
        } else {
            db.create_view(name, view_expr(), Scenario::Combined)
                .unwrap();
        }
    }
    (db, gen)
}

fn mean_overhead_us(n_views: usize, shared: bool) -> f64 {
    let (db, mut gen) = build(n_views, shared);
    let mut total = 0u64;
    for _ in 0..TXS {
        total += db
            .execute(&gen.mixed_batch(10, 2))
            .unwrap()
            .maintenance_nanos;
    }
    // correctness spot-check: every view refreshes to the truth
    for i in 0..n_views {
        let name = format!("v{i}");
        db.refresh(&name).unwrap();
        assert_eq!(
            db.query_view(&name).unwrap(),
            db.recompute_view(&name).unwrap()
        );
    }
    total as f64 / TXS as f64 / 1e3
}

fn main() {
    println!("=== E7: per-tx overhead vs number of views (private vs shared logs) ===\n");
    println!("{TXS} tx × (10 inserts + 2 deletes); all views = Example 1.1 over the same bases\n");

    let mut t = TableReport::new([
        "views",
        "private logs (µs/tx)",
        "shared log (µs/tx)",
        "ratio",
    ]);
    let mut first_shared = None;
    for &n in &[1usize, 4, 16, 64] {
        let private = mean_overhead_us(n, false);
        let shared = mean_overhead_us(n, true);
        first_shared.get_or_insert(shared);
        t.row([
            n.to_string(),
            format!("{private:.1}"),
            format!("{shared:.1}"),
            format!("{:.1}×", private / shared.max(0.001)),
        ]);
    }
    t.print();

    println!(
        "\npaper claim reproduced when the private-log column grows linearly with\n\
         the view count while the shared-log column stays flat — the transaction\n\
         appends once regardless of how many views will consume the change."
    );
}
