//! **E6 — weak vs strong minimality ablation** (paper Sections 4.1, 5.3).
//!
//! Claim: "One can minimize view downtime further by removing, from ∇MV
//! and ΔMV, tuples that exist in both ∇MV and ΔMV" — i.e. strong
//! minimality shrinks the differential tables on churn-heavy workloads
//! (delete + reinsert), which in turn shrinks `partial_refresh_C`'s
//! downtime. On insert-only workloads there is no overlap and the two
//! disciplines coincide.
//!
//! Setup: `INV_C` scenario; alternating churn batches (delete + reinsert
//! the same rows) and fresh inserts, propagating after every batch; then
//! one timed `partial_refresh_C`.

use dvm_bench::report::{fmt_duration, TableReport};
use dvm_bench::retail_db;
use dvm_core::{Database, Minimality, Scenario};
use std::time::Duration;

const CUSTOMERS: usize = 1_000;
const INITIAL_SALES: usize = 20_000;
const BATCHES: usize = 40;

struct Outcome {
    dt_tuples: u64,
    downtime: Duration,
}

fn run(minimality: Minimality, churn_fraction: f64) -> Outcome {
    let (db, mut gen) = retail_db(CUSTOMERS, INITIAL_SALES, Scenario::Combined, minimality, 77);
    for _ in 0..BATCHES {
        let churn = (50.0 * churn_fraction) as usize;
        let fresh = 50 - churn;
        if churn > 0 {
            db.execute(&gen.churn_batch(churn)).unwrap();
        }
        if fresh > 0 {
            db.execute(&gen.sales_batch(fresh)).unwrap();
        }
        db.propagate("V").unwrap();
    }
    let (_, dt_tuples) = db.aux_sizes("V").unwrap();
    let (_, downtime) = measure_partial(&db);
    assert_eq!(
        db.query_view("V").unwrap(),
        db.recompute_view("V").unwrap(),
        "partial refresh after full propagation must land on the truth"
    );
    Outcome {
        dt_tuples,
        downtime,
    }
}

fn measure_partial(db: &Database) -> ((), Duration) {
    let before = db
        .mv_table("V")
        .unwrap()
        .lock_metrics()
        .snapshot()
        .write_hold_nanos;
    db.partial_refresh("V").unwrap();
    let after = db
        .mv_table("V")
        .unwrap()
        .lock_metrics()
        .snapshot()
        .write_hold_nanos;
    ((), Duration::from_nanos(after - before))
}

fn main() {
    println!("=== E6: weak vs strong minimality of differential tables ===\n");
    println!(
        "{BATCHES} batches of 50 changes, propagate after each; sweep the churn\n\
         (delete+reinsert) share of each batch; then time one partial_refresh_C\n"
    );

    let mut table = TableReport::new([
        "churn share",
        "∇MV+ΔMV (weak)",
        "∇MV+ΔMV (strong)",
        "shrinkage",
        "partial refresh (weak)",
        "partial refresh (strong)",
    ]);

    for &churn in &[0.0f64, 0.25, 0.5, 0.9] {
        let weak = run(Minimality::Weak, churn);
        let strong = run(Minimality::Strong, churn);
        table.row([
            format!("{:.0}%", churn * 100.0),
            weak.dt_tuples.to_string(),
            strong.dt_tuples.to_string(),
            format!(
                "{:.0}%",
                100.0 * (1.0 - strong.dt_tuples as f64 / weak.dt_tuples.max(1) as f64)
            ),
            fmt_duration(weak.downtime),
            fmt_duration(strong.downtime),
        ]);
    }
    table.print();

    println!(
        "\npaper claim reproduced when strong minimality's differential tables\n\
         shrink with churn share (identical at 0% churn) while both disciplines\n\
         refresh to identical, correct view contents."
    );
}
