//! Segmented, checksummed write-ahead log.
//!
//! ## On-disk layout
//!
//! A WAL directory holds segment files named `wal-{start_lsn:016x}.seg`.
//! Each segment is:
//!
//! ```text
//! header:  8-byte magic "DVMWAL01" | u64 start_lsn
//! frames:  u32 payload_len | u64 lsn | u32 crc32(lsn_be ++ payload) | payload
//! ```
//!
//! All integers are big-endian. LSNs start at 1 and increase by 1 per
//! record; the checksum covers the LSN and the payload, so a frame whose
//! length field is torn fails either the bounds check or the CRC.
//!
//! ## Torn-tail repair
//!
//! On open, every sealed (non-last) segment must parse completely — a bad
//! frame there means acknowledged-durable data was lost, which is reported
//! as [`DurabilityError::CorruptWal`] rather than silently dropped. The
//! *last* segment is allowed a torn tail (the classic crash-mid-append
//! shape): the file is truncated back to the end of its last valid frame
//! and the dropped byte count is reported in the open report.
//!
//! ## Fsync batching
//!
//! [`DurabilityPolicy`] mirrors the paper's Policy-1 cadence knob:
//! `Always` fsyncs every append, `EveryN(k)` every `k` appends, `Off`
//! leaves flushing to the OS (data still reaches the file, so only an OS
//! crash — simulated by [`crate::crashfs::CrashFs::drop_unsynced`] — loses
//! it).
//!
//! ## Group commit
//!
//! Under `Always` the fsync dominates every append. A group committer
//! amortizes it: [`Wal::append_deferred`] writes a frame *without* running
//! the policy sync, and one explicit [`Wal::sync`] (or one
//! [`Wal::append_batch`]) makes the whole run of frames durable with a
//! single fsync. Frames written but not yet synced are visible in
//! [`WalStatus::unsynced_appends`]; a crash in the deferred window loses a
//! *suffix* of the batch, never a middle record, because frames land in
//! the file in append order.

use crate::crc::crc32;
use crate::error::{DurabilityError, Result};
use dvm_obs::{profiling_on, Histogram, HistogramSnapshot};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"DVMWAL01";
/// Segment header size: magic + start LSN.
pub const SEGMENT_HEADER: u64 = 16;
/// Frame header size: payload length + LSN + CRC.
pub const FRAME_HEADER: u64 = 16;
/// Upper bound on a single frame payload — guards allocation on a
/// corrupted length field.
const MAX_PAYLOAD: u32 = 1 << 30;

/// When appends are made durable (fsync'd), mirroring the paper's
/// propagation-cadence policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityPolicy {
    /// fsync after every append — no acknowledged record is ever lost.
    Always,
    /// fsync after every `k`-th unsynced append (and on checkpoint).
    EveryN(u64),
    /// Never fsync from the engine; the OS flushes when it pleases.
    Off,
}

impl fmt::Display for DurabilityPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityPolicy::Always => write!(f, "always"),
            DurabilityPolicy::EveryN(k) => write!(f, "every({k})"),
            DurabilityPolicy::Off => write!(f, "off"),
        }
    }
}

/// Tunables for a [`Wal`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Fsync cadence.
    pub policy: DurabilityPolicy,
    /// Rotate to a fresh segment once the active one reaches this size.
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            policy: DurabilityPolicy::EveryN(64),
            segment_bytes: 1 << 20,
        }
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Log sequence number (1-based, dense per append).
    pub lsn: u64,
    /// Opaque payload as handed to [`Wal::append`].
    pub payload: Vec<u8>,
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Default)]
pub struct WalOpenReport {
    /// Every valid record, in LSN order.
    pub records: Vec<WalRecord>,
    /// Bytes truncated off the tail segment (torn final frame).
    pub torn_bytes_dropped: u64,
    /// Total segment bytes scanned (including headers).
    pub bytes_scanned: u64,
}

/// A sealed (read-only) segment's metadata.
#[derive(Debug, Clone)]
struct SealedSegment {
    path: PathBuf,
    /// Byte length on disk.
    len: u64,
    /// LSN of the segment's final record.
    last_lsn: u64,
}

/// Point-in-time status of the log, for `\wal status` and tests.
#[derive(Debug, Clone)]
pub struct WalStatus {
    /// Fsync cadence in force.
    pub policy: DurabilityPolicy,
    /// Sealed segment count (active excluded).
    pub sealed_segments: usize,
    /// Bytes across sealed segments.
    pub sealed_bytes: u64,
    /// Active segment file name.
    pub active_segment: String,
    /// Active segment length.
    pub active_bytes: u64,
    /// Active-segment length at the last fsync — a crash that drops
    /// unsynced writes truncates the file back to this.
    pub active_synced_bytes: u64,
    /// LSN of the last appended record (0 = none).
    pub last_lsn: u64,
    /// LSN of the last record guaranteed on stable storage.
    pub synced_lsn: u64,
    /// Appends not yet covered by an fsync — the open group-commit
    /// window. `last_lsn - synced_lsn` counts the same records, but this
    /// counter is what the `EveryN` cadence actually drives, so tests and
    /// backpressure read it directly.
    pub unsynced_appends: u64,
}

/// An append-only, segmented, checksummed log of opaque payloads.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    options: WalOptions,
    sealed: Vec<SealedSegment>,
    active: File,
    active_path: PathBuf,
    active_len: u64,
    active_synced_len: u64,
    /// LSN the next append receives.
    next_lsn: u64,
    /// LSN of the last record known to be fsync'd.
    synced_lsn: u64,
    /// Appends since the last fsync (drives `EveryN`).
    unsynced: u64,
    /// End-to-end [`Wal::append`] latency (includes any policy-driven
    /// fsync). Samples are recorded only while profiling is enabled.
    append_hist: Histogram,
    /// [`Wal::sync`] (flush + `sync_data`) latency. A policy-driven sync
    /// inside `append` records here *and* inside the append sample.
    sync_hist: Histogram,
}

fn segment_name(start_lsn: u64) -> String {
    format!("wal-{start_lsn:016x}.seg")
}

fn encode_frame(lsn: u64, payload: &[u8]) -> Vec<u8> {
    let mut crc_input = Vec::with_capacity(8 + payload.len());
    crc_input.extend_from_slice(&lsn.to_be_bytes());
    crc_input.extend_from_slice(payload);
    let mut frame = Vec::with_capacity(FRAME_HEADER as usize + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&lsn.to_be_bytes());
    frame.extend_from_slice(&crc32(&crc_input).to_be_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Scan a segment's bytes. Returns the records decoded, the byte offset
/// one past the last **valid** frame, and — if the scan stopped early —
/// the reason the next frame was invalid.
pub fn scan_segment(bytes: &[u8]) -> (Vec<WalRecord>, u64, Option<String>) {
    let mut records = Vec::new();
    if bytes.len() < SEGMENT_HEADER as usize {
        return (records, 0, Some("segment shorter than header".into()));
    }
    if &bytes[..8] != SEGMENT_MAGIC {
        return (records, 0, Some("bad segment magic".into()));
    }
    let mut pos = SEGMENT_HEADER as usize;
    loop {
        if pos == bytes.len() {
            return (records, pos as u64, None);
        }
        if bytes.len() - pos < FRAME_HEADER as usize {
            return (records, pos as u64, Some("truncated frame header".into()));
        }
        let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let lsn = u64::from_be_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        let crc = u32::from_be_bytes(bytes[pos + 12..pos + 16].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return (records, pos as u64, Some(format!("implausible frame length {len}")));
        }
        let body_start = pos + FRAME_HEADER as usize;
        let body_end = body_start + len as usize;
        if body_end > bytes.len() {
            return (records, pos as u64, Some("truncated frame payload".into()));
        }
        let payload = &bytes[body_start..body_end];
        let mut crc_input = Vec::with_capacity(8 + payload.len());
        crc_input.extend_from_slice(&lsn.to_be_bytes());
        crc_input.extend_from_slice(payload);
        if crc32(&crc_input) != crc {
            return (records, pos as u64, Some("frame CRC mismatch".into()));
        }
        records.push(WalRecord {
            lsn,
            payload: payload.to_vec(),
        });
        pos = body_end;
    }
}

impl Wal {
    /// Open (or create) the log under `dir`, repairing a torn tail and
    /// returning every valid record for replay.
    pub fn open(dir: &Path, options: WalOptions) -> Result<(Wal, WalOpenReport)> {
        fs::create_dir_all(dir).map_err(|e| DurabilityError::io(dir, e))?;
        let mut seg_paths: Vec<PathBuf> = fs::read_dir(dir)
            .map_err(|e| DurabilityError::io(dir, e))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".seg"))
            })
            .collect();
        seg_paths.sort();

        let mut report = WalOpenReport::default();
        let mut sealed = Vec::new();
        let mut last_lsn = 0u64;
        for (i, path) in seg_paths.iter().enumerate() {
            let bytes = fs::read(path).map_err(|e| DurabilityError::io(path, e))?;
            report.bytes_scanned += bytes.len() as u64;
            let is_last = i + 1 == seg_paths.len();
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().to_string())
                .unwrap_or_default();
            let (records, valid_len, fault) = scan_segment(&bytes);
            if let Some(reason) = fault {
                if !is_last {
                    return Err(DurabilityError::CorruptWal {
                        segment: name,
                        offset: valid_len,
                        reason,
                    });
                }
                // Torn tail on the active segment: repair by truncation.
                let dropped = bytes.len() as u64 - valid_len;
                // A last segment with a broken *header* is unrepairable —
                // truncating to zero would orphan its name/start-LSN.
                if valid_len < SEGMENT_HEADER {
                    return Err(DurabilityError::CorruptWal {
                        segment: name,
                        offset: valid_len,
                        reason,
                    });
                }
                let f = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| DurabilityError::io(path, e))?;
                f.set_len(valid_len).map_err(|e| DurabilityError::io(path, e))?;
                f.sync_data().map_err(|e| DurabilityError::io(path, e))?;
                report.torn_bytes_dropped += dropped;
            }
            if let Some(r) = records.last() {
                last_lsn = last_lsn.max(r.lsn);
            }
            if !is_last {
                sealed.push(SealedSegment {
                    path: path.clone(),
                    len: bytes.len() as u64,
                    last_lsn: records.last().map(|r| r.lsn).unwrap_or(0),
                });
            }
            report.records.extend(records);
        }
        report.records.sort_by_key(|r| r.lsn);

        let next_lsn = last_lsn + 1;
        let (active_path, active, active_len) = match seg_paths.last() {
            Some(path) => {
                let len = fs::metadata(path)
                    .map_err(|e| DurabilityError::io(path, e))?
                    .len();
                let f = OpenOptions::new()
                    .append(true)
                    .open(path)
                    .map_err(|e| DurabilityError::io(path, e))?;
                (path.clone(), f, len)
            }
            None => Self::create_segment(dir, next_lsn)?,
        };

        Ok((
            Wal {
                dir: dir.to_path_buf(),
                options,
                sealed,
                active,
                active_path,
                active_len,
                // Whatever survived on disk is durable by definition.
                active_synced_len: active_len,
                next_lsn,
                synced_lsn: last_lsn,
                unsynced: 0,
                append_hist: Histogram::new(),
                sync_hist: Histogram::new(),
            },
            report,
        ))
    }

    fn create_segment(dir: &Path, start_lsn: u64) -> Result<(PathBuf, File, u64)> {
        let path = dir.join(segment_name(start_lsn));
        let mut f = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path)
            .map_err(|e| DurabilityError::io(&path, e))?;
        let mut header = Vec::with_capacity(SEGMENT_HEADER as usize);
        header.extend_from_slice(SEGMENT_MAGIC);
        header.extend_from_slice(&start_lsn.to_be_bytes());
        f.write_all(&header).map_err(|e| DurabilityError::io(&path, e))?;
        f.sync_data().map_err(|e| DurabilityError::io(&path, e))?;
        sync_dir(dir)?;
        Ok((path, f, SEGMENT_HEADER))
    }

    /// Bump the LSN counter past a checkpoint cursor, so appends after a
    /// truncated history continue the sequence instead of reusing LSNs.
    pub fn ensure_lsn_at_least(&mut self, lsn: u64) {
        if self.next_lsn <= lsn {
            self.next_lsn = lsn + 1;
            self.synced_lsn = self.synced_lsn.max(lsn);
        }
    }

    /// Write one frame (rotating first if the active segment is full)
    /// without applying the fsync policy. The building block shared by
    /// [`Wal::append`], [`Wal::append_deferred`] and [`Wal::append_batch`].
    fn write_frame(&mut self, payload: &[u8]) -> Result<u64> {
        if self.active_len >= self.options.segment_bytes {
            self.rotate()?;
        }
        let lsn = self.next_lsn;
        let frame = encode_frame(lsn, payload);
        self.active
            .write_all(&frame)
            .map_err(|e| DurabilityError::io(&self.active_path, e))?;
        self.active_len += frame.len() as u64;
        self.next_lsn += 1;
        self.unsynced += 1;
        Ok(lsn)
    }

    /// Run the policy-driven fsync decision over the current unsynced
    /// window (what [`Wal::append`] does after every frame, and
    /// [`Wal::append_batch`] once per batch).
    fn apply_policy(&mut self) -> Result<()> {
        match self.options.policy {
            DurabilityPolicy::Always => self.sync()?,
            DurabilityPolicy::EveryN(k) => {
                if self.unsynced >= k.max(1) {
                    self.sync()?;
                }
            }
            DurabilityPolicy::Off => {}
        }
        Ok(())
    }

    /// Append one record; returns its LSN. Durability depends on the
    /// policy — see [`Wal::sync`] and [`Wal::synced_lsn`].
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        let start = profiling_on().then(Instant::now);
        let lsn = self.write_frame(payload)?;
        self.apply_policy()?;
        if let Some(s) = start {
            self.append_hist.record(s.elapsed().as_nanos() as u64);
        }
        Ok(lsn)
    }

    /// Append one record *without* running the fsync policy: the frame is
    /// written (and counted in [`WalStatus::unsynced_appends`]) but stays
    /// in the group-commit window until an explicit [`Wal::sync`]. This is
    /// the per-transaction half of group commit — a committer appends each
    /// serialized transaction as it commits, then makes the whole batch
    /// durable with one fsync, amortizing the `Always` policy's dominant
    /// cost. A rotation mid-window still seals the outgoing segment with
    /// its own fsync (recovery must never see a newer segment while an
    /// older one has a torn tail).
    pub fn append_deferred(&mut self, payload: &[u8]) -> Result<u64> {
        let start = profiling_on().then(Instant::now);
        let lsn = self.write_frame(payload)?;
        if let Some(s) = start {
            self.append_hist.record(s.elapsed().as_nanos() as u64);
        }
        Ok(lsn)
    }

    /// Append every payload as consecutive frames, then apply the fsync
    /// policy **once** over the whole run: under `Always` that is one
    /// fsync for the batch instead of one per record. Returns the LSN
    /// range `(first, last)` (empty batches return `(next, next - 1)`).
    pub fn append_batch<'p>(
        &mut self,
        payloads: impl IntoIterator<Item = &'p [u8]>,
    ) -> Result<(u64, u64)> {
        let first = self.next_lsn;
        for p in payloads {
            self.append_deferred(p)?;
        }
        self.apply_policy()?;
        Ok((first, self.next_lsn - 1))
    }

    /// Fsync the active segment; every appended record is durable after
    /// this returns.
    pub fn sync(&mut self) -> Result<()> {
        let start = profiling_on().then(Instant::now);
        self.active
            .flush()
            .and_then(|()| self.active.sync_data())
            .map_err(|e| DurabilityError::io(&self.active_path, e))?;
        self.active_synced_len = self.active_len;
        self.synced_lsn = self.next_lsn - 1;
        self.unsynced = 0;
        if let Some(s) = start {
            self.sync_hist.record(s.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    fn rotate(&mut self) -> Result<()> {
        // Seal the current active segment: it must be fully durable before
        // a successor exists, or recovery could see a newer segment while
        // the older one still has an unsynced (hence torn) tail.
        self.sync()?;
        self.sealed.push(SealedSegment {
            path: self.active_path.clone(),
            len: self.active_len,
            last_lsn: self.next_lsn - 1,
        });
        let (path, file, len) = Self::create_segment(&self.dir, self.next_lsn)?;
        self.active_path = path;
        self.active = file;
        self.active_len = len;
        self.active_synced_len = len;
        Ok(())
    }

    /// Delete sealed segments whose records all have `lsn <= cutoff`.
    /// The active segment is never touched. Returns segments removed.
    pub fn truncate_through(&mut self, cutoff: u64) -> Result<usize> {
        let mut removed = 0;
        while let Some(first) = self.sealed.first() {
            if first.last_lsn == 0 || first.last_lsn > cutoff {
                break;
            }
            let seg = self.sealed.remove(0);
            fs::remove_file(&seg.path).map_err(|e| DurabilityError::io(&seg.path, e))?;
            removed += 1;
        }
        if removed > 0 {
            sync_dir(&self.dir)?;
        }
        Ok(removed)
    }

    /// LSN of the most recently appended record (0 if none yet).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// LSN of the last record guaranteed on stable storage.
    pub fn synced_lsn(&self) -> u64 {
        self.synced_lsn
    }

    /// Current status snapshot.
    pub fn status(&self) -> WalStatus {
        WalStatus {
            policy: self.options.policy,
            sealed_segments: self.sealed.len(),
            sealed_bytes: self.sealed.iter().map(|s| s.len).sum(),
            active_segment: self
                .active_path
                .file_name()
                .map(|n| n.to_string_lossy().to_string())
                .unwrap_or_default(),
            active_bytes: self.active_len,
            active_synced_bytes: self.active_synced_len,
            last_lsn: self.last_lsn(),
            synced_lsn: self.synced_lsn,
            unsynced_appends: self.unsynced,
        }
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Distribution of [`Wal::append`] latencies (profiling-gated: empty
    /// unless samples were recorded while `dvm_obs` profiling was on).
    pub fn append_latency(&self) -> HistogramSnapshot {
        self.append_hist.snapshot()
    }

    /// Distribution of [`Wal::sync`] (flush + fsync) latencies,
    /// profiling-gated like [`Wal::append_latency`].
    pub fn sync_latency(&self) -> HistogramSnapshot {
        self.sync_hist.snapshot()
    }

    /// Start a fresh measurement phase for both latency histograms.
    pub fn reset_latency(&self) {
        self.append_hist.reset();
        self.sync_hist.reset();
    }
}

/// Fsync a directory so renames/unlinks within it are durable.
pub fn sync_dir(dir: &Path) -> Result<()> {
    File::open(dir)
        .and_then(|f| f.sync_all())
        .map_err(|e| DurabilityError::io(dir, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dvm-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn opts(policy: DurabilityPolicy, segment_bytes: u64) -> WalOptions {
        WalOptions {
            policy,
            segment_bytes,
        }
    }

    #[test]
    fn append_reopen_roundtrip() {
        let dir = tmpdir("roundtrip");
        let (mut wal, rep) = Wal::open(&dir, opts(DurabilityPolicy::Always, 1 << 20)).unwrap();
        assert!(rep.records.is_empty());
        for i in 0..10u8 {
            assert_eq!(wal.append(&[i; 3]).unwrap(), i as u64 + 1);
        }
        drop(wal);
        let (wal, rep) = Wal::open(&dir, opts(DurabilityPolicy::Always, 1 << 20)).unwrap();
        assert_eq!(rep.records.len(), 10);
        assert_eq!(rep.torn_bytes_dropped, 0);
        for (i, r) in rep.records.iter().enumerate() {
            assert_eq!(r.lsn, i as u64 + 1);
            assert_eq!(r.payload, vec![i as u8; 3]);
        }
        assert_eq!(wal.last_lsn(), 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_produces_multiple_segments() {
        let dir = tmpdir("rotate");
        let (mut wal, _) = Wal::open(&dir, opts(DurabilityPolicy::Always, 64)).unwrap();
        for i in 0..20u8 {
            wal.append(&[i; 16]).unwrap();
        }
        let status = wal.status();
        assert!(status.sealed_segments >= 2, "expected rotation: {status:?}");
        drop(wal);
        let (_, rep) = Wal::open(&dir, opts(DurabilityPolicy::Always, 64)).unwrap();
        assert_eq!(rep.records.len(), 20);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmpdir("torn");
        let (mut wal, _) = Wal::open(&dir, opts(DurabilityPolicy::Always, 1 << 20)).unwrap();
        for i in 0..5u8 {
            wal.append(&[i; 8]).unwrap();
        }
        let path = dir.join(wal.status().active_segment.clone());
        let full = fs::metadata(&path).unwrap().len();
        drop(wal);
        // Tear 3 bytes off the final frame.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);
        let (wal, rep) = Wal::open(&dir, opts(DurabilityPolicy::Always, 1 << 20)).unwrap();
        assert_eq!(rep.records.len(), 4, "last record dropped");
        assert!(rep.torn_bytes_dropped > 0);
        // The torn record's LSN is reused by the next append.
        assert_eq!(wal.last_lsn(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_sealed_segment_is_a_hard_error() {
        let dir = tmpdir("sealed-corrupt");
        let (mut wal, _) = Wal::open(&dir, opts(DurabilityPolicy::Always, 64)).unwrap();
        for i in 0..20u8 {
            wal.append(&[i; 16]).unwrap();
        }
        assert!(wal.status().sealed_segments >= 1);
        drop(wal);
        let mut segs: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        segs.sort();
        // Flip a payload byte in the FIRST (sealed) segment.
        let mut bytes = fs::read(&segs[0]).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        fs::write(&segs[0], bytes).unwrap();
        let err = Wal::open(&dir, opts(DurabilityPolicy::Always, 64)).unwrap_err();
        assert!(matches!(err, DurabilityError::CorruptWal { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_off_reports_unsynced_window() {
        let dir = tmpdir("off");
        let (mut wal, _) = Wal::open(&dir, opts(DurabilityPolicy::Off, 1 << 20)).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        let st = wal.status();
        assert_eq!(st.last_lsn, 2);
        assert_eq!(st.synced_lsn, 0);
        assert!(st.active_synced_bytes < st.active_bytes);
        wal.sync().unwrap();
        let st = wal.status();
        assert_eq!(st.synced_lsn, 2);
        assert_eq!(st.active_synced_bytes, st.active_bytes);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_n_policy_syncs_in_batches() {
        let dir = tmpdir("everyn");
        let (mut wal, _) = Wal::open(&dir, opts(DurabilityPolicy::EveryN(3), 1 << 20)).unwrap();
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        assert_eq!(wal.synced_lsn(), 0);
        wal.append(b"c").unwrap(); // third append crosses the batch
        assert_eq!(wal.synced_lsn(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_through_removes_only_covered_sealed_segments() {
        let dir = tmpdir("truncate");
        let (mut wal, _) = Wal::open(&dir, opts(DurabilityPolicy::Always, 64)).unwrap();
        for i in 0..20u8 {
            wal.append(&[i; 16]).unwrap();
        }
        let sealed_before = wal.status().sealed_segments;
        assert!(sealed_before >= 2);
        // Cut below the first sealed segment's last record: nothing removable.
        assert_eq!(wal.truncate_through(0).unwrap(), 0);
        // Cut at the final LSN: all sealed segments go, active survives.
        let removed = wal.truncate_through(wal.last_lsn()).unwrap();
        assert_eq!(removed, sealed_before);
        assert_eq!(wal.status().sealed_segments, 0);
        drop(wal);
        let (wal, rep) = Wal::open(&dir, opts(DurabilityPolicy::Always, 64)).unwrap();
        assert!(!rep.records.is_empty(), "active segment survived");
        assert_eq!(wal.last_lsn(), 20);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ensure_lsn_continues_sequence_past_checkpoint() {
        let dir = tmpdir("ensure");
        let (mut wal, _) = Wal::open(&dir, opts(DurabilityPolicy::Always, 1 << 20)).unwrap();
        wal.ensure_lsn_at_least(41);
        assert_eq!(wal.append(b"next").unwrap(), 42);
        drop(wal);
        let (wal, rep) = Wal::open(&dir, opts(DurabilityPolicy::Always, 1 << 20)).unwrap();
        assert_eq!(rep.records.len(), 1);
        assert_eq!(rep.records[0].lsn, 42);
        assert_eq!(wal.last_lsn(), 42);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn latency_histograms_are_profiling_gated() {
        let dir = tmpdir("latency");
        let (mut wal, _) = Wal::open(&dir, opts(DurabilityPolicy::Always, 1 << 20)).unwrap();
        // Profiling off: appends leave both histograms empty.
        dvm_obs::set_profiling(false);
        wal.append(b"cold").unwrap();
        assert!(wal.append_latency().is_empty());
        assert!(wal.sync_latency().is_empty());
        // Profiling on: every append records, and the Always policy also
        // records one sync sample per append.
        dvm_obs::set_profiling(true);
        for _ in 0..3 {
            wal.append(b"hot").unwrap();
        }
        dvm_obs::set_profiling(false);
        let append = wal.append_latency();
        let sync = wal.sync_latency();
        assert_eq!(append.count, 3);
        assert_eq!(sync.count, 3);
        // An append sample includes its policy-driven fsync.
        assert!(append.max >= sync.p50() || sync.max == 0);
        wal.reset_latency();
        assert!(wal.append_latency().is_empty());
        assert!(wal.sync_latency().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn deferred_appends_coalesce_into_one_sync() {
        let dir = tmpdir("deferred");
        let (mut wal, _) = Wal::open(&dir, opts(DurabilityPolicy::Always, 1 << 20)).unwrap();
        for i in 0..5u8 {
            wal.append_deferred(&[i; 4]).unwrap();
        }
        let st = wal.status();
        assert_eq!(st.unsynced_appends, 5, "window open despite Always policy");
        assert_eq!(st.last_lsn, 5);
        assert_eq!(st.synced_lsn, 0);
        wal.sync().unwrap();
        let st = wal.status();
        assert_eq!(st.unsynced_appends, 0);
        assert_eq!(st.synced_lsn, 5);
        // Everything in the window survived the single fsync.
        drop(wal);
        let (_, rep) = Wal::open(&dir, opts(DurabilityPolicy::Always, 1 << 20)).unwrap();
        assert_eq!(rep.records.len(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_batch_pays_one_fsync_under_always() {
        let dir = tmpdir("batch");
        let (mut wal, _) = Wal::open(&dir, opts(DurabilityPolicy::Always, 1 << 20)).unwrap();
        let payloads: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 6]).collect();
        dvm_obs::set_profiling(true);
        let (first, last) = wal
            .append_batch(payloads.iter().map(|p| p.as_slice()))
            .unwrap();
        dvm_obs::set_profiling(false);
        assert_eq!((first, last), (1, 8));
        // One sync sample for the whole batch — the group-commit claim.
        assert_eq!(wal.sync_latency().count, 1);
        assert_eq!(wal.append_latency().count, 8);
        let st = wal.status();
        assert_eq!(st.synced_lsn, 8);
        assert_eq!(st.unsynced_appends, 0);
        wal.reset_latency();
        // Empty batch: no frames, policy still runs (no-op window).
        assert_eq!(wal.append_batch(std::iter::empty()).unwrap(), (9, 8));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_batch_rotates_and_replays_completely() {
        let dir = tmpdir("batch-rotate");
        let (mut wal, _) = Wal::open(&dir, opts(DurabilityPolicy::Always, 64)).unwrap();
        let payloads: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 16]).collect();
        wal.append_batch(payloads.iter().map(|p| p.as_slice())).unwrap();
        assert!(wal.status().sealed_segments >= 2, "batch crossed segments");
        drop(wal);
        let (_, rep) = Wal::open(&dir, opts(DurabilityPolicy::Always, 64)).unwrap();
        assert_eq!(rep.records.len(), 20);
        for (i, r) in rep.records.iter().enumerate() {
            assert_eq!(r.payload, vec![i as u8; 16]);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_reports_unsynced_appends_under_every_n() {
        let dir = tmpdir("unsynced-count");
        let (mut wal, _) = Wal::open(&dir, opts(DurabilityPolicy::EveryN(3), 1 << 20)).unwrap();
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        assert_eq!(wal.status().unsynced_appends, 2);
        wal.append(b"c").unwrap(); // crosses the cadence → sync
        assert_eq!(wal.status().unsynced_appends, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_payload_and_large_payload_roundtrip() {
        let dir = tmpdir("payloads");
        let big = vec![0xAB; 100_000];
        let (mut wal, _) = Wal::open(&dir, opts(DurabilityPolicy::Always, 1 << 20)).unwrap();
        wal.append(b"").unwrap();
        wal.append(&big).unwrap();
        drop(wal);
        let (_, rep) = Wal::open(&dir, opts(DurabilityPolicy::Always, 1 << 20)).unwrap();
        assert_eq!(rep.records[0].payload, b"");
        assert_eq!(rep.records[1].payload, big);
        let _ = fs::remove_dir_all(&dir);
    }
}
