//! **A1 — ablations of the two implementation choices DESIGN.md calls
//! out**: the φ-propagating simplifier and the hash-join optimizer.
//!
//! Neither is in the paper's pseudocode, but both are load-bearing for the
//! reproduction:
//!
//! 1. **Simplifier off** → the Figure-2 rules' verbatim output contains
//!    every unchanged-table branch (e.g. `Del(customer) = φ` products), so
//!    the "incremental" refresh evaluates dead recompute-sized subtrees.
//! 2. **Join optimizer off** → `σ_p(E × F)` materializes the cross
//!    product; the retail view becomes infeasible beyond toy sizes.
//!
//! Both ablations must agree with the optimized paths on *results* —
//! asserted here — and differ only in cost.

use dvm_algebra::eval::eval;
use dvm_algebra::infer::{compile, compile_unoptimized};
use dvm_bench::report::{fmt_duration, TableReport};
use dvm_bench::retail_db;
use dvm_core::{Minimality, Scenario};
use dvm_delta::{differentiate, differentiate_raw, PostDeltas};
use dvm_workload::view_expr;
use std::time::Instant;

fn main() {
    println!("=== A1: ablations — φ-simplification and hash-join formation ===\n");
    simplifier_ablation();
    println!();
    join_ablation();
}

/// Evaluate the post-update refresh deltas at three optimization levels:
/// raw Figure-2 output, φ-simplified, and φ-simplified with runtime
/// emptiness pruning (empty log tables — here the untouched `customer`
/// side — become φ before differentiation).
fn simplifier_ablation() {
    println!("(a) simplification & emptiness pruning of the refresh queries ▼/▲\n");
    let mut table = TableReport::new([
        "N deferred tx",
        "nodes raw/simplified/pruned",
        "eval raw",
        "eval simplified",
        "eval pruned",
        "pruned speedup",
    ]);
    for &n_tx in &[50usize, 200] {
        let (db, mut gen) = retail_db(1_000, 5_000, Scenario::BaseLog, Minimality::Weak, 4);
        for _ in 0..n_tx {
            db.execute(&gen.sales_batch(10)).unwrap();
        }
        let view = db.view("V").unwrap();
        let log = view.log().unwrap();
        let l_hat = log.past_subst();

        // production pipeline stages, swapped per the Section-4 duality
        let raw = differentiate_raw(&view_expr(), &l_hat, db.catalog()).unwrap();
        let raw = PostDeltas {
            del: raw.add,
            ins: raw.del,
        };
        let simp = differentiate(&view_expr(), &l_hat, db.catalog()).unwrap();
        let simp = PostDeltas {
            del: simp.add,
            ins: simp.del,
        };
        let pruned = dvm_delta::post_update_deltas_pruned(&view_expr(), log, db.catalog(), &|t| {
            db.catalog()
                .get(t)
                .map(|tbl| tbl.is_empty())
                .unwrap_or(false)
        })
        .unwrap();

        let ev = |d: &PostDeltas| {
            let dq = compile(&d.del, db.catalog()).unwrap();
            let iq = compile(&d.ins, db.catalog()).unwrap();
            let t0 = Instant::now();
            let del = dvm_algebra::eval_in_catalog(&dq, db.catalog()).unwrap();
            let ins = dvm_algebra::eval_in_catalog(&iq, db.catalog()).unwrap();
            (del, ins, t0.elapsed())
        };
        let (dr, ir, t_raw) = ev(&raw);
        let (ds, is_, t_simp) = ev(&simp);
        let (dp, ip, t_pruned) = ev(&pruned);
        assert_eq!(dr, ds, "simplification must not change ▼");
        assert_eq!(ir, is_, "simplification must not change ▲");
        assert_eq!(dr, dp, "pruning must not change ▼");
        assert_eq!(ir, ip, "pruning must not change ▲");

        table.row([
            n_tx.to_string(),
            format!("{}/{}/{}", raw.size(), simp.size(), pruned.size()),
            fmt_duration(t_raw),
            fmt_duration(t_simp),
            fmt_duration(t_pruned),
            format!(
                "{:.1}×",
                t_raw.as_secs_f64() / t_pruned.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    table.print();
}

/// Evaluate the view definition with and without the plan optimizer.
fn join_ablation() {
    println!("(b) hash-join formation for σ_p(E × F) (view recompute)\n");
    let mut table = TableReport::new([
        "customers",
        "optimized (hash join)",
        "naive (filter × product)",
        "speedup",
    ]);
    for &customers in &[200usize, 1_000] {
        let (db, _gen) = retail_db(
            customers,
            customers * 5,
            Scenario::BaseLog,
            Minimality::Weak,
            4,
        );
        let optimized = compile(&view_expr(), db.catalog()).unwrap();
        let naive = compile_unoptimized(&view_expr(), db.catalog()).unwrap();

        let t0 = Instant::now();
        let a = dvm_algebra::eval_in_catalog(&optimized, db.catalog()).unwrap();
        let t_opt = t0.elapsed();
        let t0 = Instant::now();
        let pinned = dvm_algebra::PinnedState::pin_for(db.catalog(), &naive.plan).unwrap();
        let b = eval(&naive.plan, &pinned).unwrap();
        let t_naive = t0.elapsed();
        assert_eq!(a, b, "ablation must not change the view value");

        table.row([
            customers.to_string(),
            fmt_duration(t_opt),
            fmt_duration(t_naive),
            format!(
                "{:.0}×",
                t_naive.as_secs_f64() / t_opt.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    table.print();
    println!(
        "\nwithout these two passes the reproduction's deferred refresh would be\n\
         no cheaper than recomputation — the paper's incremental claims hinge on\n\
         change queries touching only delta-sized inputs."
    );
}
