//! The compiled≡fresh property suite: a view's [`CompiledDeltaProgram`]
//! — derived once and cached per activity mask — must evaluate bag-equal
//! to a fresh [`post_update_deltas_pruned`] derivation at **every** step
//! of a multi-transaction workload, over random plans spanning the whole
//! algebra (joins with NULL keys, EXCEPT, NullEq selections, aggregates).
//!
//! Each round compiles one program, then walks several transactions:
//! the state advances, the log accumulates by the composition lemma, and
//! at each step both paths are evaluated against the same state. The
//! suite also checks the compile-once property: the program performs at
//! most one symbolic derivation per distinct activity mask.

use dvm_algebra::eval::eval;
use dvm_algebra::infer::compile;
use dvm_algebra::testgen::{Rng, Universe};
use dvm_algebra::Expr;
use dvm_delta::{
    compose_into, log_del_name, log_ins_name, post_update_deltas_pruned, CompiledDeltaProgram,
    LogTables,
};
use dvm_storage::{Bag, Schema};
use std::collections::{HashMap, HashSet};

fn provider_with_logs(u: &Universe) -> HashMap<String, Schema> {
    let mut p = u.provider();
    for t in &u.tables {
        p.insert(log_del_name(t), u.schema.clone());
        p.insert(log_ins_name(t), u.schema.clone());
    }
    p
}

/// Run `rounds` random programs of `steps` transactions each, checking
/// compiled-vs-fresh equality after every transaction.
fn check_rounds(
    u: &Universe,
    rng: &mut Rng,
    rounds: usize,
    steps: usize,
    gen: impl Fn(&Universe, &mut Rng) -> Expr,
) {
    let provider = provider_with_logs(u);
    for round in 0..rounds {
        let q = gen(u, rng);
        let mut state = u.state(rng, 4);
        let mut log = LogTables::new();
        for t in &u.tables {
            log.add(t.clone());
            state.insert(log_del_name(t), Bag::new());
            state.insert(log_ins_name(t), Bag::new());
        }
        let program = CompiledDeltaProgram::compile(&q, &log, &provider).unwrap();
        let mut masks_seen: HashSet<u128> = HashSet::new();

        for step in 0..steps {
            // One weakly minimal transaction against the current state:
            // apply it to the bases and fold it into the log (composition
            // lemma — exactly what makesafe_BL does).
            let f = u.weakly_minimal_subst(rng, &state);
            state = u.apply_subst_to_state(&f, &state);
            for t in &u.tables {
                let (d, a) = match f.get(t) {
                    Some((Expr::Literal { bag: d, .. }, Expr::Literal { bag: a, .. })) => {
                        (d.clone(), a.clone())
                    }
                    None => (Bag::new(), Bag::new()),
                    _ => unreachable!("testgen substitutions carry literal deltas"),
                };
                let mut dl = state.remove(&log_del_name(t)).unwrap();
                let mut il = state.remove(&log_ins_name(t)).unwrap();
                compose_into(&mut dl, &mut il, &d, &a);
                state.insert(log_del_name(t), dl);
                state.insert(log_ins_name(t), il);
            }

            let is_empty = |t: &str| state.get(t).map(|b| b.is_empty()).unwrap_or(false);
            let fresh = post_update_deltas_pruned(&q, &log, &provider, &is_empty).unwrap();
            let ev = |e: &Expr| eval(&compile(e, &provider).unwrap().plan, &state).unwrap();
            let mask = program.activity_mask(&is_empty);
            if mask == 0 {
                assert!(
                    ev(&fresh.del).is_empty() && ev(&fresh.ins).is_empty(),
                    "mask 0 must mean the fresh deltas are φ (q={q})"
                );
                continue;
            }
            masks_seen.insert(mask);
            let (v, _) = program.variant(mask, &provider).unwrap();
            assert_eq!(
                eval(&v.del.plan, &state).unwrap(),
                ev(&fresh.del),
                "▼ diverged: q={q} round={round} step={step}"
            );
            assert_eq!(
                eval(&v.ins.plan, &state).unwrap(),
                ev(&fresh.ins),
                "▲ diverged: q={q} round={round} step={step}"
            );
        }

        // Compile-once: one derivation per distinct mask, plus the eager
        // all-active variant.
        let s = program.stats();
        assert!(
            s.compiles <= masks_seen.len() as u64 + 1,
            "{} compiles for {} distinct masks (q={q})",
            s.compiles,
            masks_seen.len()
        );
    }
}

/// Random relational plans (select/project/join/union/monus/except/...)
/// over the all-Int universe.
#[test]
fn compiled_matches_fresh_on_random_plans() {
    let u = Universe::small(3);
    let mut rng = Rng::new(0xD1FF);
    check_rounds(&u, &mut rng, 30, 4, |u, rng| u.expr(rng, 3));
}

/// The mixed universe: NULLs (NULL join keys, NullEq predicates) and
/// Doubles flow through EXCEPT/joins — the operators where compiled and
/// per-call derivations could most plausibly diverge.
#[test]
fn compiled_matches_fresh_with_nulls_and_doubles() {
    let u = Universe::mixed(3);
    let mut rng = Rng::new(0x9AB5);
    check_rounds(&u, &mut rng, 30, 4, |u, rng| u.expr(rng, 3));
}

/// Aggregate views (GROUP BY over the five functions + COUNT(*)): the
/// differentiation of γ is the most intricate rule, so it gets its own
/// pass with deeper inner plans.
#[test]
fn compiled_matches_fresh_on_aggregates() {
    let u = Universe::mixed(3);
    let mut rng = Rng::new(0xA66);
    check_rounds(&u, &mut rng, 20, 4, |u, rng| u.agg_expr(rng, 2));
}
