//! Per-view maintenance metrics.
//!
//! Three quantities matter to the paper's evaluation story:
//!
//! * **per-transaction overhead** — extra work `makesafe_*[T]` adds on top
//!   of the bare transaction `T` (Section 1: must be minimized for update
//!   transactions);
//! * **view downtime** — wall time the refresh holds the view table's write
//!   lock (Section 1.1) — tracked by the table's
//!   [`dvm_storage::lock::LockMetrics`], mirrored here per operation kind;
//! * **propagate work** — background cost of `propagate_C`, which is
//!   *neither* downtime nor per-transaction overhead (that displacement is
//!   the whole point of the `INV_C` scenario).
//!
//! Each quantity is backed by a [`dvm_obs::Histogram`], so besides the
//! totals/means of [`ViewMetricsSnapshot`] (kept for compatibility with
//! the experiment binaries) the full latency distribution is available via
//! [`ViewMetrics::histograms`] — the paper's policies are about tails, and
//! means hide them.
//!
//! ### Reset semantics
//!
//! [`ViewMetrics::reset`] used to `store(0)` six counters independently; a
//! concurrent `record_*` interleaving with the stores could leave a
//! count/nanos pair inconsistent forever (count=1, nanos=0 → skewed means
//! for the rest of the run). The histograms reset by snapshot-and-subtract
//! instead (see [`dvm_obs::Histogram::reset`]): monotone cells are never
//! zeroed, so the residual skew is bounded by one *in-flight* sample per
//! recording thread and vanishes once those recordings land — verified by
//! `concurrent_reset_never_desynchronizes` below.

use dvm_obs::{Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone nanosecond/count accumulators for one view, with full latency
/// distributions per operation kind.
#[derive(Debug, Default)]
pub struct ViewMetrics {
    makesafe: Histogram,
    propagate: Histogram,
    refresh: Histogram,
    /// Completion stamp of the most recent refresh/partial-refresh, as
    /// nanoseconds on the owning database's monotonic clock, +1 so that 0
    /// means "never refreshed".
    last_refresh_stamp: AtomicU64,
}

/// Point-in-time copy of [`ViewMetrics`] totals (means only — see
/// [`ViewMetrics::histograms`] for distributions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ViewMetricsSnapshot {
    /// Total time spent in `makesafe_*[T]` hooks (per-transaction overhead).
    pub makesafe_nanos: u64,
    /// Number of transactions that paid maintenance overhead.
    pub makesafe_count: u64,
    /// Total time spent in `propagate_C`.
    pub propagate_nanos: u64,
    /// Number of propagate operations.
    pub propagate_count: u64,
    /// Total time spent in refresh transactions (`refresh_*` /
    /// `partial_refresh_C`), including incremental-query evaluation.
    pub refresh_nanos: u64,
    /// Number of refresh operations.
    pub refresh_count: u64,
}

/// Latency distributions for one view's maintenance operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewHistograms {
    /// Per-transaction `makesafe_*[T]` hook times.
    pub makesafe: HistogramSnapshot,
    /// `propagate_C` times.
    pub propagate: HistogramSnapshot,
    /// `refresh_*` / `partial_refresh_C` times.
    pub refresh: HistogramSnapshot,
}

impl ViewMetricsSnapshot {
    /// Mean per-transaction overhead, nanoseconds.
    pub fn mean_makesafe_nanos(&self) -> f64 {
        mean(self.makesafe_nanos, self.makesafe_count)
    }

    /// Mean refresh time, nanoseconds.
    pub fn mean_refresh_nanos(&self) -> f64 {
        mean(self.refresh_nanos, self.refresh_count)
    }

    /// Mean propagate time, nanoseconds.
    pub fn mean_propagate_nanos(&self) -> f64 {
        mean(self.propagate_nanos, self.propagate_count)
    }
}

fn mean(total: u64, count: u64) -> f64 {
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

impl ViewMetrics {
    /// Record one makesafe hook taking `nanos`.
    pub fn record_makesafe(&self, nanos: u64) {
        self.makesafe.record(nanos);
    }

    /// Record one propagate taking `nanos`.
    pub fn record_propagate(&self, nanos: u64) {
        self.propagate.record(nanos);
    }

    /// Record one refresh taking `nanos`.
    pub fn record_refresh(&self, nanos: u64) {
        self.refresh.record(nanos);
    }

    /// Stamp the completion of a refresh (`now_nanos` = nanoseconds on the
    /// owning database's monotonic clock). Feeds the `nanos_since_refresh`
    /// staleness gauge.
    pub fn mark_refreshed(&self, now_nanos: u64) {
        self.last_refresh_stamp
            .store(now_nanos.saturating_add(1), Ordering::Relaxed);
    }

    /// When the view last completed a refresh, on the owning database's
    /// monotonic clock; `None` if it never has.
    pub fn last_refresh_nanos(&self) -> Option<u64> {
        match self.last_refresh_stamp.load(Ordering::Relaxed) {
            0 => None,
            stamp => Some(stamp - 1),
        }
    }

    /// Copy current totals.
    pub fn snapshot(&self) -> ViewMetricsSnapshot {
        let (m, p, r) = (
            self.makesafe.snapshot(),
            self.propagate.snapshot(),
            self.refresh.snapshot(),
        );
        ViewMetricsSnapshot {
            makesafe_nanos: m.sum,
            makesafe_count: m.count,
            propagate_nanos: p.sum,
            propagate_count: p.count,
            refresh_nanos: r.sum,
            refresh_count: r.count,
        }
    }

    /// Copy the full latency distributions.
    pub fn histograms(&self) -> ViewHistograms {
        ViewHistograms {
            makesafe: self.makesafe.snapshot(),
            propagate: self.propagate.snapshot(),
            refresh: self.refresh.snapshot(),
        }
    }

    /// Start a new measurement phase (snapshot-and-subtract; see the
    /// module docs — never tears a count/nanos pair).
    pub fn reset(&self) {
        self.makesafe.reset();
        self.propagate.reset();
        self.refresh.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_means() {
        let m = ViewMetrics::default();
        m.record_makesafe(100);
        m.record_makesafe(300);
        m.record_refresh(1000);
        m.record_propagate(50);
        let s = m.snapshot();
        assert_eq!(s.makesafe_count, 2);
        assert_eq!(s.mean_makesafe_nanos(), 200.0);
        assert_eq!(s.mean_refresh_nanos(), 1000.0);
        assert_eq!(s.mean_propagate_nanos(), 50.0);
    }

    #[test]
    fn empty_means_are_zero() {
        let s = ViewMetricsSnapshot::default();
        assert_eq!(s.mean_makesafe_nanos(), 0.0);
        assert_eq!(s.mean_refresh_nanos(), 0.0);
    }

    #[test]
    fn reset() {
        let m = ViewMetrics::default();
        m.record_refresh(5);
        m.reset();
        assert_eq!(m.snapshot(), ViewMetricsSnapshot::default());
        m.record_refresh(7);
        assert_eq!(m.snapshot().refresh_nanos, 7);
    }

    #[test]
    fn histograms_expose_percentiles() {
        let m = ViewMetrics::default();
        for i in 1..=100u64 {
            m.record_makesafe(i * 100);
        }
        let h = m.histograms();
        assert_eq!(h.makesafe.count, 100);
        assert!(h.makesafe.p95() >= h.makesafe.p50());
        assert_eq!(h.makesafe.max, 10_000);
        assert!(h.propagate.is_empty() && h.refresh.is_empty());
    }

    #[test]
    fn refresh_stamp_round_trips() {
        let m = ViewMetrics::default();
        assert_eq!(m.last_refresh_nanos(), None);
        m.mark_refreshed(0);
        assert_eq!(m.last_refresh_nanos(), Some(0));
        m.mark_refreshed(12345);
        assert_eq!(m.last_refresh_nanos(), Some(12345));
    }

    #[test]
    fn concurrent_reset_never_desynchronizes() {
        // Regression for the torn-reset bug: six independent store(0)s
        // could interleave with a concurrent record_* and leave a
        // permanently inconsistent count/nanos pair (count=1, nanos=0).
        // With snapshot-subtract, any skew is bounded by in-flight samples
        // and is exactly zero once recording stops.
        const THREADS: u64 = 4;
        const V: u64 = 500;
        let m = ViewMetrics::default();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..2_000 {
                        m.record_makesafe(V);
                    }
                });
            }
            for _ in 0..40 {
                m.reset();
                let snap = m.snapshot();
                assert!(
                    snap.makesafe_nanos.abs_diff(snap.makesafe_count * V) <= THREADS * V,
                    "torn beyond in-flight tolerance: {snap:?}"
                );
                std::thread::yield_now();
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.makesafe_nanos, snap.makesafe_count * V);
    }
}
