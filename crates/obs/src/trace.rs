//! A bounded span/event tracer: a ring-buffer journal of structured
//! maintenance events with nesting and per-thread ids.
//!
//! The tracer is **off by default**. Disabled, [`Tracer::span`] and
//! [`Tracer::event`] cost one relaxed atomic load and a branch — cheap
//! enough to leave in every hot path (the CI overhead guard holds the
//! instrumented execute path within 5% of the pre-instrumentation
//! baseline). Enabled, events go into a fixed-capacity ring under a plain
//! mutex; when the ring is full the oldest events are evicted (the count
//! of evictions is reported by [`Tracer::dropped`]).
//!
//! Spans record on **close** (guard drop), carrying their duration; a
//! child span therefore appears before its parent in the journal, and the
//! `depth` field reconstructs the nesting. Instantaneous events
//! ([`Tracer::event`]) record in place.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::table::fmt_nanos;

/// The event taxonomy (what the engine instruments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// One `Database::execute` (maintenance hooks + base apply).
    TxnExecute,
    /// One `makesafe_*[T]` hook for one view.
    Makesafe,
    /// One `propagate_C`.
    Propagate,
    /// One full `refresh_*`.
    Refresh,
    /// One `partial_refresh_C`.
    PartialRefresh,
    /// Time spent waiting to acquire commit claims or data locks.
    LockWait,
    /// One shared-log vacuum.
    Vacuum,
    /// A policy-driver decision (why a view did or didn't propagate).
    Policy,
    /// Crash recovery: checkpoint load and WAL replay on `Database::open`.
    Recovery,
    /// A durable checkpoint cut (quiesce, encode, atomic save).
    Checkpoint,
}

impl EventKind {
    /// Snake-case label used in rendered journals and JSON.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::TxnExecute => "txn_execute",
            EventKind::Makesafe => "makesafe",
            EventKind::Propagate => "propagate",
            EventKind::Refresh => "refresh",
            EventKind::PartialRefresh => "partial_refresh",
            EventKind::LockWait => "lock_wait",
            EventKind::Vacuum => "vacuum",
            EventKind::Policy => "policy",
            EventKind::Recovery => "recovery",
            EventKind::Checkpoint => "checkpoint",
        }
    }
}

/// One journaled event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone sequence number (assigned at record time).
    pub seq: u64,
    /// Small per-thread id (threads are numbered in order of first use).
    pub thread: u32,
    /// Span nesting depth at record time (0 = top level).
    pub depth: u16,
    /// What happened.
    pub kind: EventKind,
    /// What it happened to (view name, table set, decision detail…).
    pub target: String,
    /// Nanoseconds since the tracer was created.
    pub start_nanos: u64,
    /// Span duration; `None` for instantaneous events.
    pub duration_nanos: Option<u64>,
}

impl TraceEvent {
    /// One human-readable journal line.
    pub fn render(&self) -> String {
        let indent = "  ".repeat(self.depth as usize);
        let dur = match self.duration_nanos {
            Some(d) => format!(" ({})", fmt_nanos(d as f64)),
            None => String::new(),
        };
        format!(
            "#{:<6} t{:<2} +{:<10} {indent}{} {}{dur}",
            self.seq,
            self.thread,
            fmt_nanos(self.start_nanos as f64),
            self.kind.label(),
            self.target,
        )
    }
}

static NEXT_THREAD_ID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static THREAD_ID: u32 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    static DEPTH: std::cell::Cell<u16> = const { std::cell::Cell::new(0) };
}

fn thread_id() -> u32 {
    THREAD_ID.with(|id| *id)
}

/// The bounded event journal. See the module docs.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    started: Instant,
    seq: AtomicU64,
    dropped: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<TraceEvent>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new(4096)
    }
}

impl Tracer {
    /// A disabled tracer retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            started: Instant::now(),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Whether events are currently being journaled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn journaling on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard all retained events (the sequence counter keeps running).
    pub fn clear(&self) {
        self.ring.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }

    /// The most recent `n` events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TraceEvent> {
        let ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        ring.iter().skip(ring.len().saturating_sub(n)).cloned().collect()
    }

    /// Record an instantaneous event (no-op while disabled).
    pub fn event(&self, kind: EventKind, target: &str, duration_nanos: Option<u64>) {
        if !self.is_enabled() {
            return;
        }
        self.push(kind, target.to_string(), DEPTH.with(|d| d.get()), duration_nanos);
    }

    /// Open a span; its duration is journaled when the guard drops. While
    /// disabled this allocates nothing and the guard's drop is a no-op.
    pub fn span(&self, kind: EventKind, target: &str) -> Span<'_> {
        if !self.is_enabled() {
            return Span { data: None };
        }
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth.saturating_add(1));
            depth
        });
        Span {
            data: Some(SpanData {
                tracer: self,
                kind,
                target: target.to_string(),
                depth,
                opened: Instant::now(),
            }),
        }
    }

    fn push(&self, kind: EventKind, target: String, depth: u16, duration_nanos: Option<u64>) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = TraceEvent {
            seq,
            thread: thread_id(),
            depth,
            kind,
            target,
            start_nanos: self.started.elapsed().as_nanos() as u64,
            duration_nanos,
        };
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }
}

struct SpanData<'a> {
    tracer: &'a Tracer,
    kind: EventKind,
    target: String,
    depth: u16,
    opened: Instant,
}

/// Guard returned by [`Tracer::span`]; journals the span on drop.
pub struct Span<'a> {
    data: Option<SpanData<'a>>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(data) = self.data.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            let nanos = data.opened.elapsed().as_nanos() as u64;
            data.tracer
                .push(data.kind, data.target, data.depth, Some(nanos));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(8);
        t.event(EventKind::Refresh, "v", None);
        {
            let _s = t.span(EventKind::TxnExecute, "tx");
        }
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn spans_nest_and_record_on_close() {
        let t = Tracer::new(8);
        t.set_enabled(true);
        {
            let _outer = t.span(EventKind::TxnExecute, "tx");
            let _inner = t.span(EventKind::Makesafe, "v");
        }
        let events = t.recent(10);
        assert_eq!(events.len(), 2);
        // inner closes first
        assert_eq!(events[0].kind, EventKind::Makesafe);
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].kind, EventKind::TxnExecute);
        assert_eq!(events[1].depth, 0);
        assert!(events.iter().all(|e| e.duration_nanos.is_some()));
        // depth restored for subsequent events
        t.event(EventKind::Vacuum, "", None);
        assert_eq!(t.recent(1)[0].depth, 0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let t = Tracer::new(3);
        t.set_enabled(true);
        for i in 0..5 {
            t.event(EventKind::Policy, &format!("e{i}"), None);
        }
        let events = t.recent(10);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].target, "e2");
        assert_eq!(events[2].target, "e4");
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn recent_limits_and_orders() {
        let t = Tracer::new(16);
        t.set_enabled(true);
        for i in 0..6 {
            t.event(EventKind::Refresh, &format!("v{i}"), Some(i));
        }
        let last2 = t.recent(2);
        assert_eq!(last2.len(), 2);
        assert_eq!(last2[0].target, "v4");
        assert_eq!(last2[1].target, "v5");
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn per_thread_ids_differ() {
        let t = Tracer::new(64);
        t.set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| t.event(EventKind::Makesafe, "v", None));
            }
        });
        let events = t.recent(10);
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].thread, events[1].thread);
    }

    #[test]
    fn render_shows_kind_target_duration() {
        let e = TraceEvent {
            seq: 7,
            thread: 1,
            depth: 1,
            kind: EventKind::LockWait,
            target: "execute claims".into(),
            start_nanos: 1_500,
            duration_nanos: Some(2_000),
        };
        let line = e.render();
        assert!(line.contains("lock_wait execute claims"), "{line}");
        assert!(line.contains("2.0µs"), "{line}");
        assert!(line.contains("#7"), "{line}");
    }

    #[test]
    fn labels_cover_taxonomy() {
        for (k, l) in [
            (EventKind::TxnExecute, "txn_execute"),
            (EventKind::Makesafe, "makesafe"),
            (EventKind::Propagate, "propagate"),
            (EventKind::Refresh, "refresh"),
            (EventKind::PartialRefresh, "partial_refresh"),
            (EventKind::LockWait, "lock_wait"),
            (EventKind::Vacuum, "vacuum"),
            (EventKind::Policy, "policy"),
        ] {
            assert_eq!(k.label(), l);
        }
    }
}
