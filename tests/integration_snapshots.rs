//! Snapshots as time travel: `PAST(L,Q)` evaluated in the current state
//! must equal `Q` evaluated against a snapshot taken when the view was
//! last consistent — the paper's core semantic identity — plus snapshot
//! persistence round-trips of full maintenance state.

use dvm::workload::{view_expr, RetailConfig, RetailGen};
use dvm::{Database, Scenario};
use dvm_algebra::eval::eval;
use dvm_algebra::infer::compile;
use dvm_storage::Snapshot;

fn build() -> (Database, RetailGen) {
    let db = Database::new();
    let mut gen = RetailGen::new(RetailConfig {
        customers: 150,
        items: 60,
        initial_sales: 800,
        high_fraction: 0.2,
        theta: 1.0,
        seed: 77,
    });
    gen.install(&db).unwrap();
    (db, gen)
}

#[test]
fn past_query_equals_query_at_snapshot() {
    let (db, mut gen) = build();
    db.create_view("v", view_expr(), Scenario::BaseLog).unwrap();
    // s_p: the state at the last point of consistency
    let s_p = db.catalog().snapshot();

    for _ in 0..10 {
        db.execute(&gen.mixed_batch(10, 3)).unwrap();
    }

    // PAST(L, Q) evaluated NOW…
    let view = db.view("v").unwrap();
    let past_now = db.eval(&view.past_query()).unwrap();
    // …equals Q evaluated at s_p.
    let q = compile(&view_expr(), db.catalog()).unwrap();
    let q_at_sp = eval(&q.plan, &s_p).unwrap();
    assert_eq!(past_now, q_at_sp, "PAST(L,Q)(s_c) = Q(s_p)");
    // and both equal the stale materialization
    assert_eq!(past_now, db.query_view("v").unwrap());
}

#[test]
fn snapshot_restore_rewinds_maintenance_state() {
    let (db, mut gen) = build();
    db.create_view("v", view_expr(), Scenario::Combined)
        .unwrap();
    db.execute(&gen.sales_batch(20)).unwrap();
    db.propagate("v").unwrap();

    let checkpoint = db.catalog().snapshot();
    let invariant_at_checkpoint = db.check_invariant("v").unwrap();
    assert!(invariant_at_checkpoint.ok());

    // diverge: more transactions, a partial refresh
    db.execute(&gen.mixed_batch(15, 5)).unwrap();
    db.partial_refresh("v").unwrap();
    assert!(db.check_invariant("v").unwrap().ok());

    // rewind everything (base + MV + logs + differential tables)
    db.catalog().restore(&checkpoint).unwrap();
    assert!(
        db.check_invariant("v").unwrap().ok(),
        "restored state satisfies INV_C again"
    );
    assert_eq!(db.catalog().snapshot(), checkpoint);
}

#[test]
fn snapshot_binary_roundtrip_of_full_database() {
    let (db, mut gen) = build();
    db.create_view("v", view_expr(), Scenario::Combined)
        .unwrap();
    db.execute(&gen.mixed_batch(25, 5)).unwrap();
    db.propagate("v").unwrap();
    db.execute(&gen.sales_batch(10)).unwrap();

    let snap = db.catalog().snapshot();
    let bytes = snap.encode();
    let decoded = Snapshot::decode(bytes).unwrap();
    assert_eq!(decoded, snap);

    // restoring the decoded snapshot into a fresh, identically-shaped
    // database reproduces the exact maintenance state
    let (db2, _gen2) = build();
    db2.create_view("v", view_expr(), Scenario::Combined)
        .unwrap();
    db2.catalog().restore(&decoded).unwrap();
    assert_eq!(db2.catalog().snapshot(), snap);
    assert!(db2.check_invariant("v").unwrap().ok());
    db2.refresh("v").unwrap();
    assert_eq!(
        db2.query_view("v").unwrap(),
        db2.recompute_view("v").unwrap()
    );
}

#[test]
fn changed_tables_identifies_touched_state() {
    let (db, mut gen) = build();
    db.create_view("v", view_expr(), Scenario::BaseLog).unwrap();
    let before = db.catalog().snapshot();
    db.execute(&gen.sales_batch(5)).unwrap();
    let after = db.catalog().snapshot();
    let changed = before.changed_tables(&after);
    assert!(changed.contains(&"sales".to_string()));
    assert!(changed.contains(&"__v_log_ins_sales".to_string()));
    assert!(
        !changed.contains(&"customer".to_string()),
        "untouched table not reported: {changed:?}"
    );
    assert!(!changed.contains(&"__mv_v".to_string()));
}
