//! Lowering: SQL AST → bag algebra.
//!
//! `SELECT cols FROM t1 a1, …, tn an WHERE p` becomes
//! `Π_cols(σ_p((t1 AS a1) × … × (tn AS an)))`; `DISTINCT` adds `ε`;
//! compound operators map onto `⊎`, `∸`, `EXCEPT`, `min` — exactly the
//! translation the paper sketches for Example 1.1.

use crate::ast::*;
use crate::error::{Result, SqlError};
use dvm_algebra::predicate::{CmpOp, ColRef, Operand, Predicate};
use dvm_algebra::{AggCall, AggFunc, Expr};
use dvm_storage::{Schema, Tuple};

/// A lowered statement, ready for an engine to act on.
#[derive(Debug, Clone, PartialEq)]
pub enum LoweredStatement {
    /// Create a base table.
    CreateTable {
        /// Table name.
        name: String,
        /// Column schema.
        schema: Schema,
    },
    /// Define a view: `(name, defining query)`.
    CreateView {
        /// View name.
        name: String,
        /// Defining bag-algebra query.
        definition: Expr,
    },
    /// Evaluate a query.
    Query(Expr),
    /// Insert literal rows into a table.
    Insert {
        /// Target table.
        table: String,
        /// Tuples to insert (duplicates meaningful).
        rows: Vec<Tuple>,
    },
    /// Delete the rows satisfying `selection` from `table`; the engine
    /// evaluates `selection` to obtain the delete bag.
    Delete {
        /// Target table.
        table: String,
        /// `σ_p(table)` (or the whole table when no predicate was given).
        selection: Expr,
    },
}

/// Lower a parsed statement.
pub fn lower_statement(stmt: &Statement) -> Result<LoweredStatement> {
    Ok(match stmt {
        Statement::CreateTable { name, columns } => {
            let pairs: Vec<(&str, dvm_storage::ValueType)> =
                columns.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            let schema = Schema::new(
                pairs
                    .iter()
                    .map(|(n, t)| dvm_storage::Column::new(*n, *t))
                    .collect(),
            )
            .map_err(|e| SqlError::Unsupported(e.to_string()))?;
            LoweredStatement::CreateTable {
                name: name.clone(),
                schema,
            }
        }
        Statement::CreateView { name, query } => LoweredStatement::CreateView {
            name: name.clone(),
            definition: lower_query(query)?,
        },
        Statement::Select(q) => LoweredStatement::Query(lower_query(q)?),
        Statement::Insert { table, rows } => LoweredStatement::Insert {
            table: table.clone(),
            rows: rows.iter().map(|r| Tuple::new(r.clone())).collect(),
        },
        Statement::Delete { table, predicate } => {
            let base = Expr::table(table.clone());
            let selection = match predicate {
                Some(p) => base.select(lower_predicate(p)),
                None => base,
            };
            LoweredStatement::Delete {
                table: table.clone(),
                selection,
            }
        }
    })
}

/// Lower a query to a bag-algebra expression.
pub fn lower_query(q: &Query) -> Result<Expr> {
    Ok(match q {
        Query::Select(block) => lower_select(block)?,
        Query::UnionAll(a, b) => lower_query(a)?.union(lower_query(b)?),
        Query::ExceptAll(a, b) => lower_query(a)?.monus(lower_query(b)?),
        Query::Except(a, b) => lower_query(a)?.except(lower_query(b)?),
        Query::IntersectAll(a, b) => lower_query(a)?.min_intersect(lower_query(b)?),
    })
}

fn lower_select(block: &SelectBlock) -> Result<Expr> {
    if block.from.is_empty() {
        return Err(SqlError::Unsupported("FROM list must not be empty".into()));
    }
    let mut from_iter = block.from.iter();
    let mut expr = lower_table_ref(from_iter.next().expect("nonempty"));
    for tr in from_iter {
        expr = expr.product(lower_table_ref(tr));
    }
    if let Some(p) = &block.predicate {
        expr = expr.select(lower_predicate(p));
    }
    let has_agg = block
        .columns
        .iter()
        .flatten()
        .any(|item| matches!(item, SelectItem::Agg { .. }));
    if has_agg || !block.group_by.is_empty() {
        expr = lower_aggregate(block, expr)?;
    } else if let Some(items) = &block.columns {
        let cols = items
            .iter()
            .map(|item| match item {
                SelectItem::Col(c) => lower_colref(c),
                SelectItem::Agg { .. } => unreachable!("no aggregates on this path"),
            })
            .collect();
        expr = expr.project_refs(cols);
    }
    if block.distinct {
        expr = expr.dedup();
    }
    Ok(expr)
}

/// Lower a grouped (or globally aggregated) select list onto `γ`.
///
/// The operator emits grouping keys first (in `GROUP BY` order), then one
/// column per aggregate; when the select list interleaves keys and
/// aggregates in a different order — or omits some keys — an outer `Π`
/// restores the select-list shape. Note `γ` emits one row *per non-empty
/// group*, so a global aggregate (`GROUP BY` absent, keys `[]`) over an
/// empty input yields an empty bag, not SQL's single NULL/zero row — the
/// deferred-maintenance invariants need `G(φ) = φ`.
fn lower_aggregate(block: &SelectBlock, input: Expr) -> Result<Expr> {
    let Some(items) = &block.columns else {
        return Err(SqlError::Unsupported(
            "SELECT * cannot be combined with GROUP BY or aggregates".into(),
        ));
    };
    let keys: Vec<ColRef> = block.group_by.iter().map(lower_colref).collect();
    let mut aggs = Vec::new();
    // The select-list order, as names in the operator's output schema.
    let mut out_order = Vec::with_capacity(items.len());
    for item in items {
        match item {
            SelectItem::Col(c) => {
                if !block.group_by.contains(c) {
                    return Err(SqlError::Unsupported(format!(
                        "column '{}' must appear in GROUP BY or inside an aggregate",
                        render_colref(c)
                    )));
                }
                // γ emits key columns unqualified, like projection.
                out_order.push(ColRef::new(c.name.clone()));
            }
            SelectItem::Agg { func, arg } => {
                let call = match arg {
                    None => AggCall::count_star(),
                    Some(c) => AggCall::new(lower_agg_func(*func), lower_colref(c)),
                };
                out_order.push(ColRef::new(call.output_name()));
                aggs.push(call);
            }
        }
    }
    let natural: Vec<ColRef> = keys
        .iter()
        .map(|k| ColRef::new(k.name.clone()))
        .chain(aggs.iter().map(|a| ColRef::new(a.output_name())))
        .collect();
    let expr = input.group_aggregate(keys, aggs);
    Ok(if out_order == natural {
        expr
    } else {
        expr.project_refs(out_order)
    })
}

fn render_colref(c: &ColumnRef) -> String {
    match &c.qualifier {
        Some(q) => format!("{q}.{}", c.name),
        None => c.name.clone(),
    }
}

fn lower_agg_func(f: AggFuncAst) -> AggFunc {
    match f {
        AggFuncAst::Count => AggFunc::Count,
        AggFuncAst::Sum => AggFunc::Sum,
        AggFuncAst::Avg => AggFunc::Avg,
        AggFuncAst::Min => AggFunc::Min,
        AggFuncAst::Max => AggFunc::Max,
    }
}

fn lower_table_ref(tr: &TableRef) -> Expr {
    // An unaliased table is qualified by its own name, so `customer.custId`
    // resolves after a product.
    let alias = tr.alias.clone().unwrap_or_else(|| tr.table.clone());
    Expr::table(tr.table.clone()).alias(alias)
}

fn lower_colref(c: &ColumnRef) -> ColRef {
    match &c.qualifier {
        Some(q) => ColRef::qualified(q.clone(), c.name.clone()),
        None => ColRef::new(c.name.clone()),
    }
}

/// Lower a predicate AST to an algebra predicate.
pub fn lower_predicate(p: &PredExpr) -> Predicate {
    match p {
        PredExpr::Const(b) => Predicate::Const(*b),
        PredExpr::Cmp(l, op, r) => {
            Predicate::Cmp(lower_scalar(l), lower_cmp_op(*op), lower_scalar(r))
        }
        PredExpr::And(a, b) => lower_predicate(a).and(lower_predicate(b)),
        PredExpr::Or(a, b) => lower_predicate(a).or(lower_predicate(b)),
        PredExpr::Not(a) => lower_predicate(a).not(),
    }
}

fn lower_scalar(s: &Scalar) -> Operand {
    match s {
        Scalar::Col(c) => Operand::Col(lower_colref(c)),
        Scalar::Lit(v) => Operand::Const(v.clone()),
    }
}

fn lower_cmp_op(op: CmpOpAst) -> CmpOp {
    match op {
        CmpOpAst::Eq => CmpOp::Eq,
        CmpOpAst::Ne => CmpOp::Ne,
        CmpOpAst::Lt => CmpOp::Lt,
        CmpOpAst::Le => CmpOp::Le,
        CmpOpAst::Gt => CmpOp::Gt,
        CmpOpAst::Ge => CmpOp::Ge,
    }
}

/// Convenience: parse and lower a query in one call.
pub fn sql_to_expr(input: &str) -> Result<Expr> {
    lower_query(&crate::parser::parse_query(input)?)
}

/// Convenience: parse and lower a statement in one call.
pub fn sql_to_statement(input: &str) -> Result<LoweredStatement> {
    lower_statement(&crate::parser::parse_statement(input)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_algebra::eval::eval;
    use dvm_algebra::infer::compile;
    use dvm_storage::{tuple, Bag, Schema, ValueType};
    use std::collections::HashMap;

    fn retail_provider() -> HashMap<String, Schema> {
        let mut m = HashMap::new();
        m.insert(
            "customer".to_string(),
            Schema::from_pairs(&[
                ("custId", ValueType::Int),
                ("name", ValueType::Str),
                ("address", ValueType::Str),
                ("score", ValueType::Str),
            ]),
        );
        m.insert(
            "sales".to_string(),
            Schema::from_pairs(&[
                ("custId", ValueType::Int),
                ("itemNo", ValueType::Int),
                ("quantity", ValueType::Int),
                ("salesPrice", ValueType::Double),
            ]),
        );
        m
    }

    #[test]
    fn example_1_1_compiles_and_evaluates() {
        let expr = sql_to_expr(
            "SELECT c.custId, c.name, c.score, s.itemNo, s.quantity \
             FROM customer c, sales s \
             WHERE c.custId = s.custId AND s.quantity != 0 AND c.score = 'High'",
        )
        .unwrap();
        let p = retail_provider();
        let q = compile(&expr, &p).unwrap();
        assert_eq!(q.schema.arity(), 5);

        let mut state: HashMap<String, Bag> = HashMap::new();
        state.insert(
            "customer".into(),
            Bag::from_tuples([
                tuple![1, "alice", "a st", "High"],
                tuple![2, "bob", "b st", "Low"],
            ]),
        );
        state.insert(
            "sales".into(),
            Bag::from_tuples([
                tuple![1, 100, 2, 9.99],
                tuple![1, 101, 0, 5.0],  // quantity = 0: filtered
                tuple![2, 100, 1, 9.99], // low score: filtered
            ]),
        );
        let out = eval(&q.plan, &state).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![1, "alice", "High", 100, 2]));
    }

    #[test]
    fn unaliased_table_gets_self_qualifier() {
        let expr = sql_to_expr("SELECT customer.name FROM customer").unwrap();
        let p = retail_provider();
        assert!(compile(&expr, &p).is_ok());
    }

    #[test]
    fn select_star_has_full_schema() {
        let expr = sql_to_expr("SELECT * FROM sales").unwrap();
        let p = retail_provider();
        let q = compile(&expr, &p).unwrap();
        assert_eq!(q.schema.arity(), 4);
    }

    #[test]
    fn distinct_maps_to_dedup() {
        let expr = sql_to_expr("SELECT DISTINCT custId FROM sales").unwrap();
        assert!(matches!(expr, Expr::DupElim(_)));
    }

    #[test]
    fn compound_operators_map_to_bag_ops() {
        let e =
            sql_to_expr("SELECT custId FROM sales UNION ALL SELECT custId FROM customer").unwrap();
        assert!(matches!(e, Expr::Union(..)));
        let e =
            sql_to_expr("SELECT custId FROM sales EXCEPT ALL SELECT custId FROM customer").unwrap();
        assert!(matches!(e, Expr::Monus(..)));
        let e = sql_to_expr("SELECT custId FROM sales EXCEPT SELECT custId FROM customer").unwrap();
        assert!(matches!(e, Expr::Except(..)));
        let e = sql_to_expr("SELECT custId FROM sales INTERSECT ALL SELECT custId FROM customer")
            .unwrap();
        assert!(matches!(e, Expr::MinIntersect(..)));
    }

    #[test]
    fn insert_and_delete_lowering() {
        let s = sql_to_statement("INSERT INTO sales VALUES (1, 2, 3, 4.0)").unwrap();
        let LoweredStatement::Insert { table, rows } = s else {
            panic!()
        };
        assert_eq!(table, "sales");
        assert_eq!(rows[0], tuple![1, 2, 3, 4.0]);

        let s = sql_to_statement("DELETE FROM sales WHERE quantity = 0").unwrap();
        let LoweredStatement::Delete { table, selection } = s else {
            panic!()
        };
        assert_eq!(table, "sales");
        assert!(matches!(selection, Expr::Select { .. }));

        let s = sql_to_statement("DELETE FROM sales").unwrap();
        let LoweredStatement::Delete { selection, .. } = s else {
            panic!()
        };
        assert_eq!(selection, Expr::table("sales"));
    }

    #[test]
    fn create_view_lowering() {
        let s = sql_to_statement("CREATE VIEW hot AS SELECT custId FROM sales").unwrap();
        let LoweredStatement::CreateView { name, definition } = s else {
            panic!()
        };
        assert_eq!(name, "hot");
        assert!(matches!(definition, Expr::Project { .. }));
    }

    #[test]
    fn group_by_round_trips_all_five_aggregates() {
        // parse → lower → compile → eval, one pass over every function.
        let expr = sql_to_expr(
            "SELECT itemNo, count(*), count(custId), sum(quantity), \
             avg(quantity), min(quantity), max(quantity) \
             FROM sales GROUP BY itemNo",
        )
        .unwrap();
        assert!(matches!(expr, Expr::GroupAggregate { .. }));
        let p = retail_provider();
        let q = compile(&expr, &p).unwrap();
        assert_eq!(
            q.schema.to_string(),
            "(itemNo: INT, count: INT, count_custId: INT, sum_quantity: INT, \
             avg_quantity: DOUBLE, min_quantity: INT, max_quantity: INT)"
        );
        let mut state: HashMap<String, Bag> = HashMap::new();
        state.insert(
            "sales".into(),
            Bag::from_tuples([
                tuple![1, 100, 2, 1.0],
                tuple![2, 100, 6, 1.0],
                tuple![1, 200, 5, 1.0],
            ]),
        );
        state.insert("customer".into(), Bag::new());
        let out = eval(&q.plan, &state).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tuple![100, 2, 2, 8, 4.0, 2, 6]));
        assert!(out.contains(&tuple![200, 1, 1, 5, 5.0, 5, 5]));
    }

    #[test]
    fn select_list_order_restored_by_projection() {
        // Aggregate first, key second: γ emits keys first, so lowering must
        // add an outer Π to restore the select-list order.
        let expr = sql_to_expr("SELECT sum(quantity), itemNo FROM sales GROUP BY itemNo").unwrap();
        assert!(matches!(expr, Expr::Project { .. }));
        let p = retail_provider();
        let q = compile(&expr, &p).unwrap();
        assert_eq!(q.schema.to_string(), "(sum_quantity: INT, itemNo: INT)");
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let expr = sql_to_expr("SELECT count(*), max(quantity) FROM sales").unwrap();
        let p = retail_provider();
        let q = compile(&expr, &p).unwrap();
        let mut state: HashMap<String, Bag> = HashMap::new();
        state.insert(
            "sales".into(),
            Bag::from_tuples([tuple![1, 100, 2, 1.0], tuple![1, 200, 7, 1.0]]),
        );
        state.insert("customer".into(), Bag::new());
        let out = eval(&q.plan, &state).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![2, 7]));
    }

    #[test]
    fn ungrouped_plain_column_is_rejected() {
        let err = sql_to_expr("SELECT custId, count(*) FROM sales GROUP BY itemNo").unwrap_err();
        assert!(
            err.to_string().contains("must appear in GROUP BY"),
            "{err}"
        );
        assert!(sql_to_expr("SELECT * FROM sales GROUP BY itemNo").is_err());
    }

    #[test]
    fn grouped_view_lowering() {
        let s = sql_to_statement(
            "CREATE VIEW totals AS SELECT custId, sum(quantity) FROM sales GROUP BY custId",
        )
        .unwrap();
        let LoweredStatement::CreateView { name, definition } = s else {
            panic!()
        };
        assert_eq!(name, "totals");
        assert!(matches!(definition, Expr::GroupAggregate { .. }));
    }

    #[test]
    fn self_join_via_sql() {
        let expr = sql_to_expr(
            "SELECT a.custId FROM sales a, sales b WHERE a.itemNo = b.itemNo AND a.custId != b.custId",
        )
        .unwrap();
        let p = retail_provider();
        let q = compile(&expr, &p).unwrap();
        let mut state: HashMap<String, Bag> = HashMap::new();
        state.insert(
            "sales".into(),
            Bag::from_tuples([tuple![1, 100, 2, 1.0], tuple![2, 100, 1, 1.0]]),
        );
        state.insert("customer".into(), Bag::new());
        let out = eval(&q.plan, &state).unwrap();
        assert_eq!(out.len(), 2, "both directions of the self-join");
    }
}
