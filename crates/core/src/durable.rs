//! Durable redo operations and checkpoint state codecs.
//!
//! The WAL (in `dvm-durability`) stores opaque payloads; this module gives
//! them meaning. Two artifact kinds exist:
//!
//! * **Redo operations** ([`DurableOp`]) — one per committed engine
//!   mutation, appended to the WAL *while the mutation's commit claims are
//!   still held*, so WAL order is a serialization order. Recovery replays
//!   them through the ordinary public [`Database`](crate::Database)
//!   methods; because transactions are logged in **normalized weakly
//!   minimal** form and every maintenance step is deterministic given the
//!   state it runs on, replay reconstructs the exact pre-crash invariant
//!   state — `INV_C` views come back with their logs and differential
//!   tables intact, not eagerly refreshed.
//! * **Checkpoint state** ([`StateImage`]) — a full, quiesced image of the
//!   engine: every table (base *and* maintenance-internal) with kind,
//!   schema, and contents; every view's definition, scenario, minimality,
//!   and shared-log cursor; and the shared epoch log itself. A checkpoint
//!   bounds replay: only WAL records with `lsn > checkpoint.wal_lsn` rerun.
//!
//! Both use the shared big-endian codec from `dvm_storage::codec`, so every
//! decode failure reports the byte offset where the artifact went bad.

use crate::error::Result;
use crate::view::{Minimality, Scenario};
use dvm_algebra::{AggCall, AggFunc, CmpOp, ColRef, Expr, Operand, Predicate};
use dvm_delta::Transaction;
use dvm_storage::codec::{self, Reader};
use dvm_storage::{Bag, Schema, TableKind};
use std::collections::BTreeMap;

/// What recovery did, for observability and the recovery benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// WAL LSN the loaded checkpoint was cut at (0 = no checkpoint).
    pub checkpoint_lsn: u64,
    /// WAL records replayed (those with `lsn > checkpoint_lsn`).
    pub wal_records_replayed: u64,
    /// How many of the replayed records were transactions.
    pub txns_replayed: u64,
    /// Payload + frame-header bytes of the replayed records.
    pub wal_bytes_replayed: u64,
    /// Torn/corrupt tail bytes the WAL dropped during repair.
    pub torn_bytes_dropped: u64,
    /// Wall-clock nanoseconds spent in `Database::open`.
    pub recovery_nanos: u64,
}

/// One committed engine mutation, as written to the WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum DurableOp {
    /// `create_table(name, schema)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Declared schema.
        schema: Schema,
    },
    /// A maintained transaction, in normalized weakly minimal form.
    Txn(Transaction),
    /// An unmaintained transaction (applied without view maintenance).
    TxnUnmaintained(Transaction),
    /// `create_view*` with its full configuration.
    CreateView {
        /// View name.
        name: String,
        /// Defining query.
        definition: Expr,
        /// Maintenance scenario.
        scenario: Scenario,
        /// Log minimality.
        minimality: Minimality,
        /// Whether the view reads the shared epoch log.
        shared: bool,
    },
    /// `drop_view(name)`.
    DropView(String),
    /// `refresh(name)`.
    Refresh(String),
    /// `propagate(name)`.
    Propagate(String),
    /// `partial_refresh(name)`.
    PartialRefresh(String),
    /// `vacuum_shared_log()`.
    VacuumSharedLog,
}

// ---- scenario / minimality tags -------------------------------------------

fn put_scenario(buf: &mut Vec<u8>, s: Scenario) {
    codec::put_u8(
        buf,
        match s {
            Scenario::Immediate => 0,
            Scenario::BaseLog => 1,
            Scenario::DiffTable => 2,
            Scenario::Combined => 3,
        },
    );
}

fn get_scenario(r: &mut Reader<'_>) -> Result<Scenario> {
    match r.u8()? {
        0 => Ok(Scenario::Immediate),
        1 => Ok(Scenario::BaseLog),
        2 => Ok(Scenario::DiffTable),
        3 => Ok(Scenario::Combined),
        tag => Err(r.corrupt(format_args!("unknown scenario tag {tag}")).into()),
    }
}

fn put_minimality(buf: &mut Vec<u8>, m: Minimality) {
    codec::put_u8(buf, match m {
        Minimality::Weak => 0,
        Minimality::Strong => 1,
    });
}

fn get_minimality(r: &mut Reader<'_>) -> Result<Minimality> {
    match r.u8()? {
        0 => Ok(Minimality::Weak),
        1 => Ok(Minimality::Strong),
        tag => Err(r.corrupt(format_args!("unknown minimality tag {tag}")).into()),
    }
}

// ---- predicate / expression codec -----------------------------------------

fn put_colref(buf: &mut Vec<u8>, c: &ColRef) {
    codec::put_opt_str(buf, c.qualifier.as_deref());
    codec::put_str(buf, &c.name);
}

fn get_colref(r: &mut Reader<'_>) -> Result<ColRef> {
    let qualifier = r.opt_str()?;
    let name = r.str()?;
    Ok(ColRef { qualifier, name })
}

fn put_cmp_op(buf: &mut Vec<u8>, op: CmpOp) {
    codec::put_u8(
        buf,
        match op {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
            CmpOp::NullEq => 6,
        },
    );
}

fn get_cmp_op(r: &mut Reader<'_>) -> Result<CmpOp> {
    match r.u8()? {
        0 => Ok(CmpOp::Eq),
        1 => Ok(CmpOp::Ne),
        2 => Ok(CmpOp::Lt),
        3 => Ok(CmpOp::Le),
        4 => Ok(CmpOp::Gt),
        5 => Ok(CmpOp::Ge),
        6 => Ok(CmpOp::NullEq),
        tag => Err(r.corrupt(format_args!("unknown cmp-op tag {tag}")).into()),
    }
}

fn put_operand(buf: &mut Vec<u8>, o: &Operand) {
    match o {
        Operand::Col(c) => {
            codec::put_u8(buf, 0);
            put_colref(buf, c);
        }
        Operand::Const(v) => {
            codec::put_u8(buf, 1);
            codec::put_value(buf, v);
        }
    }
}

fn get_operand(r: &mut Reader<'_>) -> Result<Operand> {
    match r.u8()? {
        0 => Ok(Operand::Col(get_colref(r)?)),
        1 => Ok(Operand::Const(codec::get_value(r)?)),
        tag => Err(r.corrupt(format_args!("unknown operand tag {tag}")).into()),
    }
}

fn put_predicate(buf: &mut Vec<u8>, p: &Predicate) {
    match p {
        Predicate::Const(b) => {
            codec::put_u8(buf, 0);
            codec::put_u8(buf, *b as u8);
        }
        Predicate::Cmp(l, op, rr) => {
            codec::put_u8(buf, 1);
            put_operand(buf, l);
            put_cmp_op(buf, *op);
            put_operand(buf, rr);
        }
        Predicate::And(a, b) => {
            codec::put_u8(buf, 2);
            put_predicate(buf, a);
            put_predicate(buf, b);
        }
        Predicate::Or(a, b) => {
            codec::put_u8(buf, 3);
            put_predicate(buf, a);
            put_predicate(buf, b);
        }
        Predicate::Not(a) => {
            codec::put_u8(buf, 4);
            put_predicate(buf, a);
        }
    }
}

fn get_predicate(r: &mut Reader<'_>) -> Result<Predicate> {
    match r.u8()? {
        0 => Ok(Predicate::Const(r.u8()? != 0)),
        1 => {
            let l = get_operand(r)?;
            let op = get_cmp_op(r)?;
            let rr = get_operand(r)?;
            Ok(Predicate::Cmp(l, op, rr))
        }
        2 => Ok(Predicate::And(
            Box::new(get_predicate(r)?),
            Box::new(get_predicate(r)?),
        )),
        3 => Ok(Predicate::Or(
            Box::new(get_predicate(r)?),
            Box::new(get_predicate(r)?),
        )),
        4 => Ok(Predicate::Not(Box::new(get_predicate(r)?))),
        tag => Err(r.corrupt(format_args!("unknown predicate tag {tag}")).into()),
    }
}

/// Encode a view-definition expression.
pub fn put_expr(buf: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Table(name) => {
            codec::put_u8(buf, 0);
            codec::put_str(buf, name);
        }
        Expr::Literal { bag, schema } => {
            codec::put_u8(buf, 1);
            codec::put_bag(buf, bag);
            codec::put_schema(buf, schema);
        }
        Expr::Alias { alias, input } => {
            codec::put_u8(buf, 2);
            codec::put_str(buf, alias);
            put_expr(buf, input);
        }
        Expr::Select { pred, input } => {
            codec::put_u8(buf, 3);
            put_predicate(buf, pred);
            put_expr(buf, input);
        }
        Expr::Project { cols, input } => {
            codec::put_u8(buf, 4);
            codec::put_u16(buf, cols.len() as u16);
            for c in cols {
                put_colref(buf, c);
            }
            put_expr(buf, input);
        }
        Expr::DupElim(a) => {
            codec::put_u8(buf, 5);
            put_expr(buf, a);
        }
        Expr::Union(a, b) => put_binary(buf, 6, a, b),
        Expr::Monus(a, b) => put_binary(buf, 7, a, b),
        Expr::Product(a, b) => put_binary(buf, 8, a, b),
        Expr::MinIntersect(a, b) => put_binary(buf, 9, a, b),
        Expr::MaxUnion(a, b) => put_binary(buf, 10, a, b),
        Expr::Except(a, b) => put_binary(buf, 11, a, b),
        Expr::GroupAggregate { keys, aggs, input } => {
            codec::put_u8(buf, 12);
            codec::put_u16(buf, keys.len() as u16);
            for k in keys {
                put_colref(buf, k);
            }
            codec::put_u16(buf, aggs.len() as u16);
            for call in aggs {
                put_agg_func(buf, call.func);
                match &call.arg {
                    None => codec::put_u8(buf, 0),
                    Some(c) => {
                        codec::put_u8(buf, 1);
                        put_colref(buf, c);
                    }
                }
            }
            put_expr(buf, input);
        }
    }
}

fn put_agg_func(buf: &mut Vec<u8>, f: AggFunc) {
    codec::put_u8(
        buf,
        match f {
            AggFunc::Count => 0,
            AggFunc::Sum => 1,
            AggFunc::Avg => 2,
            AggFunc::Min => 3,
            AggFunc::Max => 4,
        },
    );
}

fn get_agg_func(r: &mut Reader<'_>) -> Result<AggFunc> {
    match r.u8()? {
        0 => Ok(AggFunc::Count),
        1 => Ok(AggFunc::Sum),
        2 => Ok(AggFunc::Avg),
        3 => Ok(AggFunc::Min),
        4 => Ok(AggFunc::Max),
        tag => Err(r.corrupt(format_args!("unknown agg-func tag {tag}")).into()),
    }
}

fn put_binary(buf: &mut Vec<u8>, tag: u8, a: &Expr, b: &Expr) {
    codec::put_u8(buf, tag);
    put_expr(buf, a);
    put_expr(buf, b);
}

/// Decode a view-definition expression written by [`put_expr`].
pub fn get_expr(r: &mut Reader<'_>) -> Result<Expr> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => Expr::Table(r.str()?),
        1 => {
            let bag = codec::get_bag(r)?;
            let schema = codec::get_schema(r)?;
            Expr::Literal { bag, schema }
        }
        2 => {
            let alias = r.str()?;
            Expr::Alias {
                alias,
                input: Box::new(get_expr(r)?),
            }
        }
        3 => {
            let pred = get_predicate(r)?;
            Expr::Select {
                pred,
                input: Box::new(get_expr(r)?),
            }
        }
        4 => {
            let n = r.u16()? as usize;
            let mut cols = Vec::with_capacity(n);
            for _ in 0..n {
                cols.push(get_colref(r)?);
            }
            Expr::Project {
                cols,
                input: Box::new(get_expr(r)?),
            }
        }
        5 => Expr::DupElim(Box::new(get_expr(r)?)),
        6 => get_binary(r, Expr::Union)?,
        7 => get_binary(r, Expr::Monus)?,
        8 => get_binary(r, Expr::Product)?,
        9 => get_binary(r, Expr::MinIntersect)?,
        10 => get_binary(r, Expr::MaxUnion)?,
        11 => get_binary(r, Expr::Except)?,
        12 => {
            let nk = r.u16()? as usize;
            let mut keys = Vec::with_capacity(nk);
            for _ in 0..nk {
                keys.push(get_colref(r)?);
            }
            let na = r.u16()? as usize;
            let mut aggs = Vec::with_capacity(na);
            for _ in 0..na {
                let func = get_agg_func(r)?;
                let arg = match r.u8()? {
                    0 => None,
                    1 => Some(get_colref(r)?),
                    tag => {
                        return Err(r
                            .corrupt(format_args!("unknown agg-arg tag {tag}"))
                            .into())
                    }
                };
                aggs.push(AggCall { func, arg });
            }
            Expr::GroupAggregate {
                keys,
                aggs,
                input: Box::new(get_expr(r)?),
            }
        }
        tag => return Err(r.corrupt(format_args!("unknown expr tag {tag}")).into()),
    })
}

fn get_binary(
    r: &mut Reader<'_>,
    make: fn(Box<Expr>, Box<Expr>) -> Expr,
) -> Result<Expr> {
    let a = Box::new(get_expr(r)?);
    let b = Box::new(get_expr(r)?);
    Ok(make(a, b))
}

// ---- transaction codec ----------------------------------------------------

fn put_transaction(buf: &mut Vec<u8>, tx: &Transaction) {
    let tables: Vec<&String> = tx.tables().collect();
    codec::put_u32(buf, tables.len() as u32);
    for table in tables {
        let (del, ins) = tx.get(table).expect("listed table");
        codec::put_str(buf, table);
        codec::put_bag(buf, del);
        codec::put_bag(buf, ins);
    }
}

fn get_transaction(r: &mut Reader<'_>) -> Result<Transaction> {
    let n = r.u32()? as usize;
    let mut tx = Transaction::new();
    for _ in 0..n {
        let table = r.str()?;
        let del = codec::get_bag(r)?;
        let ins = codec::get_bag(r)?;
        tx = tx.delete(table.clone(), del).insert(table, ins);
    }
    Ok(tx)
}

// ---- redo-op codec --------------------------------------------------------

/// Serialize a redo operation into a WAL payload.
pub fn encode_op(op: &DurableOp) -> Vec<u8> {
    let mut buf = Vec::new();
    match op {
        DurableOp::CreateTable { name, schema } => {
            codec::put_u8(&mut buf, 0);
            codec::put_str(&mut buf, name);
            codec::put_schema(&mut buf, schema);
        }
        DurableOp::Txn(tx) => {
            codec::put_u8(&mut buf, 1);
            put_transaction(&mut buf, tx);
        }
        DurableOp::TxnUnmaintained(tx) => {
            codec::put_u8(&mut buf, 2);
            put_transaction(&mut buf, tx);
        }
        DurableOp::CreateView {
            name,
            definition,
            scenario,
            minimality,
            shared,
        } => {
            codec::put_u8(&mut buf, 3);
            codec::put_str(&mut buf, name);
            put_expr(&mut buf, definition);
            put_scenario(&mut buf, *scenario);
            put_minimality(&mut buf, *minimality);
            codec::put_u8(&mut buf, *shared as u8);
        }
        DurableOp::DropView(name) => {
            codec::put_u8(&mut buf, 4);
            codec::put_str(&mut buf, name);
        }
        DurableOp::Refresh(name) => {
            codec::put_u8(&mut buf, 5);
            codec::put_str(&mut buf, name);
        }
        DurableOp::Propagate(name) => {
            codec::put_u8(&mut buf, 6);
            codec::put_str(&mut buf, name);
        }
        DurableOp::PartialRefresh(name) => {
            codec::put_u8(&mut buf, 7);
            codec::put_str(&mut buf, name);
        }
        DurableOp::VacuumSharedLog => codec::put_u8(&mut buf, 8),
    }
    buf
}

/// Parse a WAL payload written by [`encode_op`]. Rejects trailing bytes.
pub fn decode_op(bytes: &[u8]) -> Result<DurableOp> {
    let mut r = Reader::new(bytes);
    let op = match r.u8()? {
        0 => {
            let name = r.str()?;
            let schema = codec::get_schema(&mut r)?;
            DurableOp::CreateTable { name, schema }
        }
        1 => DurableOp::Txn(get_transaction(&mut r)?),
        2 => DurableOp::TxnUnmaintained(get_transaction(&mut r)?),
        3 => {
            let name = r.str()?;
            let definition = get_expr(&mut r)?;
            let scenario = get_scenario(&mut r)?;
            let minimality = get_minimality(&mut r)?;
            let shared = r.u8()? != 0;
            DurableOp::CreateView {
                name,
                definition,
                scenario,
                minimality,
                shared,
            }
        }
        4 => DurableOp::DropView(r.str()?),
        5 => DurableOp::Refresh(r.str()?),
        6 => DurableOp::Propagate(r.str()?),
        7 => DurableOp::PartialRefresh(r.str()?),
        8 => DurableOp::VacuumSharedLog,
        tag => return Err(r.corrupt(format_args!("unknown op tag {tag}")).into()),
    };
    r.expect_end()?;
    Ok(op)
}

// ---- checkpoint state image -----------------------------------------------

/// One table in a checkpoint: identity, shape, and full contents.
#[derive(Debug, Clone, PartialEq)]
pub struct TableImage {
    /// Table name.
    pub name: String,
    /// External (user) or internal (maintenance-owned).
    pub kind: TableKind,
    /// Declared schema.
    pub schema: Schema,
    /// Full contents at the checkpoint cut.
    pub bag: Bag,
}

/// One view in a checkpoint. The MV / log / differential tables it owns
/// are captured as ordinary [`TableImage`]s; recovery re-registers the view
/// around them without re-initializing anything.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewImage {
    /// View name.
    pub name: String,
    /// Defining query.
    pub definition: Expr,
    /// Maintenance scenario.
    pub scenario: Scenario,
    /// Log minimality.
    pub minimality: Minimality,
    /// Shared-log cursor (present iff the view reads the shared log).
    pub cursor: Option<u64>,
}

/// A full quiesced image of the engine, as stored in a checkpoint payload.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StateImage {
    /// Every table — base *and* maintenance-internal — in name order.
    pub tables: Vec<TableImage>,
    /// Every view, in name order.
    pub views: Vec<ViewImage>,
    /// The shared epoch log's current epoch.
    pub shared_epoch: u64,
    /// The shared epoch log's retained entries, per table, in epoch order.
    pub shared_entries: crate::epochlog::ExportedEntries,
}

const STATE_VERSION: u8 = 1;

/// Serialize a [`StateImage`] into a checkpoint payload.
pub fn encode_state(state: &StateImage) -> Vec<u8> {
    let mut buf = Vec::new();
    codec::put_u8(&mut buf, STATE_VERSION);
    codec::put_u32(&mut buf, state.tables.len() as u32);
    for t in &state.tables {
        codec::put_str(&mut buf, &t.name);
        codec::put_u8(&mut buf, match t.kind {
            TableKind::External => 0,
            TableKind::Internal => 1,
        });
        codec::put_schema(&mut buf, &t.schema);
        codec::put_bag(&mut buf, &t.bag);
    }
    codec::put_u32(&mut buf, state.views.len() as u32);
    for v in &state.views {
        codec::put_str(&mut buf, &v.name);
        put_expr(&mut buf, &v.definition);
        put_scenario(&mut buf, v.scenario);
        put_minimality(&mut buf, v.minimality);
        match v.cursor {
            None => codec::put_u8(&mut buf, 0),
            Some(c) => {
                codec::put_u8(&mut buf, 1);
                codec::put_u64(&mut buf, c);
            }
        }
    }
    codec::put_u64(&mut buf, state.shared_epoch);
    codec::put_u32(&mut buf, state.shared_entries.len() as u32);
    for (table, entries) in &state.shared_entries {
        codec::put_str(&mut buf, table);
        codec::put_u32(&mut buf, entries.len() as u32);
        for (epoch, del, ins) in entries {
            codec::put_u64(&mut buf, *epoch);
            codec::put_bag(&mut buf, del);
            codec::put_bag(&mut buf, ins);
        }
    }
    buf
}

/// Parse a checkpoint payload written by [`encode_state`]. Rejects trailing
/// bytes and unknown versions, reporting byte offsets.
pub fn decode_state(bytes: &[u8]) -> Result<StateImage> {
    let mut r = Reader::new(bytes);
    let version = r.u8()?;
    if version != STATE_VERSION {
        return Err(r
            .corrupt(format_args!("unsupported state version {version}"))
            .into());
    }
    let ntables = r.u32()? as usize;
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let name = r.str()?;
        let kind = match r.u8()? {
            0 => TableKind::External,
            1 => TableKind::Internal,
            tag => return Err(r.corrupt(format_args!("unknown table kind {tag}")).into()),
        };
        let schema = codec::get_schema(&mut r)?;
        let bag = codec::get_bag(&mut r)?;
        tables.push(TableImage {
            name,
            kind,
            schema,
            bag,
        });
    }
    let nviews = r.u32()? as usize;
    let mut views = Vec::with_capacity(nviews);
    for _ in 0..nviews {
        let name = r.str()?;
        let definition = get_expr(&mut r)?;
        let scenario = get_scenario(&mut r)?;
        let minimality = get_minimality(&mut r)?;
        let cursor = match r.u8()? {
            0 => None,
            1 => Some(r.u64()?),
            tag => return Err(r.corrupt(format_args!("bad cursor tag {tag}")).into()),
        };
        views.push(ViewImage {
            name,
            definition,
            scenario,
            minimality,
            cursor,
        });
    }
    let shared_epoch = r.u64()?;
    let nshared = r.u32()? as usize;
    let mut shared_entries = BTreeMap::new();
    for _ in 0..nshared {
        let table = r.str()?;
        let nentries = r.u32()? as usize;
        let mut entries = Vec::with_capacity(nentries);
        for _ in 0..nentries {
            let epoch = r.u64()?;
            let del = codec::get_bag(&mut r)?;
            let ins = codec::get_bag(&mut r)?;
            entries.push((epoch, del, ins));
        }
        shared_entries.insert(table, entries);
    }
    r.expect_end()?;
    Ok(StateImage {
        tables,
        views,
        shared_epoch,
        shared_entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_storage::{tuple, Column, ValueType};

    fn sample_schema() -> Schema {
        Schema::new(vec![
            Column::new("id", ValueType::Int),
            Column::new("name", ValueType::Str),
        ])
        .unwrap()
    }

    fn deep_expr() -> Expr {
        let joined = Expr::table("r")
            .alias("a")
            .select(Predicate::eq(ColRef::qualified("a", "id"), ColRef::new("id")).not())
            .project(["a.id", "name"]);
        let other = Expr::Union(
            Box::new(Expr::table("s")),
            Box::new(Expr::literal(Bag::singleton(tuple![1, "x"]), sample_schema())),
        );
        let set_ops = Expr::Except(
            Box::new(Expr::MinIntersect(
                Box::new(Expr::MaxUnion(Box::new(joined), Box::new(other.clone()))),
                Box::new(other.dedup()),
            )),
            Box::new(Expr::Monus(
                Box::new(Expr::Product(
                    Box::new(Expr::table("t")),
                    Box::new(Expr::empty(sample_schema())),
                )),
                Box::new(Expr::table("u")),
            )),
        );
        set_ops.group_aggregate(
            vec![ColRef::new("id"), ColRef::qualified("a", "name")],
            vec![
                AggCall::count_star(),
                AggCall::new(AggFunc::Count, ColRef::new("id")),
                AggCall::new(AggFunc::Sum, ColRef::new("id")),
                AggCall::new(AggFunc::Avg, ColRef::qualified("a", "id")),
                AggCall::new(AggFunc::Min, ColRef::new("name")),
                AggCall::new(AggFunc::Max, ColRef::new("id")),
            ],
        )
    }

    #[test]
    fn expr_roundtrips_every_variant() {
        let e = deep_expr();
        let mut buf = Vec::new();
        put_expr(&mut buf, &e);
        let mut r = Reader::new(&buf);
        assert_eq!(get_expr(&mut r).unwrap(), e);
        r.expect_end().unwrap();
    }

    #[test]
    fn predicate_roundtrips_all_shapes() {
        let p = Predicate::always()
            .and(Predicate::cmp(ColRef::new("x"), CmpOp::Le, ColRef::parse("q.y")))
            .or(Predicate::never().not());
        let mut buf = Vec::new();
        put_predicate(&mut buf, &p);
        let mut r = Reader::new(&buf);
        assert_eq!(get_predicate(&mut r).unwrap(), p);
        r.expect_end().unwrap();
    }

    #[test]
    fn ops_roundtrip() {
        let tx = Transaction::new()
            .insert_tuple("r", tuple![1, "a"])
            .delete_tuple("s", tuple![2, "b"]);
        let ops = vec![
            DurableOp::CreateTable {
                name: "r".into(),
                schema: sample_schema(),
            },
            DurableOp::Txn(tx.clone()),
            DurableOp::TxnUnmaintained(tx),
            DurableOp::CreateView {
                name: "v".into(),
                definition: deep_expr(),
                scenario: Scenario::Combined,
                minimality: Minimality::Strong,
                shared: true,
            },
            DurableOp::DropView("v".into()),
            DurableOp::Refresh("v".into()),
            DurableOp::Propagate("v".into()),
            DurableOp::PartialRefresh("v".into()),
            DurableOp::VacuumSharedLog,
        ];
        for op in ops {
            assert_eq!(decode_op(&encode_op(&op)).unwrap(), op, "op {op:?}");
        }
    }

    #[test]
    fn op_trailing_bytes_rejected_with_offset() {
        let mut bytes = encode_op(&DurableOp::VacuumSharedLog);
        let valid = bytes.len();
        bytes.push(0xAB);
        let msg = format!("{}", decode_op(&bytes).unwrap_err());
        assert!(msg.contains(&format!("at byte {valid}")), "got: {msg}");
    }

    #[test]
    fn op_unknown_tag_rejected() {
        assert!(decode_op(&[200]).is_err());
        assert!(decode_op(&[]).is_err());
    }

    #[test]
    fn state_image_roundtrips() {
        let mut bag = Bag::new();
        bag.insert_n(tuple![1, "a"], 2);
        let state = StateImage {
            tables: vec![
                TableImage {
                    name: "__mv_v".into(),
                    kind: TableKind::Internal,
                    schema: sample_schema(),
                    bag: bag.clone(),
                },
                TableImage {
                    name: "r".into(),
                    kind: TableKind::External,
                    schema: sample_schema(),
                    bag: Bag::new(),
                },
            ],
            views: vec![ViewImage {
                name: "v".into(),
                definition: deep_expr(),
                scenario: Scenario::BaseLog,
                minimality: Minimality::Weak,
                cursor: Some(7),
            }],
            shared_epoch: 9,
            shared_entries: BTreeMap::from([(
                "r".to_string(),
                vec![(8, Bag::new(), bag.clone()), (9, bag, Bag::new())],
            )]),
        };
        let bytes = encode_state(&state);
        assert_eq!(decode_state(&bytes).unwrap(), state);
    }

    #[test]
    fn state_image_rejects_garbage_and_bad_version() {
        let state = StateImage::default();
        let mut bytes = encode_state(&state);
        bytes.push(1);
        let msg = format!("{}", decode_state(&bytes).unwrap_err());
        assert!(msg.contains("trailing"), "got: {msg}");
        let mut wrong = encode_state(&state);
        wrong[0] = 99;
        assert!(decode_state(&wrong).is_err());
    }
}
