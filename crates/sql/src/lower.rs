//! Lowering: SQL AST → bag algebra.
//!
//! `SELECT cols FROM t1 a1, …, tn an WHERE p` becomes
//! `Π_cols(σ_p((t1 AS a1) × … × (tn AS an)))`; `DISTINCT` adds `ε`;
//! compound operators map onto `⊎`, `∸`, `EXCEPT`, `min` — exactly the
//! translation the paper sketches for Example 1.1.

use crate::ast::*;
use crate::error::{Result, SqlError};
use dvm_algebra::predicate::{CmpOp, ColRef, Operand, Predicate};
use dvm_algebra::Expr;
use dvm_storage::{Schema, Tuple};

/// A lowered statement, ready for an engine to act on.
#[derive(Debug, Clone, PartialEq)]
pub enum LoweredStatement {
    /// Create a base table.
    CreateTable {
        /// Table name.
        name: String,
        /// Column schema.
        schema: Schema,
    },
    /// Define a view: `(name, defining query)`.
    CreateView {
        /// View name.
        name: String,
        /// Defining bag-algebra query.
        definition: Expr,
    },
    /// Evaluate a query.
    Query(Expr),
    /// Insert literal rows into a table.
    Insert {
        /// Target table.
        table: String,
        /// Tuples to insert (duplicates meaningful).
        rows: Vec<Tuple>,
    },
    /// Delete the rows satisfying `selection` from `table`; the engine
    /// evaluates `selection` to obtain the delete bag.
    Delete {
        /// Target table.
        table: String,
        /// `σ_p(table)` (or the whole table when no predicate was given).
        selection: Expr,
    },
}

/// Lower a parsed statement.
pub fn lower_statement(stmt: &Statement) -> Result<LoweredStatement> {
    Ok(match stmt {
        Statement::CreateTable { name, columns } => {
            let pairs: Vec<(&str, dvm_storage::ValueType)> =
                columns.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            let schema = Schema::new(
                pairs
                    .iter()
                    .map(|(n, t)| dvm_storage::Column::new(*n, *t))
                    .collect(),
            )
            .map_err(|e| SqlError::Unsupported(e.to_string()))?;
            LoweredStatement::CreateTable {
                name: name.clone(),
                schema,
            }
        }
        Statement::CreateView { name, query } => LoweredStatement::CreateView {
            name: name.clone(),
            definition: lower_query(query)?,
        },
        Statement::Select(q) => LoweredStatement::Query(lower_query(q)?),
        Statement::Insert { table, rows } => LoweredStatement::Insert {
            table: table.clone(),
            rows: rows.iter().map(|r| Tuple::new(r.clone())).collect(),
        },
        Statement::Delete { table, predicate } => {
            let base = Expr::table(table.clone());
            let selection = match predicate {
                Some(p) => base.select(lower_predicate(p)),
                None => base,
            };
            LoweredStatement::Delete {
                table: table.clone(),
                selection,
            }
        }
    })
}

/// Lower a query to a bag-algebra expression.
pub fn lower_query(q: &Query) -> Result<Expr> {
    Ok(match q {
        Query::Select(block) => lower_select(block)?,
        Query::UnionAll(a, b) => lower_query(a)?.union(lower_query(b)?),
        Query::ExceptAll(a, b) => lower_query(a)?.monus(lower_query(b)?),
        Query::Except(a, b) => lower_query(a)?.except(lower_query(b)?),
        Query::IntersectAll(a, b) => lower_query(a)?.min_intersect(lower_query(b)?),
    })
}

fn lower_select(block: &SelectBlock) -> Result<Expr> {
    if block.from.is_empty() {
        return Err(SqlError::Unsupported("FROM list must not be empty".into()));
    }
    let mut from_iter = block.from.iter();
    let mut expr = lower_table_ref(from_iter.next().expect("nonempty"));
    for tr in from_iter {
        expr = expr.product(lower_table_ref(tr));
    }
    if let Some(p) = &block.predicate {
        expr = expr.select(lower_predicate(p));
    }
    if let Some(cols) = &block.columns {
        expr = expr.project_refs(cols.iter().map(lower_colref).collect());
    }
    if block.distinct {
        expr = expr.dedup();
    }
    Ok(expr)
}

fn lower_table_ref(tr: &TableRef) -> Expr {
    // An unaliased table is qualified by its own name, so `customer.custId`
    // resolves after a product.
    let alias = tr.alias.clone().unwrap_or_else(|| tr.table.clone());
    Expr::table(tr.table.clone()).alias(alias)
}

fn lower_colref(c: &ColumnRef) -> ColRef {
    match &c.qualifier {
        Some(q) => ColRef::qualified(q.clone(), c.name.clone()),
        None => ColRef::new(c.name.clone()),
    }
}

/// Lower a predicate AST to an algebra predicate.
pub fn lower_predicate(p: &PredExpr) -> Predicate {
    match p {
        PredExpr::Const(b) => Predicate::Const(*b),
        PredExpr::Cmp(l, op, r) => {
            Predicate::Cmp(lower_scalar(l), lower_cmp_op(*op), lower_scalar(r))
        }
        PredExpr::And(a, b) => lower_predicate(a).and(lower_predicate(b)),
        PredExpr::Or(a, b) => lower_predicate(a).or(lower_predicate(b)),
        PredExpr::Not(a) => lower_predicate(a).not(),
    }
}

fn lower_scalar(s: &Scalar) -> Operand {
    match s {
        Scalar::Col(c) => Operand::Col(lower_colref(c)),
        Scalar::Lit(v) => Operand::Const(v.clone()),
    }
}

fn lower_cmp_op(op: CmpOpAst) -> CmpOp {
    match op {
        CmpOpAst::Eq => CmpOp::Eq,
        CmpOpAst::Ne => CmpOp::Ne,
        CmpOpAst::Lt => CmpOp::Lt,
        CmpOpAst::Le => CmpOp::Le,
        CmpOpAst::Gt => CmpOp::Gt,
        CmpOpAst::Ge => CmpOp::Ge,
    }
}

/// Convenience: parse and lower a query in one call.
pub fn sql_to_expr(input: &str) -> Result<Expr> {
    lower_query(&crate::parser::parse_query(input)?)
}

/// Convenience: parse and lower a statement in one call.
pub fn sql_to_statement(input: &str) -> Result<LoweredStatement> {
    lower_statement(&crate::parser::parse_statement(input)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_algebra::eval::eval;
    use dvm_algebra::infer::compile;
    use dvm_storage::{tuple, Bag, Schema, ValueType};
    use std::collections::HashMap;

    fn retail_provider() -> HashMap<String, Schema> {
        let mut m = HashMap::new();
        m.insert(
            "customer".to_string(),
            Schema::from_pairs(&[
                ("custId", ValueType::Int),
                ("name", ValueType::Str),
                ("address", ValueType::Str),
                ("score", ValueType::Str),
            ]),
        );
        m.insert(
            "sales".to_string(),
            Schema::from_pairs(&[
                ("custId", ValueType::Int),
                ("itemNo", ValueType::Int),
                ("quantity", ValueType::Int),
                ("salesPrice", ValueType::Double),
            ]),
        );
        m
    }

    #[test]
    fn example_1_1_compiles_and_evaluates() {
        let expr = sql_to_expr(
            "SELECT c.custId, c.name, c.score, s.itemNo, s.quantity \
             FROM customer c, sales s \
             WHERE c.custId = s.custId AND s.quantity != 0 AND c.score = 'High'",
        )
        .unwrap();
        let p = retail_provider();
        let q = compile(&expr, &p).unwrap();
        assert_eq!(q.schema.arity(), 5);

        let mut state: HashMap<String, Bag> = HashMap::new();
        state.insert(
            "customer".into(),
            Bag::from_tuples([
                tuple![1, "alice", "a st", "High"],
                tuple![2, "bob", "b st", "Low"],
            ]),
        );
        state.insert(
            "sales".into(),
            Bag::from_tuples([
                tuple![1, 100, 2, 9.99],
                tuple![1, 101, 0, 5.0],  // quantity = 0: filtered
                tuple![2, 100, 1, 9.99], // low score: filtered
            ]),
        );
        let out = eval(&q.plan, &state).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![1, "alice", "High", 100, 2]));
    }

    #[test]
    fn unaliased_table_gets_self_qualifier() {
        let expr = sql_to_expr("SELECT customer.name FROM customer").unwrap();
        let p = retail_provider();
        assert!(compile(&expr, &p).is_ok());
    }

    #[test]
    fn select_star_has_full_schema() {
        let expr = sql_to_expr("SELECT * FROM sales").unwrap();
        let p = retail_provider();
        let q = compile(&expr, &p).unwrap();
        assert_eq!(q.schema.arity(), 4);
    }

    #[test]
    fn distinct_maps_to_dedup() {
        let expr = sql_to_expr("SELECT DISTINCT custId FROM sales").unwrap();
        assert!(matches!(expr, Expr::DupElim(_)));
    }

    #[test]
    fn compound_operators_map_to_bag_ops() {
        let e =
            sql_to_expr("SELECT custId FROM sales UNION ALL SELECT custId FROM customer").unwrap();
        assert!(matches!(e, Expr::Union(..)));
        let e =
            sql_to_expr("SELECT custId FROM sales EXCEPT ALL SELECT custId FROM customer").unwrap();
        assert!(matches!(e, Expr::Monus(..)));
        let e = sql_to_expr("SELECT custId FROM sales EXCEPT SELECT custId FROM customer").unwrap();
        assert!(matches!(e, Expr::Except(..)));
        let e = sql_to_expr("SELECT custId FROM sales INTERSECT ALL SELECT custId FROM customer")
            .unwrap();
        assert!(matches!(e, Expr::MinIntersect(..)));
    }

    #[test]
    fn insert_and_delete_lowering() {
        let s = sql_to_statement("INSERT INTO sales VALUES (1, 2, 3, 4.0)").unwrap();
        let LoweredStatement::Insert { table, rows } = s else {
            panic!()
        };
        assert_eq!(table, "sales");
        assert_eq!(rows[0], tuple![1, 2, 3, 4.0]);

        let s = sql_to_statement("DELETE FROM sales WHERE quantity = 0").unwrap();
        let LoweredStatement::Delete { table, selection } = s else {
            panic!()
        };
        assert_eq!(table, "sales");
        assert!(matches!(selection, Expr::Select { .. }));

        let s = sql_to_statement("DELETE FROM sales").unwrap();
        let LoweredStatement::Delete { selection, .. } = s else {
            panic!()
        };
        assert_eq!(selection, Expr::table("sales"));
    }

    #[test]
    fn create_view_lowering() {
        let s = sql_to_statement("CREATE VIEW hot AS SELECT custId FROM sales").unwrap();
        let LoweredStatement::CreateView { name, definition } = s else {
            panic!()
        };
        assert_eq!(name, "hot");
        assert!(matches!(definition, Expr::Project { .. }));
    }

    #[test]
    fn self_join_via_sql() {
        let expr = sql_to_expr(
            "SELECT a.custId FROM sales a, sales b WHERE a.itemNo = b.itemNo AND a.custId != b.custId",
        )
        .unwrap();
        let p = retail_provider();
        let q = compile(&expr, &p).unwrap();
        let mut state: HashMap<String, Bag> = HashMap::new();
        state.insert(
            "sales".into(),
            Bag::from_tuples([tuple![1, 100, 2, 1.0], tuple![2, 100, 1, 1.0]]),
        );
        state.insert("customer".into(), Bag::new());
        let out = eval(&q.plan, &state).unwrap();
        assert_eq!(out.len(), 2, "both directions of the self-join");
    }
}
