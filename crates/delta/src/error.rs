//! Delta-layer errors.

use dvm_algebra::AlgebraError;
use dvm_storage::StorageError;
use std::fmt;

/// Errors raised by the differential algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaError {
    /// Underlying algebra error (compilation, evaluation, schemas).
    Algebra(AlgebraError),
    /// A transaction touched a table that does not exist.
    UnknownTable(String),
    /// A transaction was required to be weakly minimal but is not
    /// (`∇R ⊄ R` in the current state).
    NotWeaklyMinimal {
        /// The offending table.
        table: String,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Algebra(e) => write!(f, "{e}"),
            DeltaError::UnknownTable(t) => write!(f, "transaction references unknown table '{t}'"),
            DeltaError::NotWeaklyMinimal { table } => {
                write!(f, "transaction is not weakly minimal on table '{table}'")
            }
        }
    }
}

impl std::error::Error for DeltaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeltaError::Algebra(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AlgebraError> for DeltaError {
    fn from(e: AlgebraError) -> Self {
        DeltaError::Algebra(e)
    }
}

impl From<StorageError> for DeltaError {
    fn from(e: StorageError) -> Self {
        DeltaError::Algebra(AlgebraError::Storage(e))
    }
}

/// Result alias for delta operations.
pub type Result<T> = std::result::Result<T, DeltaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: DeltaError = StorageError::NoSuchTable("x".into()).into();
        assert_eq!(e.to_string(), "no such table 'x'");
        let e = DeltaError::NotWeaklyMinimal { table: "r".into() };
        assert!(e.to_string().contains("weakly minimal"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
