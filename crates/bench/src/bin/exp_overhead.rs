//! **E2 — per-transaction overhead by scenario** (paper Sections 1.1, 3,
//! 5.3).
//!
//! Claim: `makesafe_BL`/`makesafe_C` only append to logs, so deferred
//! maintenance imposes minimal per-transaction overhead, while immediate
//! maintenance (`IM`) and differential-table maintenance (`DT`) evaluate
//! incremental queries inside every update transaction — an overhead that
//! grows with base-table size.
//!
//! Setup: the Example-1.1 retail view; 200 transactions of 10 Zipf-skewed
//! sales inserts + 2 deletes each, sweeping the customer-table size.

use dvm_bench::report::TableReport;
use dvm_bench::retail_db;
use dvm_core::{Minimality, Scenario};
use dvm_workload::run_stream;

fn main() {
    println!("=== E2: per-transaction maintenance overhead (µs/tx) ===\n");
    println!("workload: 200 tx × (10 inserts + 2 deletes) on sales; view = Example 1.1\n");

    let sizes = [1_000usize, 10_000, 50_000];
    let scenarios = [
        (Scenario::Immediate, "IM"),
        (Scenario::BaseLog, "BL"),
        (Scenario::DiffTable, "DT"),
        (Scenario::Combined, "C"),
    ];

    let mut table = TableReport::new([
        "customers".to_string(),
        "bare tx".to_string(),
        "IM".to_string(),
        "BL".to_string(),
        "DT".to_string(),
        "C".to_string(),
        "IM/C ratio".to_string(),
    ]);

    for &customers in &sizes {
        let mut cells = vec![customers.to_string()];
        // baseline: no views at all
        {
            let db = dvm_core::Database::new();
            let mut gen = dvm_workload::RetailGen::new(dvm_workload::RetailConfig {
                customers,
                items: customers / 2,
                initial_sales: customers * 5,
                ..dvm_workload::RetailConfig::default()
            });
            gen.install(&db).unwrap();
            let mut total = 0u64;
            for _ in 0..200 {
                total += db.execute_unmaintained(&gen.mixed_batch(10, 2)).unwrap();
            }
            cells.push(format!("{:.1}", total as f64 / 200.0 / 1e3));
        }
        let mut per_scenario = Vec::new();
        for (scenario, _label) in scenarios {
            let (db, mut gen) = retail_db(customers, customers * 5, scenario, Minimality::Weak, 42);
            let txs: Vec<_> = (0..200).map(|_| gen.mixed_batch(10, 2)).collect();
            let stats = run_stream(&db, txs).unwrap();
            per_scenario.push(stats.mean_overhead_us());
            cells.push(format!("{:.1}", stats.mean_overhead_us()));
        }
        let im = per_scenario[0];
        let c = per_scenario[3].max(0.001);
        cells.push(format!("{:.0}×", im / c));
        table.row(cells);
    }
    table.print();

    println!(
        "\npaper claim reproduced when BL ≈ C ≪ IM ≈ DT and the gap grows with\n\
         base-table size: log appends are O(changes), incremental queries join\n\
         the deltas against ever-larger base tables."
    );
}
