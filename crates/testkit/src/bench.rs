//! Statistical micro-benchmark runner replacing Criterion.
//!
//! Each benchmark is timed over `samples` samples after a warmup; a sample
//! is `iters` back-to-back calls (auto-calibrated so one sample takes at
//! least ~1 ms), reported as per-call nanoseconds. Summaries carry
//! min/median/p95/max/mean and serialize to JSON so experiment trajectories
//! (`BENCH_*.json`) can be tracked across commits.
//!
//! Environment knobs: `DVM_BENCH_SAMPLES`, `DVM_BENCH_WARMUP_MS` override
//! the defaults; a runner built with [`Bench::quick`] executes every body
//! exactly once (used when a bench binary is invoked by `cargo test`).

use std::hint::black_box;
use std::io::Write;
use std::path::Path;
use std::time::{Duration, Instant};

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct Bench {
    samples: u32,
    warmup: Duration,
    target_sample: Duration,
    quick: bool,
}

impl Default for Bench {
    fn default() -> Self {
        Bench {
            samples: 30,
            warmup: Duration::from_millis(200),
            target_sample: Duration::from_millis(1),
            quick: false,
        }
    }
}

impl Bench {
    /// Defaults (30 samples, 200 ms warmup), overridable via
    /// `DVM_BENCH_SAMPLES` / `DVM_BENCH_WARMUP_MS`.
    pub fn from_env() -> Self {
        let mut b = Bench::default();
        if let Some(s) = env_u64("DVM_BENCH_SAMPLES") {
            b.samples = (s as u32).max(1);
        }
        if let Some(ms) = env_u64("DVM_BENCH_WARMUP_MS") {
            b.warmup = Duration::from_millis(ms);
        }
        b
    }

    /// A smoke-test runner: no warmup, every body runs exactly once.
    pub fn quick() -> Self {
        Bench {
            samples: 1,
            warmup: Duration::ZERO,
            target_sample: Duration::ZERO,
            quick: true,
        }
    }

    /// Set the sample count.
    pub fn samples(mut self, samples: u32) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Time `f`, auto-calibrating iterations per sample.
    pub fn run<T>(&self, name: impl Into<String>, mut f: impl FnMut() -> T) -> Summary {
        let name = name.into();
        if self.quick {
            let start = Instant::now();
            black_box(f());
            return Summary::from_samples(name, 1, &[start.elapsed().as_nanos() as f64]);
        }
        // Calibrate: double iters until one sample meets the target time.
        let mut iters: u64 = 1;
        loop {
            let elapsed = time_iters(&mut f, iters);
            if elapsed >= self.target_sample || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        // Warmup for the configured wall time.
        let warmup_start = Instant::now();
        while warmup_start.elapsed() < self.warmup {
            time_iters(&mut f, iters);
        }
        let mut samples = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let elapsed = time_iters(&mut f, iters);
            samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
        Summary::from_samples(name, iters, &samples)
    }

    /// Time `routine` on a fresh `setup()` value per sample (the
    /// Criterion `iter_batched`/`PerIteration` shape: setup cost excluded,
    /// one timed call per sample — for routines that consume their input,
    /// like a refresh draining a backlog).
    pub fn run_batched<S, T>(
        &self,
        name: impl Into<String>,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) -> Summary {
        let name = name.into();
        let rounds = if self.quick { 1 } else { self.samples };
        let mut samples = Vec::with_capacity(rounds as usize);
        for _ in 0..rounds {
            let input = setup();
            let start = Instant::now();
            let output = black_box(routine(input));
            samples.push(start.elapsed().as_nanos() as f64);
            // Teardown is the routine's own business only if it keeps the
            // input: anything it returns (e.g. the consumed state, handed
            // back to avoid timing its deallocation) drops off the clock.
            drop(output);
        }
        Summary::from_samples(name, 1, &samples)
    }
}

fn time_iters<T>(f: &mut impl FnMut() -> T, iters: u64) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed()
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Aggregated timing result for one benchmark, in per-call nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Benchmark name (`group/name/param`).
    pub name: String,
    /// Number of samples taken.
    pub samples: u32,
    /// Calls per sample.
    pub iters_per_sample: u64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// 95th-percentile sample.
    pub p95_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
}

impl Summary {
    /// Summarize raw per-call samples. Public so experiment binaries can
    /// record measured scalars (an observed maximum, a configured bound)
    /// as report series alongside [`Bench`]-timed ones.
    pub fn from_samples(name: String, iters_per_sample: u64, samples: &[f64]) -> Self {
        assert!(!samples.is_empty());
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let pct = |p: f64| {
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx]
        };
        Summary {
            name,
            samples: samples.len() as u32,
            iters_per_sample,
            min_ns: sorted[0],
            median_ns: pct(0.5),
            p95_ns: pct(0.95),
            max_ns: *sorted.last().expect("nonempty"),
            mean_ns: samples.iter().sum::<f64>() / samples.len() as f64,
        }
    }

    /// One JSON object, flat numeric fields.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"samples\":{},\"iters_per_sample\":{},\
             \"min_ns\":{:.1},\"median_ns\":{:.1},\"p95_ns\":{:.1},\
             \"max_ns\":{:.1},\"mean_ns\":{:.1}}}",
            json_string(&self.name),
            self.samples,
            self.iters_per_sample,
            self.min_ns,
            self.median_ns,
            self.p95_ns,
            self.max_ns,
            self.mean_ns,
        )
    }
}

/// Escape a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialize a benchmark run as a `{"benchmarks": [...]}` JSON document.
pub fn to_json_report(summaries: &[Summary]) -> String {
    let mut out = String::from("{\"benchmarks\":[");
    for (i, s) in summaries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&s.to_json());
    }
    out.push_str("\n]}\n");
    out
}

/// Write [`to_json_report`] to a file.
pub fn write_json(path: &Path, summaries: &[Summary]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json_report(summaries).as_bytes())
}

/// Like [`to_json_report`], but prefixed with a `host` record capturing
/// the parallelism the numbers were recorded under. Gates that compare a
/// serial series against a parallel one need it: on a single-core
/// recording host a parallel speedup is physically impossible, so such
/// gates must downgrade to a no-regression check there.
pub fn to_json_report_with_host(summaries: &[Summary], parallelism: usize) -> String {
    let body = to_json_report(summaries);
    format!(
        "{{\"host\":{{\"parallelism\":{parallelism}}},{}",
        &body[1..]
    )
}

/// Write [`to_json_report_with_host`] to a file.
pub fn write_json_with_host(
    path: &Path,
    summaries: &[Summary],
    parallelism: usize,
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json_report_with_host(summaries, parallelism).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_report_wraps_the_plain_report() {
        let s = Summary::from_samples("t".into(), 1, &[1.0]);
        let plain = to_json_report(std::slice::from_ref(&s));
        let hosted = to_json_report_with_host(&[s], 4);
        assert!(hosted.starts_with("{\"host\":{\"parallelism\":4},"));
        assert!(hosted.ends_with(&plain[1..]));
    }

    #[test]
    fn summary_statistics_are_ordered() {
        let s = Summary::from_samples("t".into(), 4, &[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.median_ns, 3.0);
        assert_eq!(s.max_ns, 5.0);
        assert_eq!(s.mean_ns, 3.0);
        assert!(s.p95_ns >= s.median_ns && s.p95_ns <= s.max_ns);
    }

    #[test]
    fn quick_runs_body_once() {
        let mut calls = 0;
        let s = Bench::quick().run("once", || calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(s.samples, 1);
    }

    #[test]
    fn run_measures_something_positive() {
        let b = Bench::default().samples(5);
        let s = b.run("spin", || {
            let mut acc = 0u64;
            for i in 0..100 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(s.median_ns > 0.0);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        assert_eq!(s.samples, 5);
    }

    #[test]
    fn run_batched_gets_fresh_input() {
        let mut produced = 0;
        let s = Bench::quick().run_batched(
            "consume",
            || {
                produced += 1;
                vec![1, 2, 3]
            },
            drop,
        );
        assert_eq!(produced, 1);
        assert_eq!(s.iters_per_sample, 1);
    }

    #[test]
    fn json_escapes_and_shapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        let s = Summary::from_samples("g/n".into(), 2, &[1.0, 2.0]);
        let doc = to_json_report(&[s]);
        assert!(doc.starts_with("{\"benchmarks\":["));
        assert!(doc.contains("\"name\":\"g/n\""));
        assert!(doc.contains("\"median_ns\""));
        assert!(doc.trim_end().ends_with("]}"));
    }

    #[test]
    fn write_json_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join(format!("dvm-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let s = Summary::from_samples("x".into(), 1, &[7.0]);
        write_json(&path, &[s]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"name\":\"x\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
